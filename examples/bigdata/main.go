// Bigdata: the paper's motivating scenario — a big-data workload (Mcf's
// giant hash structures) whose working set far exceeds TLB reach. This
// example sweeps the TLB-stressing benchmarks and shows how much of the
// translation overhead each CoLT design recovers, including the
// virtualization-motivated "perfect TLB" upper bound.
//
//	go run ./examples/bigdata
package main

import (
	"fmt"
	"log"

	"colt"
)

func main() {
	opts := colt.QuickOptions()
	// Give the quick run a little more room so the large benchmarks
	// exercise their working sets.
	opts.References = 150_000

	benches := []string{"Mcf", "CactusADM", "Xalancbmk", "Milc"}
	fmt.Println("TLB-bound big-data workloads: how much translation overhead does CoLT recover?")
	fmt.Println()
	fmt.Printf("%-11s %9s %9s %9s %9s %9s\n",
		"benchmark", "perfect%", "colt-sa%", "colt-fa%", "colt-all%", "recovered")
	for _, b := range benches {
		rep, err := colt.RunBenchmark(b, colt.DefaultKernel(), opts, colt.AllPolicies())
		if err != nil {
			log.Fatal(err)
		}
		sa, _ := rep.PolicyReport(colt.CoLTSA)
		fa, _ := rep.PolicyReport(colt.CoLTFA)
		all, _ := rep.PolicyReport(colt.CoLTAll)
		best := max(sa.SpeedupPct, fa.SpeedupPct, all.SpeedupPct)
		recovered := 0.0
		if rep.PerfectSpeedupPct > 0 {
			recovered = 100 * best / rep.PerfectSpeedupPct
		}
		fmt.Printf("%-11s %9.1f %9.1f %9.1f %9.1f %8.0f%%\n",
			b, rep.PerfectSpeedupPct, sa.SpeedupPct, fa.SpeedupPct, all.SpeedupPct, recovered)
	}
	fmt.Println("\n(recovered = best CoLT speedup as a share of the perfect-TLB bound)")
}
