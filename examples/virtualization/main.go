// Virtualization: the paper's closing argument — TLB misses cost far
// more under nested paging (up to 24 memory accesses per 2D walk), so
// coalescing pays off even more. This example builds a guest address
// space, backs its guest-physical memory with a host page table, and
// compares the baseline hierarchy against CoLT-All natively and behind
// the nested walker.
//
//	go run ./examples/virtualization
package main

import (
	"fmt"
	"log"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/rng"
)

type frames struct{ next arch.PFN }

func (f *frames) AllocFrame() (arch.PFN, error) { f.next++; return f.next, nil }
func (f *frames) FreeFrame(arch.PFN)            {}

func main() {
	const pages = 3 * arch.PagesPerHuge // guest footprint: three 2 MB regions
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser

	// Guest: one superpage-backed region and two base-page regions with
	// 16-page contiguity runs.
	guest, err := pagetable.New(&frames{next: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := guest.MapHuge(0, arch.PTE{PFN: 1 << 14, Attr: attr, Huge: true}); err != nil {
		log.Fatal(err)
	}
	gpfn := arch.PFN(1<<14 + arch.PagesPerHuge)
	for v := arch.VPN(arch.PagesPerHuge); v < pages; v++ {
		if v%16 == 0 {
			gpfn += 64
		}
		if err := guest.Map(v, arch.PTE{PFN: gpfn, Attr: attr}); err != nil {
			log.Fatal(err)
		}
		gpfn++
	}

	// Host: backs all guest-physical frames with 32-page contiguity.
	host, err := pagetable.New(&frames{next: 1 << 22})
	if err != nil {
		log.Fatal(err)
	}
	// The range covers the guest's data frames AND its page-table
	// frames (allocated from 1<<16 upward).
	hpfn := arch.PFN(1 << 23)
	for g := arch.VPN(1 << 14); g < arch.VPN(1<<16+64); g++ {
		if g%32 == 0 {
			hpfn += 128
		}
		if err := host.Map(g, arch.PTE{PFN: hpfn, Attr: attr}); err != nil {
			log.Fatal(err)
		}
		hpfn++
	}

	run := func(name string, cfg core.Config, nested bool) {
		var walker core.Walker
		mem := cache.DefaultHierarchy()
		if nested {
			walker = mmu.NewNestedWalker(guest, host, mem,
				mmu.NewWalkCache(mmu.DefaultWalkCacheEntries),
				mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		} else {
			walker = mmu.NewWalker(guest, mem, mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		}
		h := core.NewHierarchy(cfg, walker)
		r := rng.New(11)
		for i := 0; i < 400_000; i++ {
			vpn := arch.VPN(r.Zipf(pages, 0.9))
			for b := 0; b <= r.Intn(3) && vpn+arch.VPN(b) < pages; b++ {
				if res := h.Access(vpn + arch.VPN(b)); res.Fault {
					log.Fatalf("fault at %d", vpn)
				}
			}
		}
		st := h.Stats()
		perWalk := 0.0
		if st.Walks > 0 {
			perWalk = float64(st.WalkCycles) / float64(st.Walks)
		}
		fmt.Printf("%-26s L2 miss %6.2f%%   walks %7d   cycles/walk %6.1f\n",
			name, 100*st.L2MissRate(), st.Walks, perWalk)
	}

	fmt.Println("Native (one-dimensional page walks):")
	run("  baseline", core.BaselineConfig(), false)
	run("  colt-all", core.CoLTAllConfig(), false)
	fmt.Println("Virtualized (nested two-dimensional walks):")
	run("  baseline", core.BaselineConfig(), true)
	run("  colt-all", core.CoLTAllConfig(), true)
	fmt.Println("\nUnder virtualization each walk costs several times more, and the guest's")
	fmt.Println("2 MB pages flatten into base-page composed entries — contiguity that only")
	fmt.Println("coalescing recovers. CoLT's advantage grows accordingly.")
}
