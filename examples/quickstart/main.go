// Quickstart: simulate one benchmark under the default kernel and
// compare the baseline TLB hierarchy against the three CoLT designs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"colt"
)

func main() {
	// A quick-sized run: small machine, short reference stream. Use
	// colt.DefaultOptions() for paper-scale runs.
	opts := colt.QuickOptions()
	kernel := colt.DefaultKernel() // THS on, normal compaction

	report, err := colt.RunBenchmark("Mcf", kernel, opts, colt.AllPolicies())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Mcf under the default kernel (%d instructions simulated)\n", report.Instructions)
	fmt.Printf("average page-allocation contiguity: %.1f pages\n", report.AvgContiguity)
	fmt.Printf("a perfect TLB would speed Mcf up by %.1f%%\n\n", report.PerfectSpeedupPct)

	for _, p := range report.Policies {
		if p.Policy == colt.Baseline {
			fmt.Printf("%-9s  L1 %.0f / L2 %.0f misses per million instructions\n",
				p.Policy, p.L1MPMI, p.L2MPMI)
			continue
		}
		fmt.Printf("%-9s  eliminates %.0f%% of L1 and %.0f%% of L2 misses -> %.1f%% speedup\n",
			p.Policy, p.L1Eliminated, p.L2Eliminated, p.SpeedupPct)
	}
}
