// Customtlb: use the building blocks under internal/ directly to
// construct custom TLB hierarchies — here, the paper's Figure-19 sweep
// of CoLT-SA's index left-shift (coalescing 2, 4, or 8 translations per
// entry) on a synthetic address space, plus a hand-built hierarchy with
// an 8-way L2.
//
//	go run ./examples/customtlb
package main

import (
	"fmt"
	"log"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/rng"
)

// frames hands out simulated physical frames.
type frames struct{ next arch.PFN }

func (f *frames) AllocFrame() (arch.PFN, error) { f.next++; return f.next, nil }
func (f *frames) FreeFrame(arch.PFN)            {}

func main() {
	// Build an address space by hand: 2000 pages in contiguous runs of
	// 16 (intermediate contiguity), plus a scattered singles region.
	table, err := pagetable.New(&frames{next: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	pfn := arch.PFN(0)
	for vpn := arch.VPN(0); vpn < 2000; vpn++ {
		if vpn%16 == 0 {
			pfn += 100 // break physical contiguity every 16 pages
		}
		if err := table.Map(vpn, arch.PTE{PFN: pfn, Attr: attr}); err != nil {
			log.Fatal(err)
		}
		pfn++
	}

	run := func(name string, cfg core.Config) {
		walker := mmu.NewWalker(table, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		h := core.NewHierarchy(cfg, walker)
		r := rng.New(7)
		// Zipf-skewed accesses with short sequential bursts.
		for i := 0; i < 300_000; i++ {
			vpn := arch.VPN(r.Zipf(2000, 0.8))
			for b := 0; b <= r.Intn(3) && vpn+arch.VPN(b) < 2000; b++ {
				res := h.Access(vpn + arch.VPN(b))
				if res.Fault {
					log.Fatalf("unexpected fault at %d", vpn)
				}
			}
		}
		st := h.Stats()
		fmt.Printf("%-28s L1 miss %5.2f%%   L2 miss %5.2f%%   coalesced fills %d\n",
			name, 100*st.L1MissRate(), 100*st.L2MissRate(), st.CoalescedFills)
	}

	fmt.Println("Custom TLB hierarchies over a 16-page-contiguity address space:")
	run("baseline", core.BaselineConfig())
	for shift := uint(1); shift <= 3; shift++ {
		run(fmt.Sprintf("colt-sa shift=%d (max x%d)", shift, 1<<shift), core.CoLTSAConfig(shift))
	}
	run("colt-fa", core.CoLTFAConfig())
	run("colt-all", core.CoLTAllConfig())

	// A hand-built variant: CoLT-SA on an 8-way 128-entry L2 (the
	// paper's Figure 20 configuration).
	cfg := core.CoLTSAConfig(core.DefaultCoLTShift)
	cfg.L2Sets, cfg.L2Ways = 16, 8
	run("colt-sa 8-way L2", cfg)
}
