// Fragmentation: reproduce the paper's central OS observation — buddy
// allocation, memory compaction, and transparent hugepages naturally
// produce intermediate page-allocation contiguity, across kernel
// configurations and even under heavy memhog load.
//
//	go run ./examples/fragmentation
package main

import (
	"fmt"
	"log"

	"colt"
)

func main() {
	opts := colt.QuickOptions()
	bench := "Mcf"

	configs := []struct {
		name   string
		kernel colt.KernelConfig
	}{
		{"THS on, normal compaction (Linux default)", colt.KernelConfig{THP: true}},
		{"THS off, normal compaction", colt.KernelConfig{}},
		{"THS off, low compaction (worst case)", colt.KernelConfig{LowCompaction: true}},
		{"THS on + memhog(25%)", colt.KernelConfig{THP: true, MemhogPct: 25}},
		{"THS on + memhog(50%)", colt.KernelConfig{THP: true, MemhogPct: 50}},
	}

	fmt.Printf("Page-allocation contiguity of %s under five kernel configurations:\n\n", bench)
	for _, c := range configs {
		rep, err := colt.MeasureContiguity(bench, c.kernel, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s avg %6.1f pages", c.name, rep.Average)
		if rep.SuperpagePages > 0 {
			fmt.Printf("  (+%d superpage-backed pages)", rep.SuperpagePages)
		}
		fmt.Println()
		fmt.Printf("%45s CDF: P(<=4)=%.2f  P(<=64)=%.2f  P(<=1024)=%.2f\n",
			"", rep.CDF[4], rep.CDF[64], rep.CDF[1024])
	}
	fmt.Println("\nIntermediate contiguity (tens of pages) survives every configuration —")
	fmt.Println("too little for 512-page superpages, but exactly what CoLT coalesces.")
}
