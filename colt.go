// Package colt is a simulation library reproducing "CoLT: Coalesced
// Large-Reach TLBs" (Pham, Vaidyanathan, Jaleel, Bhattacharjee —
// MICRO 2012).
//
// The library bundles a Linux-style memory-management simulator (buddy
// allocator, memory-compaction daemon, transparent hugepage support,
// frame-backed radix page tables), a two-level TLB simulator
// implementing the paper's three coalescing designs (CoLT-SA, CoLT-FA,
// CoLT-All), a cache hierarchy and MMU page-walk model, synthetic
// models of the paper's fourteen benchmarks, and drivers that
// regenerate every table and figure of the evaluation.
//
// This package is the high-level entry point: pick a benchmark, a
// kernel configuration, and TLB policies, and get miss-rate and
// performance reports. Power users can reach the building blocks
// directly under internal/ (core for the TLB designs, mm/vm for the OS
// model, experiments for the paper's figure drivers).
package colt

import (
	"fmt"

	"colt/internal/core"
	"colt/internal/experiments"
	"colt/internal/mm"
	"colt/internal/perf"
	"colt/internal/workload"
)

// Policy names a TLB configuration.
type Policy string

// The four policies of the paper's evaluation, plus the sequential
// TLB-prefetching comparison point the paper argues against (§2.1).
const (
	Baseline    Policy = "baseline"
	CoLTSA      Policy = "colt-sa"
	CoLTFA      Policy = "colt-fa"
	CoLTAll     Policy = "colt-all"
	SeqPrefetch Policy = "seq-prefetch"
)

// AllPolicies returns baseline plus the three CoLT designs.
func AllPolicies() []Policy { return []Policy{Baseline, CoLTSA, CoLTFA, CoLTAll} }

// KernelConfig selects the simulated OS behaviour (paper §5.1.1).
type KernelConfig struct {
	// THP enables transparent hugepage support ("THS on").
	THP bool
	// LowCompaction models the disabled defrag flag (rare compaction).
	LowCompaction bool
	// MemhogPct runs the memhog fragmenter over this percentage of
	// physical memory (0, 25, or 50 in the paper).
	MemhogPct int
}

// DefaultKernel returns the paper's default Linux setting: THS on,
// normal compaction, no memhog.
func DefaultKernel() KernelConfig { return KernelConfig{THP: true} }

func (k KernelConfig) setup() experiments.SystemSetup {
	mode := mm.CompactionNormal
	if k.LowCompaction {
		mode = mm.CompactionLow
	}
	name := fmt.Sprintf("THP=%v compaction=%s memhog=%d", k.THP, mode, k.MemhogPct)
	return experiments.SystemSetup{Name: name, THP: k.THP, Compaction: mode, MemhogPct: k.MemhogPct}
}

// Options sizes a simulation.
type Options struct {
	// MemoryFrames is physical memory in 4 KB frames (default 2^18 =
	// 1 GB).
	MemoryFrames int
	// FootprintScale scales benchmark footprints (default 1.0).
	FootprintScale float64
	// References is the number of measured memory references (default
	// 2,000,000).
	References int
	// Warmup references before statistics reset (default 200,000).
	Warmup int
	// Seed makes runs reproducible (default fixed).
	Seed uint64
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options {
	o := experiments.DefaultOptions()
	return Options{
		MemoryFrames:   o.Frames,
		FootprintScale: o.Scale,
		References:     o.Refs,
		Warmup:         o.Warmup,
		Seed:           o.Seed,
	}
}

// QuickOptions returns small, fast settings for demos and tests.
func QuickOptions() Options {
	o := experiments.QuickOptions()
	return Options{
		MemoryFrames:   o.Frames,
		FootprintScale: o.Scale,
		References:     o.Refs,
		Warmup:         o.Warmup,
		Seed:           o.Seed,
	}
}

func (o Options) internal() experiments.Options {
	base := experiments.DefaultOptions()
	if o.MemoryFrames > 0 {
		base.Frames = o.MemoryFrames
	}
	if o.FootprintScale > 0 {
		base.Scale = o.FootprintScale
	}
	if o.References > 0 {
		base.Refs = o.References
	}
	if o.Warmup > 0 {
		base.Warmup = o.Warmup
	}
	if o.Seed != 0 {
		base.Seed = o.Seed
	}
	// Scale the background fragmentation with the footprint.
	if base.Scale < 0.5 {
		base.ChurnOps = 150
	}
	return base
}

// Benchmarks lists the paper's fourteen evaluation workloads in
// Table-1 order.
func Benchmarks() []string { return workload.Names() }

// PolicyReport is one TLB policy's measurements for a benchmark run.
type PolicyReport struct {
	Policy Policy
	// L1MPMI and L2MPMI are misses per million instructions (Table 1's
	// metric).
	L1MPMI, L2MPMI float64
	// L1Eliminated/L2Eliminated are the percentages of the baseline's
	// misses this policy removed (Figure 18's metric); zero for the
	// baseline itself.
	L1Eliminated, L2Eliminated float64
	// SpeedupPct is the modeled performance improvement over the
	// baseline (Figure 21's metric).
	SpeedupPct float64
	// WalkCycles is the total serialized page-walk latency.
	WalkCycles uint64
}

// Report is the result of one benchmark simulation.
type Report struct {
	Bench        string
	Instructions uint64
	// AvgContiguity is the page-weighted average contiguity of the
	// benchmark's address space under this kernel configuration.
	AvgContiguity float64
	// PerfectSpeedupPct is the improvement a 100%-hit TLB would give.
	PerfectSpeedupPct float64
	Policies          []PolicyReport
}

// PolicyReport returns the named policy's report.
func (r *Report) PolicyReport(p Policy) (PolicyReport, bool) {
	for _, pr := range r.Policies {
		if pr.Policy == p {
			return pr, true
		}
	}
	return PolicyReport{}, false
}

func variantFor(p Policy) (experiments.Variant, error) {
	switch p {
	case Baseline:
		return experiments.Variant{Name: string(p), Config: core.BaselineConfig()}, nil
	case CoLTSA:
		return experiments.Variant{Name: string(p), Config: core.CoLTSAConfig(core.DefaultCoLTShift)}, nil
	case CoLTFA:
		return experiments.Variant{Name: string(p), Config: core.CoLTFAConfig()}, nil
	case CoLTAll:
		return experiments.Variant{Name: string(p), Config: core.CoLTAllConfig()}, nil
	case SeqPrefetch:
		return experiments.Variant{Name: string(p), Config: core.SeqPrefetchConfig()}, nil
	}
	return experiments.Variant{}, fmt.Errorf("colt: unknown policy %q", p)
}

// RunBenchmark simulates one benchmark under the kernel configuration,
// evaluating every requested policy over the identical reference
// stream. If Baseline is among the policies, elimination and speedup
// figures are computed against it.
func RunBenchmark(bench string, kernel KernelConfig, opts Options, policies []Policy) (*Report, error) {
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		policies = AllPolicies()
	}
	variants := make([]experiments.Variant, 0, len(policies))
	for _, p := range policies {
		v, err := variantFor(p)
		if err != nil {
			return nil, err
		}
		variants = append(variants, v)
	}
	res, err := experiments.RunBenchmark(spec, kernel.setup(), opts.internal(), variants)
	if err != nil {
		return nil, err
	}
	report := &Report{
		Bench:         bench,
		Instructions:  res.Instructions,
		AvgContiguity: res.Contig.AverageContiguity(),
	}
	model := perf.Default()
	base, hasBase := res.Variant(string(Baseline))
	if hasBase {
		report.PerfectSpeedupPct = model.PerfectImprovement(base.Run)
	}
	for _, p := range policies {
		v, _ := res.Variant(string(p))
		l1, l2 := v.MPMI()
		pr := PolicyReport{
			Policy:     p,
			L1MPMI:     l1,
			L2MPMI:     l2,
			WalkCycles: v.Run.WalkCycles,
		}
		if hasBase && p != Baseline {
			pr.L1Eliminated = pctEliminated(base.TLB.L1Misses, v.TLB.L1Misses)
			pr.L2Eliminated = pctEliminated(base.TLB.L2Misses, v.TLB.L2Misses)
			pr.SpeedupPct = model.Improvement(base.Run, v.Run)
		}
		report.Policies = append(report.Policies, pr)
	}
	return report, nil
}

func pctEliminated(base, improved uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(improved)) / float64(base)
}

// ContiguityReport summarizes a contiguity characterization run
// (Figures 7-17's raw material).
type ContiguityReport struct {
	Bench string
	// Average is the page-weighted mean contiguity-run length.
	Average float64
	// CDF maps run-length thresholds (1, 4, 16, 64, 256, 1024) to the
	// cumulative fraction of pages at or below them.
	CDF map[int]float64
	// SuperpagePages counts pages backed by 2 MB mappings.
	SuperpagePages int
	// FracOver512 is the fraction of non-superpage pages with more
	// than 512-page contiguity (superpage-sized but unusable by THP).
	FracOver512 float64
}

// MeasureContiguity builds the benchmark's memory under the kernel
// configuration and scans its page table, reproducing the paper's
// real-system characterization for one workload.
func MeasureContiguity(bench string, kernel KernelConfig, opts Options) (*ContiguityReport, error) {
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	res, err := experiments.RunContiguity(spec, kernel.setup(), opts.internal())
	if err != nil {
		return nil, err
	}
	rep := &ContiguityReport{
		Bench:          bench,
		Average:        res.AverageContiguity(),
		CDF:            make(map[int]float64),
		SuperpagePages: res.SuperPages,
		FracOver512:    res.FractionAtLeast(513),
	}
	for _, x := range []int{1, 4, 16, 64, 256, 1024} {
		rep.CDF[x] = res.CDF.At(float64(x))
	}
	return rep, nil
}
