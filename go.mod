module colt

go 1.22
