package colt

import "testing"

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 14 || b[0] != "Mcf" {
		t.Fatalf("Benchmarks = %v", b)
	}
}

func TestRunBenchmarkFacade(t *testing.T) {
	rep, err := RunBenchmark("Mcf", DefaultKernel(), QuickOptions(), AllPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "Mcf" || rep.Instructions == 0 {
		t.Fatalf("report = %+v", rep)
	}
	base, ok := rep.PolicyReport(Baseline)
	if !ok || base.L2MPMI <= 0 {
		t.Fatalf("baseline report = %+v, %v", base, ok)
	}
	if base.L1Eliminated != 0 || base.SpeedupPct != 0 {
		t.Fatal("baseline must have zero self-elimination")
	}
	for _, p := range []Policy{CoLTSA, CoLTFA, CoLTAll} {
		pr, ok := rep.PolicyReport(p)
		if !ok {
			t.Fatalf("policy %s missing", p)
		}
		if pr.L2Eliminated <= 0 {
			t.Errorf("%s eliminated %.1f%% of L2 misses, want > 0", p, pr.L2Eliminated)
		}
		if pr.SpeedupPct <= 0 {
			t.Errorf("%s speedup %.1f%%, want > 0", p, pr.SpeedupPct)
		}
		if pr.SpeedupPct > rep.PerfectSpeedupPct+1e-9 {
			t.Errorf("%s speedup %.1f%% exceeds perfect %.1f%%", p, pr.SpeedupPct, rep.PerfectSpeedupPct)
		}
	}
	if rep.AvgContiguity < 1 {
		t.Fatalf("AvgContiguity = %v", rep.AvgContiguity)
	}
	if _, ok := rep.PolicyReport(Policy("nope")); ok {
		t.Fatal("phantom policy report")
	}
}

func TestRunBenchmarkDefaultsPolicies(t *testing.T) {
	rep, err := RunBenchmark("Gobmk", DefaultKernel(), QuickOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 4 {
		t.Fatalf("default policies = %d", len(rep.Policies))
	}
}

func TestRunBenchmarkErrors(t *testing.T) {
	if _, err := RunBenchmark("nosuch", DefaultKernel(), QuickOptions(), nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunBenchmark("Mcf", DefaultKernel(), QuickOptions(), []Policy{"bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMeasureContiguityFacade(t *testing.T) {
	rep, err := MeasureContiguity("Mcf", DefaultKernel(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Average < 1 {
		t.Fatalf("Average = %v", rep.Average)
	}
	if rep.CDF[1024] < rep.CDF[1] {
		t.Fatal("CDF not monotone")
	}
	if rep.CDF[1024] <= 0 {
		t.Fatal("CDF empty")
	}
	// Low-compaction kernel also runs.
	if _, err := MeasureContiguity("Gobmk", KernelConfig{LowCompaction: true}, QuickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	d := DefaultOptions()
	q := QuickOptions()
	if d.MemoryFrames <= q.MemoryFrames || d.References <= q.References {
		t.Fatalf("default %+v not larger than quick %+v", d, q)
	}
	// Zero-value options fall back to defaults internally.
	var zero Options
	internal := zero.internal()
	if internal.Frames <= 0 || internal.Refs <= 0 {
		t.Fatalf("zero options resolve to %+v", internal)
	}
}

func TestSeqPrefetchPolicyFacade(t *testing.T) {
	rep, err := RunBenchmark("Bzip2", DefaultKernel(), QuickOptions(),
		[]Policy{Baseline, SeqPrefetch, CoLTAll})
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := rep.PolicyReport(SeqPrefetch)
	if !ok {
		t.Fatal("prefetch policy missing")
	}
	all, _ := rep.PolicyReport(CoLTAll)
	// Both must improve on the baseline for a streaming benchmark; the
	// full-scale comparison (cmd/experiments -exp prefetch) shows CoLT
	// ahead, but tiny quick-scale footprints don't guarantee ordering.
	if pf.L2Eliminated <= 0 {
		t.Fatalf("prefetching eliminated %.1f%%", pf.L2Eliminated)
	}
	if all.L2Eliminated <= 0 {
		t.Fatalf("colt-all eliminated %.1f%%", all.L2Eliminated)
	}
}
