# Repository checks. `make check` is the pre-commit gate.

GO ?= go

.PHONY: check vet build test race bench-parallel

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler and the parallel-determinism guards under the race
# detector: concurrency bugs in the experiment engine show up here.
race:
	$(GO) test -race ./internal/sched ./internal/experiments -run Parallel

# Wall-clock scaling of the parallel experiment engine (identical
# output at every width; see EXPERIMENTS.md for recorded numbers).
bench-parallel:
	$(GO) test -bench ParallelFig18 -cpu 1,4,8 -benchtime 3x -run '^$$' .
