# Repository checks. `make check` is the single pre-merge gate:
# formatting, module hygiene, vet, build, the full test suite, the
# race-detector pass over the parallel engine and the serving daemon,
# and the golden-run regression diff.

GO ?= go

.PHONY: check fmt tidy vet build test race golden golden-update bench-parallel bench-hotpath bench-serve chaos chaos-serve fuzz-buddy cover serve-smoke cluster-smoke

check: fmt tidy vet build test race golden

# gofmt as a gate: fail listing the offending files, not rewriting
# them — CI must never mutate the tree.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "fmt: files need gofmt:"; echo "$$out"; exit 1; fi

# go.mod/go.sum must be tidy as committed.
tidy:
	$(GO) mod tidy -diff

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler and the parallel-determinism guards under the race
# detector: concurrency bugs in the experiment engine show up here.
# The telemetry determinism tests ride along — TraceSet/Reporter are
# fed concurrently from all workers.
race:
	$(GO) test -race ./internal/sched ./internal/experiments -run 'Parallel|GoldenHistograms|TraceEvents'
	$(GO) test -race -count=1 ./internal/server ./internal/server/faultfs ./internal/obs

# Golden-run regression diff: re-runs the golden experiment subset and
# byte-compares its metrics JSON against internal/experiments/testdata/
# goldens (see EXPERIMENTS.md).
golden:
	$(GO) test ./internal/experiments -run TestGoldens

# Regenerate the goldens after an intended simulator change; review the
# resulting JSON diff before committing it.
golden-update:
	$(GO) test ./internal/experiments -run TestGoldens -update

# Wall-clock scaling of the parallel experiment engine (identical
# output at every width; see EXPERIMENTS.md for recorded numbers).
bench-parallel:
	$(GO) test -bench ParallelFig18 -cpu 1,4,8 -benchtime 3x -run '^$$' .

# Hot-path trajectory: run the refs/sec benchmark and rewrite
# BENCH_hotpath.json at the repo root (see EXPERIMENTS.md for the
# schema and the cross-PR measurement methodology).
bench-hotpath:
	./scripts/bench_hotpath.sh

# Serving-path trajectory: drive a self-hosted server with coltload's
# zipf-skewed closed loop and rewrite BENCH_serve.json at the repo
# root (see EXPERIMENTS.md for the schema and the cross-PR A/B
# methodology). CI runs a 2s smoke (`make bench-serve DURATION=2s`).
DURATION ?= 8s
bench-serve:
	./scripts/bench_serve.sh $(DURATION)

# Chaos soak: fault injection at every site with the invariant auditors
# armed — injected failures must surface as structured records, the
# surviving jobs must render, and the degraded report must be
# byte-identical at every scheduler width (see DESIGN.md).
chaos:
	$(GO) test ./internal/experiments -run TestChaos -count=1 -v

# Serving-path chaos: SIGKILL coltd mid-load and assert the journal
# replays every accepted job with byte-identical reports on restart,
# then boot under a total-fsync-failure storm and assert the daemon
# degrades to memory-only serving instead of dying (see DESIGN.md §12).
chaos-serve:
	./scripts/chaos_serve.sh

# A short buddy-allocator fuzz run with the free-list auditor asserted
# after every operation (CI runs the corpus only, via `make test`).
fuzz-buddy:
	$(GO) test ./internal/mm -run '^$$' -fuzz FuzzBuddyAllocFree -fuzztime 30s

# Serve-path smoke: boot coltd on an ephemeral port, submit a quick
# table1 job, assert the identical resubmission is a byte-identical
# cache hit with no extra simulation, and drain cleanly on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# Cluster smoke: boot a 3-node fleet with static -peers, assert ring
# convergence on readyz, one fleet-wide simulation for a spec
# submitted through two nodes (ownership proxying), byte-identical
# reports through every node (peer cache fill), then SIGKILL a node
# and assert the survivors shrink the ring and re-serve every hash
# from cache.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Statement-coverage gate for the observability stack: each package
# listed in .coverage-floor must meet its checked-in minimum.
cover:
	@set -e; \
	while read -r pkg floor; do \
		case "$$pkg" in ''|\#*) continue;; esac; \
		pct=$$($(GO) test -count=1 -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		echo "$$pkg: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p + 0 >= f + 0) }' || \
			{ echo "cover: $$pkg coverage $$pct% fell below the $$floor% floor"; exit 1; }; \
	done < .coverage-floor
