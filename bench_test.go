package colt

// The benchmark harness: one testing.B target per paper artifact
// (DESIGN.md's per-experiment index), each regenerating the table or
// figure at a reduced but structurally identical scale, plus
// micro-benchmarks for the simulator's hot paths. Run the cmd/
// experiments binary for full-scale regeneration.

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/experiments"
	"colt/internal/mm"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/rng"
	"colt/internal/vm"
	"colt/internal/workload"
)

// benchOpts shrinks runs so the full -bench=. sweep stays tractable.
func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Refs = 30_000
	o.Warmup = 3_000
	return o
}

// BenchmarkTable1 regenerates Table 1 (real-system L1/L2 MPMI with THS
// on and off).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigures7to9 regenerates the THS-on contiguity CDFs.
func BenchmarkFigures7to9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ContiguityCDFs(experiments.SetupTHSOnNormal, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigures10to12 regenerates the THS-off contiguity CDFs.
func BenchmarkFigures10to12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ContiguityCDFs(experiments.SetupTHSOffNormal, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigures13to15 regenerates the low-compaction contiguity CDFs.
func BenchmarkFigures13to15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ContiguityCDFs(experiments.SetupTHSOffLow, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure16 regenerates the THS-on memhog sweep.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure16(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure17 regenerates the THS-off memhog sweep.
func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure17(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure18 regenerates the miss-elimination comparison
// (baseline vs CoLT-SA/FA/All); Figure 21's performance numbers derive
// from the same evaluation run.
func BenchmarkFigure18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev, err := experiments.RunStandardEvaluation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if rows := ev.Eliminations(); len(rows) != 14 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkParallelFig18 measures the experiment engine's scaling: the
// same quick Figure 18 evaluation with the worker count following
// GOMAXPROCS, so `go test -bench ParallelFig18 -cpu 1,4,8` reports the
// wall-clock at 1, 4, and 8 workers. Output is identical at every
// width (TestParallelDeterminism); only the time changes.
func BenchmarkParallelFig18(b *testing.B) {
	opts := benchOpts()
	opts.Parallel = 0 // track GOMAXPROCS, i.e. the -cpu value
	for i := 0; i < b.N; i++ {
		ev, err := experiments.RunStandardEvaluation(opts)
		if err != nil {
			b.Fatal(err)
		}
		if rows := ev.Eliminations(); len(rows) != 14 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure19 regenerates the CoLT-SA index left-shift sweep.
func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure19(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure20 regenerates the L2 associativity study.
func BenchmarkFigure20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure20(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure21 regenerates the performance-improvement comparison
// (perfect TLB vs the CoLT designs).
func BenchmarkFigure21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev, err := experiments.RunStandardEvaluation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if rows := ev.Performance(); len(rows) != 14 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAblationFAL2Fill regenerates the §7.1.3 CoLT-FA L2-fill
// ablation.
func BenchmarkAblationFAL2Fill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFAL2Fill(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllL2Fill regenerates the §7.1.3 CoLT-All L2-fill
// ablation.
func BenchmarkAblationAllL2Fill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAllL2Fill(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks for the simulator's hot paths.
// ---------------------------------------------------------------------

// BenchmarkHotPath meters the batched reference engine — the loop every
// served byte comes out of — as references per second on the standing
// fixture (Mcf × THS-on × four standard variants). scripts/
// bench_hotpath.sh turns its output into BENCH_hotpath.json, the
// per-PR refs/sec trajectory.
func BenchmarkHotPath(b *testing.B) {
	h, err := experiments.NewHotPath(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := h.Steps(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotPathScalar meters the scalar (batch size 1) loop on the
// same fixture — the fallback path traced jobs take. Note this is the
// current tree's scalar loop, which shares the data-layout work; the
// BENCH_hotpath.json speedup gate is measured against the *pre-PR*
// loop instead (see EXPERIMENTS.md).
func BenchmarkHotPathScalar(b *testing.B) {
	h, err := experiments.NewHotPath(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := h.StepsScalar(b.N); err != nil {
		b.Fatal(err)
	}
}

func newBenchWorld(b *testing.B, cfg core.Config) (*core.Hierarchy, []arch.VPN) {
	b.Helper()
	tbl, err := pagetable.New(&benchFrames{next: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	pages := make([]arch.VPN, 4096)
	for i := range pages {
		vpn := arch.VPN(i)
		if err := tbl.Map(vpn, arch.PTE{PFN: arch.PFN(1<<22 + i), Attr: attr}); err != nil {
			b.Fatal(err)
		}
		pages[i] = vpn
	}
	walker := mmu.NewWalker(tbl, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
	return core.NewHierarchy(cfg, walker), pages
}

type benchFrames struct{ next arch.PFN }

func (f *benchFrames) AllocFrame() (arch.PFN, error) { f.next++; return f.next, nil }
func (f *benchFrames) FreeFrame(arch.PFN)            {}

// BenchmarkHierarchyAccessBaseline measures one translation through the
// baseline two-level hierarchy.
func BenchmarkHierarchyAccessBaseline(b *testing.B) {
	benchHierarchy(b, core.BaselineConfig())
}

// BenchmarkHierarchyAccessCoLTSA measures one translation through the
// CoLT-SA hierarchy.
func BenchmarkHierarchyAccessCoLTSA(b *testing.B) {
	benchHierarchy(b, core.CoLTSAConfig(core.DefaultCoLTShift))
}

// BenchmarkHierarchyAccessCoLTAll measures one translation through the
// CoLT-All hierarchy.
func BenchmarkHierarchyAccessCoLTAll(b *testing.B) {
	benchHierarchy(b, core.CoLTAllConfig())
}

func benchHierarchy(b *testing.B, cfg core.Config) {
	h, pages := newBenchWorld(b, cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(pages[r.Zipf(len(pages), 0.9)])
	}
}

// BenchmarkBuddyAllocFree measures the buddy allocator's order-0
// fault/free cycle.
func BenchmarkBuddyAllocFree(b *testing.B) {
	pm := mm.NewPhysMem(1 << 16)
	buddy := mm.NewBuddy(pm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, err := buddy.AllocBlock(0)
		if err != nil {
			b.Fatal(err)
		}
		buddy.FreeRange(pfn, 1)
	}
}

// BenchmarkPageWalk measures a full four-level walk with MMU caching.
func BenchmarkPageWalk(b *testing.B) {
	tbl, err := pagetable.New(&benchFrames{next: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrUser
	for i := 0; i < 4096; i++ {
		if err := tbl.Map(arch.VPN(i), arch.PTE{PFN: arch.PFN(i), Attr: attr}); err != nil {
			b.Fatal(err)
		}
	}
	w := mmu.NewWalker(tbl, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Walk(arch.VPN(r.Intn(4096)))
	}
}

// BenchmarkWorkloadStream measures reference generation.
func BenchmarkWorkloadStream(b *testing.B) {
	sys := vm.NewSystem(vm.Config{Frames: 1 << 14, THP: true, Compaction: mm.CompactionNormal})
	proc, err := sys.NewProcess()
	if err != nil {
		b.Fatal(err)
	}
	spec, _ := workload.ByName("Mcf")
	w, err := workload.Build(spec.Scale(0.02), proc, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// BenchmarkPrefetchComparison regenerates the CoLT-vs-prefetching
// extension table.
func BenchmarkPrefetchComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PrefetchComparison(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinementsAblation regenerates the future-work refinements
// ablation.
func BenchmarkRefinementsAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RefinementsAblation(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualization regenerates the nested-paging extension.
func BenchmarkVirtualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.VirtualizationComparison(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupSizeSensitivity regenerates the superpage-TLB size sweep.
func BenchmarkSupSizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SupSizeSensitivity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL2SizeSensitivity regenerates the L2 TLB size sweep.
func BenchmarkL2SizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.L2SizeSensitivity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubblockComparison regenerates the CoLT-vs-subblocking
// extension table.
func BenchmarkSubblockComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SubblockComparison(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
