// Package contig measures page-allocation contiguity the way the
// paper's modified kernel does (§5.1.1): it scans a process page table
// for maximal runs of consecutive virtual pages mapped to consecutive
// physical frames with identical attributes, and reports the
// distribution of run lengths experienced by non-superpage pages
// (Figures 7-15) and the average contiguity (Figures 16-17).
package contig

import (
	"colt/internal/arch"
	"colt/internal/pagetable"
	"colt/internal/stats"
	"colt/internal/telemetry"
)

// PaperXAxis is the log-scale x-axis the paper's CDFs use.
var PaperXAxis = []float64{1, 4, 16, 64, 256, 1024}

// Result summarizes one contiguity scan.
type Result struct {
	// CDF is the page-weighted distribution of contiguity-run lengths
	// over non-superpage pages: CDF.At(k) is the fraction of pages
	// whose run is at most k pages long.
	CDF *stats.CDF
	// NonSuperPages and SuperPages count 4 KB-mapped and
	// superpage-mapped pages respectively.
	NonSuperPages int
	SuperPages    int
	// Runs is the number of maximal contiguity runs seen.
	Runs int
	// MaxRun is the longest run observed.
	MaxRun int
	// RunLenHist is the log2 histogram of maximal run lengths (each
	// run counts once, unlike the page-weighted CDF) — the telemetry
	// layer's view of the same distribution's shape.
	RunLenHist telemetry.Hist
}

// AverageContiguity is the page-weighted mean run length: the expected
// contiguity experienced by a randomly chosen mapped page. Figures 7-15
// CDFs are distributions of this quantity.
func (r Result) AverageContiguity() float64 { return r.CDF.Mean() }

// RunWeightedAverage is the plain mean run length (each maximal run
// counts once). The paper's legend numbers are consistent with this
// metric for some benchmarks (e.g. Mummer's "average contiguity 1.3"
// alongside "50% of its pages enjoy 4-page contiguity"), so both are
// reported.
func (r Result) RunWeightedAverage() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.NonSuperPages) / float64(r.Runs)
}

// FractionAtLeast returns the fraction of non-superpage pages whose
// contiguity run is at least k pages (e.g. the paper's "15% of
// non-superpage pages actually have over 512-page contiguity").
func (r Result) FractionAtLeast(k int) float64 {
	if r.CDF.Empty() {
		return 0
	}
	return 1 - r.CDF.At(float64(k-1))
}

// Scan walks the page table and measures contiguity. Superpage-mapped
// pages are counted separately and excluded from the CDF, matching the
// paper's definition.
func Scan(t *pagetable.Table) Result {
	res := Result{CDF: stats.NewCDF()}
	var (
		haveRun bool
		last    arch.Translation
		runLen  int
	)
	flush := func() {
		if !haveRun {
			return
		}
		res.CDF.AddWeighted(float64(runLen), float64(runLen))
		res.Runs++
		res.RunLenHist.Observe(uint64(runLen))
		if runLen > res.MaxRun {
			res.MaxRun = runLen
		}
		haveRun = false
	}
	t.Each(func(tr arch.Translation) bool {
		if tr.PTE.Huge {
			flush()
			res.SuperPages += arch.PagesPerHuge
			return true
		}
		res.NonSuperPages++
		if haveRun && last.ContiguousWith(tr) {
			runLen++
		} else {
			flush()
			haveRun = true
			runLen = 1
		}
		last = tr
		return true
	})
	flush()
	return res
}

// Merge combines several scan results (e.g. across processes or
// periodic samples) into one aggregate distribution.
func Merge(results ...Result) Result {
	out := Result{CDF: stats.NewCDF()}
	// Points reports cumulative fractions, so reconstruct each value's
	// weight from consecutive steps before re-adding.
	for _, r := range results {
		prev := 0.0
		for _, pt := range r.CDF.Points() {
			w := (pt.CumFrac - prev) * r.CDF.Total()
			out.CDF.AddWeighted(pt.Value, w)
			prev = pt.CumFrac
		}
		out.NonSuperPages += r.NonSuperPages
		out.SuperPages += r.SuperPages
		out.Runs += r.Runs
		out.RunLenHist.Merge(&r.RunLenHist)
		if r.MaxRun > out.MaxRun {
			out.MaxRun = r.MaxRun
		}
	}
	return out
}
