package contig

import (
	"math"
	"testing"

	"colt/internal/arch"
	"colt/internal/pagetable"
)

type seqFrames struct{ next arch.PFN }

func (s *seqFrames) AllocFrame() (arch.PFN, error) {
	s.next++
	return s.next, nil
}
func (s *seqFrames) FreeFrame(arch.PFN) {}

const attr = arch.AttrPresent | arch.AttrWritable | arch.AttrUser

func newTable(t *testing.T) *pagetable.Table {
	t.Helper()
	tbl, err := pagetable.New(&seqFrames{next: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mapRun(t *testing.T, tbl *pagetable.Table, vpn arch.VPN, pfn arch.PFN, n int, a arch.Attr) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Map(vpn+arch.VPN(i), arch.PTE{PFN: pfn + arch.PFN(i), Attr: a}); err != nil {
			t.Fatal(err)
		}
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScanEmptyTable(t *testing.T) {
	res := Scan(newTable(t))
	if res.NonSuperPages != 0 || res.Runs != 0 || res.AverageContiguity() != 0 {
		t.Fatalf("empty scan = %+v", res)
	}
}

func TestScanSingleRun(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 100, 1000, 10, attr)
	res := Scan(tbl)
	if res.Runs != 1 || res.MaxRun != 10 || res.NonSuperPages != 10 {
		t.Fatalf("scan = %+v", res)
	}
	if !almost(res.AverageContiguity(), 10) {
		t.Fatalf("avg = %v", res.AverageContiguity())
	}
}

func TestScanBreaksOnGaps(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 100, 1000, 4, attr) // run of 4
	mapRun(t, tbl, 104, 2000, 2, attr) // physical jump: new run of 2
	mapRun(t, tbl, 110, 2010, 3, attr) // virtual gap: run of 3
	res := Scan(tbl)
	if res.Runs != 3 || res.MaxRun != 4 {
		t.Fatalf("scan = %+v", res)
	}
	// Page-weighted average: (4*4 + 2*2 + 3*3)/9.
	want := float64(4*4+2*2+3*3) / 9
	if !almost(res.AverageContiguity(), want) {
		t.Fatalf("avg = %v, want %v", res.AverageContiguity(), want)
	}
}

func TestScanBreaksOnAttrChange(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 100, 1000, 2, attr)
	mapRun(t, tbl, 102, 1002, 2, arch.AttrPresent|arch.AttrUser) // contiguous frames, different attrs
	res := Scan(tbl)
	if res.Runs != 2 {
		t.Fatalf("attr change did not break run: %+v", res)
	}
}

func TestScanExcludesSuperpages(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 100, 1000, 5, attr)
	if err := tbl.MapHuge(arch.PagesPerHuge*8, arch.PTE{PFN: 512 * 8, Attr: attr, Huge: true}); err != nil {
		t.Fatal(err)
	}
	res := Scan(tbl)
	if res.SuperPages != arch.PagesPerHuge {
		t.Fatalf("SuperPages = %d", res.SuperPages)
	}
	if res.NonSuperPages != 5 || !almost(res.AverageContiguity(), 5) {
		t.Fatalf("superpage leaked into CDF: %+v", res)
	}
}

func TestScanSuperpageSplitsSurroundingRun(t *testing.T) {
	tbl := newTable(t)
	// Base pages immediately before and after a huge mapping must not
	// join across it even if physically contiguous.
	mapRun(t, tbl, arch.PagesPerHuge-2, 510, 2, attr) // vpns 510,511 -> pfns 511,512
	if err := tbl.MapHuge(arch.PagesPerHuge, arch.PTE{PFN: 1024, Attr: attr, Huge: true}); err != nil {
		t.Fatal(err)
	}
	mapRun(t, tbl, 2*arch.PagesPerHuge, 513, 2, attr)
	res := Scan(tbl)
	if res.Runs != 2 {
		t.Fatalf("runs = %d, want 2", res.Runs)
	}
}

func TestFractionAtLeast(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 0, 5000, 600, attr)  // 600 pages with 600-contiguity
	mapRun(t, tbl, 1000, 9000, 8, attr) // 8 pages
	res := Scan(tbl)
	got := res.FractionAtLeast(513)
	want := 600.0 / 608.0
	if !almost(got, want) {
		t.Fatalf("FractionAtLeast(513) = %v, want %v", got, want)
	}
	if res.FractionAtLeast(1) != 1 {
		t.Fatal("FractionAtLeast(1) != 1")
	}
	empty := Scan(newTable(t))
	if empty.FractionAtLeast(4) != 0 {
		t.Fatal("empty FractionAtLeast != 0")
	}
}

func TestMerge(t *testing.T) {
	t1 := newTable(t)
	mapRun(t, t1, 0, 100, 4, attr)
	t2 := newTable(t)
	mapRun(t, t2, 0, 100, 12, attr)
	merged := Merge(Scan(t1), Scan(t2))
	if merged.NonSuperPages != 16 || merged.Runs != 2 || merged.MaxRun != 12 {
		t.Fatalf("merged = %+v", merged)
	}
	want := float64(4*4+12*12) / 16
	if !almost(merged.AverageContiguity(), want) {
		t.Fatalf("merged avg = %v, want %v", merged.AverageContiguity(), want)
	}
}

func TestPaperXAxisSampling(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 0, 100, 3, attr)
	mapRun(t, tbl, 100, 900, 20, attr)
	res := Scan(tbl)
	pts := res.CDF.SampleAt(PaperXAxis)
	if len(pts) != 6 {
		t.Fatalf("sample points = %d", len(pts))
	}
	if !almost(pts[1].CumFrac, 3.0/23.0) { // at x=4: only the 3-run
		t.Fatalf("CDF at 4 = %v", pts[1].CumFrac)
	}
	if pts[5].CumFrac != 1 {
		t.Fatal("CDF at 1024 != 1")
	}
}

func TestRunWeightedAverage(t *testing.T) {
	tbl := newTable(t)
	mapRun(t, tbl, 0, 100, 9, attr)
	mapRun(t, tbl, 20, 900, 1, attr)
	res := Scan(tbl)
	if !almost(res.RunWeightedAverage(), 5) { // (9+1)/2
		t.Fatalf("RunWeightedAverage = %v", res.RunWeightedAverage())
	}
	// Page-weighted is higher: (9*9+1*1)/10.
	if !almost(res.AverageContiguity(), 8.2) {
		t.Fatalf("AverageContiguity = %v", res.AverageContiguity())
	}
	if Scan(newTable(t)).RunWeightedAverage() != 0 {
		t.Fatal("empty table run-weighted average")
	}
}
