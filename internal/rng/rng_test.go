package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if r.IntRange(3, 3) != 3 {
		t.Fatal("degenerate range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	r.IntRange(5, 4)
}

func TestFloat64AndBool(t *testing.T) {
	r := New(11)
	trues := 0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2500 || trues > 3500 {
		t.Fatalf("Bool(0.3) fired %d/10000 times", trues)
	}
}

func TestFork(t *testing.T) {
	r := New(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestStreamOrderIndependence(t *testing.T) {
	// The same name yields the same stream regardless of the parent's
	// draw position or sibling derivations.
	a := New(42)
	wantFirst := a.Stream("workload").Uint64()

	b := New(42)
	b.Uint64() // advance the parent
	b.Fork()   // derive an unrelated child
	b.Stream("churn")
	if got := b.Stream("workload").Uint64(); got != wantFirst {
		t.Fatalf("stream depends on derivation order: %d vs %d", got, wantFirst)
	}
}

func TestStreamDistinctness(t *testing.T) {
	r := New(0xC017)
	w := r.Stream("workload").Uint64()
	c := r.Stream("churn").Uint64()
	m := r.Stream("memhog").Uint64()
	if w == c || c == m || w == m {
		t.Fatalf("streams collided: workload=%d churn=%d memhog=%d", w, c, m)
	}
	// Different seeds must decorrelate the same name.
	if New(1).Stream("workload").Uint64() == New(2).Stream("workload").Uint64() {
		t.Fatal("same name under different seeds collided")
	}
	if r.Seed() != 0xC017 {
		t.Fatalf("Seed() = %#x", r.Seed())
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := New(13)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := r.Zipf(100, 1.0)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// s=0 degenerates to uniform.
	u := r.Zipf(10, 0)
	if u < 0 || u >= 10 {
		t.Fatal("uniform fallback out of range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0) did not panic")
		}
	}()
	r.Zipf(0, 1)
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64()
}
