// Package rng provides a small, fast, deterministic random-number
// generator (splitmix64) used by the workload models and the OS
// simulator. Determinism matters here: the paper's methodology is
// reproduced by running the identical allocation and access history
// against each TLB configuration, which requires bit-identical
// randomness across runs.
//
// # Stream splitting
//
// Subcomponents must not share one generator through call order:
// inserting or reordering a consumer would silently shift every
// downstream draw. Two derivation primitives are provided:
//
//   - Stream(name) derives a child generator purely from the parent's
//     construction seed and the name. It is ORDER-INDEPENDENT: the
//     stream named "workload" is the same generator whether it is
//     derived first or last, before or after any draws on the parent,
//     and regardless of which sibling streams exist. Experiment runners
//     use this so that results are a function of (seed, benchmark,
//     setup, purpose) only — the guarantee that makes parallel and
//     serial schedules byte-identical.
//   - Fork() derives a child from the parent's CURRENT state. It is
//     order-dependent by design and suited to linear histories (e.g.
//     consecutive phases of one simulation) where insertion of a new
//     consumer should intentionally produce a fresh history.
package rng

import (
	"hash/fnv"
	"math"
)

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New.
type RNG struct {
	state uint64
	// seed is the construction seed, kept so Stream can derive children
	// independent of how many values the parent has drawn.
	seed uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed, seed: seed} }

// Seed returns the construction seed (the root of Stream derivation).
func (r *RNG) Seed() uint64 { return r.seed }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's current state, for giving subcomponents
// their own streams. Prefer Stream when the set of consumers may grow:
// Fork'd streams shift whenever an earlier Fork or draw is added.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

// Stream derives an independent generator named name. The child is a
// pure function of the parent's construction seed and the name — it
// does not depend on the parent's draw position or on any sibling
// streams — so adding, removing, or reordering other consumers never
// changes it. Identical names yield identical streams; distinct names
// yield streams decorrelated by the splitmix64 finalizer.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	// Mix the name hash with the construction seed through one
	// splitmix64 step so nearby seeds and similar names both diffuse.
	z := r.seed ^ h.Sum64()
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(z ^ (z >> 31))
}

// Zipf returns a value in [0, n) following an approximate Zipf
// distribution with exponent s > 0: low indices are much more likely.
// It uses the inverse-CDF power-law approximation, which is accurate
// enough for workload skew modeling.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s <= 0 {
		return r.Intn(n)
	}
	if s == 1 {
		s = 1.0000001 // the inverse CDF below is singular at s=1
	}
	u := r.Float64()
	// Inverse CDF of p(x) ~ x^{-s} over [1, n+1).
	x := math.Pow(float64(n)+1, 1-s)
	v := math.Pow(u*(x-1)+1, 1/(1-s))
	idx := int(v) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
