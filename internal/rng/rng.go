// Package rng provides a small, fast, deterministic random-number
// generator (splitmix64) used by the workload models and the OS
// simulator. Determinism matters here: the paper's methodology is
// reproduced by running the identical allocation and access history
// against each TLB configuration, which requires bit-identical
// randomness across runs.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's current state, for giving subcomponents
// their own streams.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

// Zipf returns a value in [0, n) following an approximate Zipf
// distribution with exponent s > 0: low indices are much more likely.
// It uses the inverse-CDF power-law approximation, which is accurate
// enough for workload skew modeling.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s <= 0 {
		return r.Intn(n)
	}
	if s == 1 {
		s = 1.0000001 // the inverse CDF below is singular at s=1
	}
	u := r.Float64()
	// Inverse CDF of p(x) ~ x^{-s} over [1, n+1).
	x := math.Pow(float64(n)+1, 1-s)
	v := math.Pow(u*(x-1)+1, 1/(1-s))
	idx := int(v) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
