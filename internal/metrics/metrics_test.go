package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"colt/internal/telemetry"
)

func sampleRecord(bench string) Record {
	return Record{
		Kind:         KindBench,
		Bench:        bench,
		Setup:        "THS on, normal compaction",
		Seed:         0xC017,
		Instructions: 1_000_000,
		Variants: []Variant{
			{
				Name: "baseline", Policy: "baseline",
				Accesses: 500_000, L1Misses: 40_000, L2Misses: 9_000,
				Walks: 9_000, WalkCycles: 270_000,
				L1:     LevelStats{Lookups: 500_000, Hits: 460_000, Misses: 40_000, Fills: 40_000, HitRate: 0.92, TranslationsPerFill: 1},
				L2:     LevelStats{Lookups: 40_000, Hits: 31_000, Misses: 9_000, Fills: 9_000, HitRate: 0.775, TranslationsPerFill: 1},
				L1MPMI: 40_000, L2MPMI: 9_000,
				ModelCycles: 1_000_000,
			},
		},
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 4); got != 2.5 {
		t.Errorf("Ratio(10,4) = %v", got)
	}
	if got := Ratio(10, 0); got != 0 {
		t.Errorf("Ratio(10,0) = %v, want 0", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Errorf("Ratio(0,0) = %v, want 0", got)
	}
}

// TestStableJSONSortedAndStable: records collected in any order yield
// identical bytes, and every object's keys come out sorted.
func TestStableJSONSortedAndStable(t *testing.T) {
	opts := Options{Frames: 1 << 15, Scale: 0.05, Refs: 60_000, Seed: 0xC017}

	c1 := NewCollector()
	c1.Add(sampleRecord("Mcf"), time.Millisecond)
	c1.Add(sampleRecord("Astar"), time.Millisecond)
	c2 := NewCollector()
	c2.Add(sampleRecord("Astar"), time.Millisecond)
	c2.Add(sampleRecord("Mcf"), time.Millisecond)

	j1, err := c1.Report("fig18", opts).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c2.Report("fig18", opts).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("collection order leaked into stable JSON")
	}

	// Keys sorted: "bench" must appear before "kind" in a record object.
	s := string(j1)
	if !strings.Contains(s, `"schema": "colt-metrics/1"`) {
		t.Errorf("schema missing:\n%s", s)
	}
	bi, ki := strings.Index(s, `"bench"`), strings.Index(s, `"kind"`)
	if bi == -1 || ki == -1 || bi > ki {
		t.Errorf("keys not sorted: bench@%d kind@%d", bi, ki)
	}
	// Numeric values survive the normalization round-trip exactly.
	if !strings.Contains(s, `"hit_rate": 0.775`) {
		t.Errorf("float literal not preserved:\n%s", s)
	}
}

func TestStableJSONRejectsNonFinite(t *testing.T) {
	for name, poison := range map[string]func(*Record){
		"speedup-inf":  func(r *Record) { r.Variants[0].SpeedupPct = math.Inf(1) },
		"hit-rate-nan": func(r *Record) { r.Variants[0].L1.HitRate = math.NaN() },
	} {
		rec := sampleRecord("Mcf")
		poison(&rec)
		c := NewCollector()
		c.Add(rec, 0)
		_, err := c.Report("fig18", Options{}).StableJSON()
		if err == nil {
			t.Errorf("%s: non-finite value serialized without error", name)
			continue
		}
		if !strings.Contains(err.Error(), "Mcf") {
			t.Errorf("%s: error %q does not name the record", name, err)
		}
	}
}

func TestReportEmptyRecords(t *testing.T) {
	c := NewCollector()
	out, err := c.Report("empty", Options{}).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"records": []`) {
		t.Errorf("empty report should serialize records as []:\n%s", out)
	}
}

func TestDiff(t *testing.T) {
	c := NewCollector()
	c.Add(sampleRecord("Mcf"), 0)
	base, err := c.Report("fig18", Options{Refs: 100}).StableJSON()
	if err != nil {
		t.Fatal(err)
	}

	if d := Diff(base, base); d != nil {
		t.Errorf("Diff of identical documents = %v", d)
	}

	changed := NewCollector()
	rec := sampleRecord("Mcf")
	rec.Variants[0].L2Misses = 9_001
	changed.Add(rec, 0)
	mod, err := changed.Report("fig18", Options{Refs: 100}).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(mod, base)
	if len(d) == 0 {
		t.Fatal("Diff missed a changed field")
	}
	joined := strings.Join(d, "\n")
	if !strings.Contains(joined, "l2_misses") || !strings.Contains(joined, "9001") || !strings.Contains(joined, "9000") {
		t.Errorf("diff lines do not name the field and both values:\n%s", joined)
	}
}

func TestCollectorMergeAndTiming(t *testing.T) {
	a := NewCollector()
	a.Add(sampleRecord("Mcf"), 5*time.Millisecond)
	a.ObserveJob(0, "bench/Mcf/ths-on", 5*time.Millisecond)

	b := NewCollector()
	b.Merge(a)
	b.Merge(nil) // no-op
	b.Merge(b)   // self-merge is a no-op, not a deadlock or duplication
	if b.Len() != 1 {
		t.Fatalf("merged collector has %d records", b.Len())
	}

	out, err := b.TimingJSON("fig18")
	if err != nil {
		t.Fatal(err)
	}
	var tr TimingReport
	if err := json.Unmarshal(out, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.SchedJobs != 1 || len(tr.Records) != 1 || tr.Records[0].Bench != "Mcf" {
		t.Errorf("timing report %+v", tr)
	}
	if tr.Records[0].WallMS != 5 {
		t.Errorf("wall_ms = %v, want 5", tr.Records[0].WallMS)
	}
	if len(tr.Sched) != 1 || tr.Sched[0].Label != "bench/Mcf/ths-on" || tr.Sched[0].WallMS != 5 {
		t.Errorf("sched timings did not carry the job label through Merge: %+v", tr.Sched)
	}
}

// TestHistFromTrimsAndConverts: the telemetry→metrics bridge drops
// empty histograms (so omitempty elides them), trims trailing zero
// buckets, and preserves the counters.
func TestHistFrom(t *testing.T) {
	if HistFrom(nil) != nil {
		t.Error("HistFrom(nil) != nil")
	}
	var empty telemetry.Hist
	if HistFrom(&empty) != nil {
		t.Error("HistFrom of an empty histogram != nil")
	}
	var h telemetry.Hist
	h.Observe(0)
	h.Observe(5) // bucket bits.Len64(5) = 3
	got := HistFrom(&h)
	if got == nil || got.Count != 2 || got.Sum != 5 || got.Max != 5 {
		t.Fatalf("HistFrom counters: %+v", got)
	}
	if len(got.Buckets) != 4 || got.Buckets[0] != 1 || got.Buckets[3] != 1 {
		t.Errorf("HistFrom buckets not trimmed to last non-zero: %v", got.Buckets)
	}
}

// TestSpansFrom: the golden-safe span conversion keeps only simulated
// time (reference indices) — wall-clock never reaches a Record.
func TestSpansFrom(t *testing.T) {
	if SpansFrom(nil) != nil {
		t.Error("SpansFrom(nil) != nil")
	}
	spans := []telemetry.Span{
		{Name: "warmup", StartRef: 0, EndRef: 2000, Wall: 7 * time.Second},
		{Name: "simulate", StartRef: 2000, EndRef: 22000, Wall: time.Minute},
	}
	got := SpansFrom(spans)
	if len(got) != 2 || got[1].Name != "simulate" || got[1].StartRef != 2000 || got[1].EndRef != 22000 {
		t.Fatalf("SpansFrom: %+v", got)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "wall") || strings.Contains(string(b), "Wall") {
		t.Errorf("span JSON leaks wall-clock: %s", b)
	}
}

// TestAddSpansFlowsIntoTimingSidecar: spans registered for a record
// surface as that record's phases in the wall-clock sidecar.
func TestAddSpansFlowsIntoTimingSidecar(t *testing.T) {
	c := NewCollector()
	c.Add(sampleRecord("Mcf"), time.Millisecond)
	c.AddSpans(KindBench, "Mcf", "THS on, normal compaction", []telemetry.Span{
		{Name: "simulate", StartRef: 2000, EndRef: 22000, Wall: 3 * time.Millisecond},
	})
	out, err := c.TimingJSON("fig18")
	if err != nil {
		t.Fatal(err)
	}
	var tr TimingReport
	if err := json.Unmarshal(out, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || len(tr.Records[0].Phases) != 1 {
		t.Fatalf("phases missing from timing sidecar: %+v", tr.Records)
	}
	p := tr.Records[0].Phases[0]
	if p.Name != "simulate" || p.StartRef != 2000 || p.EndRef != 22000 || p.WallMS != 3 {
		t.Errorf("phase timing %+v", p)
	}
}
