// Package metrics is the simulator's machine-readable observability
// layer. Every experiment driver emits one Record per
// (benchmark × setup) job into a Collector; a Report serializes the
// collected records as stable, key-sorted JSON so downstream tooling
// (CI, regression diffing, bench trajectories) can consume results
// instead of scraping text tables.
//
// Determinism contract: the stable JSON is a pure function of the run's
// options and seed — records are sorted by (kind, bench, setup) before
// serialization, worker count is deliberately excluded from the options
// snapshot, and wall-clock timing lives in a separate, non-golden
// timing report. Emitted JSON never contains Inf or NaN: ratio
// computations go through Ratio, and StableJSON re-checks every float
// field.
package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"colt/internal/telemetry"
)

// Schema identifies the report layout; bump when fields change meaning.
const Schema = "colt-metrics/1"

// Ratio returns num/den, or 0 when den is zero: degenerate runs (zero
// lookups, zero fills, zero cycles) serialize as 0, never Inf/NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// LevelStats is one TLB structure's counters (set-associative L1/L2 or
// the fully-associative superpage TLB).
type LevelStats struct {
	Lookups     uint64 `json:"lookups"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Fills       uint64 `json:"fills"`
	CoalescedIn uint64 `json:"coalesced_in"`
	Evictions   uint64 `json:"evictions"`
	// Merges counts fill-time coalescings with resident entries
	// (superpage TLB only; zero elsewhere).
	Merges uint64 `json:"merges"`
	// HitRate is Hits/Lookups (0 for zero-lookup runs).
	HitRate float64 `json:"hit_rate"`
	// TranslationsPerFill is the structure's reach amplification:
	// (Fills+CoalescedIn)/Fills (0 for zero-fill runs).
	TranslationsPerFill float64 `json:"translations_per_fill"`
}

// Hist is the stable serialization of a telemetry log2 histogram:
// buckets[i] counts values with bit length i (bucket 0 is exactly
// zero), with trailing zero buckets trimmed so small distributions
// stay small on disk. All counts are integers, so a Hist is exactly
// reproducible and golden-safe.
type Hist struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// HistFrom converts a telemetry histogram for embedding in a record.
// Returns nil for a nil or empty histogram so untouched distributions
// serialize as absent, not as zero-noise.
func HistFrom(h *telemetry.Hist) *Hist {
	if h == nil || h.Count == 0 {
		return nil
	}
	last := -1
	for i, b := range h.Buckets {
		if b != 0 {
			last = i
		}
	}
	out := &Hist{Count: h.Count, Sum: h.Sum, Max: h.Max}
	if last >= 0 {
		out.Buckets = append([]uint64(nil), h.Buckets[:last+1]...)
	}
	return out
}

// Span is the golden-safe serialization of one phase span: simulated
// time only (reference indices). Wall-clock phase durations live in
// the timing sidecar (see PhaseTiming), never here.
type Span struct {
	Name     string `json:"name"`
	StartRef uint64 `json:"start_ref"`
	EndRef   uint64 `json:"end_ref"`
}

// SpansFrom converts telemetry spans for embedding in a record,
// dropping the wall-clock component.
func SpansFrom(spans []telemetry.Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]Span, len(spans))
	for i, sp := range spans {
		out[i] = Span{Name: sp.Name, StartRef: sp.StartRef, EndRef: sp.EndRef}
	}
	return out
}

// VariantHists bundles one TLB variant's distribution histograms.
type VariantHists struct {
	// CoalesceLen is the distribution of coalesced-run lengths over
	// fills (1 = uncoalesced).
	CoalesceLen *Hist `json:"coalesce_len,omitempty"`
	// WalkCycles is the distribution of modeled page-walk latencies.
	WalkCycles *Hist `json:"walk_cycles,omitempty"`
	// EntryLife is the distribution of TLB entry lifetimes, in
	// references from fill to eviction.
	EntryLife *Hist `json:"entry_lifetime,omitempty"`
}

// RecordHists bundles the per-job (variant-independent) histograms.
type RecordHists struct {
	// ContigRun is the distribution of maximal contiguity-run lengths
	// from the job's page-table scan (each run counts once).
	ContigRun *Hist `json:"contig_run,omitempty"`
	// WalkDepth is the distribution of page-walk depths in levels over
	// the job's shared page table (4 = full walk, 3 = huge leaf).
	WalkDepth *Hist `json:"walk_depth,omitempty"`
}

// Variant is one TLB configuration's measurements within a record.
type Variant struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`

	// Hierarchy-level counters.
	Accesses       uint64 `json:"accesses"`
	L1Misses       uint64 `json:"l1_misses"`
	L2Misses       uint64 `json:"l2_misses"`
	Walks          uint64 `json:"walks"`
	Faults         uint64 `json:"faults"`
	WalkCycles     uint64 `json:"walk_cycles"`
	CoalescedFills uint64 `json:"coalesced_fills"`

	// Per-structure counters.
	L1  LevelStats `json:"l1"`
	L2  LevelStats `json:"l2"`
	Sup LevelStats `json:"sup"`

	// Derived rates (all zero-guarded).
	L1MPMI     float64 `json:"l1_mpmi"`
	L2MPMI     float64 `json:"l2_mpmi"`
	L1MissRate float64 `json:"l1_miss_rate"`
	L2MissRate float64 `json:"l2_miss_rate"`

	// Performance model.
	MemStallCycles uint64  `json:"mem_stall_cycles"`
	ModelCycles    float64 `json:"model_cycles"`
	// SpeedupPct is the modeled speedup over the record's baseline
	// (first) variant; 0 for the baseline itself.
	SpeedupPct float64 `json:"speedup_pct"`

	// Hists holds the variant's distribution histograms (absent unless
	// the run enabled histograms, keeping pre-histogram goldens
	// byte-identical).
	Hists *VariantHists `json:"hists,omitempty"`
}

// Contiguity is one page-table scan's summary.
type Contiguity struct {
	PageAvg       float64 `json:"page_avg"`
	RunAvg        float64 `json:"run_avg"`
	SuperPages    int     `json:"super_pages"`
	NonSuperPages int     `json:"non_super_pages"`
	MaxRun        int     `json:"max_run"`
	FracOver512   float64 `json:"frac_over_512"`
}

// TimelinePoint is one periodic page-table scan of a timeline record.
type TimelinePoint struct {
	RefsDone    int     `json:"refs_done"`
	PageAvg     float64 `json:"page_avg"`
	RunAvg      float64 `json:"run_avg"`
	MappedPages int     `json:"mapped_pages"`
	Superpages  int     `json:"superpages"`
}

// Record kinds.
const (
	KindBench    = "bench"    // TLB simulation over a reference stream
	KindContig   = "contig"   // single page-table contiguity scan
	KindTimeline = "timeline" // periodic contiguity scans over a run
)

// Record is one (benchmark × setup) job's structured result.
type Record struct {
	Kind  string `json:"kind"`
	Bench string `json:"bench"`
	Setup string `json:"setup"`
	// Seed is the job's derived master seed — a pure function of
	// (run seed, bench, setup), recorded so any single job can be
	// reproduced in isolation.
	Seed         uint64          `json:"seed"`
	Instructions uint64          `json:"instructions,omitempty"`
	Contig       *Contiguity     `json:"contiguity,omitempty"`
	Variants     []Variant       `json:"variants,omitempty"`
	Timeline     []TimelinePoint `json:"timeline,omitempty"`
	// Spans are the job's phase spans in simulated time (absent unless
	// the run enabled histograms/telemetry).
	Spans []Span `json:"spans,omitempty"`
	// Hists holds the job-level histograms (absent unless enabled).
	Hists *RecordHists `json:"hists,omitempty"`
}

// Failure is one (benchmark × setup) job that produced no record:
// every attempt errored, panicked, or timed out. Failures are part of
// the stable report — the error text and attempt count are
// deterministic functions of the run's seed and fault spec — so a
// degraded run is still byte-identical across parallel widths.
type Failure struct {
	Kind  string `json:"kind"`
	Bench string `json:"bench"`
	Setup string `json:"setup"`
	// Attempts is how many times the job ran (1 = no retries).
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	// Injected marks failures caused by the fault-injection plane.
	Injected bool `json:"injected"`
	// TimedOut marks per-job timeout kills. Timeouts are wall-clock
	// events; runs that must stay deterministic use bounds generous
	// enough that this only fires on hangs.
	TimedOut bool `json:"timed_out,omitempty"`
	// Canceled marks jobs skipped or aborted because the run's context
	// was canceled (SIGINT on the CLI, DELETE or drain on the daemon).
	// Like timeouts, cancellation is a wall-clock event and only
	// appears in interrupted runs, never in goldens.
	Canceled bool `json:"canceled,omitempty"`
}

// failureKey orders failures like records: by identity, then content.
func failureKey(f Failure) string {
	return f.Kind + "\x00" + f.Bench + "\x00" + f.Setup + "\x00" + f.Error
}

// Options is the deterministic snapshot of an experiment run's knobs.
// The worker count is deliberately absent: it is a throughput knob,
// never a results knob, and reports must be byte-identical across
// -parallel widths.
type Options struct {
	Frames      int     `json:"frames"`
	Scale       float64 `json:"scale"`
	ColdScale   float64 `json:"cold_scale"`
	ChurnOps    int     `json:"churn_ops"`
	Warmup      int     `json:"warmup"`
	Refs        int     `json:"refs"`
	Seed        uint64  `json:"seed"`
	MidRunChurn bool    `json:"mid_run_churn"`
	// FaultSpec is the canonical fault-injection spec ("" when faults
	// are disabled, which keeps faultless reports byte-identical to
	// pre-fault goldens).
	FaultSpec string `json:"fault_spec,omitempty"`
	// Histograms records that the run embedded telemetry histograms
	// and spans in its records (omitted when off, which keeps
	// histogram-less reports byte-identical to older goldens).
	Histograms bool `json:"histograms,omitempty"`
}

// Report is one experiment's full machine-readable result.
type Report struct {
	Schema     string   `json:"schema"`
	Experiment string   `json:"experiment"`
	Options    Options  `json:"options"`
	Records    []Record `json:"records"`
	// Failures lists jobs that produced no record (absent when every
	// job succeeded, so faultless goldens are unchanged).
	Failures []Failure `json:"failures,omitempty"`
}

// recordKey orders records deterministically regardless of the
// scheduling order jobs completed in.
func recordKey(r Record) string {
	return r.Kind + "\x00" + r.Bench + "\x00" + r.Setup
}

// StableJSON serializes the report as indented JSON with keys sorted at
// every nesting level, suitable for byte-comparison against goldens.
// It fails if any float field is Inf or NaN, naming the field.
func (r *Report) StableJSON() ([]byte, error) {
	if r.Records == nil {
		r.Records = []Record{}
	}
	if err := r.CheckFinite(); err != nil {
		return nil, err
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("metrics: encoding report: %w", err)
	}
	// Round-trip through an untyped tree: encoding/json sorts map keys
	// on marshal, and json.Number preserves numeric literals exactly.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("metrics: normalizing report: %w", err)
	}
	out, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: re-encoding report: %w", err)
	}
	return append(out, '\n'), nil
}

// CheckFinite walks every float in the report and returns an error
// naming the first Inf/NaN field, so a division-guard regression is
// reported precisely instead of as an opaque marshal failure.
func (r *Report) CheckFinite() error {
	for i := range r.Records {
		rec := &r.Records[i]
		at := fmt.Sprintf("records[%s/%s/%s]", rec.Kind, rec.Bench, rec.Setup)
		if c := rec.Contig; c != nil {
			if err := checkFinite(at+".contiguity", map[string]float64{
				"page_avg": c.PageAvg, "run_avg": c.RunAvg, "frac_over_512": c.FracOver512,
			}); err != nil {
				return err
			}
		}
		for j := range rec.Variants {
			v := &rec.Variants[j]
			if err := checkFinite(fmt.Sprintf("%s.variants[%s]", at, v.Name), map[string]float64{
				"l1_mpmi": v.L1MPMI, "l2_mpmi": v.L2MPMI,
				"l1_miss_rate": v.L1MissRate, "l2_miss_rate": v.L2MissRate,
				"model_cycles": v.ModelCycles, "speedup_pct": v.SpeedupPct,
				"l1.hit_rate": v.L1.HitRate, "l2.hit_rate": v.L2.HitRate, "sup.hit_rate": v.Sup.HitRate,
				"l1.translations_per_fill":  v.L1.TranslationsPerFill,
				"l2.translations_per_fill":  v.L2.TranslationsPerFill,
				"sup.translations_per_fill": v.Sup.TranslationsPerFill,
			}); err != nil {
				return err
			}
		}
		for j, p := range rec.Timeline {
			if err := checkFinite(fmt.Sprintf("%s.timeline[%d]", at, j), map[string]float64{
				"page_avg": p.PageAvg, "run_avg": p.RunAvg,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkFinite(at string, fields map[string]float64) error {
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := fields[name]; math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("metrics: %s.%s is %v (non-finite values must not reach JSON output)", at, name, v)
		}
	}
	return nil
}

// timedRecord pairs a record with its job's wall-clock duration, kept
// out of the stable report so goldens stay byte-comparable.
type timedRecord struct {
	rec  Record
	wall time.Duration
}

// Collector gathers records from concurrently running jobs. The zero
// value is not usable; use NewCollector. All methods are safe for
// concurrent use.
type Collector struct {
	mu        sync.Mutex
	recs      []timedRecord
	fails     []Failure
	schedJobs int
	schedWall time.Duration
	sched     []SchedJobTiming
	// phases maps "kind/bench/setup" to the job's wall-clock phase
	// breakdown (timing sidecar only; the golden-safe simulated-time
	// spans live on the Record itself).
	phases map[string][]PhaseTiming
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one job's result and its wall-clock duration.
func (c *Collector) Add(rec Record, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, timedRecord{rec: rec, wall: wall})
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// AddFailure records one job that produced no record.
func (c *Collector) AddFailure(f Failure) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = append(c.fails, f)
}

// Failures returns the collected failures sorted deterministically.
func (c *Collector) Failures() []Failure {
	c.mu.Lock()
	fails := append([]Failure(nil), c.fails...)
	c.mu.Unlock()
	sort.SliceStable(fails, func(i, j int) bool {
		return failureKey(fails[i]) < failureKey(fails[j])
	})
	return fails
}

// ObserveJob implements the scheduler's per-job timing hook
// (sched.Pool.SetObserver): it aggregates dispatch counts and total
// busy time for the timing report, and keeps each dispatch's label so
// the sidecar names jobs as (kind, bench, setup), not opaque indices.
func (c *Collector) ObserveJob(job int, label string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.schedJobs++
	c.schedWall += d
	c.sched = append(c.sched, SchedJobTiming{Job: job, Label: label, WallMS: float64(d) / float64(time.Millisecond)})
}

// AddSpans records one job's wall-clock phase breakdown for the timing
// sidecar, keyed by the job's (kind, bench, setup) identity.
func (c *Collector) AddSpans(kind, bench, setup string, spans []telemetry.Span) {
	if len(spans) == 0 {
		return
	}
	pts := make([]PhaseTiming, len(spans))
	for i, sp := range spans {
		pts[i] = PhaseTiming{
			Name:     sp.Name,
			StartRef: sp.StartRef,
			EndRef:   sp.EndRef,
			WallMS:   float64(sp.Wall) / float64(time.Millisecond),
		}
	}
	key := kind + "/" + bench + "/" + setup
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phases == nil {
		c.phases = make(map[string][]PhaseTiming)
	}
	c.phases[key] = pts
}

// Merge copies every record and timing aggregate from another
// collector (used when a cached evaluation feeds several figures).
func (c *Collector) Merge(from *Collector) {
	if from == nil || from == c {
		return
	}
	from.mu.Lock()
	recs := append([]timedRecord(nil), from.recs...)
	fails := append([]Failure(nil), from.fails...)
	sched := append([]SchedJobTiming(nil), from.sched...)
	jobs, wall := from.schedJobs, from.schedWall
	var phases map[string][]PhaseTiming
	if len(from.phases) > 0 {
		phases = make(map[string][]PhaseTiming, len(from.phases))
		for k, v := range from.phases {
			phases[k] = v
		}
	}
	from.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, recs...)
	c.fails = append(c.fails, fails...)
	c.sched = append(c.sched, sched...)
	c.schedJobs += jobs
	c.schedWall += wall
	for k, v := range phases {
		if c.phases == nil {
			c.phases = make(map[string][]PhaseTiming)
		}
		c.phases[k] = v
	}
}

// sorted returns the records ordered by (kind, bench, setup) with a
// full-content tiebreak, so the output order never depends on job
// completion order.
func (c *Collector) sorted() []timedRecord {
	c.mu.Lock()
	recs := append([]timedRecord(nil), c.recs...)
	c.mu.Unlock()
	sort.SliceStable(recs, func(i, j int) bool {
		ki, kj := recordKey(recs[i].rec), recordKey(recs[j].rec)
		if ki != kj {
			return ki < kj
		}
		bi, _ := json.Marshal(recs[i].rec)
		bj, _ := json.Marshal(recs[j].rec)
		return bytes.Compare(bi, bj) < 0
	})
	return recs
}

// Report assembles the stable report for one experiment.
func (c *Collector) Report(experiment string, opts Options) *Report {
	timed := c.sorted()
	recs := make([]Record, len(timed))
	for i, tr := range timed {
		recs[i] = tr.rec
	}
	return &Report{Schema: Schema, Experiment: experiment, Options: opts, Records: recs, Failures: c.Failures()}
}

// TimingReport is the non-deterministic sidecar: per-job wall-clock
// plus scheduler aggregates. It is written alongside the stable report
// but never golden-diffed.
type TimingReport struct {
	Schema     string      `json:"schema"`
	Experiment string      `json:"experiment"`
	Records    []JobTiming `json:"records"`
	// Sched lists every scheduler dispatch with its label — retries
	// appear once per attempt, so Sched can be longer than Records.
	Sched     []SchedJobTiming `json:"sched,omitempty"`
	SchedJobs int              `json:"sched_jobs"`
	SchedMS   float64          `json:"sched_total_ms"`
	TotalMS   float64          `json:"total_ms"`
}

// JobTiming is one job's wall-clock entry.
type JobTiming struct {
	Kind   string  `json:"kind"`
	Bench  string  `json:"bench"`
	Setup  string  `json:"setup"`
	WallMS float64 `json:"wall_ms"`
	// Phases breaks the job's wall-clock down by telemetry span, with
	// the simulated-time bounds alongside for cross-reference.
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// PhaseTiming is one phase span's wall-clock entry in the sidecar.
type PhaseTiming struct {
	Name     string  `json:"name"`
	StartRef uint64  `json:"start_ref"`
	EndRef   uint64  `json:"end_ref"`
	WallMS   float64 `json:"wall_ms"`
}

// SchedJobTiming is one scheduler dispatch: the job index within its
// fan-out, the job's label (empty when the pool had no labeler), and
// its wall-clock.
type SchedJobTiming struct {
	Job    int     `json:"job"`
	Label  string  `json:"label,omitempty"`
	WallMS float64 `json:"wall_ms"`
}

// TimingJSON serializes the timing sidecar (indented, key-sorted like
// the stable report, but with values that vary run to run).
func (c *Collector) TimingJSON(experiment string) ([]byte, error) {
	timed := c.sorted()
	c.mu.Lock()
	jobs, wall := c.schedJobs, c.schedWall
	sched := append([]SchedJobTiming(nil), c.sched...)
	phases := c.phases
	c.mu.Unlock()
	sort.SliceStable(sched, func(i, j int) bool {
		if sched[i].Label != sched[j].Label {
			return sched[i].Label < sched[j].Label
		}
		return sched[i].Job < sched[j].Job
	})
	tr := TimingReport{
		Schema:     Schema,
		Experiment: experiment,
		Records:    make([]JobTiming, len(timed)),
		Sched:      sched,
		SchedJobs:  jobs,
		SchedMS:    float64(wall) / float64(time.Millisecond),
	}
	var total time.Duration
	for i, t := range timed {
		tr.Records[i] = JobTiming{
			Kind:   t.rec.Kind,
			Bench:  t.rec.Bench,
			Setup:  t.rec.Setup,
			WallMS: float64(t.wall) / float64(time.Millisecond),
			Phases: phases[t.rec.Kind+"/"+t.rec.Bench+"/"+t.rec.Setup],
		}
		total += t.wall
	}
	tr.TotalMS = float64(total) / float64(time.Millisecond)
	out, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: encoding timing report: %w", err)
	}
	return append(out, '\n'), nil
}

// Diff structurally compares two stable-JSON documents and returns one
// human-readable line per differing field (path, got, want). It returns
// nil when the documents are semantically identical. At most maxDiffs
// lines are reported.
func Diff(got, want []byte) []string {
	const maxDiffs = 50
	var a, b any
	da := json.NewDecoder(bytes.NewReader(got))
	da.UseNumber()
	if err := da.Decode(&a); err != nil {
		return []string{fmt.Sprintf("got: not valid JSON: %v", err)}
	}
	db := json.NewDecoder(bytes.NewReader(want))
	db.UseNumber()
	if err := db.Decode(&b); err != nil {
		return []string{fmt.Sprintf("want: not valid JSON: %v", err)}
	}
	var out []string
	diffAny("$", a, b, &out, maxDiffs)
	return out
}

func diffAny(path string, a, b any, out *[]string, limit int) {
	if len(*out) >= limit {
		return
	}
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: got object, want %s", path, typeName(b)))
			return
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			sub := path + "." + k
			va, inA := av[k]
			vb, inB := bv[k]
			switch {
			case !inA:
				*out = append(*out, fmt.Sprintf("%s: missing in run output (golden has %s)", sub, compact(vb)))
			case !inB:
				*out = append(*out, fmt.Sprintf("%s: not in golden (run output has %s)", sub, compact(va)))
			default:
				diffAny(sub, va, vb, out, limit)
			}
			if len(*out) >= limit {
				return
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: got array, want %s", path, typeName(b)))
			return
		}
		if len(av) != len(bv) {
			*out = append(*out, fmt.Sprintf("%s: array length %d, want %d", path, len(av), len(bv)))
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			diffAny(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], out, limit)
			if len(*out) >= limit {
				return
			}
		}
	default:
		if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) || typeName(a) != typeName(b) {
			*out = append(*out, fmt.Sprintf("%s: got %s, want %s", path, compact(a), compact(b)))
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case json.Number:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}

func compact(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	s := string(b)
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return strings.TrimSpace(s)
}
