package metrics

import (
	"strings"
	"testing"
)

func TestCanonicalJSONSortsKeysAtEveryLevel(t *testing.T) {
	got, err := CanonicalJSON(map[string]any{
		"zeta":  1,
		"alpha": map[string]any{"y": 2, "x": []any{map[string]any{"b": 1, "a": 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":{"x":[{"a":2,"b":1}],"y":2},"zeta":1}`
	if string(got) != want {
		t.Fatalf("CanonicalJSON = %s, want %s", got, want)
	}
}

func TestCanonicalJSONIsFieldOrderIndependent(t *testing.T) {
	type ab struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	type ba struct {
		B string `json:"b"`
		A int    `json:"a"`
	}
	x, err := CanonicalJSON(ab{A: 7, B: "s"})
	if err != nil {
		t.Fatal(err)
	}
	y, err := CanonicalJSON(ba{B: "s", A: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Fatalf("identical values canonicalized differently: %s vs %s", x, y)
	}
}

func TestCanonicalJSONPreservesNumericLiterals(t *testing.T) {
	got, err := CanonicalJSON(map[string]any{"seed": uint64(1<<63 + 5), "scale": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"9223372036854775813", "0.05"} {
		if !strings.Contains(string(got), want) {
			t.Errorf("CanonicalJSON = %s, missing literal %s", got, want)
		}
	}
}

func TestHashHexStableAndSpelledLowercase(t *testing.T) {
	h1, err := HashHex(Options{Refs: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashHex(Options{Seed: 3, Refs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("identical options hashed differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 || strings.ToLower(h1) != h1 {
		t.Fatalf("HashHex = %q, want 64 lowercase hex chars", h1)
	}
	h3, err := HashHex(Options{Refs: 101, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different options collided")
	}
}

func TestSum256HexMatchesKnownVector(t *testing.T) {
	// SHA-256("") is the canonical empty-input test vector.
	const want = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := Sum256Hex(nil); got != want {
		t.Fatalf("Sum256Hex(nil) = %s, want %s", got, want)
	}
}

func TestCanonicalJSONRejectsUnmarshalable(t *testing.T) {
	if _, err := CanonicalJSON(func() {}); err == nil {
		t.Fatal("CanonicalJSON of a func succeeded")
	}
}
