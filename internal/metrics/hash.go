package metrics

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalJSON marshals v as compact JSON with object keys sorted at
// every nesting level. Two values that are semantically identical —
// regardless of struct field order, map iteration order, or
// insignificant whitespace in an intermediate representation — always
// produce the same bytes, which is what makes the output safe to hash
// as a content address.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("metrics: canonicalizing: %w", err)
	}
	// Round-trip through an untyped tree: encoding/json sorts map keys
	// on marshal, and json.Number preserves numeric literals exactly
	// (the same normalization StableJSON uses, minus the indentation).
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("metrics: normalizing canonical JSON: %w", err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("metrics: re-encoding canonical JSON: %w", err)
	}
	return out, nil
}

// HashHex returns the lowercase-hex SHA-256 of CanonicalJSON(v): the
// content address of a canonicalized job spec. Identical specs hash
// identically however the submitter spelled them.
func HashHex(v any) (string, error) {
	b, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	return Sum256Hex(b), nil
}

// Sum256Hex returns the lowercase-hex SHA-256 of b, used to verify
// that cached report bytes are served back exactly as computed.
func Sum256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
