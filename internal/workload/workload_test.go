package workload

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/rng"
	"colt/internal/trace"
	"colt/internal/vm"
)

func buildOne(t *testing.T, spec Spec, frames int, thp bool) (*vm.System, *Workload) {
	t.Helper()
	sys := vm.NewSystem(vm.Config{Frames: frames, THP: thp, Compaction: mm.CompactionNormal})
	proc, err := sys.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(spec, proc, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestSpecsTable(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("expected 14 benchmarks, got %d", len(all))
	}
	if all[0].Name != "Mcf" || all[13].Name != "Milc" {
		t.Fatal("Table-1 ordering broken")
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark %s", s.Name)
		}
		seen[s.Name] = true
		if s.HotPages <= 0 || s.ColdPages <= 0 || s.InstPerRef <= 0 {
			t.Fatalf("%s: degenerate spec %+v", s.Name, s)
		}
		if s.ColdFrac < 0 || s.ColdFrac > 1 || s.WriteFrac < 0 || s.WriteFrac > 1 {
			t.Fatalf("%s: fractions out of range", s.Name)
		}
	}
	// Mutating the returned slice must not corrupt the table.
	all[0].Name = "clobbered"
	if All()[0].Name != "Mcf" {
		t.Fatal("All returns aliased table")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Milc")
	if err != nil || s.Name != "Milc" {
		t.Fatalf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(Names()) != 14 {
		t.Fatal("Names length")
	}
}

func TestScale(t *testing.T) {
	s, _ := ByName("Mcf")
	half := s.Scale(0.5)
	if half.HotPages != s.HotPages/2 || half.ColdPages != s.ColdPages/2 {
		t.Fatalf("Scale(0.5) = %+v", half)
	}
	tiny := s.Scale(0.00001)
	if tiny.HotPages < 8 || tiny.AllocChunk > tiny.ColdPages {
		t.Fatalf("tiny scale degenerate: %+v", tiny)
	}
}

func TestBuildAllocatesFootprint(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 64, ColdPages: 512, AllocChunk: 128,
		ColdFrac: 0.3, InstPerRef: 3, BurstMean: 2,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	if len(w.hot) != 64 || len(w.cold) != 512 {
		t.Fatalf("pools: hot=%d cold=%d", len(w.hot), len(w.cold))
	}
	if w.FootprintPages() != 576 {
		t.Fatalf("FootprintPages = %d", w.FootprintPages())
	}
	// All pool pages must resolve.
	for _, vpn := range append(append([]arch.VPN{}, w.hot...), w.cold...) {
		if _, _, ok := w.Proc.Resolve(vpn); !ok {
			t.Fatalf("pool page %d unmapped", vpn)
		}
	}
}

func TestBuildFreeHoles(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 32, ColdPages: 1024, AllocChunk: 256,
		FreeHoles: 0.2, ColdFrac: 0.3, InstPerRef: 3,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	if len(w.cold) >= 1024 {
		t.Fatalf("FreeHoles did not free anything: %d cold pages", len(w.cold))
	}
	if len(w.cold) < 700 {
		t.Fatalf("FreeHoles freed too much: %d", len(w.cold))
	}
}

func TestBuildFileBacked(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 32, ColdPages: 512, AllocChunk: 64,
		FileFrac: 1.0, ColdFrac: 0.5, InstPerRef: 3,
	}
	_, w := buildOne(t, spec, 1<<13, true)
	// Every cold page must carry the file-backed attribute.
	for _, vpn := range w.cold {
		_, attr, _ := w.Proc.Resolve(vpn)
		if !attr.Has(arch.AttrFileBacked) {
			t.Fatalf("cold page %d not file-backed", vpn)
		}
	}
}

func TestBuildOOM(t *testing.T) {
	spec := Spec{Name: "T", HotPages: 64, ColdPages: 1 << 16, AllocChunk: 1024, InstPerRef: 1}
	sys := vm.NewSystem(vm.Config{Frames: 1 << 10, THP: false, Compaction: mm.CompactionNormal})
	proc, _ := sys.NewProcess()
	if _, err := Build(spec, proc, rng.New(1)); err == nil {
		t.Fatal("oversized workload built on tiny machine")
	}
}

func TestNextStreamProperties(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 64, ColdPages: 512, AllocChunk: 128,
		ColdFrac: 0.3, ZipfS: 0.5, BurstMean: 3, InstPerRef: 5, WriteFrac: 0.4,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	writes, insts := 0, 0
	pool := make(map[arch.VPN]bool)
	for _, v := range w.hot {
		pool[v] = true
	}
	for _, v := range w.cold {
		pool[v] = true
	}
	const n = 20000
	for i := 0; i < n; i++ {
		va, wr, gap := w.Next()
		if gap < 1 || gap > 2*5-1 {
			t.Fatalf("gap %d out of range", gap)
		}
		if uint64(va)%8 != 0 {
			t.Fatalf("address %x not 8-byte aligned", va)
		}
		vpn := va.Page()
		// Bursts may step into neighboring mapped pages of the same
		// process, so validate against the page table.
		if _, _, ok := w.Proc.Resolve(vpn); !ok {
			t.Fatalf("reference to unmapped page %d", vpn)
		}
		if wr {
			writes++
		}
		insts += gap
	}
	if writes < n/4 || writes > n*6/10 {
		t.Fatalf("write fraction off: %d/%d", writes, n)
	}
	if insts < 4*n || insts > 6*n {
		t.Fatalf("instruction density off: %d for %d refs", insts, n)
	}
	_ = pool
}

func TestNextSeqScanStreams(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 16, ColdPages: 256, AllocChunk: 64,
		ColdFrac: 1.0, SeqScan: true, BurstMean: 1, InstPerRef: 2,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	first, _, _ := w.Next()
	second, _, _ := w.Next()
	third, _, _ := w.Next()
	// Sequential scan: consecutive cold pages in pool order.
	if second.Page() != first.Page()+1 || third.Page() != second.Page()+1 {
		t.Fatalf("scan not sequential: %d %d %d", first.Page(), second.Page(), third.Page())
	}
}

func TestBuildDeterminism(t *testing.T) {
	spec, _ := ByName("Gobmk")
	spec = spec.Scale(0.2)
	_, w1 := buildOne(t, spec, 1<<13, true)
	_, w2 := buildOne(t, spec, 1<<13, true)
	for i := 0; i < 1000; i++ {
		a1, wr1, g1 := w1.Next()
		a2, wr2, g2 := w2.Next()
		if a1 != a2 || wr1 != wr2 || g1 != g2 {
			t.Fatalf("streams diverged at ref %d", i)
		}
	}
}

func TestAllBenchmarksBuildSmall(t *testing.T) {
	for _, spec := range All() {
		spec := spec.Scale(0.05)
		sys := vm.NewSystem(vm.Config{Frames: 1 << 14, THP: true, Compaction: mm.CompactionNormal})
		proc, _ := sys.NewProcess()
		w, err := Build(spec, proc, rng.New(7))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for i := 0; i < 100; i++ {
			w.Next()
		}
		_ = sys
	}
}

func TestScaleCold(t *testing.T) {
	s, _ := ByName("Mcf")
	c := s.ScaleCold(2)
	if c.ColdPages != s.ColdPages*2 {
		t.Fatalf("ScaleCold cold = %d", c.ColdPages)
	}
	if c.HotPages != s.HotPages {
		t.Fatal("ScaleCold touched the hot set")
	}
	tiny := s.ScaleCold(0.000001)
	if tiny.ColdPages < 8 || tiny.AllocChunk > tiny.ColdPages {
		t.Fatalf("tiny ScaleCold degenerate: %+v", tiny)
	}
}

func TestHotHolesThinHotSet(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 256, ColdPages: 64, AllocChunk: 64,
		HotHoles: 0.25, ColdFrac: 0.1, InstPerRef: 2,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	if len(w.hot) >= 256 {
		t.Fatalf("HotHoles freed nothing: %d hot pages", len(w.hot))
	}
	if len(w.hot) < 150 {
		t.Fatalf("HotHoles freed too much: %d", len(w.hot))
	}
}

func TestCapture(t *testing.T) {
	spec := Spec{
		Name: "T", HotPages: 32, ColdPages: 128, AllocChunk: 64,
		ColdFrac: 0.2, InstPerRef: 3, BurstMean: 2,
	}
	_, w := buildOne(t, spec, 1<<13, false)
	tr := w.Capture(500)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Instructions() < 500 {
		t.Fatalf("Instructions = %d", tr.Instructions())
	}
	// Captured addresses must all be resolvable.
	tr.Replay(func(r trace.Record) bool {
		if _, _, ok := w.Proc.Resolve(r.VAddr.Page()); !ok {
			t.Fatalf("captured unmapped page %d", r.VAddr.Page())
		}
		return true
	})
}

// TestNextBatchMatchesNext pins the batched decoder's contract: each
// NextBatch slot is exactly what a Next call would have returned, at
// every batch size, so batching can never change the reference stream.
func TestNextBatchMatchesNext(t *testing.T) {
	spec, err := ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(0.05)
	for _, size := range []int{1, 3, 8, 64, 256} {
		_, scalar := buildOne(t, spec, 1<<15, false)
		_, batched := buildOne(t, spec, 1<<15, false)
		dst := make([]Ref, size)
		const total = 4096
		for done := 0; done < total; {
			n := batched.NextBatch(dst)
			if n <= 0 || n > size {
				t.Fatalf("size %d: NextBatch returned %d", size, n)
			}
			for i := 0; i < n; i++ {
				va, write, gap := scalar.Next()
				if got, want := dst[i], (Ref{VA: va, Write: write, Gap: int32(gap)}); got != want {
					t.Fatalf("size %d: ref %d diverges: batch %+v scalar %+v",
						size, done+i, got, want)
				}
			}
			done += n
		}
	}
}
