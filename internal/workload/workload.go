// Package workload models the paper's evaluation benchmarks (Table 1:
// SPEC CPU2006 plus BioBench) as parameterized synthetic programs. We
// do not have the benchmark binaries or the authors' Simics traces, so
// each benchmark is substituted by a model exposing the two properties
// CoLT's behaviour depends on: (a) its allocation pattern — how many
// pages each malloc requests, how much of the footprint is file-backed,
// and how much the program fragments its own heap — which determines
// the page-allocation contiguity the OS can produce; and (b) its access
// pattern — hot-set size, skew, spatial burstiness, streaming behaviour
// and instruction density — which determines TLB pressure and whether
// contiguous translations are used in temporal proximity.
package workload

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/rng"
	"colt/internal/trace"
	"colt/internal/vm"
)

// Spec parameterizes one benchmark model. Page counts are calibrated
// for the simulator's default 1 GB machine; use Scale for other sizes.
type Spec struct {
	Name  string
	Suite string

	// Memory layout.
	HotPages   int // frequently-referenced working set, in pages
	ColdPages  int // bulk data referenced rarely
	AllocChunk int // pages per malloc for bulk data: large up-front
	// allocations (Mcf's hash tables) give the buddy allocator big
	// requests and hence long contiguity runs; small chunks model
	// incremental allocators.
	FileFrac  float64 // fraction of bulk chunks that are file-backed
	FreeHoles float64 // fraction of bulk pages freed after setup
	// (self-inflicted heap fragmentation)
	HotHoles float64 // fraction of hot pages freed after setup (hot-
	// structure churn, limiting how coalescible the hot tail is)

	// Access behaviour.
	ColdFrac   float64 // probability a reference targets the cold set
	ZipfS      float64 // hot-set skew (0 = uniform)
	BurstMean  int     // mean sequential pages touched per burst
	SeqScan    bool    // cold refs stream sequentially (Bzip2, Milc)
	InstPerRef int     // mean instructions per memory reference
	WriteFrac  float64
}

// Scale returns a copy with the memory layout scaled by f (access
// behaviour is size-independent). Used to shrink footprints for small
// test machines.
func (s Spec) Scale(f float64) Spec {
	s.HotPages = scalePages(s.HotPages, f)
	s.ColdPages = scalePages(s.ColdPages, f)
	if s.AllocChunk > s.ColdPages {
		s.AllocChunk = s.ColdPages
	}
	return s
}

// ScaleCold returns a copy with only the bulk (cold) data scaled: used
// to match the paper's footprint-to-memory ratio without inflating the
// TLB-pressure-determining hot set.
func (s Spec) ScaleCold(f float64) Spec {
	s.ColdPages = scalePages(s.ColdPages, f)
	if s.AllocChunk > s.ColdPages {
		s.AllocChunk = s.ColdPages
	}
	return s
}

func scalePages(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 8 {
		v = 8
	}
	return v
}

// Workload is a built benchmark instance: its regions are allocated in
// proc and Next generates its reference stream.
type Workload struct {
	Spec Spec
	Proc *vm.Process

	hot  []arch.VPN
	cold []arch.VPN
	r    *rng.RNG

	burstLeft int
	cur       arch.VPN
	scanPos   int
}

// Build allocates the benchmark's memory in proc following the spec's
// allocation pattern and returns a ready workload. The allocation
// history — chunk sizes, interleaving, post-setup frees — is exactly
// what the contiguity characterization scans.
func Build(spec Spec, proc *vm.Process, r *rng.RNG) (*Workload, error) {
	w := &Workload{Spec: spec, Proc: proc, r: r}

	// Interleave hot-set allocations between bulk chunks so the hot
	// pages are not one artificial mega-run.
	// Bulk (cold) data loads first; the hot structures (hash tables,
	// indexes) are built afterwards over it, in a few larger arenas.
	// Arenas of 2 MB and above are THP candidates, so on a THS-on
	// kernel part of the hot set may be superpage-backed — the Table-1
	// effect — while fragmentation keeps the superpage count small
	// enough for the paper's 8-entry coalesced FA TLB.
	hotChunk := spec.HotPages / 2
	if hotChunk < 64 {
		hotChunk = 64
	}
	if hotChunk > 1024 {
		hotChunk = 1024
	}
	var coldRegions, hotRegions []*vm.Region
	for coldLeft := spec.ColdPages; coldLeft > 0; {
		n := spec.AllocChunk
		if n <= 0 {
			n = 64
		}
		if n > coldLeft {
			n = coldLeft
		}
		var reg *vm.Region
		var err error
		if r.Bool(spec.FileFrac) {
			reg, err = proc.MapFile(n)
		} else {
			reg, err = proc.Malloc(n)
		}
		if err != nil {
			return nil, fmt.Errorf("workload %s: bulk alloc of %d pages: %w", spec.Name, n, err)
		}
		coldRegions = append(coldRegions, reg)
		coldLeft -= n
	}
	for hotLeft := spec.HotPages; hotLeft > 0; {
		n := hotChunk
		if n > hotLeft {
			n = hotLeft
		}
		reg, err := proc.Malloc(n)
		if err != nil {
			return nil, fmt.Errorf("workload %s: hot alloc of %d pages: %w", spec.Name, n, err)
		}
		hotRegions = append(hotRegions, reg)
		hotLeft -= n
	}

	// Self-inflicted fragmentation: free scattered holes (models phase
	// deallocation in the bulk data and churn in the hot structures).
	poke := func(regions []*vm.Region, frac float64) error {
		if frac <= 0 {
			return nil
		}
		for _, reg := range regions {
			holes := int(float64(reg.Pages) * frac)
			for h := 0; h < holes; h++ {
				off := r.Intn(reg.Pages)
				if err := proc.FreePages(reg, off, 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := poke(coldRegions, spec.FreeHoles); err != nil {
		return nil, err
	}
	if err := poke(hotRegions, spec.HotHoles); err != nil {
		return nil, err
	}

	w.hot = collectPages(hotRegions)
	w.cold = collectPages(coldRegions)
	if len(w.hot) == 0 {
		return nil, fmt.Errorf("workload %s: empty hot set", spec.Name)
	}
	if len(w.cold) == 0 {
		// Degenerate but legal: treat the hot set as the cold set too.
		w.cold = w.hot
	}
	return w, nil
}

func collectPages(regions []*vm.Region) []arch.VPN {
	var pages []arch.VPN
	for _, reg := range regions {
		for vpn := reg.Base; vpn < reg.End(); vpn++ {
			if reg.Mapped(vpn) {
				pages = append(pages, vpn)
			}
		}
	}
	return pages
}

// Next produces the next memory reference: a full virtual address, the
// write flag, and the instruction gap since the previous reference.
func (w *Workload) Next() (arch.VAddr, bool, int) {
	spec := &w.Spec
	if w.burstLeft > 0 {
		// Continue the spatial burst onto the next mapped page.
		w.burstLeft--
		next := w.cur + 1
		if _, _, ok := w.Proc.Resolve(next); ok {
			w.cur = next
			return w.addr(next), w.r.Bool(spec.WriteFrac), w.gap()
		}
		w.burstLeft = 0
	}
	var vpn arch.VPN
	if w.r.Bool(spec.ColdFrac) {
		if spec.SeqScan {
			vpn = w.cold[w.scanPos]
			w.scanPos = (w.scanPos + 1) % len(w.cold)
		} else {
			vpn = w.cold[w.r.Intn(len(w.cold))]
		}
	} else {
		vpn = w.hot[w.r.Zipf(len(w.hot), spec.ZipfS)]
	}
	if spec.BurstMean > 1 {
		w.burstLeft = w.r.IntRange(0, 2*(spec.BurstMean-1))
	}
	w.cur = vpn
	return w.addr(vpn), w.r.Bool(spec.WriteFrac), w.gap()
}

// Ref is one decoded memory reference, the unit of the batched hot
// path: a full virtual address, the write flag, and the instruction gap
// since the previous reference.
type Ref struct {
	VA    arch.VAddr
	Write bool
	Gap   int32
}

// NextBatch decodes up to len(dst) references into dst and returns how
// many were produced. Each slot is exactly what a Next call would have
// returned, so batch size can never change the stream.
//
// Decoding consults process residency (burst continuation only follows
// onto mapped pages), and servicing a non-resident reference (swap-in)
// mutates residency. So a batch stops immediately after producing a
// reference to a non-resident page: the caller must service that fault
// before decoding further, exactly as the scalar loop would. All
// references before the last are guaranteed resident at return.
func (w *Workload) NextBatch(dst []Ref) int {
	for i := range dst {
		va, write, gap := w.Next()
		dst[i] = Ref{VA: va, Write: write, Gap: int32(gap)}
		if _, _, ok := w.Proc.Resolve(va.Page()); !ok {
			return i + 1
		}
	}
	return len(dst)
}

// addr picks an 8-byte-aligned offset within the page so the cache
// model sees realistic line behaviour.
func (w *Workload) addr(vpn arch.VPN) arch.VAddr {
	off := uint64(w.r.Intn(arch.PageSize/8)) * 8
	return vpn.Addr() + arch.VAddr(off)
}

func (w *Workload) gap() int {
	m := w.Spec.InstPerRef
	if m <= 1 {
		return 1
	}
	return w.r.IntRange(1, 2*m-1)
}

// FootprintPages returns the number of currently-mapped workload pages.
func (w *Workload) FootprintPages() int { return len(w.hot) + len(w.cold) }

// Capture records the next n references as a trace, advancing the
// workload's stream (the library form of cmd/tracegen).
func (w *Workload) Capture(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		va, write, gap := w.Next()
		tr.Append(trace.Record{VAddr: va, Write: write, InstGap: uint32(gap)})
	}
	return tr
}
