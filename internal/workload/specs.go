package workload

import "fmt"

// The benchmark models below correspond to Table 1 of the paper. Two
// groups of parameters matter. The memory side (HotPages, ColdPages,
// AllocChunk, FileFrac, FreeHoles) shapes page-allocation contiguity:
// bulk chunk size models up-front hash-table mallocs (Mcf) vs
// incremental allocators (Povray), and FreeHoles models heap churn that
// splits transparent hugepages, leaving the residual base-page runs the
// paper attributes to THS. The access side models where TLB misses come
// from: a mostly-TLB-resident hot core (zipf-skewed) plus miss-
// generating excursions — sequential scans (SeqScan) or random jumps —
// whose spatial burstiness (BurstMean) determines how much of each
// contiguity run is used in temporal proximity, the property CoLT needs
// (Tigr has high contiguity but single-page random access, hence the
// paper's lowest CoLT gains).
var specs = []Spec{
	{
		Name: "Mcf", Suite: "Spec",
		HotPages: 500, ColdPages: 40000, AllocChunk: 4096,
		FreeHoles: 0.008, HotHoles: 0.03,
		ColdFrac: 0.50, ZipfS: 1.00, BurstMean: 3,
		InstPerRef: 6, WriteFrac: 0.30,
	},
	{
		Name: "Tigr", Suite: "BioB.",
		HotPages: 4000, ColdPages: 24000, AllocChunk: 2048,
		FreeHoles: 0.005,
		ColdFrac:  0.00, ZipfS: 0.60, BurstMean: 1,
		InstPerRef: 15, WriteFrac: 0.10,
	},
	{
		Name: "Mummer", Suite: "BioB.",
		HotPages: 1200, ColdPages: 22000, AllocChunk: 1024,
		FreeHoles: 0.02, HotHoles: 0.05,
		ColdFrac: 0.30, ZipfS: 1.00, BurstMean: 2, SeqScan: true,
		InstPerRef: 12, WriteFrac: 0.15,
	},
	{
		Name: "CactusADM", Suite: "Spec",
		HotPages: 1000, ColdPages: 30000, AllocChunk: 4096,
		FreeHoles: 0.002, HotHoles: 0.06,
		ColdFrac: 0.22, ZipfS: 1.00, BurstMean: 5, SeqScan: true,
		InstPerRef: 15, WriteFrac: 0.40,
	},
	{
		Name: "Astar", Suite: "Spec",
		HotPages: 500, ColdPages: 12000, AllocChunk: 512,
		FreeHoles: 0.03,
		ColdFrac:  0.08, ZipfS: 1.00, BurstMean: 3,
		InstPerRef: 12, WriteFrac: 0.25,
	},
	{
		Name: "Omnetpp", Suite: "Spec",
		HotPages: 1400, ColdPages: 18000, AllocChunk: 512,
		FreeHoles: 0.004, HotHoles: 0.04,
		ColdFrac: 0.12, ZipfS: 1.00, BurstMean: 2,
		InstPerRef: 15, WriteFrac: 0.30,
	},
	{
		Name: "Xalancbmk", Suite: "Spec",
		HotPages: 1200, ColdPages: 9000, AllocChunk: 256,
		FreeHoles: 0.04, HotHoles: 0.06,
		ColdFrac: 0.18, ZipfS: 0.95, BurstMean: 2, SeqScan: true,
		InstPerRef: 6, WriteFrac: 0.20,
	},
	{
		Name: "Povray", Suite: "Spec",
		HotPages: 900, ColdPages: 2500, AllocChunk: 16,
		FreeHoles: 0.1, HotHoles: 0.12,
		ColdFrac: 0.01, ZipfS: 0.90, BurstMean: 2,
		InstPerRef: 9, WriteFrac: 0.15,
	},
	{
		Name: "GemsFDTD", Suite: "Spec",
		HotPages: 1000, ColdPages: 25000, AllocChunk: 2048,
		FreeHoles: 0.005, HotHoles: 0.08,
		ColdFrac: 0.08, ZipfS: 1.00, BurstMean: 5, SeqScan: true,
		InstPerRef: 18, WriteFrac: 0.35,
	},
	{
		Name: "Gobmk", Suite: "Spec",
		HotPages: 800, ColdPages: 2200, AllocChunk: 64,
		FreeHoles: 0.03, HotHoles: 0.12,
		ColdFrac: 0.01, ZipfS: 0.90, BurstMean: 2,
		InstPerRef: 18, WriteFrac: 0.20,
	},
	{
		Name: "FastaProt", Suite: "BioB.",
		HotPages: 700, ColdPages: 1600, AllocChunk: 64,
		FreeHoles: 0.05, HotHoles: 0.12,
		ColdFrac: 0.01, ZipfS: 1.00, BurstMean: 2, SeqScan: true,
		InstPerRef: 18, WriteFrac: 0.10,
	},
	{
		Name: "Sjeng", Suite: "Spec",
		HotPages: 1100, ColdPages: 14000, AllocChunk: 2048,
		FreeHoles: 0.0005, HotHoles: 0.1,
		ColdFrac: 0.004, ZipfS: 1.15, BurstMean: 2,
		InstPerRef: 12, WriteFrac: 0.20,
	},
	{
		Name: "Bzip2", Suite: "Spec",
		HotPages: 160, ColdPages: 12000, AllocChunk: 1024,
		FreeHoles: 0.0005, HotHoles: 0.04,
		ColdFrac: 0.45, ZipfS: 0.60, BurstMean: 5, SeqScan: true,
		InstPerRef: 12, WriteFrac: 0.35,
	},
	{
		Name: "Milc", Suite: "Spec",
		HotPages: 120, ColdPages: 28000, AllocChunk: 8192,
		FreeHoles: 0.0005, HotHoles: 0.02,
		ColdFrac: 0.50, ZipfS: 0.60, BurstMean: 8, SeqScan: true,
		InstPerRef: 12, WriteFrac: 0.30,
	},
}

// All returns the 14 benchmark specs in the paper's Table-1 order
// (highest to lowest THS-on L2 MPMI).
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// Names returns the benchmark names in Table-1 order.
func Names() []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the spec for a benchmark (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, Names())
}
