package pagetable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"colt/internal/arch"
)

// counterFrames hands out sequential frame numbers and tracks the live
// set, so tests can detect leaks.
type counterFrames struct {
	next arch.PFN
	live map[arch.PFN]bool
	fail bool
}

func newCounterFrames() *counterFrames {
	return &counterFrames{next: 1000, live: make(map[arch.PFN]bool)}
}

func (c *counterFrames) AllocFrame() (arch.PFN, error) {
	if c.fail {
		return 0, errors.New("injected OOM")
	}
	pfn := c.next
	c.next++
	c.live[pfn] = true
	return pfn, nil
}

func (c *counterFrames) FreeFrame(pfn arch.PFN) {
	if !c.live[pfn] {
		panic("free of unallocated table frame")
	}
	delete(c.live, pfn)
}

func basePTE(pfn arch.PFN) arch.PTE {
	return arch.PTE{PFN: pfn, Attr: arch.AttrPresent | arch.AttrWritable | arch.AttrUser}
}

func hugePTE(pfn arch.PFN) arch.PTE {
	return arch.PTE{PFN: pfn, Attr: arch.AttrPresent | arch.AttrWritable | arch.AttrUser, Huge: true}
}

func newTable(t *testing.T) (*Table, *counterFrames) {
	t.Helper()
	fs := newCounterFrames()
	tbl, err := New(fs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, fs
}

func TestMapLookupUnmap(t *testing.T) {
	tbl, _ := newTable(t)
	vpn := arch.VPN(0x12345)
	if _, ok := tbl.Lookup(vpn); ok {
		t.Fatal("lookup on empty table succeeded")
	}
	if err := tbl.Map(vpn, basePTE(77)); err != nil {
		t.Fatal(err)
	}
	pte, ok := tbl.Lookup(vpn)
	if !ok || pte.PFN != 77 {
		t.Fatalf("Lookup = %v, %v", pte, ok)
	}
	if err := tbl.Map(vpn, basePTE(88)); err != ErrAlreadyMapped {
		t.Fatalf("remap err = %v", err)
	}
	if tbl.MappedBase() != 1 || tbl.MappedPages() != 1 {
		t.Fatal("counts wrong")
	}
	if err := tbl.Unmap(vpn); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(vpn); ok {
		t.Fatal("lookup after unmap succeeded")
	}
	if err := tbl.Unmap(vpn); err != ErrNotMapped {
		t.Fatalf("double unmap err = %v", err)
	}
}

func TestMapRejectsBadPTEs(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(1, arch.PTE{PFN: 5}); err == nil {
		t.Fatal("non-present PTE accepted")
	}
	if err := tbl.Map(1, hugePTE(512)); err == nil {
		t.Fatal("huge PTE accepted by Map")
	}
	if err := tbl.MapHuge(512, basePTE(5)); err == nil {
		t.Fatal("base PTE accepted by MapHuge")
	}
	if err := tbl.MapHuge(100, hugePTE(512)); err == nil {
		t.Fatal("unaligned VPN accepted by MapHuge")
	}
	if err := tbl.MapHuge(512, hugePTE(100)); err == nil {
		t.Fatal("unaligned PFN accepted by MapHuge")
	}
}

func TestHugeMapping(t *testing.T) {
	tbl, _ := newTable(t)
	base := arch.VPN(2 * arch.PagesPerHuge)
	if err := tbl.MapHuge(base, hugePTE(1024)); err != nil {
		t.Fatal(err)
	}
	// Any VPN inside the block resolves through the huge PTE.
	pte, ok := tbl.Lookup(base + 37)
	if !ok || !pte.Huge || pte.PFN != 1024 {
		t.Fatalf("Lookup inside huge = %v, %v", pte, ok)
	}
	pfn, _, ok := tbl.Resolve(base + 37)
	if !ok || pfn != 1024+37 {
		t.Fatalf("Resolve = %d, %v", pfn, ok)
	}
	// Base mapping inside the huge range must be rejected.
	if err := tbl.Map(base+5, basePTE(9)); err != ErrHugeConflict {
		t.Fatalf("Map inside huge err = %v", err)
	}
	// A second huge mapping on the same slot conflicts.
	if err := tbl.MapHuge(base, hugePTE(2048)); err != ErrHugeConflict {
		t.Fatalf("double MapHuge err = %v", err)
	}
	if tbl.MappedHuge() != 1 || tbl.MappedPages() != arch.PagesPerHuge {
		t.Fatal("huge counts wrong")
	}
	if err := tbl.UnmapHuge(base); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(base); ok {
		t.Fatal("lookup after UnmapHuge succeeded")
	}
}

func TestHugeConflictsWithExistingPT(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(5, basePTE(9)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapHuge(0, hugePTE(512)); err != ErrHugeConflict {
		t.Fatalf("MapHuge over existing PT err = %v", err)
	}
}

func TestWalkAddresses(t *testing.T) {
	tbl, _ := newTable(t)
	vpn := arch.VPN(0x0_001_002_003) // distinct indices at each level
	if err := tbl.Map(vpn, basePTE(55)); err != nil {
		t.Fatal(err)
	}
	res := tbl.Walk(vpn)
	if !res.Found || res.PTE.PFN != 55 {
		t.Fatalf("walk = %+v", res)
	}
	if res.Depth != Levels {
		t.Fatalf("walk touched %d levels", res.Depth)
	}
	// Each level's entry address must be 8-byte aligned and inside a
	// distinct frame.
	seen := map[uint64]bool{}
	for _, pa := range res.Touched() {
		if uint64(pa)%arch.PTESize != 0 {
			t.Fatalf("entry address %d misaligned", pa)
		}
		frame := uint64(pa) >> arch.PageShift
		if seen[frame] {
			t.Fatalf("two walk levels in the same frame")
		}
		seen[frame] = true
	}
	// Unmapped VPN in a different top-level subtree: short walk.
	res2 := tbl.Walk(vpn + arch.VPN(1)<<27)
	if res2.Found || res2.Depth != 1 {
		t.Fatalf("hole walk = %+v", res2)
	}
	// Huge mapping: 3-level walk.
	if err := tbl.MapHuge(arch.PagesPerHuge*9, hugePTE(4096)); err != nil {
		t.Fatal(err)
	}
	res3 := tbl.Walk(arch.PagesPerHuge*9 + 3)
	if !res3.Found || !res3.PTE.Huge || res3.Depth != 3 {
		t.Fatalf("huge walk = %+v", res3)
	}
}

func TestLine(t *testing.T) {
	tbl, _ := newTable(t)
	// Map a contiguous run of 6 translations starting mid-line.
	for i := 0; i < 6; i++ {
		if err := tbl.Map(arch.VPN(10+i), basePTE(arch.PFN(200+i))); err != nil {
			t.Fatal(err)
		}
	}
	group, lineAddr, ok := tbl.Line(12)
	if !ok {
		t.Fatal("Line failed")
	}
	if group[0].VPN != 8 || group[7].VPN != 15 {
		t.Fatalf("group VPNs: %d..%d", group[0].VPN, group[7].VPN)
	}
	if uint64(lineAddr)%arch.CacheLineSize != 0 {
		t.Fatalf("line address %d not line-aligned", lineAddr)
	}
	// Slots 8,9 absent; 10..15 present.
	if group[0].PTE.Present() || group[1].PTE.Present() {
		t.Fatal("absent slots reported present")
	}
	for i := 2; i < 8; i++ {
		if !group[i].PTE.Present() || group[i].PTE.PFN != arch.PFN(200+i-2) {
			t.Fatalf("slot %d = %v", i, group[i].PTE)
		}
	}
	// Huge and unmapped pages have no coalescible line.
	if err := tbl.MapHuge(arch.PagesPerHuge*4, hugePTE(2048)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tbl.Line(arch.PagesPerHuge * 4); ok {
		t.Fatal("Line succeeded on huge mapping")
	}
	if _, _, ok := tbl.Line(99999); ok {
		t.Fatal("Line succeeded on hole")
	}
}

func TestRemap(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Remap(4, 9); err != ErrNotMapped {
		t.Fatalf("Remap hole err = %v", err)
	}
	if err := tbl.Map(4, basePTE(70)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remap(4, 71); err != nil {
		t.Fatal(err)
	}
	pfn, _, _ := tbl.Resolve(4)
	if pfn != 71 {
		t.Fatalf("Resolve after Remap = %d", pfn)
	}
}

func TestSplitHuge(t *testing.T) {
	tbl, fs := newTable(t)
	base := arch.VPN(arch.PagesPerHuge * 3)
	if err := tbl.SplitHuge(base); err != ErrNotMapped {
		t.Fatalf("split hole err = %v", err)
	}
	if err := tbl.MapHuge(base, hugePTE(5120)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SplitHuge(base); err != nil {
		t.Fatal(err)
	}
	if tbl.MappedHuge() != 0 || tbl.MappedBase() != arch.PagesPerHuge {
		t.Fatal("split counts wrong")
	}
	// Every page resolves to the same frame as before the split.
	for i := 0; i < arch.PagesPerHuge; i++ {
		pfn, _, ok := tbl.Resolve(base + arch.VPN(i))
		if !ok || pfn != 5120+arch.PFN(i) {
			t.Fatalf("post-split Resolve(%d) = %d, %v", i, pfn, ok)
		}
		pte, _ := tbl.Lookup(base + arch.VPN(i))
		if pte.Huge {
			t.Fatal("still huge after split")
		}
	}
	// Split pages are now individually unmappable.
	if err := tbl.Unmap(base + 100); err != nil {
		t.Fatal(err)
	}
	_ = fs
}

func TestPruneFreesTables(t *testing.T) {
	tbl, fs := newTable(t)
	before := len(fs.live)
	if err := tbl.Map(12345, basePTE(5)); err != nil {
		t.Fatal(err)
	}
	if len(fs.live) != before+3 { // three new levels under the root
		t.Fatalf("expected 3 new table frames, got %d", len(fs.live)-before)
	}
	if err := tbl.Unmap(12345); err != nil {
		t.Fatal(err)
	}
	if len(fs.live) != before {
		t.Fatalf("prune leaked %d frames", len(fs.live)-before)
	}
}

func TestMapOOMPropagates(t *testing.T) {
	tbl, fs := newTable(t)
	fs.fail = true
	if err := tbl.Map(777, basePTE(5)); err == nil {
		t.Fatal("Map succeeded under table-frame OOM")
	}
}

func TestEachOrderAndHuge(t *testing.T) {
	tbl, _ := newTable(t)
	vpns := []arch.VPN{900000, 5, 70000}
	for i, v := range vpns {
		if err := tbl.Map(v, basePTE(arch.PFN(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MapHuge(arch.PagesPerHuge*2, hugePTE(1024)); err != nil {
		t.Fatal(err)
	}
	var got []arch.VPN
	var hugeSeen int
	tbl.Each(func(tr arch.Translation) bool {
		got = append(got, tr.VPN)
		if tr.PTE.Huge {
			hugeSeen++
		}
		return true
	})
	want := []arch.VPN{5, arch.PagesPerHuge * 2, 70000, 900000}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
	if hugeSeen != 1 {
		t.Fatalf("hugeSeen = %d", hugeSeen)
	}
	// Early stop.
	count := 0
	tbl.Each(func(arch.Translation) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestReleaseFreesEverything(t *testing.T) {
	tbl, fs := newTable(t)
	for i := 0; i < 100; i++ {
		if err := tbl.Map(arch.VPN(i*1000), basePTE(arch.PFN(i))); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Release()
	if len(fs.live) != 0 {
		t.Fatalf("Release leaked %d table frames", len(fs.live))
	}
}

// TestPropertyMapResolve checks get-after-set over random sparse VPN
// sets against a reference map.
func TestPropertyMapResolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _ := newTable(t)
		ref := make(map[arch.VPN]arch.PFN)
		for i := 0; i < 500; i++ {
			vpn := arch.VPN(rng.Uint64() & ((1 << 36) - 1))
			pfn := arch.PFN(rng.Uint64() & ((1 << 30) - 1))
			if _, dup := ref[vpn]; dup {
				continue
			}
			if err := tbl.Map(vpn, basePTE(pfn)); err != nil {
				return false
			}
			ref[vpn] = pfn
		}
		for vpn, pfn := range ref {
			got, _, ok := tbl.Resolve(vpn)
			if !ok || got != pfn {
				return false
			}
		}
		if tbl.MappedBase() != len(ref) {
			return false
		}
		// Unmap half, verify the rest intact.
		i := 0
		for vpn := range ref {
			if i%2 == 0 {
				if err := tbl.Unmap(vpn); err != nil {
					return false
				}
				delete(ref, vpn)
			}
			i++
		}
		for vpn, pfn := range ref {
			got, _, ok := tbl.Resolve(vpn)
			if !ok || got != pfn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestReserve(t *testing.T) {
	tbl, fs := newTable(t)
	if err := tbl.Reserve(12345); err != nil {
		t.Fatal(err)
	}
	n := len(fs.live)
	// Map after Reserve must not allocate more table frames.
	if err := tbl.Map(12345, basePTE(7)); err != nil {
		t.Fatal(err)
	}
	if len(fs.live) != n {
		t.Fatalf("Map after Reserve allocated %d frames", len(fs.live)-n)
	}
	// Reserve under a huge mapping is rejected.
	if err := tbl.MapHuge(arch.PagesPerHuge*5, hugePTE(1024)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Reserve(arch.PagesPerHuge*5 + 3); err != ErrHugeConflict {
		t.Fatalf("Reserve under huge = %v", err)
	}
	// Reserve OOM propagates.
	fs.fail = true
	if err := tbl.Reserve(1 << 30); err == nil {
		t.Fatal("Reserve succeeded under OOM")
	}
}

// TestPropertyWalkAgreesWithLookup: for random mapped and unmapped
// VPNs, Walk and Lookup must agree on presence and translation, and
// Walk's entry addresses must be deterministic.
func TestPropertyWalkAgreesWithLookup(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _ := newTable(t)
		var mapped []arch.VPN
		for i := 0; i < 200; i++ {
			vpn := arch.VPN(rng.Uint64() & ((1 << 36) - 1))
			if err := tbl.Map(vpn, basePTE(arch.PFN(i+1))); err == nil {
				mapped = append(mapped, vpn)
			}
		}
		for i := 0; i < 100; i++ {
			var vpn arch.VPN
			if i%2 == 0 && len(mapped) > 0 {
				vpn = mapped[rng.Intn(len(mapped))]
			} else {
				vpn = arch.VPN(rng.Uint64() & ((1 << 36) - 1))
			}
			w1 := tbl.Walk(vpn)
			pte, ok := tbl.Lookup(vpn)
			if w1.Found != ok {
				return false
			}
			if ok && w1.PTE != pte {
				return false
			}
			w2 := tbl.Walk(vpn)
			if w1.Depth != w2.Depth {
				return false
			}
			for j := 0; j < w1.Depth; j++ {
				if w1.Levels[j] != w2.Levels[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLineAgreesWithLookup: every slot of a fetched line must
// match Lookup for its VPN.
func TestPropertyLineAgreesWithLookup(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _ := newTable(t)
		base := arch.VPN(rng.Intn(1 << 20))
		for i := 0; i < 64; i++ {
			if rng.Intn(3) > 0 {
				_ = tbl.Map(base+arch.VPN(i), basePTE(arch.PFN(rng.Intn(1<<20))))
			}
		}
		for probe := base; probe < base+64; probe++ {
			line, _, ok := tbl.Line(probe)
			pte, mapped := tbl.Lookup(probe)
			if ok != mapped {
				return false
			}
			if !ok {
				continue
			}
			idx := int(probe - line[0].VPN)
			if idx < 0 || idx >= len(line) || line[idx].VPN != probe || line[idx].PTE != pte {
				return false
			}
			// Every other present slot must agree with Lookup too.
			for _, tr := range line {
				got, has := tbl.Lookup(tr.VPN)
				if tr.PTE.Present() != has {
					return false
				}
				if has && got != tr.PTE {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
