package pagetable

import (
	"strings"
	"testing"

	"colt/internal/arch"
)

// auditWorld builds a table with base and huge mappings and asserts it
// starts clean.
func auditWorld(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(newCounterFrames())
	if err != nil {
		t.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	for i := 0; i < 20; i++ {
		if err := tbl.Map(arch.VPN(i), arch.PTE{PFN: arch.PFN(1<<22 + i), Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MapHuge(arch.VPN(2*arch.PagesPerHuge), arch.PTE{PFN: 4 * arch.PagesPerHuge, Attr: attr, Huge: true}); err != nil {
		t.Fatal(err)
	}
	if issues := tbl.Audit(); len(issues) != 0 {
		t.Fatalf("fresh table audit reported %v", issues)
	}
	return tbl
}

// leafFor walks to the leaf node holding vpn's PTE.
func leafFor(t *testing.T, tbl *Table, vpn arch.VPN) *node {
	t.Helper()
	nodes := tbl.path(vpn)
	if len(nodes) != Levels {
		t.Fatalf("vpn %d not mapped to leaf depth", vpn)
	}
	return nodes[Levels-1]
}

func wantIssue(t *testing.T, issues []string, substr string) {
	t.Helper()
	for _, s := range issues {
		if strings.Contains(s, substr) {
			return
		}
	}
	t.Fatalf("audit %v lacks an issue containing %q", issues, substr)
}

func TestAuditCatchesLiveCountDrift(t *testing.T) {
	tbl := auditWorld(t)
	leafFor(t, tbl, 3).live += 2
	wantIssue(t, tbl.Audit(), "live count")
}

func TestAuditCatchesCounterDrift(t *testing.T) {
	tbl := auditWorld(t)
	tbl.mappedBase--
	wantIssue(t, tbl.Audit(), "mappedBase")
	tbl.mappedBase++
	tbl.mappedHuge++
	wantIssue(t, tbl.Audit(), "mappedHuge")
}

func TestAuditCatchesHugeFlagMisuse(t *testing.T) {
	tbl := auditWorld(t)
	leaf := leafFor(t, tbl, 5)
	leaf.ptes[levelIndex(5, LeafLevel)].Huge = true
	wantIssue(t, tbl.Audit(), "huge flag on a 4KB PTE")
}

func TestAuditCatchesMisalignedHugePTE(t *testing.T) {
	tbl := auditWorld(t)
	vpn := arch.VPN(2 * arch.PagesPerHuge)
	nodes := tbl.path(vpn)
	if len(nodes) != HugeLevel+1 {
		t.Fatalf("huge vpn %d not mapped at PMD depth", vpn)
	}
	nodes[HugeLevel].ptes[levelIndex(vpn, HugeLevel)].PFN++
	wantIssue(t, tbl.Audit(), "not 2MB-aligned")
}
