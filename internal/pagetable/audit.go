package pagetable

import (
	"fmt"

	"colt/internal/arch"
)

// Audit walks the whole radix tree and verifies its structural
// invariants, returning a description of every inconsistency found
// (empty means healthy). It is a checkpoint diagnostic for the
// invariant auditors, not a hot-path check:
//
//   - a slot holds an interior child or a PTE, never both;
//   - PTEs appear only at the PMD (huge, with the Huge flag) and leaf
//     (base, without it) levels;
//   - huge PTEs keep MapHuge's 2 MB physical alignment;
//   - every node's live count matches its populated slots;
//   - the mappedBase/mappedHuge counters match a full walk.
func (t *Table) Audit() []string {
	var issues []string
	var base, huge int
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		live := 0
		for i := 0; i < fanout; i++ {
			child := n.children[i]
			pte := n.ptes[i]
			if child != nil {
				live++
				if level >= LeafLevel {
					issues = append(issues, fmt.Sprintf("leaf node %#x entry %d: has a child table", uint64(n.pfn), i))
					continue
				}
				if pte.Present() {
					issues = append(issues, fmt.Sprintf("level-%d node %#x entry %d: child table and PTE both present", level, uint64(n.pfn), i))
				}
				walk(child, level+1)
				continue
			}
			if !pte.Present() {
				continue
			}
			live++
			switch {
			case level == LeafLevel:
				if pte.Huge {
					issues = append(issues, fmt.Sprintf("leaf node %#x entry %d: huge flag on a 4KB PTE", uint64(n.pfn), i))
				}
				base++
			case level == HugeLevel:
				if !pte.Huge {
					issues = append(issues, fmt.Sprintf("PMD node %#x entry %d: present PTE without huge flag", uint64(n.pfn), i))
					continue
				}
				if pte.PFN%arch.PagesPerHuge != 0 {
					issues = append(issues, fmt.Sprintf("PMD node %#x entry %d: huge PTE frame %d not 2MB-aligned", uint64(n.pfn), i, pte.PFN))
				}
				huge++
			default:
				issues = append(issues, fmt.Sprintf("level-%d node %#x entry %d: PTE above the PMD level", level, uint64(n.pfn), i))
			}
		}
		if live != n.live {
			issues = append(issues, fmt.Sprintf("level-%d node %#x: live count %d, found %d populated slots", level, uint64(n.pfn), n.live, live))
		}
	}
	walk(t.root, 0)
	if base != t.mappedBase {
		issues = append(issues, fmt.Sprintf("mappedBase counter %d, walk found %d base mappings", t.mappedBase, base))
	}
	if huge != t.mappedHuge {
		issues = append(issues, fmt.Sprintf("mappedHuge counter %d, walk found %d huge mappings", t.mappedHuge, huge))
	}
	return issues
}
