// Package pagetable implements an x86-64-style four-level radix page
// table whose interior nodes are backed by simulated physical frames.
// Because every PTE therefore has a concrete physical address, the page
// walker can model PTE fetches through the cache hierarchy, and the
// coalescing logic can see exactly the eight PTEs sharing the 64-byte
// cache line brought in by a walk — the opportunity window CoLT
// exploits (paper §4.1.4).
package pagetable

import (
	"errors"
	"fmt"

	"colt/internal/arch"
	"colt/internal/telemetry"
)

// Geometry of the radix tree: 4 levels of 9 bits cover a 48-bit virtual
// address space (36-bit VPNs).
const (
	Levels       = 4
	bitsPerLevel = 9
	fanout       = 1 << bitsPerLevel
	indexMask    = fanout - 1
	// LeafLevel is the level holding 4 KB PTEs; HugeLevel (the PMD)
	// holds 2 MB mappings.
	LeafLevel = Levels - 1
	HugeLevel = Levels - 2
)

// FrameSource supplies physical frames for page-table nodes. The VM
// layer adapts the buddy allocator; tests may use a simple counter.
type FrameSource interface {
	AllocFrame() (arch.PFN, error)
	FreeFrame(arch.PFN)
}

// Mapping errors.
var (
	ErrAlreadyMapped = errors.New("pagetable: virtual page already mapped")
	ErrNotMapped     = errors.New("pagetable: virtual page not mapped")
	ErrHugeConflict  = errors.New("pagetable: range conflicts with an existing mapping")
)

// node is one radix-tree table, occupying one simulated frame.
type node struct {
	pfn      arch.PFN
	children [fanout]*node    // interior links (levels 0..2)
	ptes     [fanout]arch.PTE // leaf PTEs (level 3) or huge PTEs (level 2)
	live     int              // number of present children+ptes, for pruning
}

// Table is one process's page table.
type Table struct {
	frames FrameSource
	root   *node
	// mappedBase counts 4 KB mappings; mappedHuge counts 2 MB mappings.
	mappedBase int
	mappedHuge int
	// walkDepth, when attached, observes the level count of every Walk
	// (nil-safe, allocation-free — Walk is on the hot path).
	walkDepth *telemetry.Hist
	// Walk memo: the batched simulator walks the same VPN once per TLB
	// variant that missed on it while the table is guaranteed unchanged
	// (mutations happen between references), and variant-major batching
	// separates those repeats by a whole batch — so the memo is a small
	// direct-mapped table rather than a single entry. A walk is a pure
	// read, so replaying a recorded result is exact; every mutator
	// advances memoGen, which invalidates all entries at once. The
	// table is allocated on first Walk so tables off the hot path pay
	// nothing.
	memo    *walkMemo
	memoGen uint64
}

// walkMemoSize is the direct-mapped walk memo's entry count (power of
// two); it comfortably covers the distinct VPNs of one reference batch.
const walkMemoSize = 512

type walkMemo struct {
	vpn [walkMemoSize]arch.VPN
	gen [walkMemoSize]uint64 // entry valid iff gen matches Table.memoGen
	res [walkMemoSize]WalkResult
}

// dirty invalidates the walk memo; every mutating method calls it
// first (unconditionally, so error paths stay conservative). memoGen
// starts above zero so a zero-valued memo entry can never match.
func (t *Table) dirty() { t.memoGen++ }

// SetWalkDepthHist attaches a histogram observing each Walk's depth in
// levels (4 = full walk to a base PTE, 3 = huge leaf, fewer = hole).
// Pass nil to detach.
func (t *Table) SetWalkDepthHist(h *telemetry.Hist) { t.walkDepth = h }

// WalkResult describes one page-table walk: the physical address of the
// table entry read at each level (top-down) and the leaf PTE found.
// Levels is a fixed array (not a slice) so Walk performs no heap
// allocation — it sits on the simulator's per-reference hot path.
type WalkResult struct {
	Found bool
	PTE   arch.PTE
	// Levels[:Depth] holds the PTE physical addresses touched, ending
	// at the leaf (4 for a base page, 3 for a huge page, fewer if the
	// walk hit a hole).
	Levels [Levels]arch.PAddr
	Depth  int
	// leaf is the PT-level node a full descent ended at (nil for huge
	// mappings and holes), letting LineFromWalk read the leaf's cache
	// line without re-descending the tree the walk just traversed.
	// Only valid as long as the table is unmutated — the same contract
	// the walk memo enforces with memoGen.
	leaf *node
}

// Touched returns the physical addresses actually visited, top-down.
func (r *WalkResult) Touched() []arch.PAddr { return r.Levels[:r.Depth] }

// New creates an empty table, allocating its root frame.
func New(fs FrameSource) (*Table, error) {
	pfn, err := fs.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root: %w", err)
	}
	return &Table{frames: fs, root: &node{pfn: pfn}, memoGen: 1}, nil
}

func levelIndex(vpn arch.VPN, level int) int {
	return int(vpn>>uint(bitsPerLevel*(LeafLevel-level))) & indexMask
}

// entryAddr is the physical address of entry idx in node n.
func entryAddr(n *node, idx int) arch.PAddr {
	return n.pfn.Addr() + arch.PAddr(idx*arch.PTESize)
}

// MappedBase and MappedHuge report the current mapping counts.
func (t *Table) MappedBase() int { return t.mappedBase }
func (t *Table) MappedHuge() int { return t.mappedHuge }

// MappedPages returns total 4 KB-page-equivalents mapped.
func (t *Table) MappedPages() int {
	return t.mappedBase + t.mappedHuge*arch.PagesPerHuge
}

// Map installs a 4 KB translation for vpn. The PTE must be present and
// not huge.
func (t *Table) Map(vpn arch.VPN, pte arch.PTE) error {
	t.dirty()
	if pte.Huge || !pte.Present() {
		return fmt.Errorf("pagetable: Map requires a present base-page PTE, got %v", pte)
	}
	n := t.root
	for level := 0; level < LeafLevel; level++ {
		idx := levelIndex(vpn, level)
		if level == HugeLevel && n.ptes[idx].Present() {
			return ErrHugeConflict
		}
		child := n.children[idx]
		if child == nil {
			pfn, err := t.frames.AllocFrame()
			if err != nil {
				return fmt.Errorf("pagetable: allocating level-%d table: %w", level+1, err)
			}
			child = &node{pfn: pfn}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	idx := levelIndex(vpn, LeafLevel)
	if n.ptes[idx].Present() {
		return ErrAlreadyMapped
	}
	n.ptes[idx] = pte
	n.live++
	t.mappedBase++
	return nil
}

// MapHuge installs a 2 MB translation: baseVPN must be 512-aligned and
// pte.Huge set with a 512-aligned PFN.
func (t *Table) MapHuge(baseVPN arch.VPN, pte arch.PTE) error {
	t.dirty()
	if !pte.Huge || !pte.Present() {
		return fmt.Errorf("pagetable: MapHuge requires a present huge PTE, got %v", pte)
	}
	if baseVPN%arch.PagesPerHuge != 0 || pte.PFN%arch.PagesPerHuge != 0 {
		return fmt.Errorf("pagetable: MapHuge requires 2MB alignment (vpn=%d pfn=%d)", baseVPN, pte.PFN)
	}
	n := t.root
	for level := 0; level < HugeLevel; level++ {
		idx := levelIndex(baseVPN, level)
		child := n.children[idx]
		if child == nil {
			pfn, err := t.frames.AllocFrame()
			if err != nil {
				return fmt.Errorf("pagetable: allocating level-%d table: %w", level+1, err)
			}
			child = &node{pfn: pfn}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	idx := levelIndex(baseVPN, HugeLevel)
	if n.ptes[idx].Present() || n.children[idx] != nil {
		return ErrHugeConflict
	}
	n.ptes[idx] = pte
	n.live++
	t.mappedHuge++
	return nil
}

// Reserve allocates the interior table nodes for vpn's leaf without
// installing a mapping, so a subsequent Map performs no table-frame
// allocations. The page-fault handler uses this to order its
// allocations: table pages first, then the data frame, keeping the
// buddy allocator's sequential drain intact for consecutive faults.
func (t *Table) Reserve(vpn arch.VPN) error {
	t.dirty()
	n := t.root
	for level := 0; level < LeafLevel; level++ {
		idx := levelIndex(vpn, level)
		if level == HugeLevel && n.ptes[idx].Present() {
			return ErrHugeConflict
		}
		child := n.children[idx]
		if child == nil {
			pfn, err := t.frames.AllocFrame()
			if err != nil {
				return fmt.Errorf("pagetable: reserving level-%d table: %w", level+1, err)
			}
			child = &node{pfn: pfn}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	return nil
}

// leafNode descends toward vpn's leaf without recording the path (and
// therefore without allocating — Lookup/Resolve/Line run once per
// simulated memory reference). It returns the deepest node reached and
// its level: LeafLevel for a full descent, HugeLevel when a huge PTE or
// a PMD hole stops the walk, less on an upper hole.
func (t *Table) leafNode(vpn arch.VPN) (*node, int) {
	n := t.root
	for level := 0; level < LeafLevel; level++ {
		idx := levelIndex(vpn, level)
		if level == HugeLevel && n.ptes[idx].Present() {
			return n, HugeLevel
		}
		if n.children[idx] == nil {
			return n, level
		}
		n = n.children[idx]
	}
	return n, LeafLevel
}

// path returns the nodes visited from root toward vpn's leaf, stopping
// early at a hole or a huge mapping. Mutation paths (Unmap, SplitHuge,
// prune) use it; translation paths use the allocation-free leafNode.
func (t *Table) path(vpn arch.VPN) []*node {
	nodes := make([]*node, 0, Levels)
	n := t.root
	for level := 0; level < LeafLevel; level++ {
		nodes = append(nodes, n)
		idx := levelIndex(vpn, level)
		if level == HugeLevel && n.ptes[idx].Present() {
			return nodes
		}
		if n.children[idx] == nil {
			return nodes
		}
		n = n.children[idx]
	}
	return append(nodes, n)
}

// Lookup returns the leaf PTE mapping vpn: a base PTE, or the covering
// huge PTE (with Huge set and the block's base PFN). It allocates
// nothing.
func (t *Table) Lookup(vpn arch.VPN) (arch.PTE, bool) {
	n, level := t.leafNode(vpn)
	switch level {
	case LeafLevel: // reached the PT level
		pte := n.ptes[levelIndex(vpn, LeafLevel)]
		return pte, pte.Present()
	case HugeLevel: // stopped at the PMD
		pte := n.ptes[levelIndex(vpn, HugeLevel)]
		if pte.Present() && pte.Huge {
			return pte, true
		}
	}
	return arch.PTE{}, false
}

// Resolve translates vpn to its physical frame, flattening huge
// mappings to the exact backing frame.
func (t *Table) Resolve(vpn arch.VPN) (arch.PFN, arch.Attr, bool) {
	pte, ok := t.Lookup(vpn)
	if !ok {
		return 0, 0, false
	}
	if pte.Huge {
		return pte.PFN + arch.PFN(vpn%arch.PagesPerHuge), pte.Attr, true
	}
	return pte.PFN, pte.Attr, true
}

// Walk performs a full walk for vpn, reporting the physical address of
// every table entry the hardware would read. It allocates nothing.
func (t *Table) Walk(vpn arch.VPN) WalkResult {
	return *t.WalkRef(vpn)
}

// WalkRef is Walk returning a pointer into the walk memo instead of a
// by-value result: WalkResult is ~70 bytes, and the per-reference hot
// path would otherwise copy it twice per walk (memo store plus
// return). The pointed-to result is valid until the next walk of a
// colliding VPN or the next table mutation; the page walker consumes
// it immediately.
func (t *Table) WalkRef(vpn arch.VPN) *WalkResult {
	if t.memo == nil {
		t.memo = new(walkMemo)
	}
	i := int(vpn) & (walkMemoSize - 1)
	res := &t.memo.res[i]
	if t.memo.gen[i] != t.memoGen || t.memo.vpn[i] != vpn {
		t.walkTo(vpn, res)
		t.memo.vpn[i], t.memo.gen[i] = vpn, t.memoGen
	}
	if t.walkDepth != nil {
		t.walkDepth.Observe(uint64(res.Depth))
	}
	return res
}

// walkTo performs the uncached walk, filling res in place.
func (t *Table) walkTo(vpn arch.VPN, res *WalkResult) {
	*res = WalkResult{}
	n := t.root
	for level := 0; level < Levels; level++ {
		idx := levelIndex(vpn, level)
		res.Levels[res.Depth] = entryAddr(n, idx)
		res.Depth++
		if level == LeafLevel {
			pte := n.ptes[idx]
			res.Found = pte.Present()
			res.PTE = pte
			res.leaf = n
			return
		}
		if level == HugeLevel {
			if pte := n.ptes[idx]; pte.Present() && pte.Huge {
				res.Found = true
				res.PTE = pte
				return
			}
		}
		if n.children[idx] == nil {
			return
		}
		n = n.children[idx]
	}
}

// Line returns the eight translations sharing the 64-byte cache line of
// vpn's leaf PTE — exactly what a page walk's LLC fill exposes to the
// coalescing logic — plus that line's physical address. ok is false for
// unmapped or huge-mapped pages (huge PTEs live at the PMD and are not
// coalescing candidates).
func (t *Table) Line(vpn arch.VPN) (group [arch.PTEsPerLine]arch.Translation, lineAddr arch.PAddr, ok bool) {
	lineAddr, ok = t.LineInto(vpn, &group)
	return group, lineAddr, ok
}

// LineInto is Line with a caller-provided destination: the translation
// group is a ~200-byte array, and the walker's hot path fills its
// reused WalkInfo buffer directly instead of copying the array twice
// through return values.
func (t *Table) LineInto(vpn arch.VPN, group *[arch.PTEsPerLine]arch.Translation) (lineAddr arch.PAddr, ok bool) {
	leaf, level := t.leafNode(vpn)
	if level != LeafLevel {
		return 0, false
	}
	return lineFromLeaf(leaf, vpn, group)
}

// LineFromWalk is LineInto fed by a just-completed Walk's result: the
// walk already descended to the leaf node, so the line read reuses it
// instead of walking the interior levels again. res must come from a
// Walk on this table with no intervening mutation (the walker calls it
// immediately); a result that never reached the PT level falls back to
// a fresh descent.
func (t *Table) LineFromWalk(res *WalkResult, vpn arch.VPN, group *[arch.PTEsPerLine]arch.Translation) (lineAddr arch.PAddr, ok bool) {
	if res.leaf == nil {
		return t.LineInto(vpn, group)
	}
	return lineFromLeaf(res.leaf, vpn, group)
}

// lineFromLeaf reads the eight-translation cache line around vpn's PTE
// out of its PT-level node.
func lineFromLeaf(leaf *node, vpn arch.VPN, group *[arch.PTEsPerLine]arch.Translation) (lineAddr arch.PAddr, ok bool) {
	idx := levelIndex(vpn, LeafLevel)
	if !leaf.ptes[idx].Present() {
		return 0, false
	}
	groupStart := idx &^ (arch.PTEsPerLine - 1)
	baseVPN := vpn - arch.VPN(idx-groupStart)
	for i := 0; i < arch.PTEsPerLine; i++ {
		group[i] = arch.Translation{VPN: baseVPN + arch.VPN(i), PTE: leaf.ptes[groupStart+i]}
	}
	return entryAddr(leaf, groupStart), true
}

// Unmap removes the 4 KB mapping for vpn, pruning emptied tables.
func (t *Table) Unmap(vpn arch.VPN) error {
	t.dirty()
	nodes := t.path(vpn)
	if len(nodes) != Levels {
		return ErrNotMapped
	}
	leaf := nodes[Levels-1]
	idx := levelIndex(vpn, LeafLevel)
	if !leaf.ptes[idx].Present() {
		return ErrNotMapped
	}
	leaf.ptes[idx] = arch.PTE{}
	leaf.live--
	t.mappedBase--
	t.prune(nodes, vpn)
	return nil
}

// UnmapHuge removes the 2 MB mapping at baseVPN.
func (t *Table) UnmapHuge(baseVPN arch.VPN) error {
	t.dirty()
	nodes := t.path(baseVPN)
	last := nodes[len(nodes)-1]
	if len(nodes) != HugeLevel+1 {
		return ErrNotMapped
	}
	idx := levelIndex(baseVPN, HugeLevel)
	if pte := last.ptes[idx]; !pte.Present() || !pte.Huge {
		return ErrNotMapped
	}
	last.ptes[idx] = arch.PTE{}
	last.live--
	t.mappedHuge--
	t.prune(nodes, baseVPN)
	return nil
}

// prune frees table nodes that became empty, bottom-up (never the root).
func (t *Table) prune(nodes []*node, vpn arch.VPN) {
	for level := len(nodes) - 1; level > 0; level-- {
		n := nodes[level]
		if n.live > 0 {
			return
		}
		parent := nodes[level-1]
		idx := levelIndex(vpn, level-1)
		parent.children[idx] = nil
		parent.live--
		t.frames.FreeFrame(n.pfn)
	}
}

// Remap changes the physical frame backing an existing 4 KB mapping —
// the page-migration primitive used by the compaction daemon. The
// caller is responsible for the corresponding TLB shootdown.
func (t *Table) Remap(vpn arch.VPN, newPFN arch.PFN) error {
	t.dirty()
	nodes := t.path(vpn)
	if len(nodes) != Levels {
		return ErrNotMapped
	}
	leaf := nodes[Levels-1]
	idx := levelIndex(vpn, LeafLevel)
	if !leaf.ptes[idx].Present() {
		return ErrNotMapped
	}
	leaf.ptes[idx].PFN = newPFN
	return nil
}

// SplitHuge demotes the 2 MB mapping at baseVPN into 512 base-page
// PTEs over the same frames (full residual contiguity), the operation
// THP's pressure daemon performs.
func (t *Table) SplitHuge(baseVPN arch.VPN) error {
	t.dirty()
	nodes := t.path(baseVPN)
	if len(nodes) != HugeLevel+1 {
		return ErrNotMapped
	}
	pmd := nodes[HugeLevel]
	idx := levelIndex(baseVPN, HugeLevel)
	pte := pmd.ptes[idx]
	if !pte.Present() || !pte.Huge {
		return ErrNotMapped
	}
	pfn, err := t.frames.AllocFrame()
	if err != nil {
		return fmt.Errorf("pagetable: allocating PT for split: %w", err)
	}
	pt := &node{pfn: pfn}
	for i := 0; i < fanout; i++ {
		pt.ptes[i] = arch.PTE{PFN: pte.PFN + arch.PFN(i), Attr: pte.Attr}
	}
	pt.live = fanout
	pmd.ptes[idx] = arch.PTE{}
	pmd.children[idx] = pt
	// live count unchanged: the huge PTE became a child link.
	t.mappedHuge--
	t.mappedBase += fanout
	return nil
}

// Each visits every mapping in ascending VPN order: base mappings as
// single translations and huge mappings as one Translation with
// PTE.Huge set (VPN = block base). Return false from fn to stop early.
func (t *Table) Each(fn func(arch.Translation) bool) {
	t.each(t.root, 0, 0, fn)
}

func (t *Table) each(n *node, level int, prefix arch.VPN, fn func(arch.Translation) bool) bool {
	for i := 0; i < fanout; i++ {
		vpn := prefix | arch.VPN(i)<<uint(bitsPerLevel*(LeafLevel-level))
		if level == LeafLevel {
			if pte := n.ptes[i]; pte.Present() {
				if !fn(arch.Translation{VPN: vpn, PTE: pte}) {
					return false
				}
			}
			continue
		}
		if level == HugeLevel {
			if pte := n.ptes[i]; pte.Present() {
				if !fn(arch.Translation{VPN: vpn, PTE: pte}) {
					return false
				}
				continue
			}
		}
		if child := n.children[i]; child != nil {
			if !t.each(child, level+1, vpn, fn) {
				return false
			}
		}
	}
	return true
}

// Release frees every table frame (the process exited). The leaf data
// frames are the VM layer's responsibility.
func (t *Table) Release() {
	t.dirty()
	t.release(t.root, 0)
	t.root = nil
}

func (t *Table) release(n *node, level int) {
	if level < LeafLevel {
		for _, c := range n.children {
			if c != nil {
				t.release(c, level+1)
			}
		}
	}
	t.frames.FreeFrame(n.pfn)
}
