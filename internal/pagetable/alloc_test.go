package pagetable

import (
	"testing"

	"colt/internal/arch"
)

// The translation-side operations (Walk, Lookup, Resolve, Line) run
// once or more per simulated memory reference; any per-call allocation
// multiplies across the billions of references of a full experiment
// sweep. These guards pin them at zero.
func TestTranslationPathZeroAlloc(t *testing.T) {
	tbl, _ := newTable(t)
	for i := 0; i < 64; i++ {
		if err := tbl.Map(arch.VPN(100+i), basePTE(arch.PFN(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MapHuge(arch.PagesPerHuge*4, hugePTE(8192)); err != nil {
		t.Fatal(err)
	}
	hole := arch.VPN(1) << 30

	cases := []struct {
		name string
		fn   func()
	}{
		{"Walk/base", func() { tbl.Walk(110) }},
		{"Walk/huge", func() { tbl.Walk(arch.PagesPerHuge*4 + 7) }},
		{"Walk/hole", func() { tbl.Walk(hole) }},
		{"Lookup", func() { tbl.Lookup(110) }},
		{"Resolve", func() { tbl.Resolve(arch.PagesPerHuge*4 + 7) }},
		{"Line", func() { tbl.Line(110) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", tc.name, avg)
		}
	}
}
