package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/cluster"
	"colt/internal/obs"
	"colt/internal/telemetry"
)

// Handler returns the daemon's HTTP API. Routes use Go 1.22 method
// patterns; every route is wrapped in the per-endpoint
// latency/inflight middleware surfaced by GET /v1/stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.ep.instrument(pattern, h))
	}
	route("POST /v1/jobs", s.handleSubmit)
	route("GET /v1/jobs/{id}", s.handleStatus)
	route("GET /v1/jobs/{id}/report", s.handleReport)
	route("GET /v1/jobs/{id}/trace", s.handleTrace)
	route("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	route("GET /v1/jobs/{id}/events", s.handleEvents)
	route("DELETE /v1/jobs/{id}", s.handleCancel)
	route("GET /v1/jobs", s.handleList)
	route("GET /v1/experiments", s.handleExperiments)
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/healthz", s.handleHealthz)
	route("GET /v1/readyz", s.handleReadyz)
	route("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		// Fleet-internal endpoints: gossip, work stealing, and
		// hash-addressed report serving for peer fill.
		route("POST "+cluster.HeartbeatPath, s.handleClusterHeartbeat)
		route("POST "+cluster.StealPath, s.handleClusterSteal)
		route("POST "+cluster.CommitPath, s.handleClusterCommit)
		route("GET "+cluster.ReportPath+"{hash}", s.handleClusterReport)
	}
	return mux
}

// MetricsHandler serves the Prometheus exposition alone — cmd/coltd
// mounts it on the -debug-addr listener next to pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.om.reg.WritePrometheus(w)
}

// writeJSON renders a JSON response body. It marshals before touching
// the ResponseWriter, so an unencodable value becomes a clean 500
// instead of a half-written 200 with a silently truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	jobStatus
	// ReportSHA256 is the cached report's integrity hash, present on
	// cache hits so clients can verify the bytes they fetch.
	ReportSHA256 string `json:"report_sha256,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Accept an inbound correlation ID (validated) or mint one, and
	// return whichever ID the admission ran under — for a coalesced
	// submission that is the executing job's trace, so the client can
	// follow the run that will actually produce its result.
	trace := r.Header.Get("X-Colt-Trace")
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	w.Header().Set("X-Colt-Trace", trace)
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	// Cluster routing: a spec whose ring owner is another node is
	// forwarded there (one hop — forwarded requests always admit
	// locally), so identical specs submitted anywhere in the fleet
	// coalesce on one node and execute once.
	if s.cluster != nil && r.Header.Get(forwardedHeader) == "" {
		if s.maybeProxySubmit(w, r, spec, trace) {
			return
		}
	}
	res, err := s.SubmitTraced(spec, trace)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfter(err))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrTooLarge):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("X-Colt-Trace", res.Job.TraceID())
	resp := submitResponse{jobStatus: res.Job.snapshot()}
	if e, ok := s.cache.Entry(res.Job.Can.Hash); ok && res.Cached {
		resp.ReportSHA256 = e.Sum
	}
	w.Header().Set("Location", "/v1/jobs/"+res.Job.ID)
	status := http.StatusCreated
	if !res.Created {
		status = http.StatusOK // coalesced onto an existing job
	}
	writeJSON(w, status, resp)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		// A job minted by another node (recognizable by its "<node>."
		// ID prefix) is read through its home node; the response, if
		// it was a report, also fills the local cache on the way past.
		if s.proxyRemoteJob(w, r, id) {
			return nil, false
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("X-Colt-Trace", j.TraceID())
	writeJSON(w, http.StatusOK, j.snapshot())
}

// timelineResponse is the GET /v1/jobs/{id}/timeline body: the job's
// span timeline, each mark carrying its wall-clock nanosecond stamp
// and the delta from the previous mark.
type timelineResponse struct {
	ID      string          `json:"id"`
	TraceID string          `json:"trace_id"`
	State   JobState        `json:"state"`
	Marks   []timelineEntry `json:"marks"`
	// TotalMs spans admitted → the last recorded mark.
	TotalMs float64 `json:"total_ms"`
}

type timelineEntry struct {
	Phase   string  `json:"phase"`
	UnixNs  int64   `json:"unix_ns"`
	DeltaMs float64 `json:"delta_ms"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	state, marks := j.timelineSnapshot()
	resp := timelineResponse{ID: j.ID, TraceID: j.TraceID(), State: state,
		Marks: make([]timelineEntry, 0, len(marks))}
	for i, m := range marks {
		e := timelineEntry{Phase: m.Phase, UnixNs: m.UnixNs}
		if i > 0 {
			e.DeltaMs = float64(m.UnixNs-marks[i-1].UnixNs) / 1e6
		}
		resp.Marks = append(resp.Marks, e)
	}
	if n := len(marks); n > 1 {
		resp.TotalMs = float64(marks[n-1].UnixNs-marks[0].UnixNs) / 1e6
	}
	w.Header().Set("X-Colt-Trace", j.TraceID())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if st, errMsg := j.State(); st != JobDone {
		msg := fmt.Sprintf("job %s is %s; no report", j.ID, st)
		if errMsg != "" {
			msg += ": " + errMsg
		}
		writeError(w, http.StatusConflict, "%s", msg)
		return
	}
	b, ok := s.Report(j)
	if !ok {
		// The cached entry failed its integrity check after the job
		// completed; the client resubmits and the spec recomputes.
		writeError(w, http.StatusGone, "cached report for job %s failed verification; resubmit to recompute", j.ID)
		return
	}
	if e, ok := s.cache.Entry(j.Can.Hash); ok {
		w.Header().Set("X-Report-Sha256", e.Sum)
		w.Header().Set("ETag", `"`+e.Sum+`"`)
	}
	// The spec hash and experiment name let a proxying peer file the
	// verified bytes in its own cache (read-side peer fill).
	w.Header().Set(specHashHeader, j.Can.Hash)
	w.Header().Set(experimentHeader, j.Can.Exp.Name)
	j.markServed(time.Now())
	s.om.reportsServed.Inc()
	w.Header().Set("X-Colt-Trace", j.TraceID())
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b := j.Trace()
	if len(b) == 0 {
		writeError(w, http.StatusNotFound,
			"job %s has no trace (submit with \"trace\": true; cache hits never have one)", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleEvents streams the job's progress log as Server-Sent Events:
// first a replay of everything recorded so far, then the live tail,
// then one terminal "end" event carrying the final job status. Late
// subscribers therefore see the same story as early ones.
//
// Fan-out is batched: each stream holds a cursor into the job's
// append-only event log and drains the new tail once per flush tick
// (Config.SSEFlushInterval) with a single Flush per batch. The
// execution hot path only appends to the log — a slow or stalled
// subscriber delays nobody but itself, and a thousand subscribers
// cost the running job nothing per event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	s.om.sseSubscribers.Inc()
	defer s.om.sseSubscribers.Dec()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Colt-Trace", j.TraceID())
	w.WriteHeader(http.StatusOK)

	writeBatch := func(evs []telemetry.ProgressEvent) {
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, b)
		}
		if len(evs) > 0 && canFlush {
			flusher.Flush()
		}
	}

	cursor := 0
	ticker := time.NewTicker(s.cfg.SSEFlushInterval)
	defer ticker.Stop()
	for {
		tail, terminal := j.eventsSince(cursor)
		cursor += len(tail)
		writeBatch(tail)
		if terminal {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done(): // drain the final tail, then end
		case <-ticker.C:
		}
	}
	b, err := json.Marshal(j.snapshot())
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: end\ndata: %s\n\n", b)
	if canFlush {
		flusher.Flush()
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, "job %s is already %s", j.ID, func() JobState {
			st, _ := j.State()
			return st
		}())
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.listJobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: out})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	out := make([]entry, 0, len(s.cfg.Registry))
	for _, e := range s.cfg.Registry {
		out = append(out, entry{Name: e.Name, Desc: e.Desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, struct {
		Experiments []entry `json:"experiments"`
	}{Experiments: out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is pure liveness: 200 as long as the process serves
// HTTP, draining or not. Load balancers that want to stop routing to
// a node use readyz; kill-and-restart automation uses healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// readyzCluster is the cluster membership block of the readyz body:
// which node this is, how big its ring currently is, and each peer's
// failure-detector state — the partition view an LB or operator needs
// to decide whether "ready" means "ready and well-connected".
type readyzCluster struct {
	NodeID   string         `json:"node_id"`
	Epoch    uint64         `json:"epoch"`
	RingSize int            `json:"ring_size"`
	Alive    int            `json:"peers_alive"`
	Suspect  int            `json:"peers_suspect"`
	Dead     int            `json:"peers_dead"`
	Peers    []cluster.Peer `json:"peers,omitempty"`
}

// handleReadyz is readiness: 503 while draining so a load balancer
// rotates the node out before the drain completes. A degraded
// (breaker-open) daemon still serves — memory-only — so it stays
// ready, but the state is reported for operators and alerting. In
// cluster mode the body carries the node's membership view.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.isDraining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	} else if s.degraded.Load() {
		state = "degraded"
	}
	var cl *readyzCluster
	if s.cluster != nil {
		alive, suspect, dead := s.cluster.Counts()
		cl = &readyzCluster{
			NodeID:   s.cluster.NodeID(),
			Epoch:    s.cluster.Epoch(),
			RingSize: s.cluster.Ring().Size(),
			Alive:    alive,
			Suspect:  suspect,
			Dead:     dead,
			Peers:    s.cluster.Members(),
		}
	}
	writeJSON(w, status, struct {
		Status   string         `json:"status"`
		Draining bool           `json:"draining"`
		Degraded bool           `json:"degraded"`
		Cluster  *readyzCluster `json:"cluster,omitempty"`
	}{Status: state, Draining: s.isDraining(), Degraded: s.degraded.Load(), Cluster: cl})
}

// EndpointStats is one route's counter snapshot in GET /v1/stats.
// Latencies are wall-clock and excluded from any golden comparison.
type EndpointStats struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"` // responses with status >= 400
	InFlight  int64  `json:"in_flight"`
	TotalUsec uint64 `json:"total_usec"`
	MaxUsec   uint64 `json:"max_usec"`
}

// epCounters is one route's live counters. All atomics: the request
// path never takes a lock, so the middleware costs the same whether
// one route or every route is hot.
type epCounters struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	inFlight  atomic.Int64
	totalUsec atomic.Uint64
	maxUsec   atomic.Uint64
}

// endpointMetrics tracks per-route request counters. The map is
// populated at route-registration time and read-only afterwards; mu
// only guards registration. Each route's counters are also exported
// to /metrics through Func collectors reading the same atomics, so
// /v1/stats and the exposition can never disagree.
type endpointMetrics struct {
	mu sync.Mutex
	m  map[string]*epCounters
	om *serverMetrics
}

func newEndpointMetrics(om *serverMetrics) *endpointMetrics {
	return &endpointMetrics{m: make(map[string]*epCounters), om: om}
}

// instrument wraps a handler with request/error/latency/inflight
// accounting under the route's pattern. The route's counter struct is
// resolved once, here, so the per-request path is pure atomics.
func (em *endpointMetrics) instrument(pattern string, h http.Handler) http.Handler {
	em.mu.Lock()
	st, ok := em.m[pattern]
	if !ok {
		st = &epCounters{}
		em.m[pattern] = st
		if em.om != nil {
			em.om.reg.CounterFunc("coltd_http_requests_total", "HTTP requests by route.",
				func() float64 { return float64(st.requests.Load()) }, "route", pattern)
			em.om.reg.CounterFunc("coltd_http_errors_total", "HTTP responses with status >= 400, by route.",
				func() float64 { return float64(st.errors.Load()) }, "route", pattern)
		}
	}
	em.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st.requests.Add(1)
		st.inFlight.Add(1)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)

		elapsed := time.Since(start)
		usec := uint64(elapsed.Microseconds())
		st.inFlight.Add(-1)
		st.totalUsec.Add(usec)
		for {
			cur := st.maxUsec.Load()
			if usec <= cur || st.maxUsec.CompareAndSwap(cur, usec) {
				break
			}
		}
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		if em.om != nil {
			em.om.httpLatency.Observe(elapsed.Seconds())
		}
	})
}

func (em *endpointMetrics) snapshot() map[string]EndpointStats {
	em.mu.Lock()
	defer em.mu.Unlock()
	out := make(map[string]EndpointStats, len(em.m))
	for k, v := range em.m {
		out[k] = EndpointStats{
			Requests:  v.requests.Load(),
			Errors:    v.errors.Load(),
			InFlight:  v.inFlight.Load(),
			TotalUsec: v.totalUsec.Load(),
			MaxUsec:   v.maxUsec.Load(),
		}
	}
	return out
}

// statusRecorder captures the response status for error accounting
// while passing Flush through so SSE streaming keeps working behind
// the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
