package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"colt/internal/telemetry"
)

// Handler returns the daemon's HTTP API. Routes use Go 1.22 method
// patterns; every route is wrapped in the per-endpoint
// latency/inflight middleware surfaced by GET /v1/stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.ep.instrument(pattern, h))
	}
	route("POST /v1/jobs", s.handleSubmit)
	route("GET /v1/jobs/{id}", s.handleStatus)
	route("GET /v1/jobs/{id}/report", s.handleReport)
	route("GET /v1/jobs/{id}/trace", s.handleTrace)
	route("GET /v1/jobs/{id}/events", s.handleEvents)
	route("DELETE /v1/jobs/{id}", s.handleCancel)
	route("GET /v1/jobs", s.handleList)
	route("GET /v1/experiments", s.handleExperiments)
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/healthz", s.handleHealthz)
	return mux
}

// writeJSON renders a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	jobStatus
	// ReportSHA256 is the cached report's integrity hash, present on
	// cache hits so clients can verify the bytes they fetch.
	ReportSHA256 string `json:"report_sha256,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	res, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrTooLarge):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := submitResponse{jobStatus: res.Job.snapshot()}
	if e, ok := s.cache.Entry(res.Job.Can.Hash); ok && res.Cached {
		resp.ReportSHA256 = e.Sum
	}
	w.Header().Set("Location", "/v1/jobs/"+res.Job.ID)
	status := http.StatusCreated
	if !res.Created {
		status = http.StatusOK // coalesced onto an existing job
	}
	writeJSON(w, status, resp)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if st, errMsg := j.State(); st != JobDone {
		msg := fmt.Sprintf("job %s is %s; no report", j.ID, st)
		if errMsg != "" {
			msg += ": " + errMsg
		}
		writeError(w, http.StatusConflict, "%s", msg)
		return
	}
	b, ok := s.Report(j)
	if !ok {
		// The cached entry failed its integrity check after the job
		// completed; the client resubmits and the spec recomputes.
		writeError(w, http.StatusGone, "cached report for job %s failed verification; resubmit to recompute", j.ID)
		return
	}
	if e, ok := s.cache.Entry(j.Can.Hash); ok {
		w.Header().Set("X-Report-Sha256", e.Sum)
		w.Header().Set("ETag", `"`+e.Sum+`"`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b := j.Trace()
	if len(b) == 0 {
		writeError(w, http.StatusNotFound,
			"job %s has no trace (submit with \"trace\": true; cache hits never have one)", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleEvents streams the job's progress log as Server-Sent Events:
// first a replay of everything recorded so far, then the live tail,
// then one terminal "end" event carrying the final job status. Late
// subscribers therefore see the same story as early ones.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	replay, live, done, unsub := j.subscribe()
	defer unsub()
	write := func(ev telemetry.ProgressEvent) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, b)
		if canFlush {
			flusher.Flush()
		}
	}
	for _, ev := range replay {
		write(ev)
	}
	if !done {
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					done = true
				} else {
					write(ev)
				}
			case <-r.Context().Done():
				return
			}
			if done {
				break
			}
		}
	}
	b, _ := json.Marshal(j.snapshot())
	fmt.Fprintf(w, "event: end\ndata: %s\n\n", b)
	if canFlush {
		flusher.Flush()
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, "job %s is already %s", j.ID, func() JobState {
			st, _ := j.State()
			return st
		}())
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			out = append(out, j.snapshot())
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: out})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	out := make([]entry, 0, len(s.cfg.Registry))
	for _, e := range s.cfg.Registry {
		out = append(out, entry{Name: e.Name, Desc: e.Desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, struct {
		Experiments []entry `json:"experiments"`
	}{Experiments: out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.isDraining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status string `json:"status"`
	}{Status: state})
}

// EndpointStats is one route's counter snapshot in GET /v1/stats.
// Latencies are wall-clock and excluded from any golden comparison.
type EndpointStats struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"` // responses with status >= 400
	InFlight  int64  `json:"in_flight"`
	TotalUsec uint64 `json:"total_usec"`
	MaxUsec   uint64 `json:"max_usec"`
}

// endpointMetrics tracks per-route request counters.
type endpointMetrics struct {
	mu sync.Mutex
	m  map[string]*EndpointStats
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{m: make(map[string]*EndpointStats)}
}

// instrument wraps a handler with request/error/latency/inflight
// accounting under the route's pattern.
func (em *endpointMetrics) instrument(pattern string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		em.mu.Lock()
		st, ok := em.m[pattern]
		if !ok {
			st = &EndpointStats{}
			em.m[pattern] = st
		}
		st.Requests++
		st.InFlight++
		em.mu.Unlock()

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)

		usec := uint64(time.Since(start).Microseconds())
		em.mu.Lock()
		st.InFlight--
		st.TotalUsec += usec
		if usec > st.MaxUsec {
			st.MaxUsec = usec
		}
		if rec.status >= 400 {
			st.Errors++
		}
		em.mu.Unlock()
	})
}

func (em *endpointMetrics) snapshot() map[string]EndpointStats {
	em.mu.Lock()
	defer em.mu.Unlock()
	out := make(map[string]EndpointStats, len(em.m))
	for k, v := range em.m {
		out[k] = *v
	}
	return out
}

// statusRecorder captures the response status for error accounting
// while passing Flush through so SSE streaming keeps working behind
// the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
