package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("write-fail=0.5, fsync-fail=1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rates[OpWrite] != 0.5 || spec.Rates[OpFsync] != 1 {
		t.Fatalf("parsed rates %+v", spec.Rates)
	}
	if !spec.Enabled() {
		t.Fatal("non-zero spec reports disabled")
	}
	if got := spec.String(); got != "fsync-fail=1,write-fail=0.5" {
		t.Fatalf("String() = %q, want canonical sorted form", got)
	}

	all, err := ParseSpec("all=0.25")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range Ops() {
		if all.Rates[op] != 0.25 {
			t.Fatalf("all=0.25 left %s at %g", op, all.Rates[op])
		}
	}

	if s, err := ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nope=1", "write-fail=2", "write-fail", "write-fail=x", ","} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		} else if bad == "nope=1" && !strings.Contains(err.Error(), "write-fail") {
			t.Fatalf("unknown-op error %q does not list the valid set", err)
		}
	}
}

// TestPlaneDeterminism: the per-op fire sequence is a pure function
// of (seed, op, crossing index) — two planes with the same seed agree
// crossing by crossing, and enabling extra ops never perturbs it.
func TestPlaneDeterminism(t *testing.T) {
	spec := Spec{Rates: map[Op]float64{OpWrite: 0.3}}
	wide := Spec{Rates: map[Op]float64{OpWrite: 0.3, OpRename: 0.9, OpFsync: 0.9}}
	a := NewPlane(spec, 42)
	b := NewPlane(spec, 42)
	c := NewPlane(wide, 42)
	for i := 0; i < 1000; i++ {
		ea, eb, ec := a.fail(OpWrite), b.fail(OpWrite), c.fail(OpWrite)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("crossing %d: same-seed planes disagree", i)
		}
		if (ea == nil) != (ec == nil) {
			t.Fatalf("crossing %d: enabling other ops perturbed write-fail", i)
		}
	}
	if a.Injected(OpWrite) == 0 || a.Injected(OpWrite) != c.Injected(OpWrite) {
		t.Fatalf("injected counts diverge: %d vs %d", a.Injected(OpWrite), c.Injected(OpWrite))
	}
	if a.Crossings(OpWrite) != 1000 {
		t.Fatalf("crossings = %d, want 1000", a.Crossings(OpWrite))
	}
}

func TestNilPlaneInjectsNothing(t *testing.T) {
	var p *Plane
	if err := p.fail(OpWrite); err != nil {
		t.Fatal("nil plane injected")
	}
	if p.Injected(OpWrite) != 0 || p.Crossings(OpWrite) != 0 || p.InjectedTotal() != 0 {
		t.Fatal("nil plane reports activity")
	}
	if NewPlane(Spec{}, 1) != nil {
		t.Fatal("empty spec built a plane")
	}
	if fs := Faulty(OS(), nil); fs != OS() {
		t.Fatal("Faulty(nil plane) did not pass the FS through")
	}
}

func TestWriteFileSyncRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	want := []byte(`{"a":1}`)
	if err := WriteFileSync(OS(), path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != string(want) {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Overwrite is atomic too.
	want2 := []byte(`{"a":2}`)
	if err := WriteFileSync(OS(), path, want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != string(want2) {
		t.Fatalf("overwrite read back %q", got)
	}
}

// TestWriteFileSyncFaults: each injection site fails the atomic write
// with an identifiable injected error and leaves the destination
// untouched.
func TestWriteFileSyncFaults(t *testing.T) {
	for _, op := range []Op{OpWrite, OpShortWrite, OpRename, OpFsync} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "x.json")
			if err := WriteFileSync(OS(), path, []byte("orig")); err != nil {
				t.Fatal(err)
			}
			plane := NewPlane(Spec{Rates: map[Op]float64{op: 1}}, 7)
			fs := Faulty(OS(), plane)
			err := WriteFileSync(fs, path, []byte("new"))
			if err == nil || !IsInjected(err) {
				t.Fatalf("err = %v, want injected %s", err, op)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Op != op {
				t.Fatalf("err = %v, want op %s", err, op)
			}
			if got, _ := os.ReadFile(path); string(got) != "orig" {
				t.Fatalf("destination changed to %q under injected %s", got, op)
			}
			if plane.Injected(op) == 0 {
				t.Fatalf("plane counted no %s injection", op)
			}
		})
	}
}

// TestShortWriteTearsTheFile: the short-write site leaves half the
// buffer on disk — the torn state a crash mid-write produces — and
// surfaces an error so the caller never renames it into place.
func TestShortWriteTearsTheFile(t *testing.T) {
	dir := t.TempDir()
	plane := NewPlane(Spec{Rates: map[Op]float64{OpShortWrite: 1}}, 1)
	fs := Faulty(OS(), plane)
	f, err := fs.Create(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	f.Close()
	if werr == nil || !IsInjected(werr) {
		t.Fatalf("short write returned %v", werr)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write wrote %d bytes, want %d", n, len(payload)/2)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "torn"))
	if string(got) != "01234" {
		t.Fatalf("on-disk bytes %q, want the torn first half", got)
	}
}

func TestSlowIODelaysButSucceeds(t *testing.T) {
	dir := t.TempDir()
	plane := NewPlane(Spec{Rates: map[Op]float64{OpSlowIO: 1}}, 1)
	plane.SetSlowIO(0) // keep the test fast; the delay path still runs
	fs := Faulty(OS(), plane)
	if err := WriteFileSync(fs, filepath.Join(dir, "slow"), []byte("x")); err != nil {
		t.Fatalf("slow-io failed the write: %v", err)
	}
	if plane.Injected(OpSlowIO) == 0 {
		t.Fatal("slow-io never fired")
	}
}
