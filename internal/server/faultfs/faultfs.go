// Package faultfs is the serving layer's deterministic disk-fault
// plane: an injectable filesystem seam threaded through every durable
// write coltd performs (cache entries, the accepted-job journal, the
// cache index, drain checkpoints). It is the filesystem counterpart
// of internal/fault — the same discipline (named sites, per-site
// rng.Stream generators derived purely from a seed, crossing
// counters) applied to the serving layer's real enemy: write
// failures, short writes, failed renames, failed fsyncs, and slow
// I/O.
//
// Determinism: each site draws from its own rng.Stream(site name), so
// the per-site fire/no-fire sequence is a pure function of (seed,
// site, crossing index) — enabling one site never perturbs another,
// and a single-threaded caller replays byte-identical fault
// sequences. A nil *Plane injects nothing and is safe to use, so the
// production path (no faults configured) costs one nil check.
//
// The FS interface is deliberately tiny: the five operations coltd's
// durability paths actually perform. OS() returns the real
// filesystem; Faulty(fs, plane) wraps any FS with injection.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/rng"
)

// Op names one disk-fault injection site.
type Op string

const (
	// OpWrite fails a file write outright: no bytes reach the file.
	OpWrite Op = "write-fail"
	// OpShortWrite tears a file write: only the first half of the
	// buffer reaches the file before the error surfaces — the on-disk
	// state a crash mid-write leaves behind.
	OpShortWrite Op = "short-write"
	// OpRename fails the rename that commits an atomic write; the
	// temp file is left behind and the destination is untouched.
	OpRename Op = "rename-fail"
	// OpFsync fails an fsync (file or parent directory). Data may sit
	// in the page cache but durability was never promised.
	OpFsync Op = "fsync-fail"
	// OpSlowIO delays a write by the plane's slow-I/O latency instead
	// of failing it — the stall that deadline propagation must absorb.
	OpSlowIO Op = "slow-io"
)

// Ops lists every valid injection site, in display order.
func Ops() []Op {
	return []Op{OpWrite, OpShortWrite, OpRename, OpFsync, OpSlowIO}
}

// opNames renders the valid set for error messages.
func opNames() string {
	ops := Ops()
	names := make([]string, len(ops))
	for i, o := range ops {
		names[i] = string(o)
	}
	return strings.Join(names, ", ")
}

// Spec is a per-site injection rate configuration. The zero value
// injects nothing.
type Spec struct {
	// Rates maps each op to its per-crossing failure probability in
	// [0, 1]. Ops absent from the map never fail.
	Rates map[Op]float64
}

// ParseSpec parses a -disk-faults flag value: comma-separated op=rate
// pairs, where op is one of Ops() or "all" (every op at once) and
// rate is a probability in [0, 1]. The empty string parses to the
// zero Spec (no injection).
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, nil
	}
	spec := Spec{Rates: map[Op]float64{}}
	for _, raw := range strings.Split(s, ",") {
		pair := strings.TrimSpace(raw)
		if pair == "" {
			return Spec{}, fmt.Errorf("faultfs: empty entry in spec %q (valid ops: %s, all)", s, opNames())
		}
		name, rateStr, ok := strings.Cut(pair, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultfs: entry %q is not op=rate (valid ops: %s, all)", pair, opNames())
		}
		name = strings.TrimSpace(name)
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("faultfs: rate in %q is not a number: %v", pair, err)
		}
		if rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("faultfs: rate %g in %q outside [0, 1]", rate, pair)
		}
		if name == "all" {
			for _, op := range Ops() {
				spec.Rates[op] = rate
			}
			continue
		}
		op := Op(name)
		valid := false
		for _, o := range Ops() {
			if o == op {
				valid = true
				break
			}
		}
		if !valid {
			return Spec{}, fmt.Errorf("faultfs: unknown op %q (valid ops: %s, all)", name, opNames())
		}
		spec.Rates[op] = rate
	}
	return spec, nil
}

// Enabled reports whether any op has a non-zero rate.
func (s Spec) Enabled() bool {
	for _, r := range s.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// String renders the spec canonically (ops sorted by name) for logs
// and deterministic reports. The zero spec renders "".
func (s Spec) String() string {
	var ops []Op
	for op, r := range s.Rates {
		if r > 0 {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return ""
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = string(op) + "=" + strconv.FormatFloat(s.Rates[op], 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// Error is the error injected at an op. Seq is the per-op crossing
// count at which the fault fired, so failure messages are stable for
// a given seed and call sequence.
type Error struct {
	Op  Op
	Seq uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultfs: injected %s failure (crossing %d)", e.Op, e.Seq)
}

// IsInjected reports whether err was produced by the disk-fault plane
// (possibly wrapped).
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// opState is one op's generator, rate, and counters.
type opState struct {
	rng       *rng.RNG
	rate      float64
	crossings uint64
	injected  uint64
}

// Plane decides, per op, whether each crossing fails. Unlike the
// simulation plane (one per job, single-goroutine), the disk plane is
// shared by every worker and handler that touches the filesystem, so
// its draws are serialized under a mutex. A nil Plane injects nothing
// and its methods are safe to call.
type Plane struct {
	mu    sync.Mutex
	sites map[Op]*opState
	slow  time.Duration

	// injectedTotal mirrors the sum of per-site injected counts so
	// InjectedTotal is an atomic load — metric scrapes never contend
	// with the draw mutex on the durable-write path.
	injectedTotal atomic.Uint64
}

// DefaultSlowIO is the delay OpSlowIO injects when the plane was not
// given one explicitly.
const DefaultSlowIO = 5 * time.Millisecond

// NewPlane builds a plane for spec, deriving one rng stream per
// configured op from seed. Returns nil when spec injects nothing, so
// the disabled case stays allocation- and draw-free.
func NewPlane(spec Spec, seed uint64) *Plane {
	if !spec.Enabled() {
		return nil
	}
	root := rng.New(seed)
	p := &Plane{sites: make(map[Op]*opState, len(spec.Rates)), slow: DefaultSlowIO}
	for op, rate := range spec.Rates {
		if rate <= 0 {
			continue
		}
		p.sites[op] = &opState{rng: root.Stream(string(op)), rate: rate}
	}
	return p
}

// SetSlowIO overrides the OpSlowIO delay. Safe on a nil plane.
func (p *Plane) SetSlowIO(d time.Duration) {
	if p != nil {
		p.slow = d
	}
}

// fail returns an injected *Error if this crossing of op fires, and
// nil otherwise. Ops with no configured rate never draw, so enabling
// one op cannot perturb another's sequence.
func (p *Plane) fail(op Op) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st := p.sites[op]
	if st == nil {
		p.mu.Unlock()
		return nil
	}
	st.crossings++
	if !st.rng.Bool(st.rate) {
		p.mu.Unlock()
		return nil
	}
	st.injected++
	p.injectedTotal.Add(1)
	seq := st.crossings
	p.mu.Unlock()
	return &Error{Op: op, Seq: seq}
}

// Injected returns how many faults have fired at op.
func (p *Plane) Injected(op Op) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sites[op] == nil {
		return 0
	}
	return p.sites[op].injected
}

// Crossings returns how many times op has been evaluated.
func (p *Plane) Crossings(op Op) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sites[op] == nil {
		return 0
	}
	return p.sites[op].crossings
}

// InjectedTotal returns how many faults have fired across every op.
// Lock-free (one atomic load) so it is safe on a metrics scrape path.
func (p *Plane) InjectedTotal() uint64 {
	if p == nil {
		return 0
	}
	return p.injectedTotal.Load()
}

// File is the open-file surface the durability paths use: write,
// fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem seam. Implementations must be safe for
// concurrent use.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing, truncating it (O_CREATE|O_TRUNC).
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if needed — the
	// journal's handle.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making a preceding rename in it
	// durable.
	SyncDir(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Fsync on a directory is not supported by every filesystem;
	// treat "not supported" as best-effort success like the major
	// databases do, but surface real errors.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, errors.ErrUnsupported) {
		return nil
	}
	return err
}

// faulty wraps an FS with an injection plane.
type faulty struct {
	fs    FS
	plane *Plane
}

// Faulty wraps fs so that every operation consults plane. A nil plane
// returns fs unchanged.
func Faulty(fs FS, plane *Plane) FS {
	if plane == nil {
		return fs
	}
	return &faulty{fs: fs, plane: plane}
}

func (f *faulty) ReadFile(name string) ([]byte, error) { return f.fs.ReadFile(name) }

func (f *faulty) Create(name string) (File, error) {
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, plane: f.plane}, nil
}

func (f *faulty) OpenAppend(name string) (File, error) {
	file, err := f.fs.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, plane: f.plane}, nil
}

func (f *faulty) Rename(oldpath, newpath string) error {
	if err := f.plane.fail(OpRename); err != nil {
		return err
	}
	return f.fs.Rename(oldpath, newpath)
}

func (f *faulty) Remove(name string) error { return f.fs.Remove(name) }

func (f *faulty) MkdirAll(name string, perm os.FileMode) error {
	return f.fs.MkdirAll(name, perm)
}

func (f *faulty) SyncDir(name string) error {
	if err := f.plane.fail(OpFsync); err != nil {
		return err
	}
	return f.fs.SyncDir(name)
}

// faultyFile injects write/sync faults on an open file.
type faultyFile struct {
	f     File
	plane *Plane
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if err := ff.plane.fail(OpSlowIO); err != nil {
		time.Sleep(ff.plane.slow)
	}
	if err := ff.plane.fail(OpWrite); err != nil {
		return 0, err
	}
	if err := ff.plane.fail(OpShortWrite); err != nil {
		// Tear the write: half the buffer lands, then the error — the
		// on-disk state a crash mid-write leaves behind.
		n, werr := ff.f.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) Sync() error {
	if err := ff.plane.fail(OpFsync); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultyFile) Close() error { return ff.f.Close() }

// WriteFileSync writes data to name crash-atomically and durably:
// temp file in the same directory, write, fsync the file, close,
// rename over name, fsync the parent directory. On any failure the
// destination is untouched (the temp file is removed best-effort).
// Rename-without-fsync is NOT crash-atomic — a power cut can leave a
// zero-length or torn destination — which is why every step here
// syncs before the next depends on it.
func WriteFileSync(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(name))
}
