package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"
)

var updateMetricsGolden = flag.Bool("update", false, "rewrite the /metrics inventory golden")

// syncBuffer is a locked bytes.Buffer backing the test slog handler —
// worker goroutines and the admission path log concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrape fetches /metrics and asserts the exposition content type.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}
	return string(body)
}

// metricsInventory reduces an exposition page to its stable shape:
// HELP and TYPE lines verbatim, sample lines stripped of their values.
// Counts drift run to run; the name/label/help inventory must not.
func metricsInventory(t *testing.T, page string) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(page, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			out = append(out, line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		out = append(out, line[:sp])
	}
	return strings.Join(out, "\n") + "\n"
}

// TestMetricsGoldenInventory pins the exported metric names, label
// sets, and help strings against a checked-in golden. Renaming or
// dropping a series breaks operator dashboards and alert rules, so it
// must be a reviewed diff: regenerate with
//
//	go test ./internal/server -run TestMetricsGoldenInventory -update
func TestMetricsGoldenInventory(t *testing.T) {
	s, err := NewServer(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	got := metricsInventory(t, scrape(t, ts))

	// The acceptance floor: a fresh daemon already exposes a real
	// inventory, not a stub page.
	series := 0
	for _, line := range strings.Split(got, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 20 {
		t.Fatalf("fresh /metrics exposes %d series, want >= 20", series)
	}

	path := filepath.Join("testdata", "metrics_inventory.txt")
	if *updateMetricsGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d series)", path, series)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric inventory diverges from golden (re-run with -update if intended).\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsScrapeUnderLoad hammers admission, cancellation, and the
// scrape path concurrently — the race-detector run of this test is
// the proof behind "a monitoring scrape can never stall admission".
func TestMetricsScrapeUnderLoad(t *testing.T) {
	s, err := NewServer(Config{CacheDir: t.TempDir(), QueueDepth: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var submitters, others sync.WaitGroup
	ids := make(chan string, 256)
	for c := 0; c < 3; c++ {
		submitters.Add(1)
		go func(c int) {
			defer submitters.Done()
			for i := 0; i < 25; i++ {
				spec := fmt.Sprintf(`{"experiment": "table1", "quick": true, "refs": 500, "seed": %d}`, c*100+i%7+1)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					continue
				}
				var sr submitResponse
				if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
					if json.NewDecoder(resp.Body).Decode(&sr) == nil {
						select {
						case ids <- sr.ID:
						default:
						}
					}
				}
				resp.Body.Close()
			}
		}(c)
	}
	others.Add(1)
	go func() { // canceler: races terminal transitions against scrapes
		defer others.Done()
		for id := range ids {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}()
	for c := 0; c < 2; c++ {
		others.Add(1)
		go func() {
			defer others.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		submitters.Wait()
		close(ids) // lets the canceler drain and exit
		others.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("scrape-under-load run wedged")
	}

	// The page must still be a valid exposition afterwards, and the
	// admission counters must have seen the traffic.
	page := scrape(t, ts)
	metricsInventory(t, page) // validity pass
	if !strings.Contains(page, "coltd_jobs_submitted_total") {
		t.Fatal("submitted_total family missing after load")
	}
}

// TestTraceEndToEnd is the acceptance scenario for trace propagation:
// one submission with a client-supplied X-Colt-Trace shows up, with
// the same ID, in (1) the admission log line, (2) the WAL accept
// record, (3) the worker execution log, (4) the cache-commit log,
// (5) the response header, and (6) the timeline endpoint.
func TestTraceEndToEnd(t *testing.T) {
	const trace = "feedc0defeedc0de"
	dir := t.TempDir()
	var logBuf syncBuffer
	s, err := NewServer(Config{
		CacheDir: dir,
		Logger:   slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"experiment": "table1", "quick": true, "refs": 500}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Colt-Trace", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	// (5) The response echoes the adopted trace.
	if got := resp.Header.Get("X-Colt-Trace"); got != trace {
		t.Fatalf("submit X-Colt-Trace = %q, want %q", got, trace)
	}

	j, ok := s.lookupJob(sr.ID)
	if !ok {
		t.Fatalf("job %s not tracked", sr.ID)
	}
	waitState(t, j, JobDone)

	// (6) The timeline endpoint reports the same trace.
	tlResp, tlBody := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/timeline")
	if tlResp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status = %d: %s", tlResp.StatusCode, tlBody)
	}
	if got := tlResp.Header.Get("X-Colt-Trace"); got != trace {
		t.Fatalf("timeline X-Colt-Trace = %q, want %q", got, trace)
	}
	var tl timelineResponse
	if err := json.Unmarshal(tlBody, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TraceID != trace {
		t.Fatalf("timeline trace_id = %q, want %q", tl.TraceID, trace)
	}

	// (2) The WAL accept record carries the trace.
	wal, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(wal, []byte(`"trace":"`+trace+`"`)) {
		t.Fatalf("WAL carries no accept record for trace %s:\n%s", trace, wal)
	}

	// (1), (3), (4): the structured log stream ties admission, worker
	// execution, and the cache commit to the same trace.
	logged := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg   string `json:"msg"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable structured log line %q: %v", line, err)
		}
		if rec.Trace == trace {
			logged[rec.Msg] = true
		}
	}
	for _, msg := range []string{"job admitted", "job running", "cache commit", "job finished"} {
		if !logged[msg] {
			t.Errorf("no %q log line carries trace %s; lines with it: %v", msg, trace, logged)
		}
	}
}

// TestSSEEndMatchesTimeline is the regression test for the terminal
// timestamp skew bug: the SSE "end" event's finished_unix_ns, the
// job-status snapshot, and the timeline's terminal mark must all be
// the same instant, because all three read the one terminal
// transition record.
func TestSSEEndMatchesTimeline(t *testing.T) {
	s, err := NewServer(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sr := postJob(t, ts, `{"experiment": "table1", "quick": true, "refs": 500}`)
	sseResp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, sseResp.Body)
	sseResp.Body.Close()
	var end jobStatus
	var sawEnd bool
	for _, ev := range events {
		if ev.Name == "end" {
			if err := json.Unmarshal([]byte(ev.Data), &end); err != nil {
				t.Fatalf("end event data %q: %v", ev.Data, err)
			}
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("stream carried no end event")
	}
	if end.State != JobDone {
		t.Fatalf("end state = %s (%s)", end.State, end.Error)
	}
	if end.FinishedUnixNs == 0 {
		t.Fatal("end event carries no finished_unix_ns")
	}

	_, tlBody := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/timeline")
	var tl timelineResponse
	if err := json.Unmarshal(tlBody, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Marks) == 0 {
		t.Fatal("timeline has no marks")
	}
	term := tl.Marks[len(tl.Marks)-1]
	if term.Phase != string(JobDone) {
		t.Fatalf("terminal mark phase = %q, want %q", term.Phase, JobDone)
	}
	if term.UnixNs != end.FinishedUnixNs {
		t.Fatalf("timeline terminal mark %d != SSE end finished_unix_ns %d (skew %v)",
			term.UnixNs, end.FinishedUnixNs, time.Duration(term.UnixNs-end.FinishedUnixNs))
	}

	// The plain status snapshot agrees too.
	_, stBody := getBody(t, ts.URL+"/v1/jobs/"+sr.ID)
	var st jobStatus
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.FinishedUnixNs != end.FinishedUnixNs {
		t.Fatalf("status finished_unix_ns %d != SSE end %d", st.FinishedUnixNs, end.FinishedUnixNs)
	}
}
