package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"

	"colt/internal/metrics"
	"colt/internal/server/faultfs"
)

// journalFile is the accepted-job write-ahead log inside the cache
// directory. One JSON record per line, each fsynced before the
// admission that wrote it returns: "accept" records carry the spec at
// admission, "commit" records mark the job resolved (result cached,
// failed, canceled by the user, or checkpointed to pending.json). The
// live set — accepts without a matching commit — is exactly the work
// a crash would otherwise lose, and replaying it at startup recovers
// precisely the jobs a graceful drain would have checkpointed.
//
// Replay is idempotent because results are content-addressed: a
// re-accepted spec whose report landed in the cache before the crash
// (its commit record lost to the same crash) completes instantly as a
// cache hit instead of re-simulating.
const journalFile = "journal.wal"

// journalSchema identifies the record layout.
const journalSchema = "colt-journal/1"

// journalRecord is one WAL line. Sum is the SHA-256 of the record's
// canonical encoding with Sum itself empty, so a torn or bit-flipped
// line is detected on replay instead of being trusted. Trace carries
// the admission's request-scoped trace ID so a replayed job keeps the
// identity its original submission logged under; records written
// before tracing existed simply omit it and still verify.
type journalRecord struct {
	Op    string `json:"op"` // "accept" | "commit"
	Hash  string `json:"hash"`
	Spec  *Spec  `json:"spec,omitempty"` // accept records only
	Trace string `json:"trace,omitempty"`
	Sum   string `json:"sum,omitempty"`
}

// journalLive is one accepted-but-unresolved record as surfaced to
// startup replay: the spec to resubmit and the trace ID it was
// originally admitted under.
type journalLive struct {
	Spec  Spec
	Trace string
}

// sealed returns the record's wire line: the JSON encoding with Sum
// filled in, newline-terminated.
func (r journalRecord) sealed() ([]byte, error) {
	r.Sum = ""
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	r.Sum = metrics.Sum256Hex(body)
	line, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// verify re-derives the checksum of a parsed record and compares it
// against the recorded one.
func (r journalRecord) verify() bool {
	want := r.Sum
	r.Sum = ""
	body, err := json.Marshal(r)
	if err != nil {
		return false
	}
	return want != "" && metrics.Sum256Hex(body) == want
}

// Journal is the accepted-job WAL. All appends are serialized under
// one mutex and fsynced before returning — a single write-ahead log
// is inherently a serialization point; admission's cache-hit and
// coalesce fast paths never touch it.
type Journal struct {
	mu   sync.Mutex
	fs   faultfs.FS
	path string
	f    faultfs.File

	// live is the accept set not yet committed, keyed by spec hash
	// (duplicate accepts of one hash collapse; replay submits once).
	live map[string]journalLive
	// order preserves first-accept order for replay.
	order []string

	// Counters are atomics so a metrics scrape reads them without
	// touching mu — the WAL mutex orders durable appends, not
	// observability. liveN mirrors len(live) under mu.
	appended  atomic.Uint64
	committed atomic.Uint64
	torn      atomic.Uint64 // corrupt/torn records skipped during open
	liveN     atomic.Int64
}

// JournalStats is the journal's counter snapshot for /v1/stats.
type JournalStats struct {
	// Live is the current accepted-but-unresolved record count — what
	// a crash right now would replay.
	Live int `json:"live"`
	// Appended and Committed count records written this process life.
	Appended  uint64 `json:"appended"`
	Committed uint64 `json:"committed"`
	// Replayed counts jobs resubmitted from the journal at startup.
	Replayed uint64 `json:"replayed"`
	// TornSkipped counts corrupt or torn records skipped (with a
	// logged warning) when the journal was opened.
	TornSkipped uint64 `json:"torn_skipped"`
	// SkippedDegraded counts appends suppressed while the disk
	// circuit breaker was open — jobs admitted without durability.
	SkippedDegraded uint64 `json:"skipped_degraded"`
}

// openJournal opens (or creates) the WAL in dir, returning the
// journal and the live specs of a prior crashed run, in first-accept
// order. Torn records — a final line truncated mid-write, a checksum
// mismatch — are skipped with a counted warning, never a startup
// failure: the journal exists to survive crashes, so its own tail is
// allowed to be a casualty of one.
func openJournal(fsys faultfs.FS, dir string) (*Journal, []journalLive, error) {
	jl := &Journal{
		fs:   fsys,
		path: filepath.Join(dir, journalFile),
		live: make(map[string]journalLive),
	}
	raw, err := fsys.ReadFile(jl.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: reading %s: %w", jl.path, err)
	}
	if len(raw) > 0 {
		jl.replayBytes(raw)
	}
	f, err := fsys.OpenAppend(jl.path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s for append: %w", jl.path, err)
	}
	jl.f = f
	recs := make([]journalLive, 0, len(jl.order))
	for _, h := range jl.order {
		recs = append(recs, jl.live[h])
	}
	return jl, recs, nil
}

// replayBytes scans the WAL contents, building the live set. A final
// line without its newline is the torn-write signature and is
// verified like any other; any record that fails to parse or verify
// is skipped and counted.
func (jl *Journal) replayBytes(raw []byte) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || !rec.verify() {
			jl.torn.Add(1)
			log.Printf("journal: skipping torn record at line %d (parse or checksum failure)", lineNo)
			continue
		}
		switch rec.Op {
		case "accept":
			if rec.Spec == nil || rec.Hash == "" {
				jl.torn.Add(1)
				log.Printf("journal: skipping malformed accept at line %d", lineNo)
				continue
			}
			if _, ok := jl.live[rec.Hash]; !ok {
				jl.order = append(jl.order, rec.Hash)
			}
			jl.live[rec.Hash] = journalLive{Spec: *rec.Spec, Trace: rec.Trace}
		case "commit":
			if _, ok := jl.live[rec.Hash]; ok {
				delete(jl.live, rec.Hash)
				jl.dropOrder(rec.Hash)
			}
		default:
			jl.torn.Add(1)
			log.Printf("journal: skipping record with unknown op %q at line %d", rec.Op, lineNo)
		}
	}
	// A scanner error here means an oversized or unterminated tail;
	// whatever parsed before it stands.
	if err := sc.Err(); err != nil {
		jl.torn.Add(1)
		log.Printf("journal: stopped scanning after line %d: %v", lineNo, err)
	}
	jl.liveN.Store(int64(len(jl.live)))
}

func (jl *Journal) dropOrder(hash string) {
	for i, h := range jl.order {
		if h == hash {
			jl.order = append(jl.order[:i], jl.order[i+1:]...)
			return
		}
	}
}

// append seals rec and writes it through with an fsync.
func (jl *Journal) append(rec journalRecord) error {
	line, err := rec.sealed()
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	if jl.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := jl.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending record: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Accept durably records an admitted job — and the trace ID it was
// admitted under — before its submission returns. Duplicate accepts of
// one hash are legal (a replayed spec re-accepts itself) and collapse
// in the live set.
func (jl *Journal) Accept(hash string, spec Spec, trace string) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.append(journalRecord{Op: "accept", Hash: hash, Spec: &spec, Trace: trace}); err != nil {
		return err
	}
	jl.appended.Add(1)
	if _, ok := jl.live[hash]; !ok {
		jl.order = append(jl.order, hash)
	}
	jl.live[hash] = journalLive{Spec: spec, Trace: trace}
	jl.liveN.Store(int64(len(jl.live)))
	return nil
}

// Commit durably marks an accepted job resolved. Committing a hash
// with no live accept is a no-op (the accept may have been suppressed
// while degraded).
func (jl *Journal) Commit(hash string) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, ok := jl.live[hash]; !ok {
		return nil
	}
	if err := jl.append(journalRecord{Op: "commit", Hash: hash}); err != nil {
		return err
	}
	jl.committed.Add(1)
	delete(jl.live, hash)
	jl.dropOrder(hash)
	jl.liveN.Store(int64(len(jl.live)))
	return nil
}

// Compact rewrites the WAL to hold only the live accept records,
// dropping the resolved history. Crash-atomic: the new WAL is written
// beside the old and renamed over it (both fsynced), and the append
// handle is re-pointed at the new file. Called after startup replay
// and at the end of a graceful drain.
func (jl *Journal) Compact() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	var buf bytes.Buffer
	for _, h := range jl.order {
		rec := jl.live[h]
		line, err := (journalRecord{Op: "accept", Hash: h, Spec: &rec.Spec, Trace: rec.Trace}).sealed()
		if err != nil {
			return fmt.Errorf("journal: encoding live record: %w", err)
		}
		buf.Write(line)
	}
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	if err := faultfs.WriteFileSync(jl.fs, jl.path, buf.Bytes()); err != nil {
		// Reopen the old handle so the journal keeps appending even if
		// compaction failed; the uncompacted WAL is still correct.
		if f, ferr := jl.fs.OpenAppend(jl.path); ferr == nil {
			jl.f = f
		}
		return fmt.Errorf("journal: compacting: %w", err)
	}
	f, err := jl.fs.OpenAppend(jl.path)
	if err != nil {
		return fmt.Errorf("journal: reopening after compact: %w", err)
	}
	jl.f = f
	return nil
}

// Live returns the current accepted-but-unresolved count. Lock-free:
// it reads the atomic mirror, so metric scrapes never queue behind an
// in-flight fsync.
func (jl *Journal) Live() int {
	return int(jl.liveN.Load())
}

// Counters snapshots the append/commit/torn counters (atomic loads).
func (jl *Journal) Counters() (appended, committed, torn uint64) {
	return jl.appended.Load(), jl.committed.Load(), jl.torn.Load()
}

// Close releases the append handle. Appends after Close error.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}
