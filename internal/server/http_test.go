package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colt/internal/metrics"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp, sr
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Name string
	Data string
}

// readSSE consumes an event stream to EOF (the handler closes it
// after the terminal "end" event).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Name != "" || cur.Data != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// TestEndToEndFig18 is the ISSUE's acceptance scenario against the
// real experiment engine: submit a quick fig18, stream its SSE
// progress to completion, fetch the report, resubmit the identical
// spec, and get byte-identical bytes from the cache — verified by
// hash — with zero additional simulation jobs.
func TestEndToEndFig18(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, err := NewServer(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"experiment": "fig18", "quick": true, "refs": 1000}`
	resp, sub := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	if sub.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	if resp.Header.Get("Location") != "/v1/jobs/"+sub.ID {
		t.Fatalf("Location = %q", resp.Header.Get("Location"))
	}

	// Stream progress to completion: the stream must carry per-phase
	// events and terminate with an "end" event showing state=done.
	sseResp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	events := readSSE(t, sseResp.Body)
	sseResp.Body.Close()
	var phases, dones int
	var final jobStatus
	for _, ev := range events {
		switch ev.Name {
		case "phase":
			phases++
		case "done":
			dones++
		case "end":
			if err := json.Unmarshal([]byte(ev.Data), &final); err != nil {
				t.Fatalf("end event data %q: %v", ev.Data, err)
			}
		}
	}
	if phases == 0 || dones == 0 {
		t.Fatalf("stream carried %d phase / %d done events, want both > 0", phases, dones)
	}
	if final.State != JobDone {
		t.Fatalf("end event state = %s (%s), want done", final.State, final.Error)
	}

	// Fetch the report and verify the advertised integrity hash.
	repResp, report := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/report")
	if repResp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d: %s", repResp.StatusCode, report)
	}
	sum := repResp.Header.Get("X-Report-Sha256")
	if sum == "" || metrics.Sum256Hex(report) != sum {
		t.Fatalf("report bytes do not match advertised hash %q", sum)
	}
	var parsed metrics.Report
	if err := json.Unmarshal(report, &parsed); err != nil || len(parsed.Records) == 0 {
		t.Fatalf("report unparseable or empty (err %v)", err)
	}

	// Resubmit the identical spec: a cache hit, byte-identical,
	// hash-verified, zero additional simulations.
	resp2, sub2 := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusCreated || !sub2.Cached {
		t.Fatalf("resubmit status=%d cached=%v, want 201 + cache hit", resp2.StatusCode, sub2.Cached)
	}
	if sub2.ReportSHA256 != sum {
		t.Fatalf("resubmit advertises hash %q, first run recorded %q", sub2.ReportSHA256, sum)
	}
	_, report2 := getBody(t, ts.URL+"/v1/jobs/"+sub2.ID+"/report")
	if !bytes.Equal(report, report2) {
		t.Fatal("cached serve is not byte-identical")
	}
	var st Stats
	_, statsBody := getBody(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Simulations != 1 {
		t.Fatalf("simulations = %d after resubmit, want 1", st.Simulations)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("cache stats %+v recorded no hit", st.Cache)
	}
	if ep, ok := st.Endpoints["POST /v1/jobs"]; !ok || ep.Requests < 2 {
		t.Fatalf("endpoint stats missing submissions: %+v", st.Endpoints)
	}
}

// TestDrainDuringInflightPreservesResult is the SIGTERM half of the
// acceptance scenario (cmd/coltd wires SIGTERM to Drain; the smoke
// script exercises that wiring): a drain that begins while a job is
// running finishes the job and its report survives.
func TestDrainDuringInflightPreservesResult(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{CacheDir: t.TempDir()}, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sub := postJob(t, ts, `{"experiment": "stub", "seed": 6}`)
	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("submitted job untracked")
	}
	waitState(t, j, JobRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Readiness flips to draining (liveness stays 200); new
	// submissions are refused with Retry-After while the in-flight job
	// is still being finished.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hr, _ := getBody(t, ts.URL+"/v1/readyz")
		if hr.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if hr, _ := getBody(t, ts.URL+"/v1/healthz"); hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness is not readiness)", hr.StatusCode)
	}
	refused, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "stub", "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable || refused.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit: status=%d Retry-After=%q, want 503 with Retry-After",
			refused.StatusCode, refused.Header.Get("Retry-After"))
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	repResp, report := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/report")
	if repResp.StatusCode != http.StatusOK || len(report) == 0 {
		t.Fatalf("report after drain: status=%d len=%d; in-flight result lost",
			repResp.StatusCode, len(report))
	}
}

func TestHTTPErrors(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newStubServer(t, Config{Workers: 1, QueueDepth: 1, MaxRefs: 100}, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, path, body string
		status                   int
		contains                 string
	}{
		{"malformed JSON", "POST", "/v1/jobs", `{"experiment":`, http.StatusBadRequest, "invalid job spec"},
		{"unknown field", "POST", "/v1/jobs", `{"experiment": "stub", "bogus": 1}`, http.StatusBadRequest, "bogus"},
		{"unknown experiment", "POST", "/v1/jobs", `{"experiment": "nope"}`, http.StatusBadRequest, "valid experiments"},
		{"refs ceiling", "POST", "/v1/jobs", `{"experiment": "stub", "refs": 1000}`, http.StatusTooManyRequests, "ceiling"},
		{"unknown job", "GET", "/v1/jobs/j999999", "", http.StatusNotFound, "unknown job"},
		{"unknown job report", "GET", "/v1/jobs/j999999/report", "", http.StatusNotFound, "unknown job"},
		{"unknown job cancel", "DELETE", "/v1/jobs/j999999", "", http.StatusNotFound, "unknown job"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, b)
			}
			if !strings.Contains(string(b), tc.contains) {
				t.Fatalf("body %q does not mention %q", b, tc.contains)
			}
		})
	}

	// Report of a still-running job is a 409; its trace a 404. Queue
	// overflow is a 503 with Retry-After.
	_, sub := postJob(t, ts, `{"experiment": "stub", "refs": 50, "seed": 1}`)
	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatalf("submission rejected: %+v", sub)
	}
	waitState(t, j, JobRunning)
	if resp, body := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/report"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("running-job report: status=%d body=%s, want 409", resp.StatusCode, body)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traceless job trace: status=%d, want 404", resp.StatusCode)
	}
	postJob(t, ts, `{"experiment": "stub", "refs": 50, "seed": 2}`) // fill the queue slot
	full, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "stub", "refs": 50, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	full.Body.Close()
	if full.StatusCode != http.StatusServiceUnavailable || full.Header.Get("Retry-After") == "" {
		t.Fatalf("queue-full submit: status=%d Retry-After=%q, want 503 with Retry-After",
			full.StatusCode, full.Header.Get("Retry-After"))
	}
}

func TestHTTPCancelAndCoalesce(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{Workers: 1}, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, a := postJob(t, ts, `{"experiment": "stub", "seed": 1}`)
	ja, _ := s.Job(a.ID)
	waitState(t, ja, JobRunning)

	// An identical submission coalesces: 200 (not 201), same job ID.
	resp, b := postJob(t, ts, `{"experiment": "stub", "seed": 1}`)
	if resp.StatusCode != http.StatusOK || b.ID != a.ID {
		t.Fatalf("coalesce: status=%d id=%s, want 200 and %s", resp.StatusCode, b.ID, a.ID)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
	waitState(t, ja, JobCanceled)
	// Canceling again conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil)
	dresp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status = %d, want 409", dresp2.StatusCode)
	}
	close(gate)
}

// TestSSEReplayForLateSubscriber: a subscriber attaching after the
// job completed still sees the full event log plus the terminal end
// event.
func TestSSEReplayForLateSubscriber(t *testing.T) {
	s := newStubServer(t, Config{}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sub := postJob(t, ts, `{"experiment": "stub", "seed": 1}`)
	j, _ := s.Job(sub.ID)
	waitState(t, j, JobDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Name)
	}
	want := []string{"jobs", "phase", "done", "end"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("late replay kinds = %v, want %v", kinds, want)
	}
}

func TestTraceArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sub := postJob(t, ts, `{"experiment": "table1", "quick": true, "refs": 500, "trace": true}`)
	j, _ := s.Job(sub.ID)
	waitState(t, j, JobDone)
	resp, trace := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &chrome); err != nil || len(chrome.TraceEvents) == 0 {
		t.Fatalf("trace artifact unparseable or empty (err %v)", err)
	}

	// Tracing must not leak into the cache key: the same spec without
	// trace is a cache hit (which, having skipped simulation, has no
	// trace of its own).
	resp2, sub2 := postJob(t, ts, `{"experiment": "table1", "quick": true, "refs": 500}`)
	if resp2.StatusCode != http.StatusCreated || !sub2.Cached {
		t.Fatalf("untraced resubmit: status=%d cached=%v, want cache hit", resp2.StatusCode, sub2.Cached)
	}
	if tr, _ := getBody(t, ts.URL+"/v1/jobs/"+sub2.ID+"/trace"); tr.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-hit job served a trace: %d", tr.StatusCode)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	s := newStubServer(t, Config{}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, body := getBody(t, ts.URL+"/v1/experiments")
	var out struct {
		Experiments []struct{ Name, Desc string } `json:"experiments"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Experiments) != 1 || out.Experiments[0].Name != "stub" {
		t.Fatalf("experiments = %+v", out.Experiments)
	}
}
