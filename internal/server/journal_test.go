package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colt/internal/server/faultfs"
)

func openTestJournal(t *testing.T, dir string) (*Journal, []journalLive) {
	t.Helper()
	jl, live, err := openJournal(faultfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl, live
}

// TestJournalAcceptCommitReplay: accepts without commits are exactly
// what a reopen replays, in first-accept order; committed jobs are
// gone.
func TestJournalAcceptCommitReplay(t *testing.T) {
	dir := t.TempDir()
	jl, live := openTestJournal(t, dir)
	if len(live) != 0 {
		t.Fatalf("fresh journal replays %d specs", len(live))
	}
	specs := []Spec{
		{Experiment: "stub", Seed: 1},
		{Experiment: "stub", Seed: 2},
		{Experiment: "stub", Seed: 3},
	}
	for i, sp := range specs {
		if err := jl.Accept(hashFor(t, i), sp, "tracetest-0000"); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Commit(hashFor(t, 1)); err != nil { // resolve the middle one
		t.Fatal(err)
	}
	if jl.Live() != 2 {
		t.Fatalf("live = %d, want 2", jl.Live())
	}
	jl.Close()

	_, replay := openTestJournal(t, dir)
	if len(replay) != 2 {
		t.Fatalf("replayed %d specs, want 2", len(replay))
	}
	if replay[0].Spec.Seed != 1 || replay[1].Spec.Seed != 3 {
		t.Fatalf("replay order/content wrong: %+v", replay)
	}
}

func hashFor(t *testing.T, i int) string {
	t.Helper()
	return strings.Repeat("0", 63) + string(rune('a'+i))
}

// TestJournalTornFinalRecordSkipped is the satellite's core claim: a
// final record truncated mid-write (the crash signature) is skipped
// with a counted warning, never a startup failure, and every record
// before it replays.
func TestJournalTornFinalRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	jl, _ := openTestJournal(t, dir)
	if err := jl.Accept(hashFor(t, 0), Spec{Experiment: "stub", Seed: 7}, "tracetest-0000"); err != nil {
		t.Fatal(err)
	}
	if err := jl.Accept(hashFor(t, 1), Spec{Experiment: "stub", Seed: 8}, "tracetest-0000"); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	// Tear the last record: truncate the file mid-line.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	jl2, replay := openTestJournal(t, dir)
	if len(replay) != 1 || replay[0].Spec.Seed != 7 {
		t.Fatalf("replay after torn tail = %+v, want just seed 7", replay)
	}
	if _, _, torn := jl2.Counters(); torn != 1 {
		t.Fatalf("torn counter = %d, want 1", torn)
	}
}

// TestJournalCorruptMiddleRecordSkipped: a bit-flipped record in the
// middle of the WAL fails its checksum and is skipped; its neighbors
// replay.
func TestJournalCorruptMiddleRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	jl, _ := openTestJournal(t, dir)
	for i := 0; i < 3; i++ {
		if err := jl.Accept(hashFor(t, i), Spec{Experiment: "stub", Seed: uint64(i + 1)}, "tracetest-0000"); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	path := filepath.Join(dir, journalFile)
	raw, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = strings.Replace(lines[1], `"seed":2`, `"seed":9`, 1) // checksum now wrong
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	jl2, replay := openTestJournal(t, dir)
	if len(replay) != 2 || replay[0].Spec.Seed != 1 || replay[1].Spec.Seed != 3 {
		t.Fatalf("replay = %+v, want seeds 1 and 3", replay)
	}
	if _, _, torn := jl2.Counters(); torn != 1 {
		t.Fatalf("torn counter = %d, want 1", torn)
	}
}

// TestJournalDuplicateAcceptsCollapse: a replayed spec re-accepts
// itself under the same hash; the live set holds it once.
func TestJournalDuplicateAcceptsCollapse(t *testing.T) {
	dir := t.TempDir()
	jl, _ := openTestJournal(t, dir)
	sp := Spec{Experiment: "stub", Seed: 4}
	for i := 0; i < 3; i++ {
		if err := jl.Accept(hashFor(t, 0), sp, "tracetest-0000"); err != nil {
			t.Fatal(err)
		}
	}
	if jl.Live() != 1 {
		t.Fatalf("live = %d, want 1 after duplicate accepts", jl.Live())
	}
	jl.Close()
	_, replay := openTestJournal(t, dir)
	if len(replay) != 1 {
		t.Fatalf("replayed %d, want 1", len(replay))
	}
}

// TestJournalCompact: compaction rewrites the WAL to the live set
// only; a reopen after compaction replays the same jobs from a much
// smaller file, and commits against the compacted file still work.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	jl, _ := openTestJournal(t, dir)
	for i := 0; i < 4; i++ {
		if err := jl.Accept(hashFor(t, i), Spec{Experiment: "stub", Seed: uint64(i)}, "tracetest-0000"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := jl.Commit(hashFor(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, journalFile))
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink the WAL: %d -> %d", before.Size(), after.Size())
	}
	// The surviving record commits against the reopened handle.
	if err := jl.Commit(hashFor(t, 3)); err != nil {
		t.Fatal(err)
	}
	jl.Close()
	_, replay := openTestJournal(t, dir)
	if len(replay) != 0 {
		t.Fatalf("replayed %d specs after full resolution, want 0", len(replay))
	}
}

// TestJournalFsyncFaultSurfaces: with the fsync-fail site armed, an
// Accept reports the injected error — proving the append path really
// fsyncs (remove the Sync call and this test fails).
func TestJournalFsyncFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	plane := faultfs.NewPlane(faultfs.Spec{Rates: map[faultfs.Op]float64{faultfs.OpFsync: 1}}, 3)
	jl, _, err := openJournal(faultfs.Faulty(faultfs.OS(), plane), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	err = jl.Accept(hashFor(t, 0), Spec{Experiment: "stub"}, "tracetest-0000")
	if err == nil || !faultfs.IsInjected(err) {
		t.Fatalf("Accept under fsync-fail = %v, want injected error", err)
	}
	if plane.Injected(faultfs.OpFsync) == 0 {
		t.Fatal("fsync site never fired: the journal append is not syncing")
	}
}
