// Package server is coltd's serving layer: it exposes the experiment
// engine over HTTP/JSON with a bounded job queue, a content-addressed
// result cache, and per-job streaming progress.
//
// The core bet is that determinism makes simulation results perfectly
// cacheable: a job's report is a pure function of its canonicalized
// spec, so the SHA-256 of the canonical spec JSON is a content address
// for the report, identical specs are served from cache without
// re-simulating, and a cache hit is verifiable byte-for-byte against
// the recorded report hash. Around that core sit the serving-stack
// mechanics that transfer to any inference-style service: admission
// control (bounded queue depth and a per-request reference ceiling,
// refusing with 429/503 + Retry-After), request coalescing (identical
// in-flight specs share one execution), per-endpoint latency and
// inflight counters, and graceful drain (finish in-flight work,
// checkpoint the rest, flush the cache index).
package server

import (
	"fmt"
	"sort"
	"strings"

	"colt/internal/experiments"
	"colt/internal/fault"
	"colt/internal/metrics"
)

// Spec is the job submission body of POST /v1/jobs. Zero-valued
// fields take the experiment engine's defaults (DefaultOptions, or
// QuickOptions under quick:true), with the same override semantics as
// the cmd/experiments flags — a refs override derives warmup as
// refs/10. EXPERIMENTS.md documents the JSON schema.
type Spec struct {
	// Experiment names a registry entry (experiments.Registry).
	Experiment string `json:"experiment"`
	// Quick selects the small quick-run base options.
	Quick bool `json:"quick,omitempty"`
	// Frames overrides physical memory frames (0 = default).
	Frames int `json:"frames,omitempty"`
	// Scale overrides the workload footprint scale (0 = default).
	Scale float64 `json:"scale,omitempty"`
	// Refs overrides measured references per benchmark (0 = default);
	// warmup follows as refs/10.
	Refs int `json:"refs,omitempty"`
	// Seed overrides the RNG seed (0 = default).
	Seed uint64 `json:"seed,omitempty"`
	// Faults is a deterministic fault-injection spec
	// ("site=rate,..." or "all=rate"; see internal/fault).
	Faults string `json:"faults,omitempty"`
	// Histograms embeds telemetry histograms and phase spans in the
	// report.
	Histograms bool `json:"histograms,omitempty"`
	// CheckInvariants arms the invariant auditors at job checkpoints.
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// Retries is the per-job deterministic retry budget for injected
	// faults. nil takes the engine default (1); explicit 0 disables.
	Retries *int `json:"retries,omitempty"`
	// Trace records a Chrome trace-event artifact for the job, served
	// at /v1/jobs/{id}/trace. Tracing never changes the report, so it
	// is excluded from the cache key — but traces exist only for jobs
	// that actually simulated, never for cache hits.
	Trace bool `json:"trace,omitempty"`
	// DeadlineMs is the client's patience budget in milliseconds
	// (0 = none), measured from admission. A job still queued past its
	// deadline is shed instead of dispatched; a running job has the
	// deadline propagated into its execution context. Wall-clock
	// policy, so never part of the cache key — and a submission that
	// coalesces onto an in-flight job inherits that job's deadline.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// canonicalSpec is the hashed form of a job: the experiment name plus
// the deterministic options snapshot the metrics layer already embeds
// in reports, and the two knobs outside that snapshot which still
// shape report bytes (auditor arming changes failure records; the
// retry budget changes attempt counts). Everything that cannot change
// the report — Trace, the worker count, wall-clock timeouts — is
// deliberately absent, so requests differing only in those coalesce
// onto one cache entry.
type canonicalSpec struct {
	Experiment      string          `json:"experiment"`
	Options         metrics.Options `json:"options"`
	CheckInvariants bool            `json:"check_invariants,omitempty"`
	Retries         int             `json:"retries"`
}

// CanonicalJob is a validated, canonicalized submission: the resolved
// registry entry, the fully-expanded engine options, and the
// content-address hash. Two submissions that mean the same thing —
// quick:true versus its spelled-out equivalent — canonicalize to the
// same hash.
type CanonicalJob struct {
	Spec Spec // the submission as received (checkpointing re-submits it)
	Exp  experiments.NamedExperiment
	Opts experiments.Options
	Hash string
}

// Canonicalize validates spec against a registry (the server's, which
// tests may stub) and resolves it to a CanonicalJob. Errors name the
// offending field and, for unknown experiments, the valid set — they
// are the 400 bodies of the submit endpoint.
func Canonicalize(spec Spec, reg []experiments.NamedExperiment) (CanonicalJob, error) {
	var exp experiments.NamedExperiment
	found := false
	for _, e := range reg {
		if e.Name == spec.Experiment {
			exp, found = e, true
			break
		}
	}
	if !found {
		names := make([]string, len(reg))
		for i, e := range reg {
			names[i] = e.Name
		}
		sort.Strings(names)
		return CanonicalJob{}, fmt.Errorf("unknown experiment %q; valid experiments: %s",
			spec.Experiment, strings.Join(names, ", "))
	}
	if spec.Frames < 0 {
		return CanonicalJob{}, fmt.Errorf("frames must be >= 0, got %d", spec.Frames)
	}
	if spec.Scale < 0 {
		return CanonicalJob{}, fmt.Errorf("scale must be >= 0, got %g", spec.Scale)
	}
	if spec.Refs < 0 {
		return CanonicalJob{}, fmt.Errorf("refs must be >= 0, got %d", spec.Refs)
	}
	if spec.Retries != nil && *spec.Retries < 0 {
		return CanonicalJob{}, fmt.Errorf("retries must be >= 0, got %d", *spec.Retries)
	}
	if spec.DeadlineMs < 0 {
		return CanonicalJob{}, fmt.Errorf("deadline_ms must be >= 0, got %d", spec.DeadlineMs)
	}
	faults, err := fault.ParseSpec(spec.Faults)
	if err != nil {
		return CanonicalJob{}, fmt.Errorf("faults: %w", err)
	}

	opts := experiments.DefaultOptions()
	if spec.Quick {
		opts = experiments.QuickOptions()
	}
	if spec.Scale > 0 {
		opts.Scale = spec.Scale
	}
	if spec.Refs > 0 {
		opts.Refs = spec.Refs
		opts.Warmup = spec.Refs / 10
	}
	if spec.Frames > 0 {
		opts.Frames = spec.Frames
	}
	if spec.Seed != 0 {
		opts.Seed = spec.Seed
	}
	opts.Faults = faults
	opts.Histograms = spec.Histograms
	opts.CheckInvariants = spec.CheckInvariants
	opts.Retries = 1
	if spec.Retries != nil {
		opts.Retries = *spec.Retries
	}

	hash, err := metrics.HashHex(canonicalSpec{
		Experiment:      exp.Name,
		Options:         opts.Snapshot(),
		CheckInvariants: spec.CheckInvariants,
		Retries:         opts.Retries,
	})
	if err != nil {
		return CanonicalJob{}, fmt.Errorf("hashing spec: %w", err)
	}
	return CanonicalJob{Spec: spec, Exp: exp, Opts: opts, Hash: hash}, nil
}
