package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colt/internal/cluster"
	"colt/internal/metrics"
)

// swapHandler lets an httptest listener come up before the server it
// will front exists. The fleet bootstrap needs every peer's URL in
// hand before any NewServer call (the cluster config carries them),
// so listeners boot first answering 503, then the real handlers swap
// in.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sh.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// testNode is one member of an httptest fleet.
type testNode struct {
	id string
	s  *Server
	ts *httptest.Server
	sw *swapHandler
}

// kill simulates a node crash: the listener drops (peers start
// missing heartbeats) and the process state is torn down without
// drain niceties.
func (n *testNode) kill() {
	n.ts.Close()
	n.s.Close()
}

// newTestCluster boots n coltd servers wired into one fleet. mutate
// (optional) edits each node's Config after the cluster block is
// filled in — tests use it to install gated registries or steal
// thresholds.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		sw := &swapHandler{}
		nodes[i] = &testNode{
			id: fmt.Sprintf("n%d", i+1),
			ts: httptest.NewServer(sw),
			sw: sw,
		}
	}
	for i, nd := range nodes {
		peers := make(map[string]string)
		for _, other := range nodes {
			if other.id != nd.id {
				peers[other.id] = other.ts.URL
			}
		}
		cfg := Config{
			Registry: stubRegistry(nil),
			Cluster: &cluster.Config{
				NodeID:            nd.id,
				Peers:             peers,
				HeartbeatInterval: 25 * time.Millisecond,
				StealInterval:     25 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatalf("node %s: %v", nd.id, err)
		}
		nd.s = s
		h := s.Handler()
		nd.sw.h.Store(&h)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.s.Close()
		}
	})
	return nodes
}

// fleetSimulations sums actual experiment executions across nodes.
func fleetSimulations(nodes []*testNode) uint64 {
	var n uint64
	for _, nd := range nodes {
		n += nd.s.Stats().Simulations
	}
	return n
}

// submitJSON posts a spec and decodes the submit response.
func submitJSON(t *testing.T, baseURL, spec string) (*http.Response, jobStatus) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp, js
}

// waitDoneHTTP polls a job's status endpoint until state=done.
func waitDoneHTTP(t *testing.T, baseURL, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, b := getBody(t, baseURL+"/v1/jobs/"+id)
		var js jobStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(b, &js); err == nil {
				switch js.State {
				case "done":
					return
				case "failed", "canceled":
					t.Fatalf("job %s reached %s: %s", id, js.State, js.Error)
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached done", id)
}

// TestClusterAnyNodeServesByteIdentical is the headline acceptance
// scenario: a spec submitted to any of the three nodes returns the
// byte-identical report, hash-verified, regardless of which node owns
// the key — with exactly one simulation across the fleet.
func TestClusterAnyNodeServesByteIdentical(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	spec := `{"experiment":"stub","quick":true,"seed":42}`

	var reports [][]byte
	var shas []string
	for _, nd := range nodes {
		resp, js := submitJSON(t, nd.ts.URL, spec)
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit via %s: status %d", nd.id, resp.StatusCode)
		}
		waitDoneHTTP(t, nd.ts.URL, js.ID)
		rr, b := getBody(t, nd.ts.URL+"/v1/jobs/"+js.ID+"/report")
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("report via %s: status %d: %s", nd.id, rr.StatusCode, b)
		}
		if sha := rr.Header.Get("X-Report-Sha256"); sha != "" {
			if got := metrics.Sum256Hex(b); got != sha {
				t.Fatalf("report via %s: sha %s, header claims %s", nd.id, got, sha)
			}
			shas = append(shas, sha)
		}
		reports = append(reports, b)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("report via %s differs from report via %s", nodes[i].id, nodes[0].id)
		}
	}
	for i := 1; i < len(shas); i++ {
		if shas[i] != shas[0] {
			t.Fatalf("sha disagreement across nodes: %v", shas)
		}
	}
	if n := fleetSimulations(nodes); n != 1 {
		t.Fatalf("fleet ran %d simulations, want exactly 1", n)
	}
}

// TestClusterReadyzMembership is the readyz satellite: the body
// reports node identity and the fleet view.
func TestClusterReadyzMembership(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	// Let one heartbeat round complete so peers have been seen.
	time.Sleep(100 * time.Millisecond)
	resp, b := getBody(t, nodes[0].ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: status %d: %s", resp.StatusCode, b)
	}
	var body struct {
		Cluster *struct {
			NodeID   string         `json:"node_id"`
			RingSize int            `json:"ring_size"`
			Alive    int            `json:"peers_alive"`
			Suspect  int            `json:"peers_suspect"`
			Dead     int            `json:"peers_dead"`
			Peers    []cluster.Peer `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(b, &body); err != nil {
		t.Fatalf("decoding readyz: %v\n%s", err, b)
	}
	if body.Cluster == nil {
		t.Fatalf("readyz body has no cluster block: %s", b)
	}
	c := body.Cluster
	if c.NodeID != "n1" || c.RingSize != 3 || c.Alive != 2 || c.Dead != 0 {
		t.Fatalf("readyz cluster = %+v, want node n1, ring 3, 2 alive", c)
	}
	if len(c.Peers) != 2 {
		t.Fatalf("readyz lists %d peers, want 2", len(c.Peers))
	}
}

// TestClusterCrossNodeCoalesce: identical specs submitted
// concurrently to two *different* nodes must coalesce onto one
// execution on the ring owner — the cluster-wide version of the
// single-node coalescing guarantee.
func TestClusterCrossNodeCoalesce(t *testing.T) {
	gate := make(chan struct{})
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Registry = stubRegistry(gate) // every node's runs block on the gate
	})
	spec := `{"experiment":"stub","quick":true,"seed":7}`

	// Submit from two distinct nodes at once. The gate holds the
	// owner's run in flight so the second submission finds a live job
	// to coalesce onto rather than a finished cache entry.
	type result struct {
		id   string
		code int
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for _, nd := range []*testNode{nodes[0], nodes[1]} {
		wg.Add(1)
		go func(nd *testNode) {
			defer wg.Done()
			resp, js := submitJSON(t, nd.ts.URL, spec)
			results <- result{id: js.ID, code: resp.StatusCode}
		}(nd)
	}
	wg.Wait()
	close(results)
	var ids []string
	for r := range results {
		if r.code != http.StatusCreated && r.code != http.StatusOK {
			t.Fatalf("submit status %d", r.code)
		}
		ids = append(ids, r.id)
	}
	if ids[0] != ids[1] {
		t.Fatalf("submissions landed on different jobs: %s vs %s — did not coalesce", ids[0], ids[1])
	}
	close(gate)
	waitDoneHTTP(t, nodes[0].ts.URL, ids[0])
	if n := fleetSimulations(nodes); n != 1 {
		t.Fatalf("fleet ran %d simulations for one coalesced spec, want 1", n)
	}
}

// TestClusterKillNodeSurvivors: after reports have been served (and
// therefore replicated by read-through peer fill), killing any one
// node leaves every previously served hash servable from the
// survivors, byte-identical, with zero new simulations.
func TestClusterKillNodeSurvivors(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)

	specs := make([]string, 5)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"experiment":"stub","quick":true,"seed":%d}`, 100+i)
	}
	reports := make([][]byte, len(specs))
	for i, spec := range specs {
		// Submit via a rotating node, then read the report through a
		// *different* node: the read-through tee caches the bytes on
		// the reader, so every report ends on ≥2 nodes before the kill.
		submitVia := nodes[i%3]
		readVia := nodes[(i+1)%3]
		_, js := submitJSON(t, submitVia.ts.URL, spec)
		waitDoneHTTP(t, submitVia.ts.URL, js.ID)
		rr, b := getBody(t, readVia.ts.URL+"/v1/jobs/"+js.ID+"/report")
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill report read via %s: status %d: %s", readVia.id, rr.StatusCode, b)
		}
		reports[i] = b
	}
	if n := fleetSimulations(nodes); n != uint64(len(specs)) {
		t.Fatalf("fleet ran %d simulations for %d distinct specs", n, len(specs))
	}

	victim := nodes[2]
	victim.kill()
	survivors := []*testNode{nodes[0], nodes[1]}
	survivorSimsBefore := fleetSimulations(survivors)

	// Wait until both survivors have declared the victim dead and
	// shrunk their rings, so submissions stop routing to the corpse.
	waitFor(t, 5*time.Second, func() bool {
		for _, nd := range survivors {
			if nd.s.cluster.Ring().Size() != 2 {
				return false
			}
		}
		return true
	})

	// Every previously served spec must be servable from each
	// survivor, byte-identical to the pre-kill bytes.
	for i, spec := range specs {
		for _, nd := range survivors {
			resp, js := submitJSON(t, nd.ts.URL, spec)
			if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
				t.Fatalf("post-kill submit via %s: status %d", nd.id, resp.StatusCode)
			}
			waitDoneHTTP(t, nd.ts.URL, js.ID)
			rr, b := getBody(t, nd.ts.URL+"/v1/jobs/"+js.ID+"/report")
			if rr.StatusCode != http.StatusOK {
				t.Fatalf("post-kill report via %s: status %d: %s", nd.id, rr.StatusCode, b)
			}
			if !bytes.Equal(b, reports[i]) {
				t.Fatalf("post-kill report for spec %d via %s differs from pre-kill bytes", i, nd.id)
			}
		}
	}
	if after := fleetSimulations(survivors); after != survivorSimsBefore {
		t.Fatalf("survivors re-ran %d simulations; every hash should have served from cache or a peer",
			after-survivorSimsBefore)
	}
}

// TestClusterWorkStealing: a victim whose queue backs up has its
// queued jobs pulled by an idle peer, executed there, and committed
// back through the victim's cache — the victim's job objects reach
// done with verifiable reports even though its own worker never ran
// them.
func TestClusterWorkStealing(t *testing.T) {
	victimGate := make(chan struct{})
	nodes := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.Cluster.StealThreshold = 2
		cfg.Cluster.StealMax = 4
		if i == 0 {
			cfg.Registry = stubRegistry(victimGate) // victim's own runs block
		}
	})
	victim, stealer := nodes[0], nodes[1]
	defer close(victimGate)

	// Find specs the victim owns so submissions to it stay local.
	ring := victim.s.cluster.Ring()
	var specs []Spec
	for seed := uint64(1); len(specs) < 4; seed++ {
		sp := Spec{Experiment: "stub", Quick: true, Seed: seed}
		can, err := Canonicalize(sp, stubRegistry(nil))
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(can.Hash) == victim.id {
			specs = append(specs, sp)
		}
	}

	// First submission occupies the victim's only worker (gated); the
	// rest pile up in its queue past the steal threshold.
	var jobIDs []string
	for _, sp := range specs {
		b, _ := json.Marshal(sp)
		_, js := submitJSON(t, victim.ts.URL, string(b))
		jobIDs = append(jobIDs, js.ID)
	}

	// The idle stealer must pull the queued jobs and commit them back:
	// queued victim jobs reach done while the victim's worker is still
	// gated.
	waitFor(t, 10*time.Second, func() bool {
		done := 0
		for _, id := range jobIDs[1:] {
			j, ok := victim.s.lookupJob(id)
			if !ok {
				return false
			}
			if st, _ := j.State(); st == JobDone {
				done++
			}
		}
		return done == len(jobIDs)-1
	})
	if got := stealer.s.cluster.Counters.StealsIn.Load(); got == 0 {
		t.Fatal("stealer reports zero steals despite remote completions")
	}
	if got := victim.s.cluster.Counters.StealsOut.Load(); got == 0 {
		t.Fatal("victim reports zero handed-out jobs")
	}
	// Stolen results must be hash-verifiable through the victim.
	for _, id := range jobIDs[1:] {
		rr, b := getBody(t, victim.ts.URL+"/v1/jobs/"+id+"/report")
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("stolen job %s report: status %d", id, rr.StatusCode)
		}
		if sha := rr.Header.Get("X-Report-Sha256"); sha != "" && metrics.Sum256Hex(b) != sha {
			t.Fatalf("stolen job %s report bytes do not match advertised sha", id)
		}
	}

	// Release the gated job and confirm the whole set lands done.
	// (close via defer would also do it, but assert the happy path.)
	victimGate <- struct{}{}
	waitDoneHTTP(t, victim.ts.URL, jobIDs[0])
}

// TestStolenLeaseReclaim: a stolen job whose stealer vanishes is
// requeued locally once its lease expires — no job is lost to a dead
// thief.
func TestStolenLeaseReclaim(t *testing.T) {
	// A one-node cluster: no peers to steal for real, but the lease
	// machinery (stolen map, reaper, cluster counters) is armed.
	s := newStubServer(t, Config{
		Cluster: &cluster.Config{NodeID: "n1"},
	}, nil)
	res := mustSubmit(t, s, Spec{Experiment: "stub", Quick: true, Seed: 1})
	waitState(t, res.Job, JobDone)

	// Fabricate a second job held on an expired lease: minted, marked
	// running-as-stolen, never committed.
	can, err := Canonicalize(Spec{Experiment: "stub", Quick: true, Seed: 2}, stubRegistry(nil))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	j := s.newTrackedJob(can, now, false, "trace-lease")
	if !j.startStolen("ghost", now) {
		t.Fatal("startStolen refused a queued job")
	}
	s.stolenMu.Lock()
	s.stolen[j.ID] = &stolenLease{j: j, stealer: "ghost", expires: now.Add(-time.Second)}
	s.stolenMu.Unlock()

	s.reapStolen(time.Now())

	waitState(t, j, JobDone)
	s.stolenMu.Lock()
	left := len(s.stolen)
	s.stolenMu.Unlock()
	if left != 0 {
		t.Fatalf("%d stolen leases survive the reap", left)
	}
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
