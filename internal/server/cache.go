package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"colt/internal/metrics"
	"colt/internal/server/faultfs"
)

// cacheIndexFile is the on-disk index name inside the cache directory.
const cacheIndexFile = "index.json"

// metaSuffix is the per-entry sidecar suffix: <key>.meta.json holds
// the entry's index record, written durably next to the entry file
// itself. The sidecars — not index.json — are the source of truth:
// index.json is a fast-load snapshot flushed at drain, and a torn or
// missing index is rebuilt from the hash-verified sidecars instead of
// losing the cache.
const metaSuffix = ".meta.json"

// CacheEntry is one cached report's index record. Key is the content
// address (SHA-256 of the canonical spec JSON); Sum is the SHA-256 of
// the report bytes, the integrity check applied on every read so a
// corrupted or hand-edited entry is recomputed, never served.
type CacheEntry struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Sum        string `json:"sha256"`
	Size       int    `json:"size"`
}

// cacheIndex is the serialized index.json layout.
type cacheIndex struct {
	Schema  string       `json:"schema"`
	Entries []CacheEntry `json:"entries"`
}

// cacheSchema identifies the index layout.
const cacheSchema = "colt-cache/1"

// Cache is the content-addressed result store. With a directory it
// persists each report as <dir>/<key>.json plus a durable per-entry
// meta sidecar and an index snapshot flushed on drain; with an empty
// directory it is memory-only. All methods are safe for concurrent
// use: reads share an RWMutex read lock and do their file I/O and
// hash verification outside any lock, so a zipf-hot key served to
// many clients at once never serializes on the mutex for the
// expensive part.
//
// Crash tolerance: every durable write goes through the injectable
// filesystem seam (internal/server/faultfs) and is fsynced —
// temp-write, fsync file, rename, fsync parent directory — so a
// SIGKILL or power cut leaves either the old state or the new, never
// a torn file the next boot trusts. When the disk turns hostile the
// cache degrades to a memory overlay (setDegraded) instead of
// failing jobs: entries written while degraded are served from
// memory and flushed back to disk when the circuit breaker closes.
type Cache struct {
	mu      sync.RWMutex
	dir     string
	fs      faultfs.FS
	entries map[string]CacheEntry
	// mem is the byte store for memory mode, and the degraded-mode
	// overlay for disk mode. Values are immutable once stored.
	mem map[string][]byte

	degraded atomic.Bool // disk mode only: writes go to the overlay

	hits, misses, corrupt atomic.Uint64
	degradedPuts          atomic.Uint64

	// entriesN and overlayN mirror len(entries) and len(mem) so the
	// metrics gauges read them without the cache lock. Maintained at
	// every mutation site (always under mu).
	entriesN atomic.Int64
	overlayN atomic.Int64

	// Rebuild outcome, set once at open.
	rebuilt        int
	rebuildEvicted int
	indexTorn      bool
}

// OpenCache opens (or initializes) a cache rooted at dir, loading a
// prior index if one exists. dir == "" selects memory-only mode.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheFS(dir, faultfs.OS())
}

// OpenCacheFS is OpenCache with an explicit filesystem seam (the
// fault plane's entry point). If index.json is torn or missing but
// entry files exist, the index is rebuilt from the per-entry meta
// sidecars: each candidate's bytes are re-hashed against its recorded
// sum, verified entries are re-indexed, and corrupt ones are evicted
// and counted — a crashed daemon recovers its cache instead of
// recomputing it.
func OpenCacheFS(dir string, fsys faultfs.FS) (*Cache, error) {
	c := &Cache{dir: dir, fs: fsys, entries: make(map[string]CacheEntry), mem: make(map[string][]byte)}
	if dir == "" {
		return c, nil
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating %s: %w", dir, err)
	}
	raw, err := fsys.ReadFile(filepath.Join(dir, cacheIndexFile))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// No index: rebuild below finds whatever the sidecars prove.
	case err != nil:
		return nil, fmt.Errorf("cache: reading index: %w", err)
	default:
		var idx cacheIndex
		if jerr := json.Unmarshal(raw, &idx); jerr != nil {
			// A torn index is a crash artifact, not a fatal condition:
			// fall through to the sidecar rebuild.
			c.indexTorn = true
		} else {
			for _, e := range idx.Entries {
				c.entries[e.Key] = e
			}
		}
	}
	if err := c.rebuildFromSidecars(); err != nil {
		return nil, err
	}
	c.entriesN.Store(int64(len(c.entries)))
	return c, nil
}

// rebuildFromSidecars reconciles the in-memory index against the
// per-entry meta sidecars on disk. Entries the loaded index already
// covers are trusted here (every Get re-verifies them anyway);
// sidecar-only entries — Puts that landed after the last index flush,
// or the whole cache when the index was torn — are admitted only if
// their bytes hash to the recorded sum, and evicted otherwise.
func (c *Cache) rebuildFromSidecars() error {
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("cache: scanning %s: %w", c.dir, err)
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, metaSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, metaSuffix)
		if _, ok := c.entries[key]; ok {
			continue
		}
		metaPath := filepath.Join(c.dir, name)
		evict := func() {
			c.fs.Remove(metaPath)
			c.fs.Remove(c.entryPath(key))
			c.rebuildEvicted++
		}
		raw, err := c.fs.ReadFile(metaPath)
		if err != nil {
			evict()
			continue
		}
		var e CacheEntry
		if json.Unmarshal(raw, &e) != nil || e.Key != key || e.Sum == "" {
			evict()
			continue
		}
		b, err := c.fs.ReadFile(c.entryPath(key))
		if err != nil || metrics.Sum256Hex(b) != e.Sum {
			evict()
			continue
		}
		c.entries[key] = e
		c.rebuilt++
	}
	return nil
}

// Dir returns the cache's directory ("" in memory mode).
func (c *Cache) Dir() string { return c.dir }

// setDegraded flips disk-mode writes between the real filesystem and
// the memory overlay. No-op in memory mode.
func (c *Cache) setDegraded(on bool) {
	if c.dir != "" {
		c.degraded.Store(on)
	}
}

func (c *Cache) isDegraded() bool { return c.degraded.Load() }

// entryPath is the report file for a key; metaPath its sidecar.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) metaPath(key string) string {
	return filepath.Join(c.dir, key+metaSuffix)
}

// Get returns the cached report bytes for key, verifying them against
// the recorded hash. A missing, unreadable, or corrupted entry counts
// as a miss (corruption is additionally counted and the entry
// evicted) so the caller recomputes instead of serving bad bytes.
//
// Only the index lookup holds the (read) lock; the file read and the
// SHA-256 verification run lock-free. The memory overlay (memory
// mode, or entries written while degraded) is checked first.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	var b []byte
	if ok {
		b = c.mem[key] // immutable once stored; safe to use after unlock
	}
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	if b == nil {
		if c.dir == "" {
			// Memory mode promised an entry it no longer holds.
			c.evictCorrupt(key, e.Sum)
			return nil, false
		}
		var err error
		b, err = c.fs.ReadFile(c.entryPath(key))
		if err != nil {
			// The index promised an entry the disk no longer has:
			// treat as corruption, evict, recompute.
			c.evictCorrupt(key, e.Sum)
			return nil, false
		}
	}
	if metrics.Sum256Hex(b) != e.Sum {
		c.evictCorrupt(key, e.Sum)
		return nil, false
	}
	c.hits.Add(1)
	return b, true
}

// evictCorrupt drops a failed entry and counts it as both a
// corruption and a miss. The verification happened outside the lock,
// so it re-checks that the entry is still the one that failed — a
// concurrent Put of fresh bytes must not be evicted.
func (c *Cache) evictCorrupt(key, failedSum string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.Sum == failedSum {
		delete(c.entries, key)
		c.entriesN.Add(-1)
		if _, had := c.mem[key]; had {
			delete(c.mem, key)
			c.overlayN.Add(-1)
		}
		if c.dir != "" {
			c.fs.Remove(c.entryPath(key))
			c.fs.Remove(c.metaPath(key))
		}
	}
	c.mu.Unlock()
	c.corrupt.Add(1)
	c.misses.Add(1)
}

// Put stores report bytes under key. In disk mode the entry file and
// its meta sidecar are written durably (temp + fsync + rename + dir
// fsync) before the entry becomes visible; if the disk write fails
// the bytes are kept in the memory overlay — the result is still
// served — and the error is returned so the caller can feed its
// circuit breaker. While degraded, Puts skip the disk entirely.
func (c *Cache) Put(key, experiment string, b []byte) error {
	e := CacheEntry{Key: key, Experiment: experiment, Sum: metrics.Sum256Hex(b), Size: len(b)}
	if c.dir == "" {
		c.putOverlay(key, e, b)
		return nil
	}
	if c.isDegraded() {
		c.putOverlay(key, e, b)
		c.degradedPuts.Add(1)
		return nil
	}
	if err := c.writeEntryFiles(e, b); err != nil {
		c.putOverlay(key, e, b)
		c.degradedPuts.Add(1)
		return err
	}
	c.mu.Lock()
	if _, existed := c.entries[key]; !existed {
		c.entriesN.Add(1)
	}
	c.entries[key] = e
	if _, had := c.mem[key]; had {
		delete(c.mem, key) // the durable copy supersedes any overlay copy
		c.overlayN.Add(-1)
	}
	c.mu.Unlock()
	return nil
}

// putOverlay publishes an entry backed by memory only.
func (c *Cache) putOverlay(key string, e CacheEntry, b []byte) {
	stored := append([]byte(nil), b...)
	c.mu.Lock()
	if _, had := c.mem[key]; !had {
		c.overlayN.Add(1)
	}
	c.mem[key] = stored
	if _, existed := c.entries[key]; !existed {
		c.entriesN.Add(1)
	}
	c.entries[key] = e
	c.mu.Unlock()
}

// writeEntryFiles writes the entry file and its meta sidecar, each
// crash-atomically and fsynced.
func (c *Cache) writeEntryFiles(e CacheEntry, b []byte) error {
	if err := faultfs.WriteFileSync(c.fs, c.entryPath(e.Key), b); err != nil {
		return fmt.Errorf("cache: writing entry: %w", err)
	}
	meta, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: encoding entry meta: %w", err)
	}
	if err := faultfs.WriteFileSync(c.fs, c.metaPath(e.Key), append(meta, '\n')); err != nil {
		return fmt.Errorf("cache: writing entry meta: %w", err)
	}
	return nil
}

// FlushOverlay writes entries that only live in the memory overlay
// back to disk — the recovery step after the circuit breaker closes.
// Returns how many entries were flushed; stops at the first disk
// error (the caller re-opens the breaker).
func (c *Cache) FlushOverlay() (int, error) {
	if c.dir == "" {
		return 0, nil
	}
	c.mu.RLock()
	keys := make([]string, 0, len(c.mem))
	for k := range c.mem {
		keys = append(keys, k)
	}
	c.mu.RUnlock()
	sort.Strings(keys)
	flushed := 0
	for _, k := range keys {
		c.mu.RLock()
		e, ok := c.entries[k]
		b := c.mem[k]
		c.mu.RUnlock()
		if !ok || b == nil {
			continue
		}
		if err := c.writeEntryFiles(e, b); err != nil {
			return flushed, err
		}
		c.mu.Lock()
		if _, had := c.mem[k]; had {
			delete(c.mem, k)
			c.overlayN.Add(-1)
		}
		c.mu.Unlock()
		flushed++
	}
	return flushed, nil
}

// Entry returns the index record for key, if present.
func (c *Cache) Entry(key string) (CacheEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key]
	return e, ok
}

// SaveIndex flushes the index snapshot to disk (no-op in memory mode
// and while degraded — a hostile disk gets no writes), written
// crash-atomically, fsynced, and key-sorted so restarts and hand
// inspection are deterministic. The drain path calls this; callers
// may also call it periodically. Losing an index flush is never fatal
// thanks to the sidecar rebuild, but a fresh index makes the next
// boot cheap.
func (c *Cache) SaveIndex() error {
	if c.dir == "" || c.isDegraded() {
		return nil
	}
	c.mu.RLock()
	idx := cacheIndex{Schema: cacheSchema, Entries: make([]CacheEntry, 0, len(c.entries))}
	for k, e := range c.entries {
		if c.mem[k] != nil {
			continue // overlay-only entries have no durable file to index
		}
		idx.Entries = append(idx.Entries, e)
	}
	c.mu.RUnlock()
	sort.Slice(idx.Entries, func(i, j int) bool { return idx.Entries[i].Key < idx.Entries[j].Key })
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: encoding index: %w", err)
	}
	path := filepath.Join(c.dir, cacheIndexFile)
	if err := faultfs.WriteFileSync(c.fs, path, append(b, '\n')); err != nil {
		return fmt.Errorf("cache: committing index: %w", err)
	}
	return nil
}

// CacheStats is the cache's counter snapshot for /v1/stats.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
	// Rebuilt counts entries re-indexed from hash-verified meta
	// sidecars at open (index.json torn, missing, or stale);
	// RebuildEvicted counts sidecar candidates whose bytes failed
	// verification and were removed.
	Rebuilt        int `json:"rebuilt,omitempty"`
	RebuildEvicted int `json:"rebuild_evicted,omitempty"`
	// IndexTorn records that index.json existed but did not parse.
	IndexTorn bool `json:"index_torn,omitempty"`
	// DegradedPuts counts entries that went to the memory overlay
	// because the disk was failing (or the breaker already open).
	DegradedPuts uint64 `json:"degraded_puts,omitempty"`
	// OverlayEntries is the current overlay population in disk mode —
	// results that survive only until the process exits unless
	// FlushOverlay lands them.
	OverlayEntries int `json:"overlay_entries,omitempty"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	overlay := 0
	if c.dir != "" {
		overlay = len(c.mem)
	}
	c.mu.RUnlock()
	return CacheStats{
		Entries:        n,
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Corrupt:        c.corrupt.Load(),
		Rebuilt:        c.rebuilt,
		RebuildEvicted: c.rebuildEvicted,
		IndexTorn:      c.indexTorn,
		DegradedPuts:   c.degradedPuts.Load(),
		OverlayEntries: overlay,
	}
}
