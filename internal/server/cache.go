package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"colt/internal/metrics"
)

// cacheIndexFile is the on-disk index name inside the cache directory.
const cacheIndexFile = "index.json"

// CacheEntry is one cached report's index record. Key is the content
// address (SHA-256 of the canonical spec JSON); Sum is the SHA-256 of
// the report bytes, the integrity check applied on every read so a
// corrupted or hand-edited entry is recomputed, never served.
type CacheEntry struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Sum        string `json:"sha256"`
	Size       int    `json:"size"`
}

// cacheIndex is the serialized index.json layout.
type cacheIndex struct {
	Schema  string       `json:"schema"`
	Entries []CacheEntry `json:"entries"`
}

// cacheSchema identifies the index layout.
const cacheSchema = "colt-cache/1"

// Cache is the content-addressed result store. With a directory it
// persists each report as <dir>/<key>.json plus an index flushed on
// drain (a restarted daemon reuses prior results); with an empty
// directory it is memory-only. All methods are safe for concurrent
// use: reads share an RWMutex read lock and do their file I/O and
// hash verification outside any lock, so a zipf-hot key served to
// many clients at once never serializes on the mutex for the
// expensive part.
type Cache struct {
	mu      sync.RWMutex
	dir     string
	entries map[string]CacheEntry
	mem     map[string][]byte // memory mode only; values are immutable once stored

	hits, misses, corrupt atomic.Uint64
}

// OpenCache opens (or initializes) a cache rooted at dir, loading a
// prior index if one exists. dir == "" selects memory-only mode.
func OpenCache(dir string) (*Cache, error) {
	c := &Cache{dir: dir, entries: make(map[string]CacheEntry)}
	if dir == "" {
		c.mem = make(map[string][]byte)
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating %s: %w", dir, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, cacheIndexFile))
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cache: reading index: %w", err)
	}
	var idx cacheIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		return nil, fmt.Errorf("cache: parsing index: %w", err)
	}
	for _, e := range idx.Entries {
		c.entries[e.Key] = e
	}
	return c, nil
}

// Dir returns the cache's directory ("" in memory mode).
func (c *Cache) Dir() string { return c.dir }

// entryPath is the report file for a key.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached report bytes for key, verifying them against
// the recorded hash. A missing, unreadable, or corrupted entry counts
// as a miss (corruption is additionally counted and the entry
// evicted) so the caller recomputes instead of serving bad bytes.
//
// Only the index lookup holds the (read) lock; the file read and the
// SHA-256 verification run lock-free.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	var b []byte
	if ok && c.mem != nil {
		b = c.mem[key] // immutable once stored; safe to use after unlock
	}
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	if c.mem == nil {
		var err error
		b, err = os.ReadFile(c.entryPath(key))
		if err != nil {
			// The index promised an entry the disk no longer has:
			// treat as corruption, evict, recompute.
			c.evictCorrupt(key, e.Sum)
			return nil, false
		}
	}
	if metrics.Sum256Hex(b) != e.Sum {
		c.evictCorrupt(key, e.Sum)
		return nil, false
	}
	c.hits.Add(1)
	return b, true
}

// evictCorrupt drops a failed entry and counts it as both a
// corruption and a miss. The verification happened outside the lock,
// so it re-checks that the entry is still the one that failed — a
// concurrent Put of fresh bytes must not be evicted.
func (c *Cache) evictCorrupt(key, failedSum string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.Sum == failedSum {
		delete(c.entries, key)
		if c.mem != nil {
			delete(c.mem, key)
		} else {
			os.Remove(c.entryPath(key))
		}
	}
	c.mu.Unlock()
	c.corrupt.Add(1)
	c.misses.Add(1)
}

// Put stores report bytes under key. In disk mode the entry file is
// written immediately (write-then-rename for atomicity); the index is
// flushed separately by SaveIndex.
func (c *Cache) Put(key, experiment string, b []byte) error {
	e := CacheEntry{Key: key, Experiment: experiment, Sum: metrics.Sum256Hex(b), Size: len(b)}
	if c.mem != nil {
		stored := append([]byte(nil), b...)
		c.mu.Lock()
		c.mem[key] = stored
		c.entries[key] = e
		c.mu.Unlock()
		return nil
	}
	tmp := c.entryPath(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("cache: writing entry: %w", err)
	}
	if err := os.Rename(tmp, c.entryPath(key)); err != nil {
		return fmt.Errorf("cache: committing entry: %w", err)
	}
	c.mu.Lock()
	c.entries[key] = e
	c.mu.Unlock()
	return nil
}

// Entry returns the index record for key, if present.
func (c *Cache) Entry(key string) (CacheEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key]
	return e, ok
}

// SaveIndex flushes the index to disk (no-op in memory mode), written
// atomically and key-sorted so restarts and hand inspection are
// deterministic. The drain path calls this; callers may also call it
// periodically.
func (c *Cache) SaveIndex() error {
	c.mu.RLock()
	if c.mem != nil {
		c.mu.RUnlock()
		return nil
	}
	idx := cacheIndex{Schema: cacheSchema, Entries: make([]CacheEntry, 0, len(c.entries))}
	for _, e := range c.entries {
		idx.Entries = append(idx.Entries, e)
	}
	c.mu.RUnlock()
	sort.Slice(idx.Entries, func(i, j int) bool { return idx.Entries[i].Key < idx.Entries[j].Key })
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: encoding index: %w", err)
	}
	path := filepath.Join(c.dir, cacheIndexFile)
	if err := os.WriteFile(path+".tmp", append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("cache: writing index: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return fmt.Errorf("cache: committing index: %w", err)
	}
	return nil
}

// CacheStats is the cache's counter snapshot for /v1/stats.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load(), Corrupt: c.corrupt.Load()}
}
