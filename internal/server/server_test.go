package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
)

// stubRegistry returns a one-entry registry whose driver emits a
// deterministic record derived from the run's seed — fast, but with
// the same byte-stable report property as the real engine. A non-nil
// gate makes the driver block until the gate closes (or the run's
// context cancels), which is how tests hold jobs in flight.
func stubRegistry(gate chan struct{}) []experiments.NamedExperiment {
	return []experiments.NamedExperiment{{
		Name: "stub", Desc: "test stub",
		Run: func(opts experiments.Options) error {
			if gate != nil {
				select {
				case <-gate:
				case <-opts.Ctx.Done():
					return opts.Ctx.Err()
				}
			}
			if opts.Progress != nil {
				opts.Progress.AddJobs(1)
				opts.Progress.Phase("stub/s", "run")
				opts.Progress.Done("stub/s", true)
			}
			opts.Metrics.Add(metrics.Record{
				Kind: "bench", Bench: "stub", Setup: "s", Seed: opts.Seed,
			}, 0)
			return nil
		},
	}}
}

func newStubServer(t *testing.T, cfg Config, gate chan struct{}) *Server {
	t.Helper()
	cfg.Registry = stubRegistry(gate)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitState polls until the job reaches want (fatal on timeout or on
// reaching a different terminal state).
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	// Generous: the tests that run real simulations can near 10s under
	// the race detector on a loaded host.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, errMsg := j.State()
		if st == want {
			return
		}
		if st.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state = %s (%s), want %s", j.ID, st, errMsg, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustSubmit(t *testing.T, s *Server, spec Spec) SubmitResult {
	t.Helper()
	res, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", spec, err)
	}
	return res
}

// TestSecondServeIsByteIdenticalCacheHit is the cache-layer satellite:
// an identical resubmission is served from cache — verified
// byte-for-byte against the first report and against the recorded
// hash — with the hit counter up and no new simulation started.
func TestSecondServeIsByteIdenticalCacheHit(t *testing.T) {
	s := newStubServer(t, Config{}, nil)
	spec := Spec{Experiment: "stub", Quick: true, Seed: 7}

	first := mustSubmit(t, s, spec)
	if !first.Created || first.Cached {
		t.Fatalf("first submit: %+v, want fresh execution", first)
	}
	waitState(t, first.Job, JobDone)
	b1, ok := s.Report(first.Job)
	if !ok {
		t.Fatal("no report for completed job")
	}

	second := mustSubmit(t, s, spec)
	if !second.Cached {
		t.Fatalf("second submit: %+v, want cache hit", second)
	}
	if st, _ := second.Job.State(); st != JobDone {
		t.Fatalf("cached job state = %s, want done immediately", st)
	}
	b2, ok := s.Report(second.Job)
	if !ok || !bytes.Equal(b1, b2) {
		t.Fatal("second serve is not byte-identical to the first")
	}
	e, ok := s.cache.Entry(first.Job.Can.Hash)
	if !ok || metrics.Sum256Hex(b2) != e.Sum {
		t.Fatalf("served bytes do not verify against recorded hash %q", e.Sum)
	}

	st := s.Stats()
	if st.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (cache hit must not simulate)", st.Simulations)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("cache stats %+v recorded no hit", st.Cache)
	}
}

// TestCorruptedEntryIsRecomputed: corruption behind the daemon's back
// is detected at the next submission, which transparently re-runs the
// simulation and restores byte-identical service.
func TestCorruptedEntryIsRecomputed(t *testing.T) {
	dir := t.TempDir()
	s := newStubServer(t, Config{CacheDir: dir}, nil)
	spec := Spec{Experiment: "stub", Quick: true, Seed: 11}

	first := mustSubmit(t, s, spec)
	waitState(t, first.Job, JobDone)
	b1, _ := s.Report(first.Job)

	entry := filepath.Join(dir, first.Job.Can.Hash+".json")
	if err := os.WriteFile(entry, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	second := mustSubmit(t, s, spec)
	if second.Cached {
		t.Fatal("corrupted entry served as a cache hit")
	}
	waitState(t, second.Job, JobDone)
	b2, ok := s.Report(second.Job)
	if !ok || !bytes.Equal(b1, b2) {
		t.Fatal("recomputed report is not byte-identical to the original")
	}
	st := s.Stats()
	if st.Cache.Corrupt != 1 {
		t.Fatalf("cache stats %+v, want corrupt=1", st.Cache)
	}
	if st.Simulations != 2 {
		t.Fatalf("simulations = %d, want 2 (corruption forces recompute)", st.Simulations)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newStubServer(t, Config{}, nil)
	if _, err := s.Submit(Spec{Experiment: "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte("stub")) {
		t.Fatalf("unknown-experiment error %q does not list the valid set", got)
	}
	if _, err := s.Submit(Spec{Experiment: "stub", Refs: -1}); err == nil {
		t.Fatal("negative refs accepted")
	}
}

func TestAdmissionRefsCeiling(t *testing.T) {
	s := newStubServer(t, Config{MaxRefs: 100}, nil)
	_, err := s.Submit(Spec{Experiment: "stub", Refs: 1_000})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := s.Submit(Spec{Experiment: "stub", Refs: 100, Quick: true}); err != nil {
		t.Fatalf("at-limit spec refused: %v", err)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{Workers: 1, QueueDepth: 1}, gate)
	a := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, a.Job, JobRunning)                     // worker occupied
	mustSubmit(t, s, Spec{Experiment: "stub", Seed: 2}) // fills the slot
	_, err := s.Submit(Spec{Experiment: "stub", Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(gate)
}

// TestCoalescing: an identical spec submitted while the first is
// still in flight shares its execution instead of queueing a second.
func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{}, gate)
	spec := Spec{Experiment: "stub", Seed: 5}
	a := mustSubmit(t, s, spec)
	waitState(t, a.Job, JobRunning)
	b := mustSubmit(t, s, spec)
	if b.Created || b.Job != a.Job {
		t.Fatalf("identical in-flight spec did not coalesce: %+v", b)
	}
	close(gate)
	waitState(t, a.Job, JobDone)
	st := s.Stats()
	if st.Simulations != 1 || st.Coalesced != 1 {
		t.Fatalf("simulations=%d coalesced=%d, want 1 and 1", st.Simulations, st.Coalesced)
	}
	if a.Job.snapshot().Coalesced != 1 {
		t.Fatal("job does not record its coalesced submission")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{Workers: 1}, gate)
	a := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, a.Job, JobRunning)
	b := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 2})
	if !s.Cancel(b.Job.ID) {
		t.Fatal("cancel of queued job refused")
	}
	waitState(t, b.Job, JobCanceled)
	close(gate)
	waitState(t, a.Job, JobDone)
	if st := s.Stats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d; canceled queued job was executed", st.Simulations)
	}
	if s.Cancel(b.Job.ID) {
		t.Fatal("second cancel of a terminal job succeeded")
	}
}

func TestCancelRunningJob(t *testing.T) {
	gate := make(chan struct{}) // never closed: job runs until canceled
	s := newStubServer(t, Config{}, gate)
	a := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 9})
	waitState(t, a.Job, JobRunning)
	if !s.Cancel(a.Job.ID) {
		t.Fatal("cancel of running job refused")
	}
	waitState(t, a.Job, JobCanceled)
	if _, ok := s.Report(a.Job); ok {
		t.Fatal("canceled job has a report; partial results must not be cached")
	}
	if st := s.Stats(); st.Cache.Entries != 0 {
		t.Fatalf("canceled run polluted the cache: %+v", st.Cache)
	}
}

// TestDrainCheckpointsQueuedAndRestartReuses is the drain state
// machine end to end: the in-flight job finishes and lands in the
// cache, queued jobs are checkpointed to pending.json, the index is
// flushed, and a restarted server both resubmits the checkpoint and
// serves the finished result from cache.
func TestDrainCheckpointsQueuedAndRestartReuses(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	cfg := Config{CacheDir: dir, Workers: 1, QueueDepth: 8}
	cfg.Registry = stubRegistry(gate)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	inflight := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, inflight.Job, JobRunning)
	queuedA := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 2})
	queuedB := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 3})

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Admission must refuse as soon as the drain begins. (Submissions
	// racing the flag may still be admitted and checkpointed — that is
	// the contract, not a bug — so assertions below check containment,
	// not exact counts.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit(Spec{Experiment: "stub", Seed: 4}); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting submissions")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st, _ := inflight.Job.State(); st != JobDone {
		t.Fatalf("in-flight job state = %s, want done (drain must not lose it)", st)
	}
	b1, ok := s.Report(inflight.Job)
	if !ok {
		t.Fatal("in-flight job's result lost across drain")
	}
	for _, q := range []*Job{queuedA.Job, queuedB.Job} {
		if st, _ := q.State(); st != JobCanceled {
			t.Fatalf("queued job state = %s, want canceled (checkpointed)", st)
		}
	}
	var cp struct {
		Specs []Spec `json:"specs"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, pendingFile))
	if err != nil {
		t.Fatalf("pending checkpoint not written: %v", err)
	}
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatalf("pending checkpoint %s unparseable: %v", raw, err)
	}
	seeds := make(map[uint64]bool)
	for _, sp := range cp.Specs {
		seeds[sp.Seed] = true
	}
	if !seeds[2] || !seeds[3] {
		t.Fatalf("pending checkpoint %s missing the queued specs", raw)
	}

	// Restart: checkpointed specs are resubmitted (and now execute,
	// the gate registry is fresh and open), and the finished result is
	// served from the reloaded cache without simulating.
	cfg2 := Config{CacheDir: dir, Workers: 1}
	cfg2.Registry = stubRegistry(nil)
	s2, err := NewServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if _, err := os.Stat(filepath.Join(dir, pendingFile)); !os.IsNotExist(err) {
		t.Fatal("pending checkpoint not consumed on restart")
	}
	res := mustSubmit(t, s2, Spec{Experiment: "stub", Seed: 1})
	if !res.Cached {
		t.Fatal("restarted server did not reuse the drained result")
	}
	b2, _ := s2.Report(res.Job)
	if !bytes.Equal(b1, b2) {
		t.Fatal("restarted serve is not byte-identical")
	}
	// The resubmitted checkpoints complete on their own.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := s2.Stats()
		if st.Jobs[JobDone] >= 3 { // 2 resubmitted + 1 cache hit
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmitted checkpoints never completed: %+v", st.Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	s := newStubServer(t, Config{}, nil)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Experiment: "stub"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}
