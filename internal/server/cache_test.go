package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"colt/internal/metrics"
	"colt/internal/server/faultfs"
)

func TestCachePutGetRoundtrip(t *testing.T) {
	for _, mode := range []string{"disk", "memory"} {
		t.Run(mode, func(t *testing.T) {
			dir := ""
			if mode == "disk" {
				dir = t.TempDir()
			}
			c, err := OpenCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := []byte(`{"report":"bytes"}`)
			if _, ok := c.Get("k1"); ok {
				t.Fatal("hit on empty cache")
			}
			if err := c.Put("k1", "exp", want); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Get("k1")
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
			}
			e, ok := c.Entry("k1")
			if !ok || e.Sum != metrics.Sum256Hex(want) || e.Size != len(want) {
				t.Fatalf("entry %+v inconsistent with stored bytes", e)
			}
			st := c.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 || st.Entries != 1 {
				t.Fatalf("stats %+v, want 1 hit / 1 miss / 0 corrupt / 1 entry", st)
			}
		})
	}
}

// TestCacheCorruptEntryDetectedAndRecomputed is the satellite's core
// claim: a corrupted on-disk entry is detected via hash mismatch,
// evicted, and the next Put restores byte-identical service.
func TestCacheCorruptEntryDetectedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"schema":"colt-metrics/1","records":[]}`)
	if err := c.Put("k1", "exp", want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored bytes behind the cache's back.
	path := filepath.Join(dir, "k1.json")
	if err := os.WriteFile(path, []byte(`{"schema":"tampered"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, ok := c.Get("k1"); ok {
		t.Fatalf("corrupted entry served: %q", b)
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v, want corrupt=1 entries=0 after eviction", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupted file not removed: %v", err)
	}
	// Recompute path: a fresh Put restores identical service.
	if err := c.Put("k1", "exp", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("recomputed Get = %q, %v; want original bytes", got, ok)
	}
}

func TestCacheMissingFileTreatedAsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k1", "exp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "k1.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("served an entry whose file is gone")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v, want corrupt=1", st)
	}
}

// TestCacheIndexSurvivesReopen: SaveIndex + reopen serves prior
// results — the restart-reuse half of the drain contract.
func TestCacheIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := []byte(`{"a":1}`), []byte(`{"b":2}`)
	if err := c.Put("ka", "expA", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("kb", "expB", b); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string][]byte{"ka": a, "kb": b} {
		got, ok := c2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, Get(%q) = %q, %v; want %q", key, got, ok, want)
		}
	}
	if st := c2.Stats(); st.Entries != 2 || st.Hits != 2 {
		t.Fatalf("reopened stats %+v, want entries=2 hits=2", st)
	}
}

func TestCacheMemoryModeSaveIndexIsNoop(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", "e", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" {
		t.Fatal("memory cache reports a directory")
	}
}

// TestCacheIndexRebuildFromSidecars is the satellite's core claim: a
// deleted (or never-written) index.json is reconstructed from the
// per-entry meta sidecars — every hash-verified entry is re-indexed,
// and a corrupted one is evicted and counted, not trusted.
func TestCacheIndexRebuildFromSidecars(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	good1, good2, bad := []byte(`{"g":1}`), []byte(`{"g":2}`), []byte(`{"b":3}`)
	for key, b := range map[string][]byte{"ka": good1, "kb": good2, "kc": bad} {
		if err := c.Put(key, "exp", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	// Crash aftermath: index gone, one entry's bytes corrupted.
	if err := os.Remove(filepath.Join(dir, cacheIndexFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "kc.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Rebuilt != 2 || st.RebuildEvicted != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want rebuilt=2 rebuild_evicted=1 entries=2", st)
	}
	for key, want := range map[string][]byte{"ka": good1, "kb": good2} {
		got, ok := c2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("rebuilt Get(%q) = %q, %v; want %q", key, got, ok, want)
		}
	}
	if _, ok := c2.Get("kc"); ok {
		t.Fatal("corrupt entry survived the rebuild")
	}
	for _, name := range []string{"kc.json", "kc" + metaSuffix} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("evicted file %s still on disk", name)
		}
	}
}

// TestCacheTornIndexRebuilds: a half-written index.json (the torn
// rename-less crash signature) is flagged and rebuilt from sidecars
// instead of failing the open or silently emptying the cache.
func TestCacheTornIndexRebuilds(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"a":1}`)
	if err := c.Put("ka", "exp", want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cacheIndexFile), []byte(`{"schema":"colt-ca`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if !st.IndexTorn || st.Rebuilt != 1 {
		t.Fatalf("stats %+v, want index_torn=true rebuilt=1", st)
	}
	if got, ok := c2.Get("ka"); !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after torn-index rebuild = %q, %v", got, ok)
	}
}

// TestCachePutFsyncFaultFallsBackToOverlay is the fsync-site
// regression for the Put bugfix: with the fsync-fail site armed, Put
// surfaces the injected error (proving the entry write path really
// syncs), leaves no torn entry visible on disk, and still serves the
// result from the memory overlay.
func TestCachePutFsyncFaultFallsBackToOverlay(t *testing.T) {
	dir := t.TempDir()
	plane := faultfs.NewPlane(faultfs.Spec{Rates: map[faultfs.Op]float64{faultfs.OpFsync: 1}}, 11)
	c, err := OpenCacheFS(dir, faultfs.Faulty(faultfs.OS(), plane))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"r":1}`)
	err = c.Put("ka", "exp", want)
	if err == nil || !faultfs.IsInjected(err) {
		t.Fatalf("Put under fsync-fail = %v, want injected error", err)
	}
	if plane.Injected(faultfs.OpFsync) == 0 {
		t.Fatal("fsync site never fired: the entry write is not syncing")
	}
	if _, serr := os.Stat(filepath.Join(dir, "ka.json")); !os.IsNotExist(serr) {
		t.Fatal("failed Put left an entry file behind")
	}
	got, ok := c.Get("ka")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("overlay Get = %q, %v; want the result served anyway", got, ok)
	}
	if st := c.Stats(); st.DegradedPuts != 1 || st.OverlayEntries != 1 {
		t.Fatalf("stats %+v, want degraded_puts=1 overlay_entries=1", st)
	}
}

// TestCacheSaveIndexFsyncFault: the index commit path syncs too —
// with fsync-fail armed, SaveIndex errors and no index.json appears.
func TestCacheSaveIndexFsyncFault(t *testing.T) {
	dir := t.TempDir()
	seed, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("ka", "exp", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	plane := faultfs.NewPlane(faultfs.Spec{Rates: map[faultfs.Op]float64{faultfs.OpFsync: 1}}, 12)
	c, err := OpenCacheFS(dir, faultfs.Faulty(faultfs.OS(), plane))
	if err != nil {
		t.Fatal(err)
	}
	err = c.SaveIndex()
	if err == nil || !faultfs.IsInjected(err) {
		t.Fatalf("SaveIndex under fsync-fail = %v, want injected error", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, cacheIndexFile)); !os.IsNotExist(serr) {
		t.Fatal("failed SaveIndex left an index file behind")
	}
}

// TestCacheDegradedOverlayFlush: while degraded, Puts stay in memory
// and touch no disk; after recovery, FlushOverlay lands them durably
// and a reopened cache serves them.
func TestCacheDegradedOverlayFlush(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.setDegraded(true)
	want := []byte(`{"d":1}`)
	if err := c.Put("ka", "exp", want); err != nil {
		t.Fatalf("degraded Put errored: %v", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "ka.json")); !os.IsNotExist(serr) {
		t.Fatal("degraded Put touched the disk")
	}
	if got, ok := c.Get("ka"); !ok || !bytes.Equal(got, want) {
		t.Fatalf("degraded Get = %q, %v", got, ok)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(filepath.Join(dir, cacheIndexFile)); !os.IsNotExist(serr) {
		t.Fatal("degraded SaveIndex wrote an index")
	}

	c.setDegraded(false)
	n, err := c.FlushOverlay()
	if err != nil || n != 1 {
		t.Fatalf("FlushOverlay = %d, %v; want 1, nil", n, err)
	}
	if st := c.Stats(); st.OverlayEntries != 0 {
		t.Fatalf("overlay not drained: %+v", st)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get("ka"); !ok || !bytes.Equal(got, want) {
		t.Fatalf("flushed entry lost across reopen: %q, %v", got, ok)
	}
}
