package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"colt/internal/metrics"
)

func TestCachePutGetRoundtrip(t *testing.T) {
	for _, mode := range []string{"disk", "memory"} {
		t.Run(mode, func(t *testing.T) {
			dir := ""
			if mode == "disk" {
				dir = t.TempDir()
			}
			c, err := OpenCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := []byte(`{"report":"bytes"}`)
			if _, ok := c.Get("k1"); ok {
				t.Fatal("hit on empty cache")
			}
			if err := c.Put("k1", "exp", want); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Get("k1")
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
			}
			e, ok := c.Entry("k1")
			if !ok || e.Sum != metrics.Sum256Hex(want) || e.Size != len(want) {
				t.Fatalf("entry %+v inconsistent with stored bytes", e)
			}
			st := c.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 || st.Entries != 1 {
				t.Fatalf("stats %+v, want 1 hit / 1 miss / 0 corrupt / 1 entry", st)
			}
		})
	}
}

// TestCacheCorruptEntryDetectedAndRecomputed is the satellite's core
// claim: a corrupted on-disk entry is detected via hash mismatch,
// evicted, and the next Put restores byte-identical service.
func TestCacheCorruptEntryDetectedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"schema":"colt-metrics/1","records":[]}`)
	if err := c.Put("k1", "exp", want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored bytes behind the cache's back.
	path := filepath.Join(dir, "k1.json")
	if err := os.WriteFile(path, []byte(`{"schema":"tampered"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, ok := c.Get("k1"); ok {
		t.Fatalf("corrupted entry served: %q", b)
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v, want corrupt=1 entries=0 after eviction", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupted file not removed: %v", err)
	}
	// Recompute path: a fresh Put restores identical service.
	if err := c.Put("k1", "exp", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("recomputed Get = %q, %v; want original bytes", got, ok)
	}
}

func TestCacheMissingFileTreatedAsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k1", "exp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "k1.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("served an entry whose file is gone")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v, want corrupt=1", st)
	}
}

// TestCacheIndexSurvivesReopen: SaveIndex + reopen serves prior
// results — the restart-reuse half of the drain contract.
func TestCacheIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := []byte(`{"a":1}`), []byte(`{"b":2}`)
	if err := c.Put("ka", "expA", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("kb", "expB", b); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string][]byte{"ka": a, "kb": b} {
		got, ok := c2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, Get(%q) = %q, %v; want %q", key, got, ok, want)
		}
	}
	if st := c2.Stats(); st.Entries != 2 || st.Hits != 2 {
		t.Fatalf("reopened stats %+v, want entries=2 hits=2", st)
	}
}

func TestCacheMemoryModeSaveIndexIsNoop(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", "e", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" {
		t.Fatal("memory cache reports a directory")
	}
}
