package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// numShards is the admission/registry shard count. Spec hashes and
// job sequence numbers spread across it so concurrent submissions of
// different specs never contend on one lock; a power of two keeps the
// modulo cheap.
const numShards = 16

// admitShard is one slice of the coalescing map: queued/running jobs
// keyed by spec content hash. A submission takes exactly its spec's
// shard lock through the whole admission decision (coalesce check,
// cache probe, queue reservation), so identical concurrent specs
// serialize with each other — the coalescing guarantee — while
// distinct specs proceed in parallel.
type admitShard struct {
	mu     sync.Mutex
	byHash map[string]*Job
	_      [40]byte // pad to keep neighboring shard locks off one cache line
}

// regShard is one slice of the job registry: tracked jobs keyed by
// ID, their admission order (for bounded eviction and listing), and
// the per-state counters Stats() reconciles without locks.
type regShard struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // admission-ordered IDs still tracked here
	counts stateCounters
	_      [40]byte
}

// admitShardFor picks the admission shard for a spec content hash.
func (s *Server) admitShardFor(hash string) *admitShard {
	h := fnv.New32a()
	h.Write([]byte(hash))
	return &s.admit[h.Sum32()%numShards]
}

// regShardForSeq picks the registry shard for an admission sequence
// number. Sequential IDs round-robin the shards, so retention bounds
// and listing work spread evenly.
func (s *Server) regShardForSeq(seq uint64) *regShard {
	return &s.reg[seq%numShards]
}

// regShardForID recovers the registry shard from a job ID ("j%06d",
// or "<node>.j%06d" in cluster mode). Malformed IDs — including IDs
// carrying another node's prefix, whose reads the HTTP layer proxies
// to their home node — report false.
func (s *Server) regShardForID(id string) (*regShard, bool) {
	if s.idPrefix != "" {
		rest, ok := strings.CutPrefix(id, s.idPrefix)
		if !ok {
			return nil, false
		}
		id = rest
	}
	if len(id) < 2 || id[0] != 'j' {
		return nil, false
	}
	seq, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return nil, false
	}
	return s.regShardForSeq(seq), true
}

// newTrackedJob mints the next job ID and registers the job in its
// registry shard, applying the terminal-retention bound. The ID is
// minted here — after admission has succeeded — so refused
// submissions never consume one. cached jobs are born done.
func (s *Server) newTrackedJob(can CanonicalJob, now time.Time, cached bool, trace string) *Job {
	seq := s.nextID.Add(1)
	j := newJob(s.idPrefix+fmt.Sprintf("j%06d", seq), can, now)
	j.seq = seq
	j.traceID = trace
	j.om = s.om // before any terminal transition can fire
	if cached {
		j.markCachedDone(now)
	}
	rs := s.regShardForSeq(seq)
	j.counts = &rs.counts
	rs.mu.Lock()
	rs.jobs[j.ID] = j
	rs.order = append(rs.order, j.ID)
	rs.counts.add(j.stateFast())
	s.evictTerminalLocked(rs)
	rs.mu.Unlock()
	return j
}

// evictTerminalLocked enforces the per-shard terminal-retention bound
// (Config.RetainJobs / numShards): oldest terminal jobs are dropped
// first, queued/running jobs are never touched. Callers hold rs.mu.
// The scan walks admission order from the front and stops as soon as
// the excess is cleared; because old jobs are overwhelmingly terminal
// the amortized cost per admission is O(1).
func (s *Server) evictTerminalLocked(rs *regShard) {
	excess := int(rs.counts.terminalTotal()) - s.retainPerShard
	if excess <= 0 {
		return
	}
	var keptPrefix []string // non-terminal survivors older than the cut
	i := 0
	for ; i < len(rs.order) && excess > 0; i++ {
		id := rs.order[i]
		j, ok := rs.jobs[id]
		if !ok {
			continue
		}
		if st := j.stateFast(); st.terminal() {
			delete(rs.jobs, id)
			rs.counts.sub(st)
			excess--
		} else {
			keptPrefix = append(keptPrefix, id)
		}
	}
	rs.order = append(keptPrefix, rs.order[i:]...)
}

// lookupJob finds a tracked job by ID across the registry shards.
func (s *Server) lookupJob(id string) (*Job, bool) {
	rs, ok := s.regShardForID(id)
	if !ok {
		return nil, false
	}
	rs.mu.Lock()
	j, ok := rs.jobs[id]
	rs.mu.Unlock()
	return j, ok
}

// listJobs snapshots every tracked job in admission order.
func (s *Server) listJobs() []*Job {
	var out []*Job
	for i := range s.reg {
		rs := &s.reg[i]
		rs.mu.Lock()
		for _, id := range rs.order {
			if j, ok := rs.jobs[id]; ok {
				out = append(out, j)
			}
		}
		rs.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// trackedJobs counts tracked jobs per state by summing the per-shard
// atomic counters — no shard lock, no per-job lock.
func (s *Server) trackedJobs() map[JobState]int {
	out := make(map[JobState]int)
	for i := range s.reg {
		for idx, st := range jobStates {
			if n := s.reg[i].counts.n[idx].Load(); n > 0 {
				out[st] += int(n)
			}
		}
	}
	return out
}
