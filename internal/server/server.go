package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
	"colt/internal/telemetry"
)

// pendingFile checkpoints queued-but-unstarted job specs at drain so
// a restarted daemon can resubmit them.
const pendingFile = "pending.json"

// Config sizes the serving daemon. Zero values take the documented
// defaults.
type Config struct {
	// CacheDir roots the content-addressed result cache ("" =
	// memory-only; nothing survives a restart).
	CacheDir string
	// QueueDepth bounds the job queue (default 16). A full queue
	// refuses submissions with 503 + Retry-After.
	QueueDepth int
	// Workers is how many jobs simulate concurrently (default 1 —
	// simulations are themselves internally parallel).
	Workers int
	// MaxRefs is the per-request measured-reference ceiling (default
	// 50,000,000; <0 disables). Oversized submissions are refused with
	// 429 before touching the queue.
	MaxRefs int
	// Parallel is the sched worker count handed to each job
	// (0 = GOMAXPROCS). Never part of the cache key: reports are
	// byte-identical at every width.
	Parallel int
	// RetainJobs bounds how many terminal jobs stay queryable in the
	// registry (default 1024; floored at numShards). Oldest terminal
	// jobs are evicted first; queued and running jobs are never
	// evicted, and a done job's report outlives its registry entry in
	// the result cache. Without a bound the registry is an OOM under
	// sustained traffic.
	RetainJobs int
	// SSEFlushInterval paces batched SSE fan-out (default 25ms): each
	// subscriber drains the new slice of the event log once per tick
	// with a single flush, instead of one send+flush per event.
	SSEFlushInterval time.Duration
	// Registry is the experiment set to serve (default
	// experiments.Registry()). Tests stub it with fast fakes.
	Registry []experiments.NamedExperiment
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxRefs == 0 {
		c.MaxRefs = 50_000_000
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 1024
	}
	if c.RetainJobs < numShards {
		c.RetainJobs = numShards
	}
	if c.SSEFlushInterval == 0 {
		c.SSEFlushInterval = 25 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = experiments.Registry()
	}
	return c
}

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrDraining: the daemon is shutting down and accepts no new work
	// (503 + Retry-After).
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull: the bounded job queue is at capacity (503 +
	// Retry-After).
	ErrQueueFull = errors.New("job queue is full")
	// ErrTooLarge: the expanded spec exceeds the per-request reference
	// ceiling (429).
	ErrTooLarge = errors.New("spec exceeds the per-request reference ceiling")
)

// Server is the coltd core: admission, queue, execution, cache, and
// job registry. It serves HTTP via Handler (http.go) but is fully
// drivable without HTTP, which is how the unit tests exercise it.
//
// Concurrency layout: there is no global server lock. Admission state
// (the coalescing map) and the job registry are sharded by spec hash
// and job sequence respectively (shard.go); counters are atomics
// reconciled when Stats() reads them; the only whole-server lock is
// admitMu, a read/write gate that submissions hold shared for the
// instant of the queue send and Drain holds exclusive to close the
// queue — it orders admission against shutdown without serializing
// admissions against each other.
type Server struct {
	cfg   Config
	cache *Cache

	baseCtx context.Context
	stop    context.CancelFunc

	// admitMu orders queue sends against Drain's close(queue):
	// submissions hold it shared, drain holds it exclusive.
	admitMu  sync.RWMutex
	draining atomic.Bool

	admit [numShards]admitShard
	reg   [numShards]regShard

	nextID         atomic.Uint64
	queueSlots     atomic.Int64 // remaining queue capacity; admission wins a slot before minting an ID
	simulations    atomic.Uint64
	coalesced      atomic.Uint64
	pendingDropped atomic.Uint64 // checkpointed jobs lost on restart resubmission

	retainPerShard int

	pendingMu sync.Mutex
	pending   []Spec // checkpointed at drain

	queue chan *Job
	wg    sync.WaitGroup

	drainOnce sync.Once
	drainErr  error

	ep *endpointMetrics
}

// NewServer builds a server, opens (or creates) its cache, resubmits
// any drain-checkpointed jobs from a prior run, and starts its
// workers.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	c, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		cache:          c,
		baseCtx:        ctx,
		stop:           stop,
		retainPerShard: cfg.RetainJobs / numShards,
		queue:          make(chan *Job, cfg.QueueDepth),
		ep:             newEndpointMetrics(),
	}
	s.queueSlots.Store(int64(cfg.QueueDepth))
	for i := range s.admit {
		s.admit[i].byHash = make(map[string]*Job)
	}
	for i := range s.reg {
		s.reg[i].jobs = make(map[string]*Job)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if err := s.resubmitPending(); err != nil {
		s.stop()
		return nil, err
	}
	return s, nil
}

// resubmitPending replays the drain checkpoint of a prior run.
// Whatever was computed before the drain is now in the cache, so
// resubmitted specs that overlap it complete instantly. Entries the
// restarted daemon cannot admit — a spec the current registry no
// longer knows, a queue already refilled — are counted, logged, and
// surfaced as Stats.PendingDropped rather than silently vanishing.
func (s *Server) resubmitPending() error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: reading pending checkpoint: %w", err)
	}
	var cp struct {
		Specs []Spec `json:"specs"`
	}
	if err := json.Unmarshal(raw, &cp); err != nil {
		return fmt.Errorf("server: parsing pending checkpoint: %w", err)
	}
	dropped := 0
	for _, spec := range cp.Specs {
		if _, err := s.Submit(spec); err != nil {
			dropped++
			log.Printf("server: dropping checkpointed job (experiment %q): %v", spec.Experiment, err)
		}
	}
	if dropped > 0 {
		s.pendingDropped.Add(uint64(dropped))
		log.Printf("server: dropped %d of %d checkpointed jobs on restart", dropped, len(cp.Specs))
	}
	return os.Remove(path)
}

// Cache exposes the result cache (read-mostly: stats and report
// serving).
func (s *Server) Cache() *Cache { return s.cache }

// Job looks up a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	return s.lookupJob(id)
}

// SubmitResult describes the outcome of an admission decision.
type SubmitResult struct {
	Job *Job
	// Created is false when the submission coalesced onto an existing
	// queued/running job with the same content hash.
	Created bool
	// Cached is true when the result was already in the cache and the
	// job completed without queueing.
	Cached bool
}

// Submit canonicalizes, admits, and routes a job spec: cache hits
// complete immediately, identical in-flight specs coalesce onto one
// execution, and everything else takes a queue slot or is refused
// (ErrDraining, ErrQueueFull, ErrTooLarge — the handler maps these to
// 503/503/429; any other error is a 400 validation failure).
//
// The whole decision runs under the spec's admission shard lock only:
// submissions of distinct specs are admitted concurrently, while
// identical specs serialize just enough to guarantee one execution.
// A queue slot is won (reserveSlot) before a job ID is minted, so a
// refused submission consumes neither an ID nor a registry entry.
func (s *Server) Submit(spec Spec) (SubmitResult, error) {
	can, err := Canonicalize(spec, s.cfg.Registry)
	if err != nil {
		return SubmitResult{}, err
	}
	if s.cfg.MaxRefs > 0 && can.Opts.Refs > s.cfg.MaxRefs {
		return SubmitResult{}, fmt.Errorf("%w: refs %d > limit %d",
			ErrTooLarge, can.Opts.Refs, s.cfg.MaxRefs)
	}

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return SubmitResult{}, ErrDraining
	}
	sh := s.admitShardFor(can.Hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Coalesce onto an identical in-flight execution.
	if j, ok := sh.byHash[can.Hash]; ok {
		if !j.stateFast().terminal() {
			j.noteCoalesced()
			s.coalesced.Add(1)
			return SubmitResult{Job: j, Created: false}, nil
		}
		delete(sh.byHash, can.Hash)
	}
	now := time.Now()
	// Serve from cache: Get verifies the stored bytes against their
	// recorded hash, so a corrupted entry falls through to recompute.
	if _, ok := s.cache.Get(can.Hash); ok {
		j := s.newTrackedJob(can, now, true)
		return SubmitResult{Job: j, Created: true, Cached: true}, nil
	}
	// Win a queue slot before minting an ID or constructing the job:
	// refusals must leave no trace.
	if !s.reserveSlot() {
		return SubmitResult{}, ErrQueueFull
	}
	j := s.newTrackedJob(can, now, false)
	sh.byHash[can.Hash] = j
	// Cannot block (a slot is held) and cannot hit a closed channel
	// (admitMu is read-held; Drain closes under the write lock).
	s.queue <- j
	return SubmitResult{Job: j, Created: true}, nil
}

// reserveSlot claims one unit of queue capacity, failing when the
// queue is full. The matching release happens when a worker dequeues
// the job.
func (s *Server) reserveSlot() bool {
	for {
		v := s.queueSlots.Load()
		if v <= 0 {
			return false
		}
		if s.queueSlots.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

func (s *Server) isDraining() bool { return s.draining.Load() }

// worker consumes the queue. Once a drain begins, undispatched jobs
// are checkpointed instead of executed; the job a worker is already
// inside when the drain starts runs to completion.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueSlots.Add(1) // the job left the queue; its slot frees
		if s.isDraining() {
			s.checkpoint(j)
			continue
		}
		s.execute(j)
	}
}

// checkpoint records a queued job's spec for the next run and closes
// the job as canceled.
func (s *Server) checkpoint(j *Job) {
	if j.stateFast().terminal() {
		s.dropInflight(j)
		return
	}
	s.pendingMu.Lock()
	s.pending = append(s.pending, j.Can.Spec)
	s.pendingMu.Unlock()
	j.finish(JobCanceled, "checkpointed at drain; resubmitted on restart", time.Now())
	s.dropInflight(j)
}

func (s *Server) dropInflight(j *Job) {
	sh := s.admitShardFor(j.Can.Hash)
	sh.mu.Lock()
	if sh.byHash[j.Can.Hash] == j {
		delete(sh.byHash, j.Can.Hash)
	}
	sh.mu.Unlock()
}

// execute runs one job end to end: wire a private collector and
// progress reporter, run the experiment, render the byte-stable
// report, and store it under the job's content address. A canceled
// run is never cached — its partial report is not the true value of
// that content address.
func (s *Server) execute(j *Job) {
	defer s.dropInflight(j)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	s.simulations.Add(1)

	opts := j.Can.Opts
	opts.Ctx = ctx
	opts.Parallel = s.cfg.Parallel
	opts.Metrics = metrics.NewCollector()
	reporter := telemetry.NewReporter(nil)
	reporter.SetHook(j.appendEvent)
	opts.Progress = reporter
	if j.Can.Spec.Trace {
		opts.Events = new(telemetry.TraceSet)
	}

	runErr := j.Can.Exp.Run(opts)
	now := time.Now()
	if ctx.Err() != nil {
		j.finish(JobCanceled, "canceled while running; partial results discarded", now)
		return
	}
	if runErr != nil {
		j.finish(JobFailed, runErr.Error(), now)
		return
	}
	report := opts.Metrics.Report(j.Can.Exp.Name, opts.Snapshot())
	b, err := report.StableJSON()
	if err != nil {
		j.finish(JobFailed, fmt.Sprintf("rendering report: %v", err), now)
		return
	}
	if err := s.cache.Put(j.Can.Hash, j.Can.Exp.Name, b); err != nil {
		j.finish(JobFailed, fmt.Sprintf("caching report: %v", err), now)
		return
	}
	if opts.Events != nil {
		var buf bytes.Buffer
		if err := opts.Events.WriteChrome(&buf); err == nil {
			j.setTrace(buf.Bytes())
		}
	}
	j.finish(JobDone, "", now)
}

// Report returns the job's report bytes from the cache. Only done
// jobs have one.
func (s *Server) Report(j *Job) ([]byte, bool) {
	if st, _ := j.State(); st != JobDone {
		return nil, false
	}
	return s.cache.Get(j.Can.Hash)
}

// Cancel cancels a job by ID (the DELETE /v1/jobs/{id} path). Returns
// false when the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	if !j.requestCancel() {
		return false
	}
	s.dropInflight(j)
	return true
}

// Drain gracefully shuts the server down: refuse new submissions,
// let in-flight jobs finish (their results land in the cache),
// checkpoint still-queued jobs to pending.json, and flush the cache
// index so a restart reuses every completed result. Idempotent; ctx
// bounds the wait for in-flight work.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.admitMu.Unlock()

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
			return
		}
		if err := s.savePending(); err != nil {
			s.drainErr = err
			return
		}
		s.drainErr = s.cache.SaveIndex()
	})
	return s.drainErr
}

// savePending writes the drain checkpoint (disk-backed caches only,
// and only when something was left queued).
func (s *Server) savePending() error {
	s.pendingMu.Lock()
	specs := append([]Spec(nil), s.pending...)
	s.pendingMu.Unlock()
	if s.cfg.CacheDir == "" || len(specs) == 0 {
		return nil
	}
	b, err := json.MarshalIndent(struct {
		Schema string `json:"schema"`
		Specs  []Spec `json:"specs"`
	}{Schema: "colt-pending/1", Specs: specs}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding pending checkpoint: %w", err)
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	if err := os.WriteFile(path+".tmp", append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: writing pending checkpoint: %w", err)
	}
	return os.Rename(path+".tmp", path)
}

// Close hard-stops the server: cancel every running job, then drain
// (which still flushes the cache index). Tests use it; production
// shutdown uses Drain.
func (s *Server) Close() error {
	s.stop()
	return s.Drain(context.Background())
}

// Stats is the GET /v1/stats body.
type Stats struct {
	Draining bool             `json:"draining"`
	QueueLen int              `json:"queue_len"`
	QueueCap int              `json:"queue_cap"`
	Jobs     map[JobState]int `json:"jobs"`
	// Simulations counts actual experiment executions (cache hits and
	// coalesced submissions never add one).
	Simulations uint64 `json:"simulations"`
	Coalesced   uint64 `json:"coalesced"`
	// PendingDropped counts drain-checkpointed jobs a restarted daemon
	// could not resubmit (unknown experiment, refilled queue).
	PendingDropped uint64                   `json:"pending_dropped"`
	Cache          CacheStats               `json:"cache"`
	Endpoints      map[string]EndpointStats `json:"endpoints"`
}

// Stats snapshots the server's counters. Every number is an atomic
// load reconciled across shards — no global lock is held, no per-job
// state is read, so a monitoring scrape never stalls admission.
func (s *Server) Stats() Stats {
	return Stats{
		Draining:       s.draining.Load(),
		QueueLen:       len(s.queue),
		QueueCap:       cap(s.queue),
		Jobs:           s.trackedJobs(),
		Simulations:    s.simulations.Load(),
		Coalesced:      s.coalesced.Load(),
		PendingDropped: s.pendingDropped.Load(),
		Cache:          s.cache.Stats(),
		Endpoints:      s.ep.snapshot(),
	}
}
