package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/cluster"
	"colt/internal/experiments"
	"colt/internal/metrics"
	"colt/internal/obs"
	"colt/internal/rng"
	"colt/internal/server/faultfs"
	"colt/internal/telemetry"
)

// pendingFile checkpoints queued-but-unstarted job specs at drain so
// a restarted daemon can resubmit them.
const pendingFile = "pending.json"

// Config sizes the serving daemon. Zero values take the documented
// defaults.
type Config struct {
	// CacheDir roots the content-addressed result cache ("" =
	// memory-only; nothing survives a restart).
	CacheDir string
	// QueueDepth bounds the job queue (default 16). A full queue
	// refuses submissions with 503 + Retry-After.
	QueueDepth int
	// Workers is how many jobs simulate concurrently (default 1 —
	// simulations are themselves internally parallel).
	Workers int
	// MaxRefs is the per-request measured-reference ceiling (default
	// 50,000,000; <0 disables). Oversized submissions are refused with
	// 429 before touching the queue.
	MaxRefs int
	// Parallel is the sched worker count handed to each job
	// (0 = GOMAXPROCS). Never part of the cache key: reports are
	// byte-identical at every width.
	Parallel int
	// RetainJobs bounds how many terminal jobs stay queryable in the
	// registry (default 1024; floored at numShards). Oldest terminal
	// jobs are evicted first; queued and running jobs are never
	// evicted, and a done job's report outlives its registry entry in
	// the result cache. Without a bound the registry is an OOM under
	// sustained traffic.
	RetainJobs int
	// SSEFlushInterval paces batched SSE fan-out (default 25ms): each
	// subscriber drains the new slice of the event log once per tick
	// with a single flush, instead of one send+flush per event.
	SSEFlushInterval time.Duration
	// Registry is the experiment set to serve (default
	// experiments.Registry()). Tests stub it with fast fakes.
	Registry []experiments.NamedExperiment
	// DiskFaults injects deterministic filesystem faults into every
	// durable write (cache entries, journal appends, checkpoints) —
	// the chaos harness's disk-failure plane. Zero value disables.
	DiskFaults faultfs.Spec
	// DiskFaultSeed seeds the fault plane's per-site streams.
	DiskFaultSeed uint64
	// BreakerThreshold is how many consecutive durable-write failures
	// trip the disk circuit breaker into memory-only degraded mode
	// (default 3; <0 disables the breaker).
	BreakerThreshold int
	// ProbeInterval paces the degraded-mode disk re-probe (default
	// 2s). A successful probe flushes the memory overlay and closes
	// the breaker.
	ProbeInterval time.Duration
	// Cluster wires this daemon into a fleet (nil = single-node). In
	// cluster mode job IDs carry a "<node>." prefix, submissions are
	// proxied to their ring owner, cache misses try peer fill before
	// recomputing, and a loaded queue is stealable by idle peers.
	Cluster *cluster.Config
	// Logger receives the request-scoped structured log stream
	// (admission, execution, cache commit — every line carries the
	// job's trace ID). nil discards it, keeping tests and benchmarks
	// quiet; the process-lifecycle lines (startup, replay, breaker
	// transitions) stay on the standard logger regardless, because the
	// ops scripts parse them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxRefs == 0 {
		c.MaxRefs = 50_000_000
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 1024
	}
	if c.RetainJobs < numShards {
		c.RetainJobs = numShards
	}
	if c.SSEFlushInterval == 0 {
		c.SSEFlushInterval = 25 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = experiments.Registry()
	}
	return c
}

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrDraining: the daemon is shutting down and accepts no new work
	// (503 + Retry-After).
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull: the bounded job queue is at capacity (503 +
	// Retry-After).
	ErrQueueFull = errors.New("job queue is full")
	// ErrTooLarge: the expanded spec exceeds the per-request reference
	// ceiling (429).
	ErrTooLarge = errors.New("spec exceeds the per-request reference ceiling")
)

// Server is the coltd core: admission, queue, execution, cache, and
// job registry. It serves HTTP via Handler (http.go) but is fully
// drivable without HTTP, which is how the unit tests exercise it.
//
// Concurrency layout: there is no global server lock. Admission state
// (the coalescing map) and the job registry are sharded by spec hash
// and job sequence respectively (shard.go); counters are atomics
// reconciled when Stats() reads them; the only whole-server lock is
// admitMu, a read/write gate that submissions hold shared for the
// instant of the queue send and Drain holds exclusive to close the
// queue — it orders admission against shutdown without serializing
// admissions against each other.
type Server struct {
	cfg   Config
	cache *Cache

	// fsys is the filesystem every durable write goes through; with
	// Config.DiskFaults enabled it wraps the OS in the fault plane.
	fsys  faultfs.FS
	plane *faultfs.Plane
	// journal is the accepted-job WAL (nil in memory-only mode).
	journal *Journal

	baseCtx context.Context
	stop    context.CancelFunc

	// admitMu orders queue sends against Drain's close(queue):
	// submissions hold it shared, drain holds it exclusive.
	admitMu  sync.RWMutex
	draining atomic.Bool

	admit [numShards]admitShard
	reg   [numShards]regShard

	nextID         atomic.Uint64
	queueSlots     atomic.Int64 // remaining queue capacity; admission wins a slot before minting an ID
	simulations    atomic.Uint64
	coalesced      atomic.Uint64
	pendingDropped atomic.Uint64 // checkpointed jobs lost on restart resubmission
	deadlineShed   atomic.Uint64 // jobs shed or canceled for blowing their deadline

	// Disk circuit breaker: consecutive durable-write failures trip it
	// (degraded = memory-only serving); the probe loop closes it.
	diskFailures    atomic.Int64
	degraded        atomic.Bool
	degradedEvents  atomic.Uint64
	journalReplayed atomic.Uint64
	journalSkipped  atomic.Uint64 // jobs admitted without a durable accept record

	retainPerShard int

	pendingMu     sync.Mutex
	pending       []Spec   // checkpointed at drain
	pendingHashes []string // content hashes matching pending, for journal commit

	// retryRng jitters Retry-After values so a crowd of refused
	// clients doesn't return in one synchronized wave.
	retryRngMu sync.Mutex
	retryRng   *rng.RNG

	probeStop chan struct{}

	queue chan *Job
	wg    sync.WaitGroup

	drainOnce sync.Once
	drainErr  error

	ep *endpointMetrics

	// om is the /metrics registry and its instruments; slog is the
	// request-scoped structured log stream (see Config.Logger).
	om   *serverMetrics
	slog *slog.Logger

	// Cluster mode (all zero when Config.Cluster is nil). idPrefix is
	// "<node>." so job IDs are fleet-unique and reads route by prefix;
	// stolen tracks jobs out on lease to remote stealers.
	cluster        *cluster.Cluster
	idPrefix       string
	stealThreshold int
	stealLease     time.Duration
	stolenMu       sync.Mutex
	stolen         map[string]*stolenLease
}

// NewServer builds a server, opens (or creates) its cache and
// accepted-job journal, replays journaled work a crash left
// unresolved, resubmits any drain-checkpointed jobs from a prior run,
// and starts its workers and disk-probe loop.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	fsys := faultfs.OS()
	plane := faultfs.NewPlane(cfg.DiskFaults, cfg.DiskFaultSeed)
	fsys = faultfs.Faulty(fsys, plane)
	c, err := OpenCacheFS(cfg.CacheDir, fsys)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		cache:          c,
		fsys:           fsys,
		plane:          plane,
		baseCtx:        ctx,
		stop:           stop,
		retainPerShard: cfg.RetainJobs / numShards,
		queue:          make(chan *Job, cfg.QueueDepth),
		retryRng:       rng.New(cfg.DiskFaultSeed ^ 0x5261667465724a6a).Stream("retry-after"),
		probeStop:      make(chan struct{}),
	}
	s.slog = cfg.Logger
	if s.slog == nil {
		s.slog = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.queueSlots.Store(int64(cfg.QueueDepth))
	// Cluster wiring happens in two steps: identity (the ID prefix)
	// must exist before journal replay mints any job, while the
	// heartbeat/steal loops start only once the server can actually
	// execute work, at the bottom of this constructor.
	if cfg.Cluster != nil {
		cc := *cfg.Cluster
		if cc.Logger == nil {
			cc.Logger = s.slog
		}
		cl, err := cluster.New(cc, s)
		if err != nil {
			s.stop()
			return nil, err
		}
		s.cluster = cl
		s.idPrefix = cc.NodeID + "."
		s.stealThreshold = cc.StealThreshold
		s.stealLease = cc.StealLease
		if s.stealLease <= 0 {
			s.stealLease = 30 * time.Second
		}
		s.stolen = make(map[string]*stolenLease)
	}
	for i := range s.admit {
		s.admit[i].byHash = make(map[string]*Job)
	}
	for i := range s.reg {
		s.reg[i].jobs = make(map[string]*Job)
	}
	// Register the metric inventory before any worker, handler, or
	// replay runs: registration is the only locked phase of the
	// registry's life. The journal Func collectors nil-check at scrape
	// time, so registering before openJournal is safe.
	s.om = newServerMetrics(s)
	s.ep = newEndpointMetrics(s.om)
	var replay []journalLive
	if cfg.CacheDir != "" {
		jl, live, err := openJournal(fsys, cfg.CacheDir)
		if err != nil {
			s.stop()
			return nil, err
		}
		s.journal = jl
		replay = live
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if err := s.replayJournal(replay); err != nil {
		s.stop()
		return nil, err
	}
	if err := s.resubmitPending(); err != nil {
		s.stop()
		return nil, err
	}
	go s.probeLoop()
	if s.cluster != nil {
		s.cluster.Start()
		go s.stolenReaper()
	}
	return s, nil
}

// replayJournal resubmits the accepted-but-unresolved jobs of a
// crashed run, in first-accept order. Each resubmission re-accepts
// itself under the same content hash (duplicates collapse), and a
// spec whose report landed in the cache before the crash completes
// instantly as a cache hit — replay is idempotent, never a recompute
// storm. A momentarily full queue is retried briefly (workers free
// slots as they dequeue); what still cannot be admitted is counted in
// PendingDropped rather than silently vanishing.
func (s *Server) replayJournal(replay []journalLive) error {
	if s.journal == nil || len(replay) == 0 {
		return nil
	}
	dropped := 0
	for _, rec := range replay {
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			// Resubmit under the original trace ID, so the replayed run
			// greps as a continuation of the crashed request.
			if _, err = s.SubmitTraced(rec.Spec, rec.Trace); !errors.Is(err, ErrQueueFull) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			dropped++
			log.Printf("server: dropping journaled job (experiment %q): %v", rec.Spec.Experiment, err)
			continue
		}
		s.journalReplayed.Add(1)
	}
	if dropped > 0 {
		s.pendingDropped.Add(uint64(dropped))
	}
	log.Printf("journal: replayed %d accepted jobs from a prior run (%d dropped)",
		s.journalReplayed.Load(), dropped)
	// The replayed WAL carries a full accept/commit history plus the
	// duplicate accepts just written; rewrite it to the live set.
	if err := s.journal.Compact(); err != nil {
		s.noteDiskOp(err)
		log.Printf("server: journal compaction after replay failed: %v", err)
	}
	return nil
}

// resubmitPending replays the drain checkpoint of a prior run.
// Whatever was computed before the drain is now in the cache, so
// resubmitted specs that overlap it complete instantly. Entries the
// restarted daemon cannot admit — a spec the current registry no
// longer knows, a queue already refilled — are counted, logged, and
// surfaced as Stats.PendingDropped rather than silently vanishing.
func (s *Server) resubmitPending() error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: reading pending checkpoint: %w", err)
	}
	var cp struct {
		Specs []Spec `json:"specs"`
	}
	if err := json.Unmarshal(raw, &cp); err != nil {
		return fmt.Errorf("server: parsing pending checkpoint: %w", err)
	}
	dropped := 0
	for _, spec := range cp.Specs {
		if _, err := s.Submit(spec); err != nil {
			dropped++
			log.Printf("server: dropping checkpointed job (experiment %q): %v", spec.Experiment, err)
		}
	}
	if dropped > 0 {
		s.pendingDropped.Add(uint64(dropped))
		log.Printf("server: dropped %d of %d checkpointed jobs on restart", dropped, len(cp.Specs))
	}
	return os.Remove(path)
}

// Cache exposes the result cache (read-mostly: stats and report
// serving).
func (s *Server) Cache() *Cache { return s.cache }

// Job looks up a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	return s.lookupJob(id)
}

// SubmitResult describes the outcome of an admission decision.
type SubmitResult struct {
	Job *Job
	// Created is false when the submission coalesced onto an existing
	// queued/running job with the same content hash.
	Created bool
	// Cached is true when the result was already in the cache and the
	// job completed without queueing.
	Cached bool
}

// Submit canonicalizes, admits, and routes a job spec: cache hits
// complete immediately, identical in-flight specs coalesce onto one
// execution, and everything else takes a queue slot or is refused
// (ErrDraining, ErrQueueFull, ErrTooLarge — the handler maps these to
// 503/503/429; any other error is a 400 validation failure).
//
// The whole decision runs under the spec's admission shard lock only:
// submissions of distinct specs are admitted concurrently, while
// identical specs serialize just enough to guarantee one execution.
// A queue slot is won (reserveSlot) before a job ID is minted, so a
// refused submission consumes neither an ID nor a registry entry.
func (s *Server) Submit(spec Spec) (SubmitResult, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with an explicit request-scoped trace ID —
// the HTTP layer passes a validated inbound X-Colt-Trace, journal
// replay passes the crashed run's recorded ID. An empty or invalid
// trace is replaced with a freshly minted one; every admission
// outcome, accepted or refused, is logged and counted under it.
func (s *Server) SubmitTraced(spec Spec, trace string) (SubmitResult, error) {
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	// Admission log lines are emitted by this deferred hook, which
	// runs after every lock below is released (defers are LIFO): the
	// slog handler serializes writes process-wide, and emitting while
	// holding a hot admission shard would put the logger's mutex and
	// encoding on the admission critical path.
	var logAfter func()
	defer func() {
		if logAfter != nil {
			logAfter()
		}
	}()
	can, err := Canonicalize(spec, s.cfg.Registry)
	if err != nil {
		s.om.admitInvalid.Inc()
		logAfter = func() {
			s.slog.Warn("admission refused", "trace", trace, "outcome", "invalid",
				"experiment", spec.Experiment, "error", err.Error())
		}
		return SubmitResult{}, err
	}
	if s.cfg.MaxRefs > 0 && can.Opts.Refs > s.cfg.MaxRefs {
		s.om.admitTooLarge.Inc()
		logAfter = func() {
			s.slog.Warn("admission refused", "trace", trace, "outcome", "too_large",
				"experiment", can.Exp.Name, "refs", can.Opts.Refs)
		}
		return SubmitResult{}, fmt.Errorf("%w: refs %d > limit %d",
			ErrTooLarge, can.Opts.Refs, s.cfg.MaxRefs)
	}
	// Peer cache fill: in cluster mode a hash missing locally may be
	// sitting verified in a peer's cache — fetch it now, before any
	// admission lock is held (the network never runs under a shard
	// lock), so the admission below resolves as an ordinary cache hit.
	if s.cluster != nil {
		s.peerFill(can, trace)
	}

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		s.om.admitDraining.Inc()
		logAfter = func() {
			s.slog.Warn("admission refused", "trace", trace, "outcome", "draining",
				"experiment", can.Exp.Name)
		}
		return SubmitResult{}, ErrDraining
	}
	sh := s.admitShardFor(can.Hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Coalesce onto an identical in-flight execution.
	if j, ok := sh.byHash[can.Hash]; ok {
		if !j.stateFast().terminal() {
			j.noteCoalesced()
			s.coalesced.Add(1)
			s.om.admitCoalesced.Inc()
			onto, id := j.TraceID(), j.ID
			logAfter = func() {
				s.slog.Info("admission coalesced", "trace", trace, "onto_trace", onto,
					"job", id, "experiment", can.Exp.Name, "hash", can.Hash)
			}
			return SubmitResult{Job: j, Created: false}, nil
		}
		delete(sh.byHash, can.Hash)
	}
	now := time.Now()
	// Serve from cache: Get verifies the stored bytes against their
	// recorded hash, so a corrupted entry falls through to recompute.
	if _, ok := s.cache.Get(can.Hash); ok {
		j := s.newTrackedJob(can, now, true, trace)
		// Resolve any live journal record for this hash — a replayed
		// accept whose report landed before the crash completes here,
		// as a hit, and must not be replayed forever. For ordinary hits
		// this is a no-op map probe.
		s.journalCommit(can.Hash)
		s.om.admitCacheHit.Inc()
		logAfter = func() {
			s.slog.Info("job admitted", "trace", trace, "outcome", "cache_hit",
				"job", j.ID, "experiment", can.Exp.Name, "hash", can.Hash)
		}
		return SubmitResult{Job: j, Created: true, Cached: true}, nil
	}
	// Win a queue slot before minting an ID or constructing the job:
	// refusals must leave no trace.
	if !s.reserveSlot() {
		s.om.admitQueueFull.Inc()
		logAfter = func() {
			s.slog.Warn("admission refused", "trace", trace, "outcome", "queue_full",
				"experiment", can.Exp.Name)
		}
		return SubmitResult{}, ErrQueueFull
	}
	j := s.newTrackedJob(can, now, false, trace)
	if can.Spec.DeadlineMs > 0 {
		j.deadline = now.Add(time.Duration(can.Spec.DeadlineMs) * time.Millisecond)
	}
	// Durably record the accept before the submission returns: this is
	// the write-ahead point that makes a crash lose nothing that was
	// acknowledged. An append failure degrades rather than refuses —
	// the job still runs, the breaker hears about the disk — and while
	// the breaker is open appends are suppressed entirely.
	if s.journalAccept(can, trace) {
		j.mark("journaled", time.Now())
	}
	sh.byHash[can.Hash] = j
	j.mark("queued", time.Now())
	// Cannot block (a slot is held) and cannot hit a closed channel
	// (admitMu is read-held; Drain closes under the write lock).
	s.queue <- j
	s.om.admitAccepted.Inc()
	logAfter = func() {
		s.slog.Info("job admitted", "trace", trace, "outcome", "accepted",
			"job", j.ID, "experiment", can.Exp.Name, "hash", can.Hash)
	}
	return SubmitResult{Job: j, Created: true}, nil
}

// journalAccept writes the admission WAL record for a spec, feeding
// the disk breaker with the outcome. Jobs admitted without a durable
// record (breaker open, or the append itself failed) are counted.
// Reports whether a durable record landed.
func (s *Server) journalAccept(can CanonicalJob, trace string) bool {
	if s.journal == nil {
		return false
	}
	if s.degraded.Load() {
		s.journalSkipped.Add(1)
		return false
	}
	if err := s.journal.Accept(can.Hash, can.Spec, trace); err != nil {
		s.journalSkipped.Add(1)
		s.noteDiskOp(err)
		log.Printf("server: journal accept failed (job runs without durability): %v", err)
		return false
	}
	s.noteDiskOp(nil)
	return true
}

// journalCommit resolves a spec's WAL record, feeding the breaker.
// Committing a hash with no live record is a no-op, so double commits
// (a DELETE racing the execution path) and commits for jobs accepted
// while degraded are harmless.
func (s *Server) journalCommit(hash string) {
	if s.journal == nil || s.degraded.Load() {
		return
	}
	if err := s.journal.Commit(hash); err != nil {
		s.noteDiskOp(err)
		log.Printf("server: journal commit failed: %v", err)
		return
	}
	s.noteDiskOp(nil)
}

// noteDiskOp feeds the disk circuit breaker: consecutive durable-
// write failures at or past Config.BreakerThreshold flip the server
// into memory-only degraded mode instead of letting a dying disk take
// the process down. The probe loop is the only way back.
func (s *Server) noteDiskOp(err error) {
	if err == nil {
		s.diskFailures.Store(0)
		return
	}
	n := s.diskFailures.Add(1)
	if s.cfg.BreakerThreshold < 0 || int(n) < s.cfg.BreakerThreshold {
		return
	}
	if s.degraded.CompareAndSwap(false, true) {
		s.cache.setDegraded(true)
		s.degradedEvents.Add(1)
		log.Printf("server: disk circuit breaker OPEN after %d consecutive write failures; serving memory-only (last: %v)", n, err)
	}
}

// probeLoop is degraded mode's way home: every Config.ProbeInterval
// it rewrites a probe file through the (possibly faulty) filesystem,
// and on success flushes the memory overlay to disk and closes the
// breaker. Runs until shutdown; does nothing while healthy.
func (s *Server) probeLoop() {
	if s.cfg.CacheDir == "" {
		return
	}
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	probe := filepath.Join(s.cfg.CacheDir, ".probe")
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.probeStop:
			return
		case <-ticker.C:
		}
		if !s.degraded.Load() {
			continue
		}
		if err := faultfs.WriteFileSync(s.fsys, probe, []byte("ok\n")); err != nil {
			continue // still hostile; stay degraded
		}
		// Re-point new Puts at the disk first, then land what the
		// overlay accumulated — no window where a fresh Put is stranded
		// in memory behind an already-finished flush.
		s.cache.setDegraded(false)
		if n, err := s.cache.FlushOverlay(); err != nil {
			log.Printf("server: disk probe passed but overlay flush failed after %d entries: %v", n, err)
			s.cache.setDegraded(true)
			continue
		} else if n > 0 {
			log.Printf("server: flushed %d overlay entries to disk", n)
		}
		s.degraded.Store(false)
		s.diskFailures.Store(0)
		s.fsys.Remove(probe)
		log.Printf("server: disk circuit breaker CLOSED; durable serving restored")
	}
}

// reserveSlot claims one unit of queue capacity, failing when the
// queue is full. The matching release happens when a worker dequeues
// the job.
func (s *Server) reserveSlot() bool {
	for {
		v := s.queueSlots.Load()
		if v <= 0 {
			return false
		}
		if s.queueSlots.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

func (s *Server) isDraining() bool { return s.draining.Load() }

// worker consumes the queue. Once a drain begins, undispatched jobs
// are checkpointed instead of executed; the job a worker is already
// inside when the drain starts runs to completion.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueSlots.Add(1) // the job left the queue; its slot frees
		if s.isDraining() {
			s.checkpoint(j)
			continue
		}
		// Deadline propagation, part one: a job whose client has
		// already given up is shed at dispatch, not simulated into a
		// report nobody is waiting for.
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			j.finish(JobCanceled, "deadline exceeded while queued", time.Now())
			s.dropInflight(j)
			s.deadlineShed.Add(1)
			s.journalCommit(j.Can.Hash)
			continue
		}
		s.execute(j)
	}
}

// checkpoint records a queued job's spec for the next run and closes
// the job as canceled.
func (s *Server) checkpoint(j *Job) {
	if j.stateFast().terminal() {
		s.dropInflight(j)
		return
	}
	s.pendingMu.Lock()
	s.pending = append(s.pending, j.Can.Spec)
	s.pendingHashes = append(s.pendingHashes, j.Can.Hash)
	s.pendingMu.Unlock()
	j.finish(JobCanceled, "checkpointed at drain; resubmitted on restart", time.Now())
	s.dropInflight(j)
	// The journal record stays live until savePending lands — Drain
	// commits it only once pending.json durably owns the spec.
}

func (s *Server) dropInflight(j *Job) {
	sh := s.admitShardFor(j.Can.Hash)
	sh.mu.Lock()
	if sh.byHash[j.Can.Hash] == j {
		delete(sh.byHash, j.Can.Hash)
	}
	sh.mu.Unlock()
}

// runSpec executes one canonical spec with a private collector and
// renders its byte-stable report. hook receives progress events (nil
// discards them); the returned trace is the Chrome artifact when the
// spec asked for one. It is the execution core shared by the local
// worker path (execute) and the stolen-job path (RunStolen) — both
// must produce the identical bytes for a given spec, which is the
// invariant that lets a stolen report commit into the victim's cache.
func (s *Server) runSpec(ctx context.Context, can CanonicalJob, hook func(telemetry.ProgressEvent)) (report, trace []byte, err error) {
	opts := can.Opts
	opts.Ctx = ctx
	opts.Parallel = s.cfg.Parallel
	opts.Metrics = metrics.NewCollector()
	reporter := telemetry.NewReporter(nil)
	if hook != nil {
		reporter.SetHook(hook)
	}
	opts.Progress = reporter
	if can.Spec.Trace {
		opts.Events = new(telemetry.TraceSet)
	}
	if err := can.Exp.Run(opts); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	b, err := opts.Metrics.Report(can.Exp.Name, opts.Snapshot()).StableJSON()
	if err != nil {
		return nil, nil, fmt.Errorf("rendering report: %v", err)
	}
	if opts.Events != nil {
		var buf bytes.Buffer
		if opts.Events.WriteChrome(&buf) == nil {
			trace = buf.Bytes()
		}
	}
	return b, trace, nil
}

// execute runs one job end to end: wire a private collector and
// progress reporter, run the experiment, render the byte-stable
// report, and store it under the job's content address. A canceled
// run is never cached — its partial report is not the true value of
// that content address.
func (s *Server) execute(j *Job) {
	defer s.dropInflight(j)
	ctx, cancel := context.WithCancel(s.baseCtx)
	if !j.deadline.IsZero() {
		// Deadline propagation, part two: the client's patience bounds
		// the run itself, not just the queue wait.
		ctx, cancel = context.WithDeadline(s.baseCtx, j.deadline)
	}
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	s.simulations.Add(1)
	s.slog.Info("job running", "trace", j.TraceID(), "job", j.ID,
		"experiment", j.Can.Exp.Name, "hash", j.Can.Hash)

	b, traceBuf, runErr := s.runSpec(ctx, j.Can, j.appendEvent)
	now := time.Now()
	if ctx.Err() != nil {
		// Which cancellation was it? User cancels and blown deadlines
		// are resolutions (commit the journal record); a shutdown
		// cancel is crash-equivalent — the record stays live so a
		// restart replays the job.
		msg := "canceled while running; partial results discarded"
		resolved := j.wasUserCanceled()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			msg = "deadline exceeded while running; partial results discarded"
			resolved = true
			s.deadlineShed.Add(1)
		}
		j.finish(JobCanceled, msg, now)
		if resolved {
			s.journalCommit(j.Can.Hash)
		}
		s.slog.Info("job finished", "trace", j.TraceID(), "job", j.ID, "state", "canceled", "reason", msg)
		return
	}
	if runErr != nil {
		j.finish(JobFailed, runErr.Error(), now)
		s.journalCommit(j.Can.Hash)
		s.slog.Warn("job finished", "trace", j.TraceID(), "job", j.ID, "state", "failed", "error", runErr.Error())
		return
	}
	// A disk-refused Put is not a failed job: the bytes land in the
	// memory overlay and serve from there, the breaker hears about the
	// disk, and the journal record stays live — after a crash the spec
	// recomputes, which is exactly what losing the disk copy means.
	if err := s.cache.Put(j.Can.Hash, j.Can.Exp.Name, b); err != nil {
		s.noteDiskOp(err)
		log.Printf("server: cache write failed (serving from memory): %v", err)
		s.slog.Warn("cache commit", "trace", j.TraceID(), "job", j.ID,
			"hash", j.Can.Hash, "bytes", len(b), "durable", false, "error", err.Error())
	} else {
		s.noteDiskOp(nil)
		s.journalCommit(j.Can.Hash)
		s.slog.Info("cache commit", "trace", j.TraceID(), "job", j.ID,
			"hash", j.Can.Hash, "bytes", len(b), "durable", true)
	}
	j.mark("committed", time.Now())
	if traceBuf != nil {
		j.setTrace(traceBuf)
	}
	j.finish(JobDone, "", time.Now())
	s.slog.Info("job finished", "trace", j.TraceID(), "job", j.ID, "state", "done")
}

// Report returns the job's report bytes from the cache. Only done
// jobs have one.
func (s *Server) Report(j *Job) ([]byte, bool) {
	if st, _ := j.State(); st != JobDone {
		return nil, false
	}
	return s.cache.Get(j.Can.Hash)
}

// Cancel cancels a job by ID (the DELETE /v1/jobs/{id} path). Returns
// false when the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	if !j.requestCancel() {
		return false
	}
	s.dropInflight(j)
	// A user cancel resolves the job: release its journal record so a
	// restart doesn't resurrect work the client explicitly killed.
	// (For a still-running job the execution path may commit again —
	// harmless, commits of non-live hashes are no-ops.)
	s.journalCommit(j.Can.Hash)
	return true
}

// Drain gracefully shuts the server down: refuse new submissions,
// let in-flight jobs finish (their results land in the cache),
// checkpoint still-queued jobs to pending.json, release their journal
// records (only once the checkpoint durably owns them), compact the
// journal, and flush the cache index so a restart reuses every
// completed result. Idempotent; ctx bounds the wait for in-flight
// work. While the disk breaker is open the disk steps are skipped —
// a degraded daemon exits cleanly with its journal intact from before
// the degrade, which is exactly the crash-recovery story.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.admitMu.Unlock()
		close(s.probeStop)
		if s.cluster != nil {
			// Stop heartbeating and stealing before waiting on workers:
			// peers see the drain via their next failed beat (or the
			// Draining flag gossiped just before), and jobs still out on
			// steal leases keep their WAL records live — a commit that
			// never arrives replays on restart, same as a crash.
			s.cluster.Stop()
		}

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
			return
		}
		if s.degraded.Load() {
			log.Printf("server: draining degraded; skipping checkpoint/index writes (journal keeps pre-degrade accepts live for replay)")
			if s.journal != nil {
				s.journal.Close()
			}
			return
		}
		if err := s.savePending(); err != nil {
			s.drainErr = err
			if s.journal != nil {
				s.journal.Close()
			}
			return
		}
		if s.journal != nil {
			// pending.json now owns the checkpointed specs; their WAL
			// records can resolve. Everything else live at this point
			// was either committed on completion or deliberately left
			// for replay (shutdown-canceled running jobs under Close).
			s.pendingMu.Lock()
			hashes := append([]string(nil), s.pendingHashes...)
			s.pendingMu.Unlock()
			for _, h := range hashes {
				s.journalCommit(h)
			}
			if err := s.journal.Compact(); err != nil {
				log.Printf("server: journal compaction at drain failed: %v", err)
			}
			s.journal.Close()
		}
		s.drainErr = s.cache.SaveIndex()
	})
	return s.drainErr
}

// savePending writes the drain checkpoint (disk-backed caches only,
// and only when something was left queued).
func (s *Server) savePending() error {
	s.pendingMu.Lock()
	specs := append([]Spec(nil), s.pending...)
	s.pendingMu.Unlock()
	if s.cfg.CacheDir == "" || len(specs) == 0 {
		return nil
	}
	b, err := json.MarshalIndent(struct {
		Schema string `json:"schema"`
		Specs  []Spec `json:"specs"`
	}{Schema: "colt-pending/1", Specs: specs}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding pending checkpoint: %w", err)
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	if err := faultfs.WriteFileSync(s.fsys, path, append(b, '\n')); err != nil {
		return fmt.Errorf("server: writing pending checkpoint: %w", err)
	}
	return nil
}

// Close hard-stops the server: cancel every running job, then drain
// (which still flushes the cache index). Tests use it; production
// shutdown uses Drain.
func (s *Server) Close() error {
	s.stop()
	return s.Drain(context.Background())
}

// Stats is the GET /v1/stats body.
type Stats struct {
	Draining bool             `json:"draining"`
	QueueLen int              `json:"queue_len"`
	QueueCap int              `json:"queue_cap"`
	Jobs     map[JobState]int `json:"jobs"`
	// Simulations counts actual experiment executions (cache hits and
	// coalesced submissions never add one).
	Simulations uint64 `json:"simulations"`
	Coalesced   uint64 `json:"coalesced"`
	// PendingDropped counts drain-checkpointed jobs a restarted daemon
	// could not resubmit (unknown experiment, refilled queue).
	PendingDropped uint64 `json:"pending_dropped"`
	// Degraded reports the disk circuit breaker is open: the daemon is
	// serving memory-only and probing the disk for recovery.
	Degraded bool `json:"degraded"`
	// DegradedEvents counts breaker trips over the process lifetime.
	DegradedEvents uint64 `json:"degraded_events,omitempty"`
	// DeadlineShed counts jobs canceled for blowing their client
	// deadline, queued or running.
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
	// DiskFaultsInjected counts injected filesystem faults (chaos runs
	// only; zero without a -disk-faults plane).
	DiskFaultsInjected uint64 `json:"disk_faults_injected,omitempty"`
	// Journal is the accepted-job WAL snapshot (disk-backed caches
	// only).
	Journal *JournalStats `json:"journal,omitempty"`
	// Cluster is the fleet view (cluster mode only): ring shape,
	// membership counts, and cross-node traffic counters.
	Cluster   *ClusterStats            `json:"cluster,omitempty"`
	Cache     CacheStats               `json:"cache"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Stats snapshots the server's counters. Every number is an atomic
// load reconciled across shards — no global lock is held, no per-job
// state is read, so a monitoring scrape never stalls admission.
func (s *Server) Stats() Stats {
	st := Stats{
		Draining:       s.draining.Load(),
		QueueLen:       len(s.queue),
		QueueCap:       cap(s.queue),
		Jobs:           s.trackedJobs(),
		Simulations:    s.simulations.Load(),
		Coalesced:      s.coalesced.Load(),
		PendingDropped: s.pendingDropped.Load(),
		Degraded:       s.degraded.Load(),
		DegradedEvents: s.degradedEvents.Load(),
		DeadlineShed:   s.deadlineShed.Load(),
		Cache:          s.cache.Stats(),
		Endpoints:      s.ep.snapshot(),
		Cluster:        s.clusterStats(),
	}
	if s.plane != nil {
		st.DiskFaultsInjected = s.plane.InjectedTotal()
	}
	if s.journal != nil {
		appended, committed, torn := s.journal.Counters()
		st.Journal = &JournalStats{
			Live:            s.journal.Live(),
			Appended:        appended,
			Committed:       committed,
			Replayed:        s.journalReplayed.Load(),
			TornSkipped:     torn,
			SkippedDegraded: s.journalSkipped.Load(),
		}
	}
	return st
}

// retryAfter renders a jittered Retry-After value for a refusal: a
// full queue suggests coming back in 1–3 seconds, a draining daemon
// in 5–10 (it is not coming back as this process). The jitter spreads
// a crowd of refused clients instead of re-synchronizing them into
// the next thundering herd.
func (s *Server) retryAfter(err error) string {
	s.retryRngMu.Lock()
	f := s.retryRng.Float64()
	s.retryRngMu.Unlock()
	lo, spread := 1, 3
	if errors.Is(err, ErrDraining) {
		lo, spread = 5, 6
	}
	return strconv.Itoa(lo + int(f*float64(spread-1)))
}
