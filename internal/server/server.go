package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
	"colt/internal/telemetry"
)

// pendingFile checkpoints queued-but-unstarted job specs at drain so
// a restarted daemon can resubmit them.
const pendingFile = "pending.json"

// Config sizes the serving daemon. Zero values take the documented
// defaults.
type Config struct {
	// CacheDir roots the content-addressed result cache ("" =
	// memory-only; nothing survives a restart).
	CacheDir string
	// QueueDepth bounds the job queue (default 16). A full queue
	// refuses submissions with 503 + Retry-After.
	QueueDepth int
	// Workers is how many jobs simulate concurrently (default 1 —
	// simulations are themselves internally parallel).
	Workers int
	// MaxRefs is the per-request measured-reference ceiling (default
	// 50,000,000; <0 disables). Oversized submissions are refused with
	// 429 before touching the queue.
	MaxRefs int
	// Parallel is the sched worker count handed to each job
	// (0 = GOMAXPROCS). Never part of the cache key: reports are
	// byte-identical at every width.
	Parallel int
	// Registry is the experiment set to serve (default
	// experiments.Registry()). Tests stub it with fast fakes.
	Registry []experiments.NamedExperiment
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxRefs == 0 {
		c.MaxRefs = 50_000_000
	}
	if c.Registry == nil {
		c.Registry = experiments.Registry()
	}
	return c
}

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrDraining: the daemon is shutting down and accepts no new work
	// (503 + Retry-After).
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull: the bounded job queue is at capacity (503 +
	// Retry-After).
	ErrQueueFull = errors.New("job queue is full")
	// ErrTooLarge: the expanded spec exceeds the per-request reference
	// ceiling (429).
	ErrTooLarge = errors.New("spec exceeds the per-request reference ceiling")
)

// Server is the coltd core: admission, queue, execution, cache, and
// job registry. It serves HTTP via Handler (http.go) but is fully
// drivable without HTTP, which is how the unit tests exercise it.
type Server struct {
	cfg   Config
	cache *Cache

	baseCtx context.Context
	stop    context.CancelFunc

	mu          sync.Mutex
	draining    bool
	jobs        map[string]*Job
	byHash      map[string]*Job // queued/running jobs, for coalescing
	order       []string        // job IDs in admission order
	nextID      int
	pending     []Spec // checkpointed at drain
	simulations uint64
	coalesced   uint64

	queue chan *Job
	wg    sync.WaitGroup

	drainOnce sync.Once
	drainErr  error

	ep *endpointMetrics
}

// NewServer builds a server, opens (or creates) its cache, resubmits
// any drain-checkpointed jobs from a prior run, and starts its
// workers.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	c, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   c,
		baseCtx: ctx,
		stop:    stop,
		jobs:    make(map[string]*Job),
		byHash:  make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		ep:      newEndpointMetrics(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if err := s.resubmitPending(); err != nil {
		s.stop()
		return nil, err
	}
	return s, nil
}

// resubmitPending replays the drain checkpoint of a prior run.
// Whatever was computed before the drain is now in the cache, so
// resubmitted specs that overlap it complete instantly.
func (s *Server) resubmitPending() error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: reading pending checkpoint: %w", err)
	}
	var cp struct {
		Specs []Spec `json:"specs"`
	}
	if err := json.Unmarshal(raw, &cp); err != nil {
		return fmt.Errorf("server: parsing pending checkpoint: %w", err)
	}
	for _, spec := range cp.Specs {
		// Best-effort: a spec the current registry no longer knows, or
		// a queue already refilled, drops the checkpoint entry.
		s.Submit(spec)
	}
	return os.Remove(path)
}

// Cache exposes the result cache (read-mostly: stats and report
// serving).
func (s *Server) Cache() *Cache { return s.cache }

// Job looks up a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// SubmitResult describes the outcome of an admission decision.
type SubmitResult struct {
	Job *Job
	// Created is false when the submission coalesced onto an existing
	// queued/running job with the same content hash.
	Created bool
	// Cached is true when the result was already in the cache and the
	// job completed without queueing.
	Cached bool
}

// Submit canonicalizes, admits, and routes a job spec: cache hits
// complete immediately, identical in-flight specs coalesce onto one
// execution, and everything else takes a queue slot or is refused
// (ErrDraining, ErrQueueFull, ErrTooLarge — the handler maps these to
// 503/503/429; any other error is a 400 validation failure).
func (s *Server) Submit(spec Spec) (SubmitResult, error) {
	can, err := Canonicalize(spec, s.cfg.Registry)
	if err != nil {
		return SubmitResult{}, err
	}
	if s.cfg.MaxRefs > 0 && can.Opts.Refs > s.cfg.MaxRefs {
		return SubmitResult{}, fmt.Errorf("%w: refs %d > limit %d",
			ErrTooLarge, can.Opts.Refs, s.cfg.MaxRefs)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return SubmitResult{}, ErrDraining
	}
	// Coalesce onto an identical in-flight execution.
	if j, ok := s.byHash[can.Hash]; ok {
		if st, _ := j.State(); !st.terminal() {
			j.noteCoalesced()
			s.coalesced++
			return SubmitResult{Job: j, Created: false}, nil
		}
		delete(s.byHash, can.Hash)
	}
	now := time.Now()
	// Serve from cache: Get verifies the stored bytes against their
	// recorded hash, so a corrupted entry falls through to recompute.
	if _, ok := s.cache.Get(can.Hash); ok {
		j := newJob(s.newIDLocked(), can, now)
		j.mu.Lock()
		j.state = JobDone
		j.cached = true
		j.mu.Unlock()
		s.trackLocked(j)
		return SubmitResult{Job: j, Created: true, Cached: true}, nil
	}
	j := newJob(s.newIDLocked(), can, now)
	select {
	case s.queue <- j:
	default:
		return SubmitResult{}, ErrQueueFull
	}
	s.trackLocked(j)
	s.byHash[can.Hash] = j
	return SubmitResult{Job: j, Created: true}, nil
}

func (s *Server) newIDLocked() string {
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

func (s *Server) trackLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker consumes the queue. Once a drain begins, undispatched jobs
// are checkpointed instead of executed; the job a worker is already
// inside when the drain starts runs to completion.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.isDraining() {
			s.checkpoint(j)
			continue
		}
		s.execute(j)
	}
}

// checkpoint records a queued job's spec for the next run and closes
// the job as canceled.
func (s *Server) checkpoint(j *Job) {
	if st, _ := j.State(); st.terminal() {
		s.dropInflight(j)
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, j.Can.Spec)
	s.mu.Unlock()
	j.finish(JobCanceled, "checkpointed at drain; resubmitted on restart", time.Now())
	s.dropInflight(j)
}

func (s *Server) dropInflight(j *Job) {
	s.mu.Lock()
	if s.byHash[j.Can.Hash] == j {
		delete(s.byHash, j.Can.Hash)
	}
	s.mu.Unlock()
}

// execute runs one job end to end: wire a private collector and
// progress reporter, run the experiment, render the byte-stable
// report, and store it under the job's content address. A canceled
// run is never cached — its partial report is not the true value of
// that content address.
func (s *Server) execute(j *Job) {
	defer s.dropInflight(j)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	s.mu.Lock()
	s.simulations++
	s.mu.Unlock()

	opts := j.Can.Opts
	opts.Ctx = ctx
	opts.Parallel = s.cfg.Parallel
	opts.Metrics = metrics.NewCollector()
	reporter := telemetry.NewReporter(nil)
	reporter.SetHook(j.appendEvent)
	opts.Progress = reporter
	if j.Can.Spec.Trace {
		opts.Events = new(telemetry.TraceSet)
	}

	runErr := j.Can.Exp.Run(opts)
	now := time.Now()
	if ctx.Err() != nil {
		j.finish(JobCanceled, "canceled while running; partial results discarded", now)
		return
	}
	if runErr != nil {
		j.finish(JobFailed, runErr.Error(), now)
		return
	}
	report := opts.Metrics.Report(j.Can.Exp.Name, opts.Snapshot())
	b, err := report.StableJSON()
	if err != nil {
		j.finish(JobFailed, fmt.Sprintf("rendering report: %v", err), now)
		return
	}
	if err := s.cache.Put(j.Can.Hash, j.Can.Exp.Name, b); err != nil {
		j.finish(JobFailed, fmt.Sprintf("caching report: %v", err), now)
		return
	}
	if opts.Events != nil {
		var buf bytes.Buffer
		if err := opts.Events.WriteChrome(&buf); err == nil {
			j.setTrace(buf.Bytes())
		}
	}
	j.finish(JobDone, "", now)
}

// Report returns the job's report bytes from the cache. Only done
// jobs have one.
func (s *Server) Report(j *Job) ([]byte, bool) {
	if st, _ := j.State(); st != JobDone {
		return nil, false
	}
	return s.cache.Get(j.Can.Hash)
}

// Cancel cancels a job by ID (the DELETE /v1/jobs/{id} path). Returns
// false when the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	if !j.requestCancel() {
		return false
	}
	s.dropInflight(j)
	return true
}

// Drain gracefully shuts the server down: refuse new submissions,
// let in-flight jobs finish (their results land in the cache),
// checkpoint still-queued jobs to pending.json, and flush the cache
// index so a restart reuses every completed result. Idempotent; ctx
// bounds the wait for in-flight work.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		close(s.queue)
		s.mu.Unlock()

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
			return
		}
		if err := s.savePending(); err != nil {
			s.drainErr = err
			return
		}
		s.drainErr = s.cache.SaveIndex()
	})
	return s.drainErr
}

// savePending writes the drain checkpoint (disk-backed caches only,
// and only when something was left queued).
func (s *Server) savePending() error {
	s.mu.Lock()
	specs := append([]Spec(nil), s.pending...)
	s.mu.Unlock()
	if s.cfg.CacheDir == "" || len(specs) == 0 {
		return nil
	}
	b, err := json.MarshalIndent(struct {
		Schema string `json:"schema"`
		Specs  []Spec `json:"specs"`
	}{Schema: "colt-pending/1", Specs: specs}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding pending checkpoint: %w", err)
	}
	path := filepath.Join(s.cfg.CacheDir, pendingFile)
	if err := os.WriteFile(path+".tmp", append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: writing pending checkpoint: %w", err)
	}
	return os.Rename(path+".tmp", path)
}

// Close hard-stops the server: cancel every running job, then drain
// (which still flushes the cache index). Tests use it; production
// shutdown uses Drain.
func (s *Server) Close() error {
	s.stop()
	return s.Drain(context.Background())
}

// Stats is the GET /v1/stats body.
type Stats struct {
	Draining    bool                     `json:"draining"`
	QueueLen    int                      `json:"queue_len"`
	QueueCap    int                      `json:"queue_cap"`
	Jobs        map[JobState]int         `json:"jobs"`
	Simulations uint64                   `json:"simulations"`
	Coalesced   uint64                   `json:"coalesced"`
	Cache       CacheStats               `json:"cache"`
	Endpoints   map[string]EndpointStats `json:"endpoints"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Draining:    s.draining,
		QueueLen:    len(s.queue),
		QueueCap:    cap(s.queue),
		Jobs:        make(map[JobState]int),
		Simulations: s.simulations,
		Coalesced:   s.coalesced,
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		state, _ := j.State()
		st.Jobs[state]++
	}
	st.Cache = s.cache.Stats()
	st.Endpoints = s.ep.snapshot()
	return st
}
