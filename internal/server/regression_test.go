package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
)

// TestBoundedRetentionEvictsOldestTerminal: the registry must not grow
// without bound under sustained traffic. Ten thousand cache-hit jobs
// against a RetainJobs=64 server leave at most 64 tracked jobs; the
// earliest IDs are evicted (404 over HTTP) while the newest survives,
// and a job that is still running is never evicted no matter how much
// terminal traffic churns past it.
func TestBoundedRetentionEvictsOldestTerminal(t *testing.T) {
	dir := t.TempDir()
	warm := Spec{Experiment: "stub", Seed: 1}

	// Phase 1: populate the cache with the hot spec's report.
	s1 := newStubServer(t, Config{CacheDir: dir, RetainJobs: 64}, nil)
	first := mustSubmit(t, s1, warm)
	waitState(t, first.Job, JobDone)
	if err := s1.Close(); err != nil { // flushes the cache index
		t.Fatal(err)
	}

	// Phase 2: a gated server over the same cache. One fresh job runs
	// (held open by the gate) while 10k cache hits churn the registry.
	gate := make(chan struct{})
	s := newStubServer(t, Config{CacheDir: dir, RetainJobs: 64}, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 777})
	waitState(t, running.Job, JobRunning)

	var firstHitID, lastHitID string
	for i := 0; i < 10_000; i++ {
		res := mustSubmit(t, s, warm)
		if !res.Cached {
			t.Fatalf("submission %d missed the cache: %+v", i, res)
		}
		if firstHitID == "" {
			firstHitID = res.Job.ID
		}
		lastHitID = res.Job.ID
	}

	// The bound covers terminal jobs; the one running job sits outside
	// it.
	var terminalCount int
	for _, j := range s.listJobs() {
		if j.stateFast().terminal() {
			terminalCount++
		}
	}
	if terminalCount > 64 {
		t.Fatalf("registry holds %d terminal jobs after 10k submissions, want <= 64", terminalCount)
	}
	if _, ok := s.Job(firstHitID); ok {
		t.Fatalf("oldest terminal job %s survived eviction", firstHitID)
	}
	if _, ok := s.Job(lastHitID); !ok {
		t.Fatalf("newest job %s was evicted", lastHitID)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+firstHitID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job status = %d, want 404", resp.StatusCode)
	}

	// The running job rode out the entire churn.
	j, ok := s.Job(running.Job.ID)
	if !ok {
		t.Fatalf("running job %s was evicted", running.Job.ID)
	}
	if st, _ := j.State(); st != JobRunning {
		t.Fatalf("running job state = %s, want running", st)
	}
	close(gate)
	waitState(t, j, JobDone)
}

// rangedRegistry is a stub whose driver records every seed it actually
// executes — the instrument for proving a canceled-before-dispatch job
// never runs.
func rangedRegistry(ran *sync.Map) []experiments.NamedExperiment {
	return []experiments.NamedExperiment{{
		Name: "stub", Desc: "test stub",
		Run: func(opts experiments.Options) error {
			ran.Store(opts.Seed, true)
			opts.Metrics.Add(metrics.Record{
				Kind: "bench", Bench: "stub", Setup: "s", Seed: opts.Seed,
			}, 0)
			return nil
		},
	}}
}

// TestCancelDispatchRace hammers DELETE against worker dispatch: for
// every job whose cancel won while it was still queued, the experiment
// must never execute. Before the fix, requestCancel read the state
// under one lock acquisition and transitioned under a second, so a
// dispatch could slip between the two and run a job that had already
// been reported canceled.
func TestCancelDispatchRace(t *testing.T) {
	var ran sync.Map
	s, err := NewServer(Config{
		Workers:    2,
		QueueDepth: 64,
		Registry:   rangedRegistry(&ran),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	const rounds, perRound = 40, 8
	seed := uint64(0)
	for r := 0; r < rounds; r++ {
		jobs := make([]*Job, 0, perRound)
		for i := 0; i < perRound; i++ {
			seed++
			res := mustSubmit(t, s, Spec{Experiment: "stub", Seed: seed})
			jobs = append(jobs, res.Job)
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				s.Cancel(j.ID)
			}(j)
		}
		wg.Wait()
		for _, j := range jobs {
			select {
			case <-j.Done():
			case <-time.After(10 * time.Second):
				st, _ := j.State()
				t.Fatalf("job %s stuck in %s after cancel/dispatch race", j.ID, st)
			}
			st, errMsg := j.State()
			switch st {
			case JobDone:
				// Dispatch won; the run must have happened.
				if _, ok := ran.Load(j.Can.Spec.Seed); !ok {
					t.Fatalf("job %s is done but its seed never ran", j.ID)
				}
			case JobCanceled:
				if strings.Contains(errMsg, "before dispatch") {
					if _, ok := ran.Load(j.Can.Spec.Seed); ok {
						t.Fatalf("job %s canceled before dispatch but its experiment ran anyway", j.ID)
					}
				}
			default:
				t.Fatalf("job %s ended %s (%s), want done or canceled", j.ID, st, errMsg)
			}
		}
	}
}

// TestQueueFullDoesNotBurnIDs: a refused submission must leave no
// trace — in particular it must not consume a job ID. Before the fix,
// Submit minted the ID before attempting the queue send, so a burst of
// refusals left holes in the ID sequence.
func TestQueueFullDoesNotBurnIDs(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{Workers: 1, QueueDepth: 1}, gate)

	r1 := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, r1.Job, JobRunning) // its queue slot is free again
	r2 := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 2})
	if r2.Job.ID != "j000002" {
		t.Fatalf("second job ID = %s, want j000002", r2.Job.ID)
	}

	for i := 0; i < 10; i++ {
		_, err := s.Submit(Spec{Experiment: "stub", Seed: uint64(100 + i)})
		if err != ErrQueueFull {
			t.Fatalf("over-capacity submit %d: err = %v, want ErrQueueFull", i, err)
		}
	}
	if got := s.nextID.Load(); got != 2 {
		t.Fatalf("nextID = %d after 10 refusals, want 2 (refusals must not mint IDs)", got)
	}

	close(gate)
	waitState(t, r1.Job, JobDone)
	waitState(t, r2.Job, JobDone)
	r3 := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 3})
	if r3.Job.ID != "j000003" {
		t.Fatalf("post-refusal job ID = %s, want j000003 (IDs must stay dense)", r3.Job.ID)
	}
}

// TestResubmitPendingCountsDrops: a restarted daemon that cannot
// readmit every checkpointed job must say so. An unknown experiment
// (registry changed between runs) and a queue too small for the
// checkpoint both surface in Stats.PendingDropped instead of
// vanishing.
func TestResubmitPendingCountsDrops(t *testing.T) {
	t.Run("unknown experiment", func(t *testing.T) {
		dir := t.TempDir()
		writePendingFile(t, dir, []Spec{
			{Experiment: "stub", Seed: 1},
			{Experiment: "vanished", Seed: 2}, // not in the restarted registry
			{Experiment: "stub", Seed: 3},
		})
		s := newStubServer(t, Config{CacheDir: dir, QueueDepth: 8}, nil)
		if got := s.Stats().PendingDropped; got != 1 {
			t.Fatalf("PendingDropped = %d, want 1", got)
		}
		if _, err := os.Stat(filepath.Join(dir, pendingFile)); !os.IsNotExist(err) {
			t.Fatalf("pending checkpoint not consumed (stat err %v)", err)
		}
	})
	t.Run("queue refilled", func(t *testing.T) {
		dir := t.TempDir()
		specs := make([]Spec, 6)
		for i := range specs {
			specs[i] = Spec{Experiment: "stub", Seed: uint64(i + 1)}
		}
		writePendingFile(t, dir, specs)
		gate := make(chan struct{})
		// One worker slot plus one queue slot: at most two of the six
		// checkpointed jobs fit; the rest must be counted as dropped.
		s := newStubServer(t, Config{CacheDir: dir, QueueDepth: 1, Workers: 1}, gate)
		st := s.Stats()
		if st.PendingDropped < 4 {
			t.Fatalf("PendingDropped = %d, want >= 4 (only 2 of 6 can fit)", st.PendingDropped)
		}
		admitted := len(s.listJobs())
		if admitted+int(st.PendingDropped) != len(specs) {
			t.Fatalf("admitted %d + dropped %d != checkpointed %d",
				admitted, st.PendingDropped, len(specs))
		}
		close(gate)
	})
}

func writePendingFile(t *testing.T, dir string, specs []Spec) {
	t.Helper()
	b, err := json.MarshalIndent(struct {
		Schema string `json:"schema"`
		Specs  []Spec `json:"specs"`
	}{Schema: "colt-pending/1", Specs: specs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, pendingFile), append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSSESlowSubscriberDoesNotBlockExecution: a subscriber that opens
// an event stream and never reads a byte must not stall the job (or
// anything else). Fan-out is cursor-based — the execution hot path
// only appends to the job's log — so the stalled stream's cost lands
// entirely on its own goroutine.
func TestSSESlowSubscriberDoesNotBlockExecution(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{}, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, res.Job, JobRunning)

	// A raw connection that sends the request and then goes silent:
	// never reads, never closes, just sits on the stream.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/jobs/%s/events HTTP/1.1\r\nHost: sse\r\n\r\n", res.Job.ID)
	time.Sleep(50 * time.Millisecond) // let the handler attach

	close(gate)
	select {
	case <-res.Job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not finish while a slow SSE subscriber was attached")
	}
	if st, _ := res.Job.State(); st != JobDone {
		t.Fatalf("job state = %s, want done", st)
	}
}

// TestWriteJSONEncodeError: an unencodable response value becomes a
// clean 500 with a JSON error body, not a half-written 200.
func TestWriteJSONEncodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, math.NaN()) // NaN has no JSON encoding
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body %q is not JSON: %v", rec.Body.String(), err)
	}
	if !strings.Contains(body.Error, "encoding response") {
		t.Fatalf("error body %q does not explain the encode failure", body.Error)
	}

	// The happy path still renders normally.
	rec2 := httptest.NewRecorder()
	writeJSON(rec2, http.StatusTeapot, apiError{Error: "x"})
	if rec2.Code != http.StatusTeapot || !strings.Contains(rec2.Body.String(), `"x"`) {
		t.Fatalf("happy path: status=%d body=%q", rec2.Code, rec2.Body.String())
	}
}

// TestStatsUnderLoad runs Submit, Stats, Cancel, and job lookups
// concurrently under the race detector. Stats must be a pure
// atomic-counter read — it shares no lock with admission — so this
// is primarily a data-race canary, plus a sanity check that the
// reconciled counters stay coherent.
func TestStatsUnderLoad(t *testing.T) {
	s := newStubServer(t, Config{Workers: 2, QueueDepth: 32, RetainJobs: 64}, nil)

	var wg sync.WaitGroup
	var submitted, refused atomic.Int64
	stop := make(chan struct{})

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// A small seed range: some submissions coalesce, some
				// hit the cache, some simulate — all three paths race
				// against Stats and Cancel.
				_, err := s.Submit(Spec{Experiment: "stub", Seed: uint64(i % 7)})
				if err == ErrQueueFull {
					refused.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted.Add(1)
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Cancel(fmt.Sprintf("j%06d", i%100))
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				for state, n := range st.Jobs {
					if n < 0 {
						t.Errorf("Stats reports %d jobs in state %s", n, state)
						return
					}
				}
			}
		}()
	}

	// Wait for the submitters, then release the pollers.
	done := make(chan struct{})
	go func() {
		for submitted.Load()+refused.Load() < 800 {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("submitters did not finish")
	}
	close(stop)
	wg.Wait()

	// Let everything settle terminal, then reconcile the counters
	// against ground truth.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := s.listJobs()
		settled := true
		for _, j := range jobs {
			if !j.stateFast().terminal() {
				settled = false
				break
			}
		}
		if settled {
			byState := make(map[JobState]int)
			for _, j := range jobs {
				byState[j.stateFast()]++
			}
			st := s.Stats()
			for state, n := range byState {
				if st.Jobs[state] != n {
					t.Fatalf("Stats.Jobs[%s] = %d, registry holds %d", state, st.Jobs[state], n)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never settled terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
