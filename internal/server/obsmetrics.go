package server

import (
	"time"

	"colt/internal/obs"
)

// serverMetrics is coltd's /metrics surface. Counters the hot path
// increments directly live here; counters the server already keeps as
// atomics (admission tallies, cache/journal/breaker state) are
// exported through Func collectors so nothing is counted twice and
// the hot path is untouched. Everything a scrape reads is an atomic
// load — the exposition can never stall admission.
type serverMetrics struct {
	reg *obs.Registry

	// Admission outcomes, one counter per disposition.
	admitAccepted  *obs.Counter
	admitCacheHit  *obs.Counter
	admitCoalesced *obs.Counter
	admitQueueFull *obs.Counter
	admitDraining  *obs.Counter
	admitTooLarge  *obs.Counter
	admitInvalid   *obs.Counter

	// Terminal transitions by final state.
	doneTotal     *obs.Counter
	failedTotal   *obs.Counter
	canceledTotal *obs.Counter

	// Wall-clock phase latencies, derived from the span timeline at
	// the terminal transition.
	phaseQueueWait *obs.Histogram
	phaseRun       *obs.Histogram
	phaseTotal     *obs.Histogram

	// HTTP layer.
	httpLatency    *obs.Histogram
	sseSubscribers *obs.Gauge
	reportsServed  *obs.Counter
}

// newServerMetrics registers the whole inventory against srv. Called
// once during NewServer, before any worker or handler runs, so
// registration's mutex never meets the serving path.
func newServerMetrics(srv *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}

	const submitted = "coltd_jobs_submitted_total"
	const submittedHelp = "Admission decisions by outcome."
	m.admitAccepted = r.Counter(submitted, submittedHelp, "outcome", "accepted")
	m.admitCacheHit = r.Counter(submitted, submittedHelp, "outcome", "cache_hit")
	m.admitCoalesced = r.Counter(submitted, submittedHelp, "outcome", "coalesced")
	m.admitQueueFull = r.Counter(submitted, submittedHelp, "outcome", "refused_queue_full")
	m.admitDraining = r.Counter(submitted, submittedHelp, "outcome", "refused_draining")
	m.admitTooLarge = r.Counter(submitted, submittedHelp, "outcome", "refused_too_large")
	m.admitInvalid = r.Counter(submitted, submittedHelp, "outcome", "invalid")

	const completed = "coltd_jobs_completed_total"
	const completedHelp = "Jobs reaching a terminal state, by state."
	m.doneTotal = r.Counter(completed, completedHelp, "state", "done")
	m.failedTotal = r.Counter(completed, completedHelp, "state", "failed")
	m.canceledTotal = r.Counter(completed, completedHelp, "state", "canceled")

	const phase = "coltd_job_phase_seconds"
	const phaseHelp = "Wall-clock time jobs spend per lifecycle phase."
	m.phaseQueueWait = r.Histogram(phase, phaseHelp, obs.LatencyBuckets, "phase", "queue_wait")
	m.phaseRun = r.Histogram(phase, phaseHelp, obs.LatencyBuckets, "phase", "run")
	m.phaseTotal = r.Histogram(phase, phaseHelp, obs.LatencyBuckets, "phase", "total")

	r.GaugeFunc("coltd_queue_depth", "Jobs currently in the bounded queue.",
		func() float64 { return float64(len(srv.queue)) })
	r.GaugeFunc("coltd_queue_capacity", "Configured queue bound.",
		func() float64 { return float64(cap(srv.queue)) })
	for idx, st := range jobStates {
		idx := idx
		r.GaugeFunc("coltd_jobs_tracked", "Registry-tracked jobs by state.",
			func() float64 {
				var n int64
				for i := range srv.reg {
					n += srv.reg[i].counts.n[idx].Load()
				}
				return float64(n)
			}, "state", string(st))
	}
	r.GaugeFunc("coltd_draining", "1 while the daemon is draining.",
		func() float64 { return boolGauge(srv.draining.Load()) })
	r.GaugeFunc("coltd_degraded", "1 while the disk circuit breaker is open (memory-only serving).",
		func() float64 { return boolGauge(srv.degraded.Load()) })
	r.CounterFunc("coltd_breaker_trips_total", "Disk circuit breaker openings over the process lifetime.",
		func() float64 { return float64(srv.degradedEvents.Load()) })
	r.CounterFunc("coltd_simulations_total", "Experiment executions (cache hits and coalesced submissions excluded).",
		func() float64 { return float64(srv.simulations.Load()) })
	r.CounterFunc("coltd_deadline_shed_total", "Jobs canceled for blowing their client deadline, queued or running.",
		func() float64 { return float64(srv.deadlineShed.Load()) })
	r.CounterFunc("coltd_pending_dropped_total", "Checkpointed or journaled jobs a restart could not resubmit.",
		func() float64 { return float64(srv.pendingDropped.Load()) })
	r.CounterFunc("coltd_disk_faults_injected_total", "Filesystem faults injected by the chaos plane.",
		func() float64 { return float64(srv.plane.InjectedTotal()) })

	r.CounterFunc("coltd_cache_hits_total", "Cache reads served after hash verification.",
		func() float64 { return float64(srv.cache.hits.Load()) })
	r.CounterFunc("coltd_cache_misses_total", "Cache reads that fell through to recompute.",
		func() float64 { return float64(srv.cache.misses.Load()) })
	r.CounterFunc("coltd_cache_corrupt_total", "Cache entries evicted for failing verification.",
		func() float64 { return float64(srv.cache.corrupt.Load()) })
	r.CounterFunc("coltd_cache_degraded_puts_total", "Results diverted to the memory overlay by a failing disk.",
		func() float64 { return float64(srv.cache.degradedPuts.Load()) })
	r.GaugeFunc("coltd_cache_entries", "Entries in the content-addressed result cache.",
		func() float64 { return float64(srv.cache.entriesN.Load()) })
	r.GaugeFunc("coltd_cache_overlay_entries", "Disk-mode entries living only in the memory overlay.",
		func() float64 {
			if srv.cache.dir == "" {
				return 0
			}
			return float64(srv.cache.overlayN.Load())
		})

	// Journal funcs nil-check at scrape time: memory-only daemons have
	// no WAL but keep the same series shape (zeros), so dashboards
	// never lose the family.
	r.CounterFunc("coltd_journal_appends_total", "WAL records durably appended.",
		func() float64 {
			if srv.journal == nil {
				return 0
			}
			return float64(srv.journal.appended.Load())
		})
	r.CounterFunc("coltd_journal_commits_total", "WAL accept records resolved.",
		func() float64 {
			if srv.journal == nil {
				return 0
			}
			return float64(srv.journal.committed.Load())
		})
	r.CounterFunc("coltd_journal_torn_total", "Corrupt or torn WAL records skipped at open.",
		func() float64 {
			if srv.journal == nil {
				return 0
			}
			return float64(srv.journal.torn.Load())
		})
	r.GaugeFunc("coltd_journal_live", "Accepted-but-unresolved WAL records (what a crash now would replay).",
		func() float64 {
			if srv.journal == nil {
				return 0
			}
			return float64(srv.journal.liveN.Load())
		})
	r.CounterFunc("coltd_journal_replayed_total", "Jobs resubmitted from the WAL at startup.",
		func() float64 { return float64(srv.journalReplayed.Load()) })
	r.CounterFunc("coltd_journal_skipped_degraded_total", "Jobs admitted without a durable accept record.",
		func() float64 { return float64(srv.journalSkipped.Load()) })

	// Cluster families are always registered — an unclustered daemon
	// exports zeros (srv.cluster nil-checked at scrape, like the
	// journal funcs) so dashboards keep one series shape fleet-wide.
	r.GaugeFunc("coltd_cluster_ring_size", "Members in the consistent-hash ring (0 = unclustered).",
		func() float64 {
			if srv.cluster == nil {
				return 0
			}
			return float64(srv.cluster.Ring().Size())
		})
	r.GaugeFunc("coltd_cluster_ring_epoch", "Local ring epoch (bumped per rebuild; gossiped for agreement checks).",
		func() float64 {
			if srv.cluster == nil {
				return 0
			}
			return float64(srv.cluster.Epoch())
		})
	peerGauge := func(state string, pick func(alive, suspect, dead int) int) {
		r.GaugeFunc("coltd_cluster_peers", "Peers by failure-detector state.",
			func() float64 {
				if srv.cluster == nil {
					return 0
				}
				return float64(pick(srv.cluster.Counts()))
			}, "state", state)
	}
	peerGauge("alive", func(a, s, d int) int { return a })
	peerGauge("suspect", func(a, s, d int) int { return s })
	peerGauge("dead", func(a, s, d int) int { return d })
	clusterCounter := func(name, help string, load func() uint64, labels ...string) {
		r.CounterFunc(name, help, func() float64 {
			if srv.cluster == nil {
				return 0
			}
			return float64(load())
		}, labels...)
	}
	clusterCounter("coltd_cluster_proxied_submits_total", "Submissions forwarded to their ring owner.",
		func() uint64 { return srv.cluster.Counters.ProxiedSubmits.Load() })
	clusterCounter("coltd_cluster_proxy_fallbacks_total", "Submissions admitted locally because the owner was unreachable.",
		func() uint64 { return srv.cluster.Counters.ProxyFallbacks.Load() })
	const fill = "coltd_cluster_peer_fill_total"
	const fillHelp = "Peer cache fill attempts by outcome."
	clusterCounter(fill, fillHelp, func() uint64 { return srv.cluster.Counters.PeerFillOK.Load() }, "outcome", "ok")
	clusterCounter(fill, fillHelp, func() uint64 { return srv.cluster.Counters.PeerFillMiss.Load() }, "outcome", "miss")
	clusterCounter(fill, fillHelp, func() uint64 { return srv.cluster.Counters.PeerFillCorrupt.Load() }, "outcome", "corrupt")
	const steals = "coltd_cluster_steals_total"
	const stealsHelp = "Cross-node work steals by direction (in = ran here for a peer, out = handed to a peer)."
	clusterCounter(steals, stealsHelp, func() uint64 { return srv.cluster.Counters.StealsIn.Load() }, "direction", "in")
	clusterCounter(steals, stealsHelp, func() uint64 { return srv.cluster.Counters.StealsOut.Load() }, "direction", "out")
	clusterCounter("coltd_cluster_steal_errors_total", "Steal rounds or commits that failed (includes expired leases).",
		func() uint64 { return srv.cluster.Counters.StealErrors.Load() })
	const beats = "coltd_cluster_heartbeats_total"
	const beatsHelp = "Outbound heartbeats by outcome."
	clusterCounter(beats, beatsHelp, func() uint64 { return srv.cluster.Counters.HeartbeatOK.Load() }, "outcome", "ok")
	clusterCounter(beats, beatsHelp, func() uint64 { return srv.cluster.Counters.HeartbeatFail.Load() }, "outcome", "fail")
	clusterCounter("coltd_cluster_ring_rebuilds_total", "Consistent-hash ring rebuilds (membership changes).",
		func() uint64 { return srv.cluster.Counters.RingRebuilds.Load() })

	m.httpLatency = r.Histogram("coltd_http_request_seconds",
		"HTTP request latency across all routes.", obs.LatencyBuckets)
	m.sseSubscribers = r.Gauge("coltd_sse_subscribers", "Open SSE event streams.")
	m.reportsServed = r.Counter("coltd_reports_served_total", "Report fetches served from the cache.")
	return m
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// noteTerminal records a terminal transition: completion counters and
// the phase histograms derived from the span timeline. Called from
// finishLocked/markCachedDone with j.mu held (the timeline is stable
// and the terminal mark just landed). Nil-safe for directly
// constructed test jobs.
func (m *serverMetrics) noteTerminal(j *Job, state JobState) {
	if m == nil {
		return
	}
	switch state {
	case JobDone:
		m.doneTotal.Inc()
	case JobFailed:
		m.failedTotal.Inc()
	default:
		m.canceledTotal.Inc()
	}
	var admitted, queued, running, term int64
	for _, mk := range j.timeline {
		switch mk.Phase {
		case "admitted":
			admitted = mk.UnixNs
		case "queued":
			queued = mk.UnixNs
		case "running":
			running = mk.UnixNs
		}
		term = mk.UnixNs // the terminal mark is last
	}
	sec := func(from, to int64) float64 { return time.Duration(to - from).Seconds() }
	if queued != 0 {
		end := running
		if end == 0 {
			end = term // shed or canceled before dispatch
		}
		m.phaseQueueWait.Observe(sec(queued, end))
	}
	if running != 0 {
		m.phaseRun.Observe(sec(running, term))
	}
	if admitted != 0 {
		m.phaseTotal.Observe(sec(admitted, term))
	}
}
