package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"time"

	"colt/internal/cluster"
	"colt/internal/metrics"
)

// Cross-node request headers.
const (
	// forwardedHeader marks a request already routed once by a peer,
	// capping submit/read forwarding at one hop: the receiving node
	// always handles it locally, even if its ring momentarily
	// disagrees about ownership.
	forwardedHeader = "X-Colt-Forwarded"
	// specHashHeader / experimentHeader ride on report responses so a
	// proxying peer can file the verified bytes under the right cache
	// key without a second round trip.
	specHashHeader   = "X-Colt-Spec-Hash"
	experimentHeader = "X-Colt-Experiment"
)

// maxClusterBody bounds any cross-node body read (reports, commit
// payloads). Matches the cluster package's own fill ceiling.
const maxClusterBody = 16 << 20

// stolenLease tracks one job handed to a remote stealer: who took
// it and when the victim gives up waiting and requeues it.
type stolenLease struct {
	j       *Job
	stealer string
	expires time.Time
}

// ---- cluster.Host implementation ----------------------------------

// QueueLen implements cluster.Host: current run-queue depth. It is
// the number heartbeats gossip and steal decisions key on.
func (s *Server) QueueLen() int { return len(s.queue) }

// Draining implements cluster.Host.
func (s *Server) Draining() bool { return s.draining.Load() }

// RunStolen implements cluster.Host: execute a job stolen from a
// peer. The spec is re-canonicalized locally and refused if its
// content hash disagrees with the victim's claim — a confused victim
// can waste this node's time but never poison its cache. The report
// also lands in the local cache, so the hash becomes servable from
// this node too (stealing doubles as replication).
func (s *Server) RunStolen(ctx context.Context, job cluster.StolenJob) ([]byte, error) {
	var spec Spec
	if err := json.Unmarshal(job.Spec, &spec); err != nil {
		return nil, fmt.Errorf("stolen spec: %w", err)
	}
	can, err := Canonicalize(spec, s.cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("stolen spec: %w", err)
	}
	if can.Hash != job.Hash {
		return nil, fmt.Errorf("stolen spec hash mismatch: victim claims %.12s, local canonicalization %.12s",
			job.Hash, can.Hash)
	}
	if b, ok := s.cache.Get(can.Hash); ok {
		return b, nil // already computed here; the steal resolves for free
	}
	s.simulations.Add(1)
	b, _, err := s.runSpec(ctx, can, nil)
	if err != nil {
		return nil, err
	}
	if err := s.cache.Put(can.Hash, can.Exp.Name, b); err != nil {
		s.noteDiskOp(err)
	} else {
		s.noteDiskOp(nil)
	}
	return b, nil
}

// ---- victim side: handout, commit, lease reaping ------------------

// stealHandout pops up to max queued jobs for a remote stealer. Only
// hands work out while the queue is at or past the steal threshold —
// gossip lags, and a queue that drained since the stealer's last
// heartbeat should keep its jobs local. Popped jobs go through the
// same pre-dispatch checks a worker applies (drain checkpoint, blown
// deadline), then move to running under a lease; the reaper requeues
// them if the stealer never commits.
func (s *Server) stealHandout(stealer string, max int) []cluster.StolenJob {
	if s.cluster == nil || s.draining.Load() || len(s.queue) < s.stealThreshold {
		return nil
	}
	var out []cluster.StolenJob
	now := time.Now()
	for len(out) < max {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return out // queue closed: drain won the race
			}
			s.queueSlots.Add(1)
			if s.isDraining() {
				s.checkpoint(j)
				return out
			}
			if !j.deadline.IsZero() && now.After(j.deadline) {
				j.finish(JobCanceled, "deadline exceeded while queued", now)
				s.dropInflight(j)
				s.deadlineShed.Add(1)
				s.journalCommit(j.Can.Hash)
				continue
			}
			if !j.startStolen(stealer, now) {
				continue // canceled while queued
			}
			specBytes, err := json.Marshal(j.Can.Spec)
			if err != nil {
				// Specs are plain structs; a marshal failure is a bug,
				// but failing the job loudly beats stranding it running.
				j.finish(JobFailed, "encoding spec for steal: "+err.Error(), now)
				s.dropInflight(j)
				s.journalCommit(j.Can.Hash)
				continue
			}
			s.stolenMu.Lock()
			s.stolen[j.ID] = &stolenLease{j: j, stealer: stealer, expires: now.Add(s.stealLease)}
			s.stolenMu.Unlock()
			out = append(out, cluster.StolenJob{
				ID: j.ID, Hash: j.Can.Hash, TraceID: j.TraceID(), Spec: specBytes,
			})
			s.slog.Info("job stolen", "trace", j.TraceID(), "job", j.ID,
				"hash", j.Can.Hash, "stealer", stealer)
		default:
			return out
		}
	}
	return out
}

// completeStolen lands a stolen job's report through the victim's
// own cache-commit path: verify the bytes against their claimed
// SHA-256, Put (overlay on a failing disk, exactly like a local
// run), resolve the WAL record only on a durable Put, finish the
// job. A commit arriving after the lease was reaped still lands —
// the bytes are correct regardless of who computed them, and the
// requeued local run collapses into a no-op when it finds the job
// terminal.
func (s *Server) completeStolen(req cluster.CommitRequest) error {
	if metrics.Sum256Hex(req.Report) != req.Sha {
		s.cluster.Counters.StealErrors.Add(1)
		return fmt.Errorf("commit report bytes do not match their claimed sha")
	}
	j, ok := s.lookupJob(req.ID)
	if !ok {
		return fmt.Errorf("unknown job %q", req.ID)
	}
	if j.Can.Hash != req.Hash {
		s.cluster.Counters.StealErrors.Add(1)
		return fmt.Errorf("commit hash %.12s does not match job %s (%.12s)", req.Hash, req.ID, j.Can.Hash)
	}
	s.stolenMu.Lock()
	delete(s.stolen, req.ID)
	s.stolenMu.Unlock()
	now := time.Now()
	if err := s.cache.Put(req.Hash, j.Can.Exp.Name, req.Report); err != nil {
		s.noteDiskOp(err)
		log.Printf("server: stolen commit cache write failed (serving from memory): %v", err)
	} else {
		s.noteDiskOp(nil)
		s.journalCommit(req.Hash)
	}
	j.mark("committed", now)
	j.finish(JobDone, "", time.Now())
	s.dropInflight(j)
	s.slog.Info("stolen job committed", "trace", j.TraceID(), "job", j.ID,
		"hash", req.Hash, "ran_by", req.RanBy, "bytes", len(req.Report))
	return nil
}

// stolenReaper periodically reclaims stolen jobs whose lease expired
// without a commit — a crashed or partitioned stealer must not strand
// acknowledged work.
func (s *Server) stolenReaper() {
	period := s.stealLease / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.probeStop:
			return
		case <-t.C:
			s.reapStolen(time.Now())
		}
	}
}

// reapStolen requeues every expired lease's job. The requeue retakes
// a queue slot and re-enters the queue under admitMu's read lock —
// the same ordering against Drain's close that admission uses. If no
// slot is free the job fails loudly rather than waiting forever on a
// stealer that is gone.
func (s *Server) reapStolen(now time.Time) {
	var expired []*stolenLease
	s.stolenMu.Lock()
	for id, l := range s.stolen {
		if now.After(l.expires) {
			delete(s.stolen, id)
			expired = append(expired, l)
		}
	}
	s.stolenMu.Unlock()
	for _, l := range expired {
		j := l.j
		if j.stateFast().terminal() {
			continue // commit landed between expiry and now
		}
		if !s.reserveSlot() {
			j.finish(JobFailed, fmt.Sprintf("stolen by %s, lease expired, and queue full on requeue", l.stealer), now)
			s.dropInflight(j)
			s.journalCommit(j.Can.Hash)
			continue
		}
		s.admitMu.RLock()
		if s.draining.Load() {
			s.admitMu.RUnlock()
			s.queueSlots.Add(1)
			// Drain will never run it; its WAL record stays live so a
			// restart replays the spec — the crash-equivalent story.
			continue
		}
		if !j.requeue(now) {
			s.admitMu.RUnlock()
			s.queueSlots.Add(1)
			continue
		}
		s.queue <- j
		s.admitMu.RUnlock()
		s.cluster.Counters.StealErrors.Add(1)
		s.slog.Warn("stolen lease expired; job requeued", "trace", j.TraceID(),
			"job", j.ID, "stealer", l.stealer)
	}
}

// ---- submit-side routing: peer fill and ownership proxy -----------

// peerFill tries to satisfy a locally-missing hash from the fleet
// before admission queues a recompute. Bytes are verified by the
// cluster layer (SHA-256 of the response against the peer's claim)
// before they reach the cache; a Put that the disk refuses rides the
// overlay like any local result.
func (s *Server) peerFill(can CanonicalJob, trace string) {
	if _, ok := s.cache.Entry(can.Hash); ok {
		return
	}
	b, _, from, err := s.cluster.FetchReport(s.baseCtx, can.Hash)
	if err != nil {
		return
	}
	if err := s.cache.Put(can.Hash, can.Exp.Name, b); err != nil {
		s.noteDiskOp(err)
		return
	}
	s.noteDiskOp(nil)
	s.slog.Info("peer cache fill", "trace", trace, "hash", can.Hash, "from", from, "bytes", len(b))
}

// maybeProxySubmit routes a submission to its ring owner. Returns
// true when the response has been written (the request was proxied).
// Local admission is kept when: this node owns the hash, a verified
// local copy already exists (serving beats a network hop), the spec
// fails canonicalization (the local path renders the 400), the node
// is draining (it must refuse, not route), or the owner is
// unreachable (availability beats placement — the job runs here and
// the owner's next heartbeat round will find out about the peer).
func (s *Server) maybeProxySubmit(w http.ResponseWriter, r *http.Request, spec Spec, trace string) bool {
	if s.draining.Load() {
		return false
	}
	can, err := Canonicalize(spec, s.cfg.Registry)
	if err != nil {
		return false
	}
	owner, self := s.cluster.Owner(can.Hash)
	if self {
		return false
	}
	if _, ok := s.cache.Entry(can.Hash); ok {
		return false
	}
	if s.proxySubmit(w, r, spec, trace, owner) {
		return true
	}
	s.cluster.Counters.ProxyFallbacks.Add(1)
	s.slog.Warn("submit proxy failed; admitting locally", "trace", trace,
		"hash", can.Hash, "owner", owner)
	return false
}

// proxySubmit forwards one submission to owner, preserving the trace
// ID, and relays the owner's response — including its job ID, whose
// node prefix routes every later read back to the owner.
func (s *Server) proxySubmit(w http.ResponseWriter, r *http.Request, spec Spec, trace, owner string) bool {
	base, ok := s.cluster.PeerURL(owner)
	if !ok {
		return false
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Colt-Trace", trace)
	req.Header.Set(forwardedHeader, s.cluster.NodeID())
	resp, err := s.cluster.HTTPClient().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	s.cluster.Counters.ProxiedSubmits.Add(1)
	for _, h := range []string{"Content-Type", "X-Colt-Trace", "Location", "Retry-After", "X-Report-Sha256"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Colt-Proxied-To", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxClusterBody))
	s.slog.Info("submit proxied", "trace", trace, "owner", owner, "status", resp.StatusCode)
	return true
}

// ---- read-side routing: remote job IDs ----------------------------

// proxyRemoteJob reverse-proxies a read of a job another node minted
// (recognizable by its "<node>." ID prefix) to that node. SSE tails
// stream through on a short flush interval; report responses are
// additionally teed into the local cache (read-side peer fill).
// Forwarding is capped at one hop.
func (s *Server) proxyRemoteJob(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cluster == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	node, rest, ok := strings.Cut(id, ".")
	if !ok || node == s.cluster.NodeID() || len(rest) < 2 || rest[0] != 'j' {
		return false
	}
	base, ok := s.cluster.PeerURL(node)
	if !ok {
		return false
	}
	target, err := url.Parse(base)
	if err != nil {
		return false
	}
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Header.Set(forwardedHeader, s.cluster.NodeID())
		},
		FlushInterval:  50 * time.Millisecond,
		ModifyResponse: s.teeProxiedReport(r),
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			writeError(w, http.StatusBadGateway, "job %s lives on peer %s, which is unreachable: %v", id, node, err)
		},
	}
	rp.ServeHTTP(w, r)
	return true
}

// teeProxiedReport is the read-side peer fill: when a proxied
// response is a report, buffer it, verify the bytes against the
// origin's claimed SHA-256, and file a verified copy in the local
// cache under the spec hash the origin attached. A mismatch is never
// relayed — the client gets a 502 and retries — and never cached.
// Non-report paths proxy untouched (nil ModifyResponse).
func (s *Server) teeProxiedReport(r *http.Request) func(*http.Response) error {
	if !strings.HasSuffix(r.URL.Path, "/report") {
		return nil
	}
	return func(resp *http.Response) error {
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxClusterBody))
		resp.Body.Close()
		if err != nil {
			return err
		}
		resp.Body = io.NopCloser(bytes.NewReader(b))
		resp.ContentLength = int64(len(b))
		hash := resp.Header.Get(specHashHeader)
		expName := resp.Header.Get(experimentHeader)
		claimed := resp.Header.Get("X-Report-Sha256")
		if hash == "" || expName == "" || claimed == "" {
			return nil // origin predates the fill headers; just proxy
		}
		if metrics.Sum256Hex(b) != claimed {
			s.cluster.Counters.PeerFillCorrupt.Add(1)
			return fmt.Errorf("proxied report failed verification (claimed %.12s)", claimed)
		}
		if _, ok := s.cache.Entry(hash); !ok {
			if err := s.cache.Put(hash, expName, b); err == nil {
				s.cluster.Counters.PeerFillOK.Add(1)
				s.slog.Info("peer cache fill (read-through)", "hash", hash, "bytes", len(b))
			}
		}
		return nil
	}
}

// ---- fleet-internal HTTP endpoints --------------------------------

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb cluster.Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.HandleHeartbeat(hb))
}

func (s *Server) handleClusterSteal(w http.ResponseWriter, r *http.Request) {
	var req cluster.StealRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid steal request: %v", err)
		return
	}
	if req.Max <= 0 || req.From == "" {
		writeError(w, http.StatusBadRequest, "steal request needs from and max > 0")
		return
	}
	jobs := s.stealHandout(req.From, req.Max)
	s.cluster.Counters.StealsOut.Add(uint64(len(jobs)))
	writeJSON(w, http.StatusOK, cluster.StealResponse{Jobs: jobs})
}

func (s *Server) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	var req cluster.CommitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid commit: %v", err)
		return
	}
	if err := s.completeStolen(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleClusterReport serves raw report bytes by spec hash for peer
// fill. Get re-verifies the stored bytes before they leave this
// node, and the response carries their SHA-256 for the fetching
// side's own check — corruption cannot cross the wire unflagged in
// either direction.
func (s *Server) handleClusterReport(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	b, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached report for %q", hash)
		return
	}
	if e, ok := s.cache.Entry(hash); ok {
		w.Header().Set(cluster.ReportShaHeader, e.Sum)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// ClusterStats is the Stats().Cluster block: ring/membership shape
// plus every cross-node counter, mirroring /metrics.
type ClusterStats struct {
	NodeID       string `json:"node_id"`
	Epoch        uint64 `json:"epoch"`
	RingSize     int    `json:"ring_size"`
	PeersAlive   int    `json:"peers_alive"`
	PeersSuspect int    `json:"peers_suspect"`
	PeersDead    int    `json:"peers_dead"`

	ProxiedSubmits  uint64 `json:"proxied_submits"`
	ProxyFallbacks  uint64 `json:"proxy_fallbacks,omitempty"`
	PeerFillOK      uint64 `json:"peer_fill_ok"`
	PeerFillMiss    uint64 `json:"peer_fill_miss"`
	PeerFillCorrupt uint64 `json:"peer_fill_corrupt,omitempty"`
	StealsIn        uint64 `json:"steals_in"`
	StealsOut       uint64 `json:"steals_out"`
	StealErrors     uint64 `json:"steal_errors,omitempty"`
	RingRebuilds    uint64 `json:"ring_rebuilds"`
	// StolenOutstanding is how many of this node's jobs are out on
	// lease to stealers right now.
	StolenOutstanding int `json:"stolen_outstanding,omitempty"`
}

// clusterStats assembles the Stats block (nil when unclustered).
func (s *Server) clusterStats() *ClusterStats {
	if s.cluster == nil {
		return nil
	}
	alive, suspect, dead := s.cluster.Counts()
	c := &s.cluster.Counters
	s.stolenMu.Lock()
	outstanding := len(s.stolen)
	s.stolenMu.Unlock()
	return &ClusterStats{
		NodeID:            s.cluster.NodeID(),
		Epoch:             s.cluster.Epoch(),
		RingSize:          s.cluster.Ring().Size(),
		PeersAlive:        alive,
		PeersSuspect:      suspect,
		PeersDead:         dead,
		ProxiedSubmits:    c.ProxiedSubmits.Load(),
		ProxyFallbacks:    c.ProxyFallbacks.Load(),
		PeerFillOK:        c.PeerFillOK.Load(),
		PeerFillMiss:      c.PeerFillMiss.Load(),
		PeerFillCorrupt:   c.PeerFillCorrupt.Load(),
		StealsIn:          c.StealsIn.Load(),
		StealsOut:         c.StealsOut.Load(),
		StealErrors:       c.StealErrors.Load(),
		RingRebuilds:      c.RingRebuilds.Load(),
		StolenOutstanding: outstanding,
	}
}
