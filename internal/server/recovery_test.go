package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"colt/internal/server/faultfs"
)

// waitStats polls the server's stats until cond passes.
func waitStats(t *testing.T, s *Server, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashReplayRecoversAcceptedJobs is the tentpole's recovery
// claim, driven at the unit level: a journal holding the accepts of a
// crashed run (one whose report landed pre-crash, one that never ran)
// is replayed at startup — the landed one completes as a cache hit
// without re-simulating, the lost one re-executes — and a graceful
// drain leaves the journal fully resolved.
func TestCrashReplayRecoversAcceptedJobs(t *testing.T) {
	dir := t.TempDir()
	reg := stubRegistry(nil)
	specLanded := Spec{Experiment: "stub", Quick: true, Seed: 1}
	specLost := Spec{Experiment: "stub", Quick: true, Seed: 2}
	canLanded, err := Canonicalize(specLanded, reg)
	if err != nil {
		t.Fatal(err)
	}
	canLost, err := Canonicalize(specLost, reg)
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the crash aftermath: specLanded's report is in the
	// cache but its commit record died with the process; specLost has
	// only its accept record.
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	landedReport := []byte(`{"schema":"colt-metrics/1","records":[]}`)
	if err := c.Put(canLanded.Hash, "stub", landedReport); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	jl, _, err := openJournal(faultfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Accept(canLanded.Hash, specLanded, "tracetest-0001"); err != nil {
		t.Fatal(err)
	}
	if err := jl.Accept(canLost.Hash, specLost, "tracetest-0002"); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	s, err := NewServer(Config{CacheDir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Journal == nil || st.Journal.Replayed != 2 {
		t.Fatalf("journal stats %+v, want replayed=2", st.Journal)
	}
	st = waitStats(t, s, "replayed jobs to finish", func(st Stats) bool {
		return st.Jobs[JobDone] == 2
	})
	if st.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (the landed report must serve as a hit)", st.Simulations)
	}
	// The landed report serves byte-identically after recovery.
	got, ok := s.Cache().Get(canLanded.Hash)
	if !ok || !bytes.Equal(got, landedReport) {
		t.Fatalf("recovered serve = %q, %v; want the pre-crash bytes", got, ok)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Everything accepted is now resolved: a reopen replays nothing.
	jl2, live, err := openJournal(faultfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(live) != 0 {
		t.Fatalf("journal still live after graceful drain: %d records", len(live))
	}
}

// TestBreakerTripsAndServesDegraded: a disk that fails every fsync
// trips the circuit breaker instead of failing jobs — results serve
// from the memory overlay, stats report the degraded state, and a
// drain exits cleanly.
func TestBreakerTripsAndServesDegraded(t *testing.T) {
	dir := t.TempDir()
	spec, err := faultfs.ParseSpec("fsync-fail=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		CacheDir:         dir,
		DiskFaults:       spec,
		DiskFaultSeed:    5,
		BreakerThreshold: 1,
		ProbeInterval:    time.Hour, // the hostile disk never recovers in this test
		Registry:         stubRegistry(nil),
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	a := mustSubmit(t, s, Spec{Experiment: "stub", Quick: true, Seed: 1})
	waitState(t, a.Job, JobDone)
	b, ok := s.Report(a.Job)
	if !ok || len(b) == 0 {
		t.Fatal("degraded server lost the job's report")
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedEvents != 1 {
		t.Fatalf("stats %+v, want degraded=true after the first failed fsync", st)
	}
	if st.DiskFaultsInjected == 0 {
		t.Fatal("no injected faults counted despite fsync-fail=1")
	}
	if st.Cache.OverlayEntries != 1 {
		t.Fatalf("cache stats %+v, want the report in the memory overlay", st.Cache)
	}
	if _, serr := os.Stat(filepath.Join(dir, a.Job.Can.Hash+".json")); !os.IsNotExist(serr) {
		t.Fatal("degraded Put reached the disk")
	}
	// Still serving: a second distinct job also completes.
	c := mustSubmit(t, s, Spec{Experiment: "stub", Quick: true, Seed: 2})
	waitState(t, c.Job, JobDone)
	if st := s.Stats(); st.Journal.SkippedDegraded == 0 {
		t.Fatalf("journal stats %+v, want skipped accepts while degraded", st.Journal)
	}
	// Degrade-don't-die all the way out: the drain skips disk writes
	// and reports success.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("degraded drain errored: %v", err)
	}
}

// TestBreakerRecoversViaProbe: once the disk heals, the probe loop
// closes the breaker, flushes the overlay to disk, and durable
// serving resumes — the entry file appears where degraded mode had
// withheld it.
func TestBreakerRecoversViaProbe(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CacheDir:         dir,
		BreakerThreshold: 1,
		ProbeInterval:    10 * time.Millisecond,
		Registry:         stubRegistry(nil),
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// Trip the breaker by hand (the disk itself is healthy, so the
	// very next probe can close it again).
	s.noteDiskOp(errors.New("synthetic disk failure"))
	if !s.Stats().Degraded {
		t.Fatal("breaker did not trip at threshold 1")
	}
	a := mustSubmit(t, s, Spec{Experiment: "stub", Quick: true, Seed: 3})
	waitState(t, a.Job, JobDone)

	st := waitStats(t, s, "breaker to close", func(st Stats) bool { return !st.Degraded })
	if st.Cache.OverlayEntries != 0 {
		t.Fatalf("cache stats %+v, want the overlay flushed on recovery", st.Cache)
	}
	if _, serr := os.Stat(filepath.Join(dir, a.Job.Can.Hash+".json")); serr != nil {
		t.Fatalf("flushed entry not on disk after recovery: %v", serr)
	}
	// And the result still serves, now durably.
	b, ok := s.Report(a.Job)
	if !ok || len(b) == 0 {
		t.Fatal("report lost across breaker recovery")
	}
}

// TestDeadlineShedsQueuedJob: a job still queued past its client
// deadline is shed at dispatch instead of simulated.
func TestDeadlineShedsQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	s := newStubServer(t, Config{Workers: 1}, gate)
	a := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 1})
	waitState(t, a.Job, JobRunning)
	b := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 2, DeadlineMs: 20})
	time.Sleep(40 * time.Millisecond) // let the deadline lapse while queued
	close(gate)
	waitState(t, b.Job, JobCanceled)
	if _, msg := b.Job.State(); !strings.Contains(msg, "deadline exceeded while queued") {
		t.Fatalf("shed job error = %q", msg)
	}
	waitState(t, a.Job, JobDone)
	st := s.Stats()
	if st.DeadlineShed != 1 {
		t.Fatalf("deadline_shed = %d, want 1", st.DeadlineShed)
	}
	if st.Simulations != 1 {
		t.Fatalf("simulations = %d; the shed job was executed", st.Simulations)
	}
}

// TestDeadlineCancelsRunningJob: the deadline propagates into the
// execution context, so a run that outlives the client's patience is
// canceled mid-flight.
func TestDeadlineCancelsRunningJob(t *testing.T) {
	gate := make(chan struct{}) // never closed: only the deadline can end the run
	s := newStubServer(t, Config{}, gate)
	a := mustSubmit(t, s, Spec{Experiment: "stub", Seed: 4, DeadlineMs: 30})
	waitState(t, a.Job, JobCanceled)
	if _, msg := a.Job.State(); !strings.Contains(msg, "deadline exceeded while running") {
		t.Fatalf("canceled job error = %q", msg)
	}
	if st := s.Stats(); st.DeadlineShed != 1 {
		t.Fatalf("deadline_shed = %d, want 1", st.DeadlineShed)
	}
}

// TestDeadlineExcludedFromCacheKey: patience is wall-clock policy,
// never identity — specs differing only in deadline share one content
// address (and one cache entry).
func TestDeadlineExcludedFromCacheKey(t *testing.T) {
	reg := stubRegistry(nil)
	base, err := Canonicalize(Spec{Experiment: "stub", Quick: true, Seed: 9}, reg)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := Canonicalize(Spec{Experiment: "stub", Quick: true, Seed: 9, DeadlineMs: 500}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash != dl.Hash {
		t.Fatalf("deadline_ms changed the content hash: %s vs %s", base.Hash, dl.Hash)
	}
	if _, err := Canonicalize(Spec{Experiment: "stub", DeadlineMs: -1}, reg); err == nil {
		t.Fatal("negative deadline_ms accepted")
	}
}
