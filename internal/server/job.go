package server

import (
	"sync"
	"time"

	"colt/internal/telemetry"
)

// JobState is a job's lifecycle position. The transitions form a
// small DAG: queued → running → {done, failed, canceled}, with two
// shortcuts that never touch the queue — a cache hit jumps straight
// to done, and a drain checkpoint or pre-dispatch DELETE jumps
// queued → canceled.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// terminal reports whether a state has no outgoing transitions.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one tracked submission. Its progress events form an
// append-only log; SSE subscribers replay the log from the start and
// then follow the live tail, so a client attaching late sees the same
// sequence as one attaching before the job ran.
type Job struct {
	ID  string
	Can CanonicalJob

	mu         sync.Mutex
	state      JobState
	errMsg     string
	cached     bool // served from cache without simulating
	coalesced  int  // extra submissions folded into this execution
	events     []telemetry.ProgressEvent
	subs       map[chan telemetry.ProgressEvent]struct{}
	cancel     func() // non-nil while running
	trace      []byte // Chrome trace artifact, if requested
	created    time.Time
	finishedAt time.Time
}

func newJob(id string, can CanonicalJob, now time.Time) *Job {
	return &Job{
		ID:      id,
		Can:     can,
		state:   JobQueued,
		subs:    make(map[chan telemetry.ProgressEvent]struct{}),
		created: now,
	}
}

// State returns the current state and error message.
func (j *Job) State() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Cached reports whether the job was served from cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// appendEvent records a progress event and fans it out to live
// subscribers. It is the Reporter hook of the job's execution, so it
// must never block: a subscriber that cannot keep up loses the
// in-between events but still receives the terminal snapshot.
func (j *Job) appendEvent(ev telemetry.ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns a replay of all events so far plus a channel for
// the live tail, and a closed flag telling the subscriber not to wait
// for more. The unsubscribe func is idempotent.
func (j *Job) subscribe() (replay []telemetry.ProgressEvent, live chan telemetry.ProgressEvent, done bool, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]telemetry.ProgressEvent(nil), j.events...)
	if j.state.terminal() {
		return replay, nil, true, func() {}
	}
	ch := make(chan telemetry.ProgressEvent, 64)
	j.subs[ch] = struct{}{}
	var once sync.Once
	return replay, ch, false, func() {
		once.Do(func() {
			j.mu.Lock()
			if _, ok := j.subs[ch]; ok {
				delete(j.subs, ch)
				close(ch)
			}
			j.mu.Unlock()
		})
	}
}

// finish moves the job to a terminal state and closes every live
// subscription so SSE streams end.
func (j *Job) finish(state JobState, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finishedAt = now
	for ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[chan telemetry.ProgressEvent]struct{})
}

// start moves a queued job to running, rejecting jobs already
// canceled (a DELETE that raced the dispatch). The returned cancel
// hook is invoked by DELETE while the job runs.
func (j *Job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.cancel = cancel
	return true
}

// requestCancel cancels the job: queued jobs jump straight to
// canceled (the dispatcher will skip them); running jobs get their
// context canceled and finish through the normal execution path.
// Returns false if the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	if j.state == JobQueued {
		j.mu.Unlock()
		j.finish(JobCanceled, "canceled before dispatch", time.Now())
		return true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// setTrace stores the job's Chrome trace artifact.
func (j *Job) setTrace(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = b
}

// Trace returns the job's trace artifact, if recorded.
func (j *Job) Trace() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// noteCoalesced counts an identical submission folded into this job.
func (j *Job) noteCoalesced() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.coalesced++
}

// snapshot captures the fields the status endpoint renders.
func (j *Job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:         j.ID,
		Experiment: j.Can.Exp.Name,
		Hash:       j.Can.Hash,
		State:      j.state,
		Error:      j.errMsg,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Events:     len(j.events),
		HasTrace:   len(j.trace) > 0,
	}
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	Hash       string   `json:"hash"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	Cached     bool     `json:"cached"`
	Coalesced  int      `json:"coalesced,omitempty"`
	Events     int      `json:"events"`
	HasTrace   bool     `json:"has_trace"`
}
