package server

import (
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/telemetry"
)

// JobState is a job's lifecycle position. The transitions form a
// small DAG: queued → running → {done, failed, canceled}, with two
// shortcuts that never touch the queue — a cache hit jumps straight
// to done, and a drain checkpoint or pre-dispatch DELETE jumps
// queued → canceled.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// terminal reports whether a state has no outgoing transitions.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// stateIndex maps JobState to the dense index used by the atomic
// mirror and the per-shard counters.
func stateIndex(s JobState) int {
	switch s {
	case JobQueued:
		return 0
	case JobRunning:
		return 1
	case JobDone:
		return 2
	case JobFailed:
		return 3
	default: // JobCanceled
		return 4
	}
}

// jobStates lists every state at its index.
var jobStates = [5]JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled}

// stateCounters is one registry shard's per-state job tally. All
// fields are atomics: transitions bump them from under the job's own
// lock and Stats() sums them with plain loads, so a stats read never
// touches a shard mutex, let alone every job.
type stateCounters struct {
	n [len(jobStates)]atomic.Int64
}

// move records a state transition.
func (c *stateCounters) move(from, to JobState) {
	if c == nil {
		return
	}
	c.n[stateIndex(from)].Add(-1)
	c.n[stateIndex(to)].Add(1)
}

// add records a job entering tracking at state s; sub records it
// leaving (eviction).
func (c *stateCounters) add(s JobState) { c.n[stateIndex(s)].Add(1) }
func (c *stateCounters) sub(s JobState) { c.n[stateIndex(s)].Add(-1) }

// terminalTotal is the count of tracked terminal jobs in this shard.
func (c *stateCounters) terminalTotal() int64 {
	return c.n[stateIndex(JobDone)].Load() +
		c.n[stateIndex(JobFailed)].Load() +
		c.n[stateIndex(JobCanceled)].Load()
}

// Job is one tracked submission. Its progress events form an
// append-only log; SSE subscribers hold a cursor into the log and
// drain it in batches on a flush tick, so a client attaching late
// sees the same sequence as one attaching before the job ran, and
// the execution hot path never does per-subscriber work.
type Job struct {
	ID  string
	Can CanonicalJob

	// seq is the admission sequence number (the ID renders it); it
	// picks the registry shard and orders job listings.
	seq uint64
	// stateV mirrors the current state (stateIndex-encoded) for
	// lock-free readers: eviction scans, coalesce checks, and the
	// per-shard stats counters all read it without touching mu.
	stateV atomic.Int32
	// counts points at the owning registry shard's per-state tally.
	// Set before the job becomes reachable by any other goroutine.
	counts *stateCounters
	// deadline is the job's absolute patience deadline (zero = none).
	// Set before the job is published; read-only afterwards.
	deadline time.Time

	// traceID is the request-scoped correlation ID minted (or accepted
	// inbound) at admission. Set before the job is published; read-only
	// afterwards.
	traceID string
	// om receives terminal-transition notifications for the phase
	// histograms and completion counters. Set before publication; may
	// be nil in unit tests that construct jobs directly.
	om *serverMetrics

	mu           sync.Mutex
	errMsg       string
	cached       bool // served from cache without simulating
	userCanceled bool // canceled by an explicit DELETE, not by shutdown
	coalesced    int  // extra submissions folded into this execution
	events       []telemetry.ProgressEvent
	cancel       func()        // non-nil while running
	done         chan struct{} // closed on reaching a terminal state
	trace        []byte        // Chrome trace artifact, if requested
	created      time.Time
	// timeline is the job's wall-clock span record: one mark per
	// lifecycle edge (admitted → journaled → queued → running →
	// committed → <terminal> → served), append-only under mu. The
	// terminal mark appended by finishLocked is the single source of
	// truth for "when did this job end" — the SSE end event, the
	// status snapshot, and GET /v1/jobs/{id}/timeline all read it, so
	// they can never disagree.
	timeline []TimelineMark
}

// TimelineMark is one edge in a job's span timeline. Phase names are
// the lifecycle edges above; terminal marks use the JobState string
// ("done", "failed", "canceled").
type TimelineMark struct {
	Phase  string `json:"phase"`
	UnixNs int64  `json:"unix_ns"`
}

func newJob(id string, can CanonicalJob, now time.Time) *Job {
	j := &Job{
		ID:       id,
		Can:      can,
		done:     make(chan struct{}),
		created:  now,
		timeline: []TimelineMark{{Phase: "admitted", UnixNs: now.UnixNano()}},
	}
	j.stateV.Store(int32(stateIndex(JobQueued)))
	return j
}

// TraceID returns the job's request-scoped trace ID.
func (j *Job) TraceID() string { return j.traceID }

// mark appends a span-timeline edge.
func (j *Job) mark(phase string, t time.Time) {
	j.mu.Lock()
	j.markLocked(phase, t)
	j.mu.Unlock()
}

func (j *Job) markLocked(phase string, t time.Time) {
	j.timeline = append(j.timeline, TimelineMark{Phase: phase, UnixNs: t.UnixNano()})
}

// markServed records the first time the job's report was fetched;
// later fetches keep the original mark.
func (j *Job) markServed(t time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, m := range j.timeline {
		if m.Phase == "served" {
			return
		}
	}
	j.markLocked("served", t)
}

// terminalMarkLocked returns the terminal transition record, if the
// job has one. Callers hold j.mu.
func (j *Job) terminalMarkLocked() (TimelineMark, bool) {
	for _, m := range j.timeline {
		if JobState(m.Phase).terminal() {
			return m, true
		}
	}
	return TimelineMark{}, false
}

// timelineSnapshot copies the span timeline with the job's identity.
func (j *Job) timelineSnapshot() (state JobState, marks []TimelineMark) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stateFast(), append([]TimelineMark(nil), j.timeline...)
}

// stateFast returns the current state without locking. It may trail a
// concurrent transition by an instant, but terminal states are final:
// once stateFast reports terminal, the job can never run.
func (j *Job) stateFast() JobState {
	return jobStates[j.stateV.Load()]
}

// setStateLocked performs a state transition under j.mu, keeping the
// atomic mirror and shard counters in step.
func (j *Job) setStateLocked(to JobState) {
	from := j.stateFast()
	j.stateV.Store(int32(stateIndex(to)))
	j.counts.move(from, to)
}

// State returns the current state and error message.
func (j *Job) State() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stateFast(), j.errMsg
}

// Cached reports whether the job was served from cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// Done returns a channel closed when the job reaches a terminal
// state; SSE streams select on it to learn the log is complete.
func (j *Job) Done() <-chan struct{} { return j.done }

// appendEvent records a progress event. It is the Reporter hook of
// the job's execution hot path, so it does the minimum possible under
// the lock: append to the log. Fan-out happens on the subscribers'
// flush ticks (eventsSince), not here — no per-subscriber channel
// sends, no flushes, no blocking.
func (j *Job) appendEvent(ev telemetry.ProgressEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.mu.Unlock()
}

// eventsSince copies the log tail starting at cursor and reports
// whether the job is terminal (i.e. the log is complete). Subscribers
// call it once per flush tick and advance their cursor by the number
// of events returned.
func (j *Job) eventsSince(cursor int) (tail []telemetry.ProgressEvent, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < len(j.events) {
		tail = append(tail, j.events[cursor:]...)
	}
	return tail, j.stateFast().terminal()
}

// finish moves the job to a terminal state and closes the done
// channel so SSE streams drain and end.
func (j *Job) finish(state JobState, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, errMsg, now)
}

// finishLocked is finish for callers already holding j.mu; the
// cancel path uses it to make its observe-and-finish atomic. The
// terminal timeline mark appended here is the one transition record
// every terminal-timestamp reader derives from.
func (j *Job) finishLocked(state JobState, errMsg string, now time.Time) {
	if j.stateFast().terminal() {
		return
	}
	j.setStateLocked(state)
	j.errMsg = errMsg
	j.markLocked(string(state), now)
	close(j.done)
	j.om.noteTerminal(j, state)
}

// markCachedDone moves a freshly minted job straight to done-from-
// cache. Called before the job is tracked or otherwise published.
func (j *Job) markCachedDone(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stateV.Store(int32(stateIndex(JobDone)))
	j.cached = true
	j.markLocked(string(JobDone), now)
	close(j.done)
	j.om.noteTerminal(j, JobDone)
}

// start moves a queued job to running, rejecting jobs already
// canceled (a DELETE that raced the dispatch). The returned cancel
// hook is invoked by DELETE while the job runs.
func (j *Job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stateFast() != JobQueued {
		return false
	}
	j.setStateLocked(JobRunning)
	j.markLocked("running", time.Now())
	j.cancel = cancel
	return true
}

// startStolen moves a queued job to running on behalf of a remote
// stealer. No cancel hook is installed — the run lives on the
// stealer, so a DELETE during the lease marks intent (userCanceled)
// but the job resolves when the commit or the lease reaper gets to
// it first. Returns false if the job is no longer queued.
func (j *Job) startStolen(stealer string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stateFast() != JobQueued {
		return false
	}
	j.setStateLocked(JobRunning)
	j.markLocked("running", now)
	j.markLocked("stolen:"+stealer, now)
	return true
}

// requeue returns a stolen job whose lease expired to the queue:
// running → queued, recorded in the timeline. Returns false if the
// job resolved in the meantime.
func (j *Job) requeue(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stateFast() != JobRunning {
		return false
	}
	j.setStateLocked(JobQueued)
	j.markLocked("requeued", now)
	return true
}

// requestCancel cancels the job: queued jobs jump straight to
// canceled under a single lock acquisition — the decision and the
// transition are atomic, so a racing dispatch either sees canceled
// and skips the job, or wins the lock first and the job is canceled
// through its running context instead. Running jobs get their context
// canceled and finish through the normal execution path. Returns
// false if the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	state := j.stateFast()
	if state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.userCanceled = true
	if state == JobQueued {
		j.finishLocked(JobCanceled, "canceled before dispatch", time.Now())
		j.mu.Unlock()
		return true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// wasUserCanceled reports whether an explicit DELETE canceled the
// job. Execution uses it to tell user cancellation (resolved: commit
// the journal record) from shutdown cancellation (crash-equivalent:
// leave the record live for replay).
func (j *Job) wasUserCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCanceled
}

// setTrace stores the job's Chrome trace artifact.
func (j *Job) setTrace(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = b
}

// Trace returns the job's trace artifact, if recorded.
func (j *Job) Trace() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// noteCoalesced counts an identical submission folded into this job.
func (j *Job) noteCoalesced() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.coalesced++
}

// snapshot captures the fields the status endpoint renders. The
// terminal timestamp comes from the timeline's terminal mark — the
// same record the timeline endpoint serves — so an SSE end event and
// a later GET /v1/jobs/{id}/timeline always agree to the nanosecond.
func (j *Job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:         j.ID,
		Experiment: j.Can.Exp.Name,
		Hash:       j.Can.Hash,
		State:      j.stateFast(),
		Error:      j.errMsg,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Events:     len(j.events),
		HasTrace:   len(j.trace) > 0,
		TraceID:    j.traceID,
	}
	if m, ok := j.terminalMarkLocked(); ok {
		st.FinishedUnixNs = m.UnixNs
	}
	return st
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	Hash       string   `json:"hash"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	Cached     bool     `json:"cached"`
	Coalesced  int      `json:"coalesced,omitempty"`
	Events     int      `json:"events"`
	HasTrace   bool     `json:"has_trace"`
	// TraceID is the request-scoped correlation ID minted at admission.
	TraceID string `json:"trace_id,omitempty"`
	// FinishedUnixNs is the terminal transition's wall-clock nanosecond
	// timestamp, taken from the same timeline record the timeline
	// endpoint renders. Zero while the job is live.
	FinishedUnixNs int64 `json:"finished_unix_ns,omitempty"`
}
