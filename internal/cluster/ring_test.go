package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// specUniverse fabricates keys shaped like the server's cache keys:
// hex SHA-256 of a canonical spec. 17 experiments × 100 seeds mirrors
// the registry's spec universe at realistic scale.
func specUniverse() []string {
	exps := []string{
		"als", "bandit", "bloom", "btree", "cache", "crdt", "gossip",
		"hashjoin", "hyperloglog", "lsh", "pagerank", "quantile",
		"raftlog", "simplex", "skiplist", "topk", "union",
	}
	keys := make([]string, 0, len(exps)*100)
	for _, e := range exps {
		for seed := 0; seed < 100; seed++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf(`{"experiment":%q,"seed":%d}`, e, seed)))
			keys = append(keys, hex.EncodeToString(sum[:]))
		}
	}
	return keys
}

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	base := NewRing(nodes, 0)
	rng := rand.New(rand.NewSource(7))
	keys := specUniverse()
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		if got, want := fmt.Sprint(r.Nodes()), fmt.Sprint(base.Nodes()); got != want {
			t.Fatalf("trial %d: node set %s != %s", trial, got, want)
		}
		for _, k := range keys {
			if r.Owner(k) != base.Owner(k) {
				t.Fatalf("trial %d: ring built from %v disagrees with base on key %.12s", trial, shuffled, k)
			}
		}
	}
}

func TestRingDedupesAndIgnoresEmpty(t *testing.T) {
	r := NewRing([]string{"b", "a", "b", "", "a"}, 8)
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	if got := fmt.Sprint(r.Nodes()); got != "[a b]" {
		t.Fatalf("Nodes = %s, want [a b]", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("Owner on empty ring = %q, want empty", got)
	}
	if got := r.Owners("anything", 3); got != nil {
		t.Fatalf("Owners on empty ring = %v, want nil", got)
	}
}

// TestRingBalance: over the spec universe, each of 3 nodes should
// own within ±20% of the uniform share.
func TestRingBalance(t *testing.T) {
	keys := specUniverse()
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	uniform := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		got := float64(counts[n])
		if got < 0.8*uniform || got > 1.2*uniform {
			t.Errorf("node %s owns %d keys; want within ±20%% of %.0f (distribution %v)", n, counts[n], uniform, counts)
		}
	}
}

// TestRingRemapOnJoin: adding one node to an N-node ring should
// remap roughly 1/(N+1) of keys, and every remapped key should move
// TO the new node (consistent hashing's minimal-disruption property).
func TestRingRemapOnJoin(t *testing.T) {
	keys := specUniverse()
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	remapped := 0
	for _, k := range keys {
		b, a := before.Owner(k), after.Owner(k)
		if b == a {
			continue
		}
		remapped++
		if a != "n4" {
			t.Fatalf("key %.12s remapped %s→%s; joins may only move keys to the new node", k, b, a)
		}
	}
	frac := float64(remapped) / float64(len(keys))
	want := 1.0 / 4
	if frac < 0.5*want || frac > 1.7*want {
		t.Errorf("join remapped %.1f%% of keys; want ≈ %.1f%%", 100*frac, 100*want)
	}
}

// TestRingRemapOnLeave: removing a node remaps exactly the keys it
// owned (≈1/N of them), and no key owned by a survivor moves.
func TestRingRemapOnLeave(t *testing.T) {
	keys := specUniverse()
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n3"}, 0)
	remapped := 0
	for _, k := range keys {
		b, a := before.Owner(k), after.Owner(k)
		if b != "n2" && b != a {
			t.Fatalf("key %.12s owned by survivor %s moved to %s on n2's departure", k, b, a)
		}
		if b == "n2" {
			remapped++
			if a == "n2" {
				t.Fatalf("key %.12s still owned by departed node", k)
			}
		}
	}
	frac := float64(remapped) / float64(len(keys))
	want := 1.0 / 3
	if frac < 0.5*want || frac > 1.7*want {
		t.Errorf("leave remapped %.1f%% of keys; want ≈ %.1f%%", 100*frac, 100*want)
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, k := range specUniverse()[:50] {
		owners := r.Owners(k, 5) // more than member count
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) = %v, want all 3 members", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %s, Owner = %s", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %s in %v", o, owners)
			}
			seen[o] = true
		}
	}
}

func TestRingContains(t *testing.T) {
	r := NewRing([]string{"n1", "n2"}, 4)
	if !r.Contains("n1") || r.Contains("n9") {
		t.Fatalf("Contains misreports membership")
	}
}
