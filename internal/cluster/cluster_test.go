package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubHost is a minimal Host: a settable queue depth and a canned
// stolen-job runner.
type stubHost struct {
	queue    atomic.Int64
	draining atomic.Bool
	run      func(ctx context.Context, job StolenJob) ([]byte, error)
}

func (h *stubHost) QueueLen() int  { return int(h.queue.Load()) }
func (h *stubHost) Draining() bool { return h.draining.Load() }
func (h *stubHost) RunStolen(ctx context.Context, job StolenJob) ([]byte, error) {
	return h.run(ctx, job)
}

// heartbeatMux mounts just the heartbeat endpoint for cl.
func heartbeatMux(cl *Cluster) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+HeartbeatPath, func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(cl.HandleHeartbeat(hb))
	})
	return mux
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHeartbeatDeathAndRejoin drives two clusters over real HTTP:
// killing one's listener walks it to dead on the other (shrinking
// the ring), and restoring it brings it back.
func TestHeartbeatDeathAndRejoin(t *testing.T) {
	hostA, hostB := &stubHost{}, &stubHost{}

	// B first, so A can be configured with B's URL.
	srvB := httptest.NewServer(nil) // handler set after clB exists
	defer srvB.Close()

	clA, err := New(Config{
		NodeID:            "a",
		Peers:             map[string]string{"b": srvB.URL},
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         4,
	}, hostA)
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(nil)
	defer srvA.Close()
	srvA.Config.Handler = heartbeatMux(clA)

	clB, err := New(Config{
		NodeID:            "b",
		Peers:             map[string]string{"a": srvA.URL},
		HeartbeatInterval: 10 * time.Millisecond,
	}, hostB)
	if err != nil {
		t.Fatal(err)
	}
	srvB.Config.Handler = heartbeatMux(clB)

	clA.Start()
	defer clA.Stop()

	hostB.queue.Store(5)
	waitFor(t, "a to see b's queue gossip", func() bool {
		p, ok := clA.mem.Peer("b")
		return ok && p.QueueLen == 5 && p.State == PeerAlive
	})
	if clA.Ring().Size() != 2 {
		t.Fatalf("ring size = %d, want 2", clA.Ring().Size())
	}

	// Kill b: its port stops answering, a should walk it to dead and
	// shrink the ring to itself.
	srvB.Close()
	waitFor(t, "a to declare b dead", func() bool {
		p, _ := clA.mem.Peer("b")
		return p.State == PeerDead
	})
	waitFor(t, "ring to shrink", func() bool { return clA.Ring().Size() == 1 })
	if owner, self := clA.Owner("anykey"); owner != "a" || !self {
		t.Fatalf("after b's death, Owner = %q self=%v, want a/true", owner, self)
	}

	// Resurrect b: an inbound heartbeat from b is liveness evidence
	// on its own — the path a restarted node actually takes before
	// a's next outbound round reaches it.
	if reply := clA.HandleHeartbeat(Heartbeat{From: "b", QueueLen: 1}); reply.From != "a" {
		t.Fatalf("heartbeat reply from %q, want a", reply.From)
	}
	waitFor(t, "ring to regrow", func() bool { return clA.Ring().Size() == 2 })
	p, _ := clA.mem.Peer("b")
	if p.State != PeerAlive {
		t.Fatalf("b state after inbound beat = %s, want alive", p.State)
	}
}

// TestStealRound exercises the stealer side end-to-end against a
// fake victim: handout → local run → verified commit-back.
func TestStealRound(t *testing.T) {
	report := []byte(`{"experiment":"stub","rows":[1,2,3]}`)
	job := StolenJob{ID: "j000007", Hash: "abc123", TraceID: "t-1", Spec: json.RawMessage(`{"experiment":"stub"}`)}

	var gotCommit atomic.Pointer[CommitRequest]
	handouts := atomic.Int64{}

	victimMux := http.NewServeMux()
	victimMux.HandleFunc("POST "+StealPath, func(w http.ResponseWriter, r *http.Request) {
		var sr StealRequest
		json.NewDecoder(r.Body).Decode(&sr)
		if sr.From != "idle" || sr.Max <= 0 {
			http.Error(w, "bad steal request", http.StatusBadRequest)
			return
		}
		if handouts.Add(1) == 1 {
			json.NewEncoder(w).Encode(StealResponse{Jobs: []StolenJob{job}})
			return
		}
		json.NewEncoder(w).Encode(StealResponse{})
	})
	victimMux.HandleFunc("POST "+CommitPath, func(w http.ResponseWriter, r *http.Request) {
		var cr CommitRequest
		if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sum := sha256.Sum256(cr.Report)
		if hex.EncodeToString(sum[:]) != cr.Sha {
			http.Error(w, "sha mismatch", http.StatusBadRequest)
			return
		}
		gotCommit.Store(&cr)
		w.WriteHeader(http.StatusOK)
	})
	victimMux.HandleFunc("POST "+HeartbeatPath, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Heartbeat{From: "victim", QueueLen: 10})
	})
	victim := httptest.NewServer(victimMux)
	defer victim.Close()

	ran := atomic.Int64{}
	host := &stubHost{run: func(ctx context.Context, j StolenJob) ([]byte, error) {
		ran.Add(1)
		if j.ID != job.ID || j.Hash != job.Hash {
			t.Errorf("RunStolen got %+v", j)
		}
		return report, nil
	}}

	cl, err := New(Config{
		NodeID:            "idle",
		Peers:             map[string]string{"victim": victim.URL},
		HeartbeatInterval: 10 * time.Millisecond,
		StealThreshold:    4,
		StealMax:          2,
		StealInterval:     10 * time.Millisecond,
	}, host)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	defer cl.Stop()

	waitFor(t, "steal round to complete", func() bool { return gotCommit.Load() != nil })
	cr := gotCommit.Load()
	if cr.ID != job.ID || cr.Hash != job.Hash || cr.RanBy != "idle" || string(cr.Report) != string(report) {
		t.Fatalf("commit = %+v", cr)
	}
	if ran.Load() != 1 {
		t.Fatalf("RunStolen ran %d times, want 1", ran.Load())
	}
	if cl.Counters.StealsIn.Load() != 1 {
		t.Fatalf("StealsIn = %d, want 1", cl.Counters.StealsIn.Load())
	}
}

// TestFetchReportVerifiesSha: a peer serving bytes that do not match
// their claimed SHA is counted corrupt and skipped; a good peer
// later in ownership order satisfies the fill.
func TestFetchReportVerifiesSha(t *testing.T) {
	good := []byte(`{"ok":true}`)
	goodSum := sha256.Sum256(good)
	goodSha := hex.EncodeToString(goodSum[:])

	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ReportShaHeader, goodSha)
		w.Write([]byte(`{"ok":false,"tampered":true}`))
	}))
	defer corrupt.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ReportShaHeader, goodSha)
		w.Write(good)
	}))
	defer healthy.Close()

	cl, err := New(Config{
		NodeID: "me",
		Peers:  map[string]string{"bad": corrupt.URL, "ok": healthy.URL},
	}, &stubHost{})
	if err != nil {
		t.Fatal(err)
	}

	// Try every hash until ownership order puts the corrupt peer
	// first, proving the skip-and-continue path; the loop always
	// verifies the returned bytes regardless of order.
	sawCorruptFirst := false
	for i := 0; i < 64 && !sawCorruptFirst; i++ {
		h := hex.EncodeToString([]byte{byte(i), 0xAA, 0xBB})
		ring := cl.Ring()
		order := ring.Owners(h, ring.Size())
		b, sha, from, err := cl.FetchReport(context.Background(), h)
		if err != nil {
			t.Fatalf("FetchReport(%s): %v (order %v)", h, err, order)
		}
		if string(b) != string(good) || sha != goodSha || from != "ok" {
			t.Fatalf("FetchReport returned %q from %s", b, from)
		}
		for _, o := range order {
			if o == "bad" {
				sawCorruptFirst = true
				break
			}
			if o == "ok" {
				break
			}
		}
	}
	if !sawCorruptFirst {
		t.Fatal("never exercised corrupt-peer-first ordering")
	}
	if cl.Counters.PeerFillCorrupt.Load() == 0 {
		t.Fatal("corrupt peer response was not counted")
	}
}

// TestFetchReportMiss: no peer has it.
func TestFetchReportMiss(t *testing.T) {
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer notFound.Close()
	cl, err := New(Config{NodeID: "me", Peers: map[string]string{"p": notFound.URL}}, &stubHost{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.FetchReport(context.Background(), "deadbeef"); err == nil {
		t.Fatal("want error when no peer holds the hash")
	}
	if cl.Counters.PeerFillMiss.Load() != 1 {
		t.Fatalf("PeerFillMiss = %d, want 1", cl.Counters.PeerFillMiss.Load())
	}
}
