// Package cluster turns N coltd processes into one fleet. Three
// pieces compose it:
//
//   - a consistent-hash Ring (virtual nodes, keyed on the spec
//     content hash the server already computes) that gives every spec
//     exactly one owner node, identically on every member, so any
//     node can route a submission without coordination;
//   - a Membership layer over a static peer list: a heartbeat loop
//     drives each peer through alive → suspect → dead, and the ring
//     is rebuilt from the non-dead set whenever a peer crosses the
//     dead boundary (each rebuild bumps the local epoch, which the
//     heartbeats gossip so operators can see agreement);
//   - a work-stealing loop: an idle node pulls queued specs from a
//     peer whose queue depth crossed the steal threshold, runs them
//     locally, and writes the report back through the victim's
//     cache-commit path so the accepted-job WAL invariants hold.
//
// The package is deliberately ignorant of the server's types: specs
// travel as raw JSON, reports as verified bytes, and the server
// plugs in through the Host interface. That keeps the dependency
// one-way (server imports cluster) and the ring/membership logic
// unit-testable without a serving stack.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 256 points per
// node keeps every member's key share within ±20% of uniform over
// the spec universe at small fleet sizes (64 was measurably not
// enough: one node of three drew 21% under its share), while the
// ring stays tiny — a 3-node fleet is 768 points, one binary search
// over ~12 KB.
const DefaultVNodes = 256

// ringPoint is one virtual node: a position on the 64-bit hash
// circle and the member that owns the arc ending there.
type ringPoint struct {
	pos  uint64
	node string
}

// Ring is an immutable consistent-hash ring. Build a new one on
// every membership change (they are cheap); never mutate in place.
// Construction is deterministic and order-independent: the same
// member set produces the identical ring on every node, which is
// what lets each node route independently yet agree.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted member set
}

// hash64 maps a string to its position on the circle: the first 8
// bytes of its SHA-256, big-endian. SHA-256 rather than a fast
// non-cryptographic hash because ring keys are spec content hashes
// already — the marginal cost is nothing next to a network hop — and
// its avalanche behavior is what the balance guarantee leans on.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over nodes with vnodes virtual nodes each
// (vnodes <= 0 selects DefaultVNodes). Duplicate node IDs collapse;
// input order is irrelevant. An empty node set yields a ring whose
// Owner returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		points: make([]ringPoint, 0, len(uniq)*vnodes),
		nodes:  uniq,
	}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			// The "#" separator keeps ("n1", 2) and ("n12", ...) from
			// ever colliding on the same preimage.
			r.points = append(r.points, ringPoint{pos: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// A 64-bit collision between vnode points is vanishingly
		// unlikely, but the tiebreak keeps construction deterministic
		// even then.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's position, wrapping at the top. "" on an
// empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns up to n distinct members in ownership order for
// key: the owner first, then the successors a fill client should try
// next. n larger than the member count returns every member.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Nodes returns the sorted member set the ring was built from.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size is the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Contains reports membership of node.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}
