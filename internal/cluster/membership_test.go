package cluster

import (
	"testing"
	"time"
)

func TestMembershipTransitions(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n2": "http://b", "n3": "http://c"})

	if got := m.RingMembers(); len(got) != 3 {
		t.Fatalf("initial RingMembers = %v, want self+2 peers", got)
	}

	// alive → suspect: no ring change.
	if m.Miss("n2", 2, 4) {
		t.Fatal("first miss should not change the ring")
	}
	if m.Miss("n2", 2, 4) {
		t.Fatal("suspect crossing should not change the ring")
	}
	p, _ := m.Peer("n2")
	if p.State != PeerSuspect || p.Misses != 2 {
		t.Fatalf("after 2 misses: %+v, want suspect/2", p)
	}
	if got := m.RingMembers(); len(got) != 3 {
		t.Fatalf("suspect peer left the ring: %v", got)
	}

	// suspect → dead: ring changes exactly once.
	if m.Miss("n2", 2, 4) {
		t.Fatal("third miss (still suspect) should not change the ring")
	}
	if !m.Miss("n2", 2, 4) {
		t.Fatal("dead crossing must change the ring")
	}
	if m.Miss("n2", 2, 4) {
		t.Fatal("already-dead miss must not re-change the ring")
	}
	if got := m.RingMembers(); len(got) != 2 {
		t.Fatalf("dead peer still in ring: %v", got)
	}

	// dead → alive on a successful beat: ring changes back.
	if !m.Note("n2", Heartbeat{From: "n2", QueueLen: 7}, time.Now()) {
		t.Fatal("resurrection must change the ring")
	}
	p, _ = m.Peer("n2")
	if p.State != PeerAlive || p.Misses != 0 || p.QueueLen != 7 {
		t.Fatalf("after resurrection: %+v", p)
	}
	if got := m.RingMembers(); len(got) != 3 {
		t.Fatalf("resurrected peer missing from ring: %v", got)
	}
}

func TestMembershipDrainingLeavesRing(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n2": "http://b"})
	if !m.Note("n2", Heartbeat{From: "n2", Draining: true}, time.Now()) {
		t.Fatal("draining transition must change the ring")
	}
	if got := m.RingMembers(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("draining peer still owns ring range: %v", got)
	}
	if !m.Note("n2", Heartbeat{From: "n2"}, time.Now()) {
		t.Fatal("drain-cleared transition must change the ring")
	}
}

func TestMembershipIgnoresUnknownAndSelf(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n1": "http://self", "n2": "http://b"})
	if _, ok := m.Peer("n1"); ok {
		t.Fatal("self must not be tracked as a peer")
	}
	if m.Note("stranger", Heartbeat{From: "stranger"}, time.Now()) {
		t.Fatal("unknown peer must not change the ring")
	}
	if m.Miss("stranger", 1, 2) {
		t.Fatal("unknown peer must not change the ring")
	}
}

func TestMembershipCounts(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n2": "u", "n3": "u", "n4": "u"})
	m.Miss("n3", 1, 9) // suspect
	m.Miss("n4", 1, 2)
	m.Miss("n4", 1, 2) // dead
	alive, suspect, dead := m.Counts()
	if alive != 1 || suspect != 1 || dead != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 1/1/1", alive, suspect, dead)
	}
}
