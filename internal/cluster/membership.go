package cluster

import (
	"sort"
	"sync"
	"time"
)

// PeerState is a peer's position in the failure-detection lifecycle.
// Heartbeat successes pin a peer at alive; consecutive misses walk it
// alive → suspect → dead. Suspect peers stay in the ring (a missed
// beat or two is usually a GC pause or a drop, and remapping their
// keys would churn ownership for nothing); dead peers are removed,
// which is what re-owns their ring range.
type PeerState string

const (
	PeerAlive   PeerState = "alive"
	PeerSuspect PeerState = "suspect"
	PeerDead    PeerState = "dead"
)

// Peer is one remote member's tracked state, as the heartbeat loop
// last observed it.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// State is the failure-detector verdict; Misses the consecutive
	// failed heartbeats behind it.
	State  PeerState `json:"state"`
	Misses int       `json:"misses"`
	// QueueLen, Epoch, and Draining are gossip from the peer's last
	// successful heartbeat: its queue depth (the steal loop's signal),
	// its ring epoch (operator agreement check), and whether it is
	// shutting down (drained peers stop owning new work).
	QueueLen int    `json:"queue_len"`
	Epoch    uint64 `json:"epoch"`
	Draining bool   `json:"draining"`
	// LastSeen is the wall-clock time of the last successful beat
	// (zero before the first).
	LastSeen time.Time `json:"last_seen,omitempty"`
}

// inRing reports whether this peer should own ring range: non-dead
// and not draining.
func (p Peer) inRing() bool { return p.State != PeerDead && !p.Draining }

// Membership tracks the static peer list's live state. It is a
// passive record — the Cluster's heartbeat loop feeds it Note/Miss
// observations — so its transitions are unit-testable without a
// network.
type Membership struct {
	self string

	mu    sync.Mutex
	peers map[string]*Peer
}

// NewMembership builds the tracker for self plus the id→URL peer
// map. Peers start alive: a booting fleet should not refuse routing
// until the first heartbeat round completes, and a genuinely absent
// peer walks to dead within DeadAfter beats anyway.
func NewMembership(self string, peers map[string]string) *Membership {
	m := &Membership{self: self, peers: make(map[string]*Peer, len(peers))}
	for id, url := range peers {
		if id == self {
			continue
		}
		m.peers[id] = &Peer{ID: id, URL: url, State: PeerAlive}
	}
	return m
}

// Note records a successful heartbeat from peer id carrying hb. The
// returned ringChanged reports whether the peer's ring eligibility
// flipped (dead→alive resurrection, or a draining transition) — the
// caller rebuilds the ring exactly then.
func (m *Membership) Note(id string, hb Heartbeat, now time.Time) (ringChanged bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return false
	}
	was := p.inRing()
	p.State = PeerAlive
	p.Misses = 0
	p.QueueLen = hb.QueueLen
	p.Epoch = hb.Epoch
	p.Draining = hb.Draining
	p.LastSeen = now
	return p.inRing() != was
}

// Miss records a failed heartbeat to peer id, walking it toward dead
// under the suspectAfter/deadAfter thresholds (consecutive misses).
// ringChanged reports a crossing of the dead boundary.
func (m *Membership) Miss(id string, suspectAfter, deadAfter int) (ringChanged bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return false
	}
	was := p.inRing()
	p.Misses++
	switch {
	case p.Misses >= deadAfter:
		p.State = PeerDead
	case p.Misses >= suspectAfter:
		p.State = PeerSuspect
	}
	return p.inRing() != was
}

// RingMembers returns the node set the ring should be built from:
// self plus every non-dead, non-draining peer, sorted.
func (m *Membership) RingMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{m.self}
	for _, p := range m.peers {
		if p.inRing() {
			out = append(out, p.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every peer's state, sorted by ID, for readyz and
// stats bodies.
func (m *Membership) Snapshot() []Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Peer, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Peer returns one peer's state copy.
func (m *Membership) Peer(id string) (Peer, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return Peer{}, false
	}
	return *p, true
}

// Counts tallies peers by state (self excluded).
func (m *Membership) Counts() (alive, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		switch p.State {
		case PeerAlive:
			alive++
		case PeerSuspect:
			suspect++
		default:
			dead++
		}
	}
	return
}
