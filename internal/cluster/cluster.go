package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HTTP paths the fleet speaks to itself on. The server mounts
// handlers at these paths; the Cluster's clients call them. Keeping
// the constants here is what keeps the two sides from drifting.
const (
	HeartbeatPath = "/v1/cluster/heartbeat"
	StealPath     = "/v1/cluster/steal"
	CommitPath    = "/v1/cluster/commit"
	ReportPath    = "/v1/cluster/report/" // + spec hash
)

// ReportShaHeader carries the SHA-256 of the report bytes on peer
// fill responses; the fetching side recomputes and compares before
// ever serving the bytes.
const ReportShaHeader = "X-Report-Sha256"

// maxPeerReport caps how many bytes a peer fill will read. Reports
// in this repo are a few hundred KB at worst; 16 MB is a generous
// ceiling that still stops a confused peer from streaming forever.
const maxPeerReport = 16 << 20

// Heartbeat is the gossip payload: each beat carries the sender's
// identity, ring epoch, queue depth, and drain state, and the
// response carries the receiver's. Queue depth is what the steal
// loop keys on; epoch is how operators spot ring disagreement.
type Heartbeat struct {
	From     string `json:"from"`
	Epoch    uint64 `json:"epoch"`
	QueueLen int    `json:"queue_len"`
	Draining bool   `json:"draining"`
}

// StolenJob is one queued job handed from a loaded victim to an idle
// stealer: the victim-side job ID (so the commit lands back on the
// right record), the canonical spec hash, the originating trace, and
// the canonical spec itself as raw JSON. The stealer re-canonicalizes
// and refuses the job if its own hash disagrees.
type StolenJob struct {
	ID      string          `json:"id"`
	Hash    string          `json:"hash"`
	TraceID string          `json:"trace_id,omitempty"`
	Spec    json.RawMessage `json:"spec"`
}

// StealRequest asks a victim for up to Max queued jobs.
type StealRequest struct {
	From string `json:"from"`
	Max  int    `json:"max"`
}

// StealResponse is the victim's handout (possibly empty).
type StealResponse struct {
	Jobs []StolenJob `json:"jobs"`
}

// CommitRequest writes a stolen job's result back to the victim.
// Report is the full report bytes (base64 over the wire via
// encoding/json), Sha their SHA-256 hex; the victim recomputes and
// refuses a mismatch so a corrupt stealer can never poison the
// owner's cache.
type CommitRequest struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	RanBy  string `json:"ran_by"`
	Sha    string `json:"sha"`
	Report []byte `json:"report"`
}

// Host is what the cluster needs from the serving stack. The server
// implements it; keeping it this small is what keeps the dependency
// one-way and the loops testable against a stub.
type Host interface {
	// QueueLen is the current depth of the local run queue.
	QueueLen() int
	// Draining reports whether the local node is shutting down.
	Draining() bool
	// RunStolen executes a stolen job locally and returns the report
	// bytes exactly as the victim should commit them.
	RunStolen(ctx context.Context, job StolenJob) ([]byte, error)
}

// Config parameterizes one node's cluster layer.
type Config struct {
	// NodeID is this node's stable identity in the ring. Required.
	NodeID string
	// Peers maps node ID → base URL for every other member (a self
	// entry is ignored). Empty means single-node: loops don't start.
	Peers map[string]string
	// VNodes is virtual nodes per member; <=0 selects DefaultVNodes.
	VNodes int
	// HeartbeatInterval is the gossip period. <=0 selects 500ms.
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter are consecutive heartbeat misses
	// before a peer turns suspect / dead. <=0 select 2 and 4.
	SuspectAfter int
	DeadAfter    int
	// StealThreshold is the victim queue depth at which an idle peer
	// may pull work; <=0 disables stealing.
	StealThreshold int
	// StealMax caps jobs per steal round. <=0 selects 2.
	StealMax int
	// StealInterval is how often an idle node looks for a victim.
	// <=0 selects the heartbeat interval.
	StealInterval time.Duration
	// StealLease bounds how long a victim waits for a stolen job's
	// commit before reclaiming and requeueing it locally. Enforced by
	// the victim's lease reaper, not by this package. <=0 selects 30s.
	StealLease time.Duration
	// HTTPTimeout bounds every peer call except RunStolen. <=0
	// selects 5s.
	HTTPTimeout time.Duration
	// Logger receives membership transitions and steal activity.
	// nil discards.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4
	}
	if c.StealMax <= 0 {
		c.StealMax = 2
	}
	if c.StealInterval <= 0 {
		c.StealInterval = c.HeartbeatInterval
	}
	if c.StealLease <= 0 {
		c.StealLease = 30 * time.Second
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// Counters are the cluster's observable event tallies. All fields
// are atomics so the server's metrics registry can read them with
// CounterFuncs; the server also bumps ProxiedSubmits itself when its
// HTTP layer forwards a submission.
type Counters struct {
	ProxiedSubmits  atomic.Uint64
	ProxyFallbacks  atomic.Uint64 // owner unreachable, admitted locally
	PeerFillOK      atomic.Uint64
	PeerFillMiss    atomic.Uint64
	PeerFillCorrupt atomic.Uint64
	StealsIn        atomic.Uint64 // jobs this node stole and committed
	StealsOut       atomic.Uint64 // jobs this node handed to stealers
	StealErrors     atomic.Uint64
	HeartbeatOK     atomic.Uint64
	HeartbeatFail   atomic.Uint64
	RingRebuilds    atomic.Uint64
}

// Cluster is one node's view of the fleet: the membership tracker,
// the current ring, and the background loops.
type Cluster struct {
	cfg    Config
	host   Host
	mem    *Membership
	client *http.Client
	log    *slog.Logger

	ring  atomic.Pointer[Ring]
	epoch atomic.Uint64

	// Counters is exported for the server's metric funcs.
	Counters Counters

	ringMu sync.Mutex // serializes rebuilds, not reads

	stop    context.CancelFunc
	ctx     context.Context
	wg      sync.WaitGroup
	stopped sync.Once
}

// New builds the cluster layer. The ring initially contains self
// plus every configured peer (all presumed alive; absent peers walk
// to dead within DeadAfter beats). Call Start to launch the loops.
func New(cfg Config, host Host) (*Cluster, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID is required")
	}
	for id, url := range cfg.Peers {
		if id != cfg.NodeID && url == "" {
			return nil, fmt.Errorf("cluster: peer %q has empty URL", id)
		}
	}
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:    cfg,
		host:   host,
		mem:    NewMembership(cfg.NodeID, cfg.Peers),
		client: &http.Client{Timeout: cfg.HTTPTimeout},
		log:    cfg.Logger.With("node", cfg.NodeID),
		ctx:    ctx,
		stop:   cancel,
	}
	c.rebuildRing("boot")
	return c, nil
}

// NodeID returns this node's identity.
func (c *Cluster) NodeID() string { return c.cfg.NodeID }

// Epoch returns the local ring epoch (bumped on every rebuild).
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// Ring returns the current ring snapshot (immutable).
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// Owner resolves key's owning node and whether that is self.
func (c *Cluster) Owner(key string) (node string, self bool) {
	node = c.Ring().Owner(key)
	return node, node == c.cfg.NodeID || node == ""
}

// PeerURL returns the configured base URL for a peer ID.
func (c *Cluster) PeerURL(id string) (string, bool) {
	p, ok := c.mem.Peer(id)
	if !ok {
		return "", false
	}
	return p.URL, true
}

// Members returns every peer's tracked state, sorted by ID.
func (c *Cluster) Members() []Peer { return c.mem.Snapshot() }

// HTTPClient returns the peer-call client (shared timeout policy).
// The server's submit/read proxies use it so every cross-node call
// in the fleet obeys one HTTPTimeout.
func (c *Cluster) HTTPClient() *http.Client { return c.client }

// Counts tallies peers by state.
func (c *Cluster) Counts() (alive, suspect, dead int) { return c.mem.Counts() }

// Start launches the heartbeat and steal loops. A cluster with no
// peers is a no-op (single-node mode).
func (c *Cluster) Start() {
	if len(c.mem.Snapshot()) == 0 {
		return
	}
	c.wg.Add(1)
	go c.heartbeatLoop()
	if c.cfg.StealThreshold > 0 {
		c.wg.Add(1)
		go c.stealLoop()
	}
}

// Stop halts the loops and waits for them. Idempotent.
func (c *Cluster) Stop() {
	c.stopped.Do(func() {
		c.stop()
		c.wg.Wait()
	})
}

// rebuildRing recomputes the ring from the current membership and
// bumps the epoch. Serialized so concurrent Note/Miss transitions
// can't interleave a stale member set over a fresh one.
func (c *Cluster) rebuildRing(reason string) {
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	members := c.mem.RingMembers()
	c.ring.Store(NewRing(members, c.cfg.VNodes))
	epoch := c.epoch.Add(1)
	c.Counters.RingRebuilds.Add(1)
	c.log.Info("cluster: ring rebuilt", "reason", reason, "epoch", epoch, "members", members)
}

// selfHeartbeat assembles the beat this node sends and answers with.
func (c *Cluster) selfHeartbeat() Heartbeat {
	return Heartbeat{
		From:     c.cfg.NodeID,
		Epoch:    c.epoch.Load(),
		QueueLen: c.host.QueueLen(),
		Draining: c.host.Draining(),
	}
}

// HandleHeartbeat processes an incoming beat and returns this node's
// own. An incoming beat is liveness evidence for the sender — that
// is what resurrects a dead-marked peer quickly after it restarts,
// without waiting for our next outbound round to it.
func (c *Cluster) HandleHeartbeat(hb Heartbeat) Heartbeat {
	if c.mem.Note(hb.From, hb, time.Now()) {
		c.rebuildRing("heartbeat from " + hb.From)
	}
	return c.selfHeartbeat()
}

// heartbeatLoop beats every peer each interval, feeding successes
// and failures into the membership tracker and rebuilding the ring
// when a peer crosses the dead boundary.
func (c *Cluster) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		for _, p := range c.mem.Snapshot() {
			hb, err := c.beat(p.URL)
			if err != nil {
				c.Counters.HeartbeatFail.Add(1)
				if c.mem.Miss(p.ID, c.cfg.SuspectAfter, c.cfg.DeadAfter) {
					c.log.Warn("cluster: peer dead", "peer", p.ID, "err", err)
					c.rebuildRing("peer dead: " + p.ID)
				}
				continue
			}
			c.Counters.HeartbeatOK.Add(1)
			if c.mem.Note(p.ID, hb, time.Now()) {
				c.log.Info("cluster: peer rejoined", "peer", p.ID)
				c.rebuildRing("peer rejoined: " + p.ID)
			}
		}
	}
}

// beat POSTs our heartbeat to one peer and decodes its reply.
func (c *Cluster) beat(baseURL string) (Heartbeat, error) {
	body, _ := json.Marshal(c.selfHeartbeat())
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, baseURL+HeartbeatPath, bytes.NewReader(body))
	if err != nil {
		return Heartbeat{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return Heartbeat{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Heartbeat{}, fmt.Errorf("heartbeat: %s", resp.Status)
	}
	var hb Heartbeat
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hb); err != nil {
		return Heartbeat{}, err
	}
	return hb, nil
}

// stealLoop looks for an overloaded victim whenever this node is
// idle, pulls up to StealMax jobs, runs each locally, and commits
// the result back through the victim's cache-commit path.
func (c *Cluster) stealLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		if c.host.Draining() || c.host.QueueLen() > 0 {
			continue // only truly idle nodes steal
		}
		victim, ok := c.pickVictim()
		if !ok {
			continue
		}
		c.stealFrom(victim)
	}
}

// pickVictim returns the alive peer with the deepest gossiped queue
// at or past the threshold.
func (c *Cluster) pickVictim() (Peer, bool) {
	peers := c.mem.Snapshot()
	sort.Slice(peers, func(i, j int) bool { return peers[i].QueueLen > peers[j].QueueLen })
	for _, p := range peers {
		if p.State == PeerAlive && !p.Draining && p.QueueLen >= c.cfg.StealThreshold {
			return p, true
		}
	}
	return Peer{}, false
}

// stealFrom pulls jobs from one victim and runs them. Each job is
// executed and committed before the next so a slow report never
// holds a batch of leases.
func (c *Cluster) stealFrom(victim Peer) {
	body, _ := json.Marshal(StealRequest{From: c.cfg.NodeID, Max: c.cfg.StealMax})
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, victim.URL+StealPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.Counters.StealErrors.Add(1)
		return
	}
	var sr StealResponse
	err = json.NewDecoder(io.LimitReader(resp.Body, maxPeerReport)).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		c.Counters.StealErrors.Add(1)
		return
	}
	for _, job := range sr.Jobs {
		report, err := c.host.RunStolen(c.ctx, job)
		if err != nil {
			c.Counters.StealErrors.Add(1)
			c.log.Warn("cluster: stolen job failed locally", "victim", victim.ID, "job", job.ID, "err", err)
			continue // victim's lease reaper will requeue it
		}
		if err := c.commitStolen(victim.URL, job, report); err != nil {
			c.Counters.StealErrors.Add(1)
			c.log.Warn("cluster: stolen commit failed", "victim", victim.ID, "job", job.ID, "err", err)
			continue
		}
		c.Counters.StealsIn.Add(1)
		c.log.Info("cluster: stole job", "victim", victim.ID, "job", job.ID, "hash", job.Hash)
	}
}

// commitStolen posts a finished stolen job's report back to the
// victim, with its SHA-256 so the victim can refuse corruption.
func (c *Cluster) commitStolen(victimURL string, job StolenJob, report []byte) error {
	sum := sha256.Sum256(report)
	body, _ := json.Marshal(CommitRequest{
		ID:     job.ID,
		Hash:   job.Hash,
		RanBy:  c.cfg.NodeID,
		Sha:    hex.EncodeToString(sum[:]),
		Report: report,
	})
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, victimURL+CommitPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("commit: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// FetchReport tries to fill hash from peers, in ring-ownership
// order, skipping self and dead peers. Every response is re-hashed
// and compared to the peer's claimed SHA-256 before being returned;
// a mismatch counts as corrupt and the next peer is tried. Returns
// the verified bytes, their hex SHA, and the serving peer's ID.
func (c *Cluster) FetchReport(ctx context.Context, hash string) (report []byte, sha, from string, err error) {
	ring := c.Ring()
	for _, id := range ring.Owners(hash, ring.Size()) {
		if id == c.cfg.NodeID {
			continue
		}
		p, ok := c.mem.Peer(id)
		if !ok || p.State == PeerDead {
			continue
		}
		b, s, ferr := c.fetchFrom(ctx, p.URL, hash)
		if ferr != nil {
			continue
		}
		c.Counters.PeerFillOK.Add(1)
		return b, s, id, nil
	}
	c.Counters.PeerFillMiss.Add(1)
	return nil, "", "", fmt.Errorf("cluster: no peer holds %s", hash)
}

// fetchFrom pulls one report from one peer and verifies it.
func (c *Cluster) fetchFrom(ctx context.Context, baseURL, hash string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+ReportPath+hash, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("peer fill: %s", resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerReport))
	if err != nil {
		return nil, "", err
	}
	claimed := resp.Header.Get(ReportShaHeader)
	sum := sha256.Sum256(b)
	got := hex.EncodeToString(sum[:])
	if claimed == "" || got != claimed {
		c.Counters.PeerFillCorrupt.Add(1)
		return nil, "", fmt.Errorf("peer fill: sha mismatch (claimed %.12s, got %.12s)", claimed, got)
	}
	return b, got, nil
}
