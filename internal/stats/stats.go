// Package stats provides the small statistical toolkit the CoLT
// experiments need: weighted cumulative distribution functions over page
// contiguity, running summaries, percentage helpers, and plain-text table
// rendering for regenerating the paper's tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is a weighted empirical cumulative distribution function over
// float64 sample values. The contiguity characterization weights each
// contiguity run by the number of pages it covers, matching the paper's
// "distribution of contiguities experienced by pages" (Figures 7-15).
type CDF struct {
	weights map[float64]float64
	total   float64
}

// NewCDF returns an empty CDF.
func NewCDF() *CDF {
	return &CDF{weights: make(map[float64]float64)}
}

// Add records one observation of value with weight 1.
func (c *CDF) Add(value float64) { c.AddWeighted(value, 1) }

// AddWeighted records an observation of value carrying the given weight.
// Non-positive weights are ignored.
func (c *CDF) AddWeighted(value, weight float64) {
	if weight <= 0 {
		return
	}
	c.weights[value] += weight
	c.total += weight
}

// Total returns the sum of all weights.
func (c *CDF) Total() float64 { return c.total }

// Empty reports whether no observations have been recorded.
func (c *CDF) Empty() bool { return c.total == 0 }

// At returns P(X <= value), in [0, 1]. An empty CDF returns 0.
func (c *CDF) At(value float64) float64 {
	if c.total == 0 {
		return 0
	}
	var acc float64
	for v, w := range c.weights {
		if v <= value {
			acc += w
		}
	}
	return acc / c.total
}

// Mean returns the weighted mean of the observations (0 when empty).
func (c *CDF) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var acc float64
	for v, w := range c.weights {
		acc += v * w
	}
	return acc / c.total
}

// Percentile returns the smallest recorded value v such that
// P(X <= v) >= p, with p in (0, 1]. An empty CDF returns 0.
func (c *CDF) Percentile(p float64) float64 {
	pts := c.Points()
	for _, pt := range pts {
		if pt.CumFrac >= p {
			return pt.Value
		}
	}
	if len(pts) > 0 {
		return pts[len(pts)-1].Value
	}
	return 0
}

// Point is one step of the CDF: the cumulative fraction of weight at or
// below Value.
type Point struct {
	Value   float64
	CumFrac float64
}

// Points returns the CDF as an ascending series of (value, cumulative
// fraction) steps, ending at 1.0.
func (c *CDF) Points() []Point {
	vals := make([]float64, 0, len(c.weights))
	for v := range c.weights {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	pts := make([]Point, 0, len(vals))
	var acc float64
	for _, v := range vals {
		acc += c.weights[v]
		pts = append(pts, Point{Value: v, CumFrac: acc / c.total})
	}
	return pts
}

// SampleAt evaluates the CDF at each of the given x values; used to print
// the paper's log-scale x-axis series (1, 4, 16, 64, 256, 1024).
func (c *CDF) SampleAt(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{Value: x, CumFrac: c.At(x)}
	}
	return out
}

// Summary accumulates count/sum/min/max of a stream of float64s.
type Summary struct {
	Count    int
	Sum      float64
	Min, Max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Count++
	s.Sum += v
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// PercentChange returns 100*(to-from)/from; 0 when from is 0.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (to - from) / from
}

// PercentEliminated returns the percentage of baseline events removed by
// the improved count: 100*(baseline-improved)/baseline. Negative values
// mean the "improvement" added events (possible for CoLT-SA conflict
// misses, see paper Figure 19). Returns 0 when baseline is 0.
func PercentEliminated(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - improved) / baseline
}

// GeoMean returns the geometric mean of strictly positive values,
// skipping non-positive entries; 0 when no valid values exist.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
