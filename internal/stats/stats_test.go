package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCDFBasics(t *testing.T) {
	c := NewCDF()
	if !c.Empty() || c.At(100) != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	c.Add(1)
	c.Add(4)
	c.Add(4)
	c.Add(16)
	if c.Total() != 4 {
		t.Fatalf("Total = %v", c.Total())
	}
	if !almostEqual(c.At(1), 0.25) {
		t.Fatalf("At(1) = %v", c.At(1))
	}
	if !almostEqual(c.At(4), 0.75) {
		t.Fatalf("At(4) = %v", c.At(4))
	}
	if !almostEqual(c.At(1000), 1) {
		t.Fatalf("At(1000) = %v", c.At(1000))
	}
	if !almostEqual(c.Mean(), (1+4+4+16)/4.0) {
		t.Fatalf("Mean = %v", c.Mean())
	}
}

func TestCDFWeighted(t *testing.T) {
	c := NewCDF()
	c.AddWeighted(2, 10)
	c.AddWeighted(8, 30)
	c.AddWeighted(8, -5) // ignored
	if !almostEqual(c.At(2), 0.25) {
		t.Fatalf("At(2) = %v", c.At(2))
	}
	if !almostEqual(c.Mean(), (2*10+8*30)/40.0) {
		t.Fatalf("Mean = %v", c.Mean())
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewCDF()
		for _, r := range raw {
			c.AddWeighted(float64(r%64), float64(r%7)+1)
		}
		pts := c.Points()
		if len(raw) > 0 && !almostEqual(pts[len(pts)-1].CumFrac, 1) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].CumFrac < pts[i-1].CumFrac {
				return false
			}
		}
		return sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPercentile(t *testing.T) {
	c := NewCDF()
	for v := 1; v <= 100; v++ {
		c.Add(float64(v))
	}
	if got := c.Percentile(0.5); got != 50 {
		t.Fatalf("Percentile(0.5) = %v", got)
	}
	if got := c.Percentile(1.0); got != 100 {
		t.Fatalf("Percentile(1.0) = %v", got)
	}
}

func TestCDFSampleAt(t *testing.T) {
	c := NewCDF()
	c.AddWeighted(3, 1)
	c.AddWeighted(20, 1)
	pts := c.SampleAt([]float64{1, 4, 16, 64})
	want := []float64{0, 0.5, 0.5, 1}
	for i, p := range pts {
		if !almostEqual(p.CumFrac, want[i]) {
			t.Errorf("SampleAt[%d] = %v, want %v", i, p.CumFrac, want[i])
		}
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 {
		t.Fatal("empty Summary mean != 0")
	}
	for _, v := range []float64{5, 1, 9} {
		s.Add(v)
	}
	if s.Count != 3 || s.Min != 1 || s.Max != 9 || !almostEqual(s.Mean(), 5) {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestPercentHelpers(t *testing.T) {
	if PercentChange(0, 5) != 0 {
		t.Fatal("PercentChange from 0 should be 0")
	}
	if !almostEqual(PercentChange(100, 114), 14) {
		t.Fatalf("PercentChange = %v", PercentChange(100, 114))
	}
	if !almostEqual(PercentEliminated(200, 80), 60) {
		t.Fatalf("PercentEliminated = %v", PercentEliminated(200, 80))
	}
	if !almostEqual(PercentEliminated(100, 125), -25) {
		t.Fatalf("negative elimination = %v", PercentEliminated(100, 125))
	}
	if PercentEliminated(0, 10) != 0 {
		t.Fatal("PercentEliminated baseline 0 should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEqual(GeoMean([]float64{2, 8}), 4) {
		t.Fatalf("GeoMean = %v", GeoMean([]float64{2, 8}))
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("GeoMean degenerate cases")
	}
	if !almostEqual(GeoMean([]float64{0, 4}), 4) {
		t.Fatal("GeoMean should skip non-positive values")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Bench", "MPMI")
	tb.AddRow("Mcf", 56550)
	tb.AddRow("Milc", 120.5)
	out := tb.String()
	if !strings.Contains(out, "Bench") || !strings.Contains(out, "56550") || !strings.Contains(out, "120.50") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}
