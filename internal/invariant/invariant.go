// Package invariant contains runtime auditors for the simulator's
// load-bearing data-structure invariants: the buddy allocator's
// free-list/metadata accounting, frame↔page-table ownership
// consistency, pagetable↔TLB coherence after shootdowns, and the CoLT
// coalescing invariant (every coalesced TLB entry maps physically
// contiguous, attribute-identical frames — the property the paper's
// hardware relies on and that a missed shootdown or a buggy merge
// would silently break).
//
// Auditors return structured Violations instead of panicking, so
// experiment drivers can surface them as per-job failures and a chaos
// run can keep going. They are meant for checkpoints (after build,
// after churn, end of run), never for per-reference hot paths: each
// audit walks whole structures and allocates freely.
package invariant

import (
	"fmt"
	"strings"

	"colt/internal/arch"
	"colt/internal/core"
	"colt/internal/mm"
	"colt/internal/pagetable"
	"colt/internal/vm"
)

// Violation is one broken invariant, structured for deterministic
// reporting: all fields are pure functions of simulator state.
type Violation struct {
	// Check names the auditor: "buddy", "frame-owner",
	// "tlb-coherence", or "coalescing".
	Check string
	// Subject identifies the offending object (a frame, a VPN, a TLB
	// entry's level and range).
	Subject string
	// Detail says what is wrong with it.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return v.Check + ": " + v.Subject + ": " + v.Detail
}

// Error aggregates the violations of one checkpoint into an error.
// Its message is deterministic: the count plus the first few
// violations in audit order.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	const show = 3
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s)", len(e.Violations))
	for i, v := range e.Violations {
		if i >= show {
			fmt.Fprintf(&b, "; +%d more", len(e.Violations)-show)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Check bundles the outcome of one or more audits into an error: nil
// when every slice is empty, a single *Error otherwise.
func Check(audits ...[]Violation) error {
	var all []Violation
	for _, vs := range audits {
		all = append(all, vs...)
	}
	if len(all) == 0 {
		return nil
	}
	return &Error{Violations: all}
}

// AuditBuddy runs the buddy allocator's free-list audit: no
// overlapping free ranges, natural buddy alignment, per-order block
// counts and the free-page total matching the lists, and every frame
// either allocated or free (mm.Buddy.Audit has the full rule list).
func AuditBuddy(b *mm.Buddy) []Violation {
	var out []Violation
	for _, issue := range b.Audit() {
		out = append(out, Violation{Check: "buddy", Subject: "free lists", Detail: issue})
	}
	return out
}

// AuditPageTable runs the radix tree's structural self-audit (slot
// exclusivity, PTE levels, huge alignment, live counts, mapping
// counters — pagetable.Table.Audit has the rule list).
func AuditPageTable(pid int, table *pagetable.Table) []Violation {
	var out []Violation
	subject := fmt.Sprintf("pid %d", pid)
	for _, issue := range table.Audit() {
		out = append(out, Violation{Check: "pagetable", Subject: subject, Detail: issue})
	}
	return out
}

// AuditFrameOwners checks frame↔page-table ownership both ways: every
// page-table translation must reference allocated frames whose
// recorded owner is exactly (pid, vpn), and every user-owned frame
// must be resolvable back through its owner's page table to itself.
// This is the consistency compaction migration must preserve.
func AuditFrameOwners(sys *vm.System) []Violation {
	var out []Violation
	// Forward: translations → frames.
	for _, proc := range sys.Processes() {
		pid := proc.PID
		proc.Table.Each(func(tr arch.Translation) bool {
			pages := 1
			if tr.PTE.Huge {
				pages = arch.PagesPerHuge
			}
			for i := 0; i < pages; i++ {
				vpn := tr.VPN + arch.VPN(i)
				pfn := tr.PTE.PFN + arch.PFN(i)
				subject := fmt.Sprintf("pid %d vpn %d", pid, vpn)
				if !sys.Phys.Valid(pfn) {
					out = append(out, Violation{Check: "frame-owner", Subject: subject,
						Detail: fmt.Sprintf("maps invalid frame %d", pfn)})
					continue
				}
				f := sys.Phys.Frame(pfn)
				if !f.Allocated {
					out = append(out, Violation{Check: "frame-owner", Subject: subject,
						Detail: fmt.Sprintf("maps free frame %d", pfn)})
					continue
				}
				if f.Owner.PID != pid || f.Owner.VPN != vpn {
					out = append(out, Violation{Check: "frame-owner", Subject: subject,
						Detail: fmt.Sprintf("frame %d owner is pid %d vpn %d", pfn, f.Owner.PID, f.Owner.VPN)})
				}
			}
			return true
		})
	}
	// Reverse: user-owned frames → translations. Kernel-owned frames
	// (page tables and other pinned kernel state) carry no VPN.
	for i := 0; i < sys.Phys.NumFrames(); i++ {
		pfn := arch.PFN(i)
		f := sys.Phys.Frame(pfn)
		if !f.Allocated || f.Owner.PID == mm.KernelPID {
			continue
		}
		subject := fmt.Sprintf("frame %d", pfn)
		proc := sys.Process(f.Owner.PID)
		if proc == nil {
			out = append(out, Violation{Check: "frame-owner", Subject: subject,
				Detail: fmt.Sprintf("owned by unknown pid %d", f.Owner.PID)})
			continue
		}
		got, _, ok := proc.Table.Resolve(f.Owner.VPN)
		if !ok {
			out = append(out, Violation{Check: "frame-owner", Subject: subject,
				Detail: fmt.Sprintf("owner pid %d vpn %d is not mapped", f.Owner.PID, f.Owner.VPN)})
			continue
		}
		if got != pfn {
			out = append(out, Violation{Check: "frame-owner", Subject: subject,
				Detail: fmt.Sprintf("owner pid %d vpn %d maps frame %d instead", f.Owner.PID, f.Owner.VPN, got)})
		}
	}
	return out
}

// AuditTLBCoherence checks that every translation resident anywhere in
// the hierarchy agrees with the page table — the property the OS
// maintains via shootdowns on unmap, remap, migration, and hugepage
// split. name labels the hierarchy (the variant) in violations.
func AuditTLBCoherence(name string, h *core.Hierarchy, table *pagetable.Table) []Violation {
	var out []Violation
	h.EachRun(func(level string, run core.Run, huge bool) {
		for i := 0; i < run.Len; i++ {
			vpn := run.BaseVPN + arch.VPN(i)
			want := run.BasePFN + arch.PFN(i)
			subject := fmt.Sprintf("%s %s entry [%d,+%d) vpn %d", name, level, run.BaseVPN, run.Len, vpn)
			pfn, _, ok := table.Resolve(vpn)
			if !ok {
				out = append(out, Violation{Check: "tlb-coherence", Subject: subject,
					Detail: "stale: page no longer mapped (missed shootdown)"})
				continue
			}
			if pfn != want {
				out = append(out, Violation{Check: "tlb-coherence", Subject: subject,
					Detail: fmt.Sprintf("translates to frame %d, page table says %d", want, pfn)})
			}
		}
	})
	return out
}

// AuditCoalescing checks the CoLT coalescing invariant on every
// multi-translation entry: the covered pages must map physically
// contiguous frames starting at the entry's base (PPN generation
// adds the offset, §4.1.3/§4.2.2) with identical page-table
// attributes, and superpage entries must be naturally aligned. name
// labels the hierarchy (the variant) in violations.
func AuditCoalescing(name string, h *core.Hierarchy, table *pagetable.Table) []Violation {
	var out []Violation
	h.EachRun(func(level string, run core.Run, huge bool) {
		subject := fmt.Sprintf("%s %s entry [%d,+%d)", name, level, run.BaseVPN, run.Len)
		if huge {
			if run.BaseVPN%arch.PagesPerHuge != 0 || run.BasePFN%arch.PagesPerHuge != 0 {
				out = append(out, Violation{Check: "coalescing", Subject: subject,
					Detail: fmt.Sprintf("superpage entry misaligned: v%d p%d", run.BaseVPN, run.BasePFN)})
			}
			return
		}
		if run.Len <= 1 {
			return
		}
		var baseAttr arch.Attr
		for i := 0; i < run.Len; i++ {
			vpn := run.BaseVPN + arch.VPN(i)
			pfn, attr, ok := table.Resolve(vpn)
			if !ok {
				// Coherence's problem, not coalescing's: without a
				// mapping there is no contiguity claim to check.
				continue
			}
			if i == 0 {
				baseAttr = attr
			} else if attr != baseAttr {
				out = append(out, Violation{Check: "coalescing", Subject: subject,
					Detail: fmt.Sprintf("vpn %d attr %v differs from base attr %v", vpn, attr, baseAttr)})
			}
			if want := run.BasePFN + arch.PFN(i); pfn != want {
				out = append(out, Violation{Check: "coalescing", Subject: subject,
					Detail: fmt.Sprintf("vpn %d maps frame %d, breaking contiguity from base %d", vpn, pfn, run.BasePFN)})
			}
		}
	})
	return out
}
