package invariant_test

import (
	"strings"
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/invariant"
	"colt/internal/mm"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/vm"
)

func checkStrings(vs []invariant.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

func TestCheckAggregates(t *testing.T) {
	if err := invariant.Check(nil, nil); err != nil {
		t.Fatalf("Check of empty audits = %v, want nil", err)
	}
	vs := []invariant.Violation{
		{Check: "buddy", Subject: "free lists", Detail: "a"},
		{Check: "coalescing", Subject: "x", Detail: "b"},
		{Check: "coalescing", Subject: "y", Detail: "c"},
		{Check: "coalescing", Subject: "z", Detail: "d"},
	}
	err := invariant.Check(vs[:1], vs[1:])
	if err == nil {
		t.Fatal("Check of non-empty audits = nil, want error")
	}
	var ie *invariant.Error
	if ok := errorsAs(err, &ie); !ok {
		t.Fatalf("Check error type = %T, want *invariant.Error", err)
	}
	if len(ie.Violations) != 4 {
		t.Fatalf("aggregated %d violations, want 4", len(ie.Violations))
	}
	msg := err.Error()
	if !strings.Contains(msg, "4 violation(s)") || !strings.Contains(msg, "+1 more") {
		t.Fatalf("error message %q lacks count or truncation marker", msg)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **invariant.Error) bool {
	e, ok := err.(*invariant.Error)
	if ok {
		*target = e
	}
	return ok
}

func TestAuditBuddy(t *testing.T) {
	phys := mm.NewPhysMem(64)
	buddy := mm.NewBuddy(phys)
	if vs := invariant.AuditBuddy(buddy); len(vs) != 0 {
		t.Fatalf("fresh buddy audit reported %v", checkStrings(vs))
	}
	// Corrupt frame metadata behind the allocator's back: a frame on
	// the free lists must never be marked Allocated.
	phys.Frame(3).Allocated = true
	vs := invariant.AuditBuddy(buddy)
	if len(vs) == 0 {
		t.Fatal("buddy audit missed corrupted frame metadata")
	}
	for _, v := range vs {
		if v.Check != "buddy" {
			t.Fatalf("violation check = %q, want buddy", v.Check)
		}
	}
}

func TestAuditFrameOwners(t *testing.T) {
	sys := vm.NewSystem(vm.Config{Frames: 1 << 12, THP: false, Compaction: mm.CompactionNormal})
	proc, err := sys.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	r, err := proc.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if vs := invariant.AuditFrameOwners(sys); len(vs) != 0 {
		t.Fatalf("clean system audit reported %v", checkStrings(vs))
	}

	pfn, _, ok := proc.Resolve(r.Base)
	if !ok {
		t.Fatalf("vpn %d not resolvable after Malloc", r.Base)
	}
	// Corrupt the owner record the way a buggy migration would: the
	// frame now claims to back a different virtual page.
	sys.Phys.SetOwner(pfn, mm.PageOwner{PID: proc.PID, VPN: r.Base + 7000}, true)
	vs := invariant.AuditFrameOwners(sys)
	if len(vs) == 0 {
		t.Fatal("frame-owner audit missed corrupted owner VPN")
	}

	// An owner referencing a nonexistent process must be flagged too.
	sys.Phys.SetOwner(pfn, mm.PageOwner{PID: 999, VPN: r.Base}, true)
	vs = invariant.AuditFrameOwners(sys)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "unknown pid 999") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit of orphaned frame reported %v, want unknown-pid violation", checkStrings(vs))
	}

	// Restore and re-verify so the test proves the audit is not
	// permanently tripped by state it already saw.
	sys.Phys.SetOwner(pfn, mm.PageOwner{PID: proc.PID, VPN: r.Base}, true)
	if vs := invariant.AuditFrameOwners(sys); len(vs) != 0 {
		t.Fatalf("restored system audit reported %v", checkStrings(vs))
	}
}

// tableFrames is a trivial page-table frame source for TLB-only tests.
type tableFrames struct{ next arch.PFN }

func (f *tableFrames) AllocFrame() (arch.PFN, error) { f.next++; return f.next, nil }
func (f *tableFrames) FreeFrame(arch.PFN)            {}

// newWorld maps pages consecutive VPNs to consecutive PFNs starting at
// 1<<22 and returns a CoLT-All hierarchy over the table with every page
// touched once (so coalesced entries are resident).
func newWorld(t *testing.T, pages int) (*core.Hierarchy, *pagetable.Table) {
	t.Helper()
	tbl, err := pagetable.New(&tableFrames{next: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	for i := 0; i < pages; i++ {
		if err := tbl.Map(arch.VPN(i), arch.PTE{PFN: arch.PFN(1<<22 + i), Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	walker := mmu.NewWalker(tbl, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
	h := core.NewHierarchy(core.CoLTAllConfig(), walker)
	for i := 0; i < pages; i++ {
		h.Access(arch.VPN(i))
	}
	return h, tbl
}

func TestAuditTLBCoherence(t *testing.T) {
	h, tbl := newWorld(t, 64)
	if vs := invariant.AuditTLBCoherence("colt-all", h, tbl); len(vs) != 0 {
		t.Fatalf("coherent hierarchy audit reported %v", checkStrings(vs))
	}

	// Remap a resident page WITHOUT a shootdown — the bug class the
	// auditor exists to catch. The TLB still translates vpn 5 to the
	// old frame.
	if err := tbl.Remap(5, 1<<23); err != nil {
		t.Fatal(err)
	}
	vs := invariant.AuditTLBCoherence("colt-all", h, tbl)
	if len(vs) == 0 {
		t.Fatal("coherence audit missed a stale TLB entry after remap without shootdown")
	}
	for _, v := range vs {
		if v.Check != "tlb-coherence" {
			t.Fatalf("violation check = %q, want tlb-coherence", v.Check)
		}
	}

	// Unmapping without a shootdown must read as a stale entry.
	h2, tbl2 := newWorld(t, 64)
	if err := tbl2.Unmap(9); err != nil {
		t.Fatal(err)
	}
	vs = invariant.AuditTLBCoherence("colt-all", h2, tbl2)
	stale := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "stale") {
			stale = true
		}
	}
	if !stale {
		t.Fatalf("audit after unmap reported %v, want stale-entry violation", checkStrings(vs))
	}
}

// TestAuditCoalescingCatchesBrokenRun deliberately breaks the CoLT
// coalescing invariant — a resident coalesced entry whose claimed
// physical contiguity the page table no longer backs — and requires
// the auditor to flag it.
func TestAuditCoalescingCatchesBrokenRun(t *testing.T) {
	h, tbl := newWorld(t, 64)
	// The world maps a perfectly contiguous range, so CoLT must have
	// coalesced: the audit is vacuous unless a multi-page run is
	// resident.
	multi := false
	h.EachRun(func(level string, run core.Run, huge bool) {
		if !huge && run.Len > 1 {
			multi = true
		}
	})
	if !multi {
		t.Fatal("no coalesced run resident; test world cannot exercise the auditor")
	}
	if vs := invariant.AuditCoalescing("colt-all", h, tbl); len(vs) != 0 {
		t.Fatalf("intact coalescing audit reported %v", checkStrings(vs))
	}

	// Move one middle page elsewhere without a shootdown: every
	// coalesced entry covering vpn 3 now asserts a contiguity the
	// page table contradicts.
	if err := tbl.Remap(3, 1<<24); err != nil {
		t.Fatal(err)
	}
	vs := invariant.AuditCoalescing("colt-all", h, tbl)
	if len(vs) == 0 {
		t.Fatal("coalescing audit missed a broken contiguity claim")
	}
	found := false
	for _, v := range vs {
		if v.Check != "coalescing" {
			t.Fatalf("violation check = %q, want coalescing", v.Check)
		}
		if strings.Contains(v.Detail, "breaking contiguity") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit reported %v, want a breaking-contiguity violation", checkStrings(vs))
	}
}
