package vm

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/rng"
)

// Memhog is the memory-fragmentation utility of paper §5.1.1: a process
// that pins down a percentage of physical memory in randomly-sized
// chunks and then pokes holes in them, fragmenting the machine and
// raising allocation pressure. Under OOM pressure it gives memory back
// (its reclaimer models the kernel swapping memhog's cold pages out).
type Memhog struct {
	proc    *Process
	r       *rng.RNG
	regions []*Region
	target  int
	held    int
	// chunks is a shuffled list of small page ranges used by reclaim:
	// swap-out evicts scattered cold pages, not one giant span, so the
	// memory given back under pressure is fragmented.
	chunks []memhogChunk
}

type memhogChunk struct {
	reg *Region
	off int
}

// reclaimChunkPages is the granularity of swap-out.
const reclaimChunkPages = 2

// Process returns memhog's process.
func (m *Memhog) Process() *Process { return m.proc }

// StartMemhog launches memhog holding approximately pct percent of
// physical memory. A pct of zero returns nil (no memhog).
func StartMemhog(sys *System, pct int, r *rng.RNG) (*Memhog, error) {
	if pct <= 0 {
		return nil, nil
	}
	if pct >= 95 {
		return nil, fmt.Errorf("vm: memhog pct %d leaves no memory", pct)
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return nil, err
	}
	m := &Memhog{proc: proc, r: r}
	m.target = sys.Phys.NumFrames() * pct / 100
	for m.held < m.target {
		chunk := r.IntRange(16, 1024)
		if chunk > m.target-m.held {
			chunk = m.target - m.held
		}
		reg, err := proc.Malloc(chunk)
		if err != nil {
			// Memory exhausted before reaching the target: hold what
			// we have.
			break
		}
		m.regions = append(m.regions, reg)
		m.held += chunk
	}
	m.fragment()
	m.buildReclaimChunks()
	sys.AddReclaimer(m.reclaim)
	// Memhog is a running loop, not a one-shot allocation: whenever the
	// OOM reclaimer swaps its pages out, it faults them back in,
	// competing with the benchmark for memory (the thrash the paper
	// notes "causes page fault rates to greatly increase").
	sys.AddBackgroundWork(m.grow)
	return m, nil
}

// growBurst bounds how many pages memhog re-faults per scheduling slot.
const growBurst = 256

// grindThreshold: when free memory falls below this fraction of the
// machine, memhog's touch loop starts forcing swap traffic.
const grindThreshold = 0.15

// grow re-faults swapped-out memhog memory back up toward the target,
// and once at target keeps churning under system-wide memory pressure:
// memhog is a running loop touching all its pages, so on a nearly-full
// machine it continuously steals contiguous free memory and gives back
// scattered swap-freed pages, shattering the free pool (the paper's
// memhog(50) regime where "page fault rates greatly increase").
func (m *Memhog) grow() {
	if m.held >= m.target {
		m.grind()
		return
	}
	n := m.target - m.held
	if n > growBurst {
		n = growBurst
	}
	reg, err := m.proc.Malloc(n)
	if err != nil {
		return
	}
	m.regions = append(m.regions, reg)
	m.held += n
	m.appendChunks(reg)
}

// grind performs one steady-state thrash step when memory is tight.
func (m *Memhog) grind() {
	sys := m.proc.sys
	total := float64(sys.Phys.NumFrames())
	if float64(sys.Buddy.FreePages()) >= grindThreshold*total {
		return
	}
	// Touch (re-fault) another burst of pages. With free memory
	// exhausted this drives the system's round-robin OOM reclaim,
	// evicting scattered pages from every swap-enabled process — the
	// ping-pong that shreds residency under thrash. Any surplus over
	// the target is then released as scattered pages.
	reg, err := m.proc.Malloc(growBurst)
	if err != nil {
		return
	}
	m.regions = append(m.regions, reg)
	m.held += growBurst
	m.appendChunks(reg)
	if surplus := m.held - m.target; surplus > 0 {
		m.reclaim(surplus)
	}
}

// buildReclaimChunks precomputes the shuffled swap-out order.
func (m *Memhog) buildReclaimChunks() {
	for _, reg := range m.regions {
		for off := 0; off < reg.Pages; off += reclaimChunkPages {
			m.chunks = append(m.chunks, memhogChunk{reg: reg, off: off})
		}
	}
	m.shuffleChunks(0)
}

// appendChunks adds a newly grown region's pages to the swap-out order.
func (m *Memhog) appendChunks(reg *Region) {
	start := len(m.chunks)
	for off := 0; off < reg.Pages; off += reclaimChunkPages {
		m.chunks = append(m.chunks, memhogChunk{reg: reg, off: off})
	}
	m.shuffleChunks(start)
}

func (m *Memhog) shuffleChunks(from int) {
	for i := len(m.chunks) - 1; i > 0 && i >= from; i-- {
		j := m.r.Intn(i + 1)
		m.chunks[i], m.chunks[j] = m.chunks[j], m.chunks[i]
	}
}

// fragment frees scattered small ranges (~25% of holdings) so that the
// remaining allocations checkerboard physical memory.
func (m *Memhog) fragment() {
	for _, reg := range m.regions {
		holes := reg.Pages / 32
		for h := 0; h < holes; h++ {
			off := m.r.Intn(reg.Pages)
			n := 1
			if off+n > reg.Pages {
				n = reg.Pages - off
			}
			// Best-effort: already-freed pages inside the range are
			// skipped by FreePages via the Mapped check.
			before := reg.MappedPages()
			if err := m.proc.FreePages(reg, off, n); err != nil {
				panic(err)
			}
			m.held -= before - reg.MappedPages()
		}
	}
}

// HeldPages returns how many pages memhog currently pins.
func (m *Memhog) HeldPages() int {
	total := 0
	for _, reg := range m.regions {
		total += reg.MappedPages()
	}
	return total
}

// reclaim releases roughly n pages back to the system (OOM behaviour):
// scattered small chunks, mimicking LRU swap-out of cold pages.
func (m *Memhog) reclaim(n int) int {
	freed := 0
	for freed < n && len(m.chunks) > 0 {
		c := m.chunks[len(m.chunks)-1]
		m.chunks = m.chunks[:len(m.chunks)-1]
		span := reclaimChunkPages
		if c.off+span > c.reg.Pages {
			span = c.reg.Pages - c.off
		}
		mapped := 0
		for i := 0; i < span; i++ {
			if c.reg.Mapped(c.reg.Base + arch.VPN(c.off+i)) {
				mapped++
			}
		}
		if mapped == 0 {
			continue
		}
		if err := m.proc.FreePages(c.reg, c.off, span); err != nil {
			// A hugepage-backed chunk whose split cannot get a table
			// frame under OOM: try another chunk.
			continue
		}
		freed += mapped
		m.held -= mapped
	}
	return freed
}

// Churn parameters modeling a long-lived desktop: the machine fills to
// fillUtilization, churns for a while, then applications exit until the
// churn load retains roughly residualTarget of memory. Scattered
// kernel-like pinned pages (one per pinnedSpacing frames on average,
// never freed) are what bound the compaction daemon's ability to
// manufacture contiguity: after compaction, free memory consists of
// spans between pinned pages — typically tens to a few hundred pages,
// the paper's "intermediate contiguity" regime, with 512-page aligned
// spans (superpage material) rare.
const (
	churnFillUtilization = 0.94
	churnResidualTarget  = 0.26
	pinnedSpacing        = 110
)

// BackgroundChurn simulates the long-lived desktop load of the paper's
// testbed ("a machine that has already run a number of applications...
// for two months"): memory fills with small allocations, churns through
// ops alloc/free cycles, and then drains back down, leaving scattered
// live regions, pinned kernel-like pages, and a fragmented free pool.
// Returns the churn process (still holding its surviving regions).
func BackgroundChurn(sys *System, ops int, r *rng.RNG) (*Process, error) {
	proc, err := sys.NewProcess()
	if err != nil {
		return nil, err
	}
	var live []*Region
	total := float64(sys.Phys.NumFrames())
	utilization := func() float64 {
		return 1 - float64(sys.Buddy.FreePages())/total
	}
	pinnedBudget := sys.Phys.NumFrames() / pinnedSpacing
	alloc := func() error {
		// Kernel-like allocations: tiny, pinned, never freed. Spread
		// them across the churn so they scatter through physical
		// memory.
		if pinnedBudget > 0 && r.Bool(0.15) {
			n := r.IntRange(1, 2)
			if _, err := proc.MallocPinned(n); err != nil {
				return err
			}
			pinnedBudget -= n
			return nil
		}
		pages := r.IntRange(4, 96)
		if r.Bool(0.08) {
			pages = r.IntRange(96, 512)
		}
		var reg *Region
		var err error
		if r.Bool(0.25) {
			reg, err = proc.MapFile(pages)
		} else {
			reg, err = proc.Malloc(pages)
		}
		if err != nil {
			return err
		}
		live = append(live, reg)
		return nil
	}
	freeOne := func() error {
		idx := r.Intn(len(live))
		reg := live[idx]
		if r.Bool(0.10) && reg.Pages > 2 {
			// Partial free: poke a small hole instead of releasing the
			// region.
			off := r.Intn(reg.Pages - 1)
			n := r.IntRange(1, 2)
			if off+n > reg.Pages {
				n = reg.Pages - off
			}
			return proc.FreePages(reg, off, n)
		}
		if err := proc.Free(reg); err != nil {
			return err
		}
		live[idx] = live[len(live)-1]
		live = live[:len(live)-1]
		return nil
	}

	// Phase 1: fill the machine.
	for utilization() < churnFillUtilization {
		if err := alloc(); err != nil {
			break // smaller machine than the target: proceed with what fits
		}
	}
	// Phase 2: steady-state churn around the fill level.
	for i := 0; i < ops; i++ {
		if len(live) > 0 && (utilization() > churnFillUtilization || r.Bool(0.5)) {
			if err := freeOne(); err != nil {
				return nil, err
			}
		} else if err := alloc(); err != nil && len(live) > 0 {
			if err := freeOne(); err != nil {
				return nil, err
			}
		}
	}
	// Phase 3: applications exit; drain to the residual load.
	for len(live) > 0 && utilization() > churnResidualTarget {
		if err := freeOne(); err != nil {
			return nil, err
		}
	}
	return proc, nil
}
