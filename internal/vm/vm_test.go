package vm

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/rng"
)

func newSys(t *testing.T, frames int, thp bool, mode mm.CompactionMode) *System {
	t.Helper()
	return NewSystem(Config{Frames: frames, THP: thp, Compaction: mode})
}

// checkRegionMapped verifies every live page of r resolves and that
// physical frame ownership is consistent.
func checkRegionMapped(t *testing.T, s *System, p *Process, r *Region) {
	t.Helper()
	for vpn := r.Base; vpn < r.End(); vpn++ {
		if !r.Mapped(vpn) {
			continue
		}
		pfn, _, ok := p.Resolve(vpn)
		if !ok {
			t.Fatalf("region page %d unmapped", vpn)
		}
		f := s.Phys.Frame(pfn)
		if !f.Allocated {
			t.Fatalf("page %d backed by free frame %d", vpn, pfn)
		}
		if f.Owner.PID != p.PID || f.Owner.VPN != vpn {
			t.Fatalf("frame %d owner %+v, want pid %d vpn %d", pfn, f.Owner, p.PID, vpn)
		}
	}
}

func TestMallocPopulatesAndResolves(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	p, err := s.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pages != 100 || r.MappedPages() != 100 {
		t.Fatalf("region = %+v", r)
	}
	checkRegionMapped(t, s, p, r)
	// On a fresh system the 100 pages should be one contiguous run.
	first, _, _ := p.Resolve(r.Base)
	for i := 1; i < 100; i++ {
		pfn, _, _ := p.Resolve(r.Base + arch.VPN(i))
		if pfn != first+arch.PFN(i) {
			t.Fatalf("fresh malloc not contiguous at page %d", i)
		}
	}
}

func TestMallocBytesRoundsUp(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, err := p.MallocBytes(arch.PageSize + 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pages != 2 {
		t.Fatalf("Pages = %d", r.Pages)
	}
}

func TestMallocErrors(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	if _, err := p.Malloc(0); err == nil {
		t.Fatal("zero-page malloc accepted")
	}
	if _, err := p.Malloc(1 << 20); err == nil {
		t.Fatal("oversized malloc succeeded")
	}
	// Failed malloc must not leak memory.
	free := s.Buddy.FreePages()
	if _, err := p.Malloc(1 << 20); err == nil {
		t.Fatal("oversized malloc succeeded")
	}
	if s.Buddy.FreePages() != free {
		t.Fatalf("failed malloc leaked: %d -> %d", free, s.Buddy.FreePages())
	}
}

func TestTHPBacksLargeRegions(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, err := p.Malloc(3 * arch.PagesPerHuge)
	if err != nil {
		t.Fatal(err)
	}
	if r.HugeBlocks() != 3 {
		t.Fatalf("HugeBlocks = %d, want 3", r.HugeBlocks())
	}
	if r.Base%arch.PagesPerHuge != 0 {
		t.Fatal("large anonymous region not 2MB-aligned")
	}
	pte, ok := p.Table.Lookup(r.Base)
	if !ok || !pte.Huge {
		t.Fatalf("base PTE = %v, %v", pte, ok)
	}
	// File-backed regions are never THP candidates.
	fr, err := p.MapFile(2 * arch.PagesPerHuge)
	if err != nil {
		t.Fatal(err)
	}
	if fr.HugeBlocks() != 0 {
		t.Fatal("file-backed region got hugepages")
	}
	_, attr, _ := p.Resolve(fr.Base)
	if !attr.Has(arch.AttrFileBacked) {
		t.Fatal("file attr missing")
	}
}

func TestTHPDisabledUsesBasePages(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, err := p.Malloc(2 * arch.PagesPerHuge)
	if err != nil {
		t.Fatal(err)
	}
	if r.HugeBlocks() != 0 {
		t.Fatal("THP off but huge mappings created")
	}
	if p.Table.MappedHuge() != 0 {
		t.Fatal("huge PTEs present")
	}
}

func TestFreeReturnsMemory(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	p, _ := s.NewProcess()
	before := s.Buddy.FreePages()
	r, err := p.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(r); err != nil {
		t.Fatal(err)
	}
	// Everything except page-table frames is back.
	after := s.Buddy.FreePages()
	if before-after > 8 {
		t.Fatalf("free leaked: %d -> %d", before, after)
	}
	if err := s.Buddy.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(r); err == nil {
		t.Fatal("double Free accepted")
	}
}

func TestFreePagesPartial(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, _ := p.Malloc(64)
	if err := p.FreePages(r, 10, 5); err != nil {
		t.Fatal(err)
	}
	if r.MappedPages() != 59 {
		t.Fatalf("MappedPages = %d", r.MappedPages())
	}
	for i := 10; i < 15; i++ {
		if _, _, ok := p.Resolve(r.Base + arch.VPN(i)); ok {
			t.Fatalf("freed page %d still mapped", i)
		}
	}
	if _, _, ok := p.Resolve(r.Base + 9); !ok {
		t.Fatal("neighbor page unmapped")
	}
	// Freeing the same range again is a no-op for already-freed pages.
	if err := p.FreePages(r, 10, 5); err != nil {
		t.Fatal(err)
	}
	// Bounds checks.
	if err := p.FreePages(r, 60, 10); err == nil {
		t.Fatal("out-of-range FreePages accepted")
	}
	if err := p.FreePages(r, -1, 2); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestFreePagesSplitsHugeFirst(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, err := p.Malloc(arch.PagesPerHuge)
	if err != nil {
		t.Fatal(err)
	}
	if r.HugeBlocks() != 1 {
		t.Skip("no hugepage formed; nothing to split")
	}
	if err := p.FreePages(r, 100, 10); err != nil {
		t.Fatal(err)
	}
	if r.HugeBlocks() != 0 {
		t.Fatal("huge mapping survived partial free")
	}
	if p.Table.MappedHuge() != 0 {
		t.Fatal("huge PTE survived")
	}
	// Residual contiguity: pages outside the hole are still mapped to
	// their original contiguous frames.
	pfn0, _, _ := p.Resolve(r.Base)
	pfn99, _, ok := p.Resolve(r.Base + 99)
	if !ok || pfn99 != pfn0+99 {
		t.Fatal("split lost residual contiguity")
	}
	if r.MappedPages() != arch.PagesPerHuge-10 {
		t.Fatalf("MappedPages = %d", r.MappedPages())
	}
}

func TestProcessExit(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	before := s.Buddy.FreePages()
	p, _ := s.NewProcess()
	if _, err := p.Malloc(600); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapFile(64); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if s.Buddy.FreePages() != before {
		t.Fatalf("Exit leaked: %d -> %d", before, s.Buddy.FreePages())
	}
	if s.Process(p.PID) != nil {
		t.Fatal("process still registered")
	}
	p.Exit() // idempotent
	if _, err := p.Malloc(1); err == nil {
		t.Fatal("malloc after exit accepted")
	}
}

// recordingShootdown captures shootdown events.
type recordingShootdown struct {
	events map[arch.VPN]int
}

func (r *recordingShootdown) Shootdown(pid int, vpn arch.VPN) {
	if r.events == nil {
		r.events = make(map[arch.VPN]int)
	}
	r.events[vpn]++
}

func TestShootdownOnUnmap(t *testing.T) {
	s := newSys(t, 1<<14, false, mm.CompactionNormal)
	rec := &recordingShootdown{}
	s.AddShootdownHandler(rec)
	p, _ := s.NewProcess()
	r, _ := p.Malloc(8)
	if err := p.FreePages(r, 2, 2); err != nil {
		t.Fatal(err)
	}
	if rec.events[r.Base+2] != 1 || rec.events[r.Base+3] != 1 {
		t.Fatalf("shootdowns = %v", rec.events)
	}
}

func TestCompactionMigratesAndRehomes(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	rec := &recordingShootdown{}
	s.AddShootdownHandler(rec)
	p, _ := s.NewProcess()
	// Fragment: allocate many small regions, free every other one.
	var regs []*Region
	for i := 0; i < 128; i++ {
		r, err := p.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	for i := 0; i < 128; i += 2 {
		if err := p.Free(regs[i]); err != nil {
			t.Fatal(err)
		}
	}
	moved := s.Compactor.Compact(-1)
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	if len(rec.events) == 0 {
		t.Fatal("migration raised no shootdowns")
	}
	// Every surviving region still resolves correctly with consistent
	// ownership.
	for i := 1; i < 128; i += 2 {
		checkRegionMapped(t, s, p, regs[i])
	}
}

func TestTHPPressureSplitViaTicks(t *testing.T) {
	s := newSys(t, 1<<13, true, mm.CompactionNormal) // 8192 frames = 16 superpages max
	p, _ := s.NewProcess()
	var regs []*Region
	// Exhaust memory with hugepage-backed regions; pressure must split
	// some of them as free memory drops below the watermark.
	for i := 0; i < 20; i++ {
		r, err := p.Malloc(arch.PagesPerHuge)
		if err != nil {
			break
		}
		regs = append(regs, r)
	}
	// Keep allocating small regions to drive ticks under pressure.
	for i := 0; i < 64; i++ {
		if _, err := p.Malloc(4); err != nil {
			break
		}
	}
	if s.THP.Stats().Splits == 0 {
		t.Fatal("no pressure splits happened")
	}
	// Split regions must still resolve with residual contiguity.
	for _, r := range regs {
		checkRegionMapped(t, s, p, r)
	}
}

func TestMemhogHoldsAndFragments(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	m, err := StartMemhog(s, 25, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	held := m.HeldPages()
	target := (1 << 14) * 25 / 100
	if held < target*6/10 || held > target {
		t.Fatalf("memhog holds %d pages, target %d", held, target)
	}
	// Zero percent: no memhog.
	if m2, err := StartMemhog(s, 0, rng.New(1)); err != nil || m2 != nil {
		t.Fatal("zero-pct memhog misbehaved")
	}
	if _, err := StartMemhog(s, 99, rng.New(1)); err == nil {
		t.Fatal("99% memhog accepted")
	}
}

func TestMemhogReclaimUnderOOM(t *testing.T) {
	s := newSys(t, 1<<13, false, mm.CompactionNormal)
	m, err := StartMemhog(s, 50, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.NewProcess()
	// Ask for more than the remaining free memory: memhog must be
	// reclaimed to satisfy it.
	free := int(s.Buddy.FreePages())
	heldBefore := m.HeldPages()
	r, err := p.Malloc(free + 512)
	if err != nil {
		t.Fatalf("malloc under pressure failed: %v", err)
	}
	if m.HeldPages() >= heldBefore {
		t.Fatal("memhog was not reclaimed")
	}
	checkRegionMapped(t, s, p, r)
}

func TestBackgroundChurnFragments(t *testing.T) {
	s := newSys(t, 1<<14, true, mm.CompactionNormal)
	proc, err := BackgroundChurn(s, 400, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.Regions()) == 0 {
		t.Fatal("churn left no live regions")
	}
	if err := s.Buddy.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Churn must leave memory measurably fragmented: free pages exist
	// but are not all in maximal blocks.
	if s.Buddy.FreePages() == 0 {
		t.Fatal("churn consumed all memory")
	}
}

func TestSystemProcessesOrder(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	p1, _ := s.NewProcess()
	p2, _ := s.NewProcess()
	got := s.Processes()
	if len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Fatal("process order wrong")
	}
	p1.Exit()
	got = s.Processes()
	if len(got) != 1 || got[0] != p2 {
		t.Fatal("exit not reflected")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if !c.THP || c.Compaction != mm.CompactionNormal || c.Frames <= 0 {
		t.Fatalf("DefaultConfig = %+v", c)
	}
}
