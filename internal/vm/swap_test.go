package vm

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/rng"
)

func TestSwapOutAndEnsureResident(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	p.EnableSwap()
	r, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	evicted := p.swapOut(64)
	if evicted < 64 {
		t.Fatalf("swapOut evicted %d, want >= 64", evicted)
	}
	// Find a swapped page; it must be unmapped but recoverable.
	var victim arch.VPN
	found := false
	for vpn := r.Base; vpn < r.End(); vpn++ {
		if r.Swapped(vpn) {
			victim = vpn
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no swapped page recorded")
	}
	if _, _, ok := p.Resolve(victim); ok {
		t.Fatal("swapped page still mapped")
	}
	swappedIn, err := p.EnsureResident(victim)
	if err != nil || !swappedIn {
		t.Fatalf("EnsureResident = %v, %v", swappedIn, err)
	}
	if _, _, ok := p.Resolve(victim); !ok {
		t.Fatal("page not mapped after swap-in")
	}
	if r.Swapped(victim) {
		t.Fatal("swap flag not cleared")
	}
	if s.MajorFaults() != 1 {
		t.Fatalf("MajorFaults = %d", s.MajorFaults())
	}
	// Resident or never-swapped pages are a no-op.
	if in, err := p.EnsureResident(victim); err != nil || in {
		t.Fatal("double swap-in")
	}
	if in, err := p.EnsureResident(99999999); err != nil || in {
		t.Fatal("swap-in of foreign page")
	}
}

func TestSwapOutSkipsPinned(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	p.EnableSwap()
	pinned, err := p.MallocPinned(128)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.swapOut(64); got != 0 {
		t.Fatalf("swapOut evicted %d pinned pages", got)
	}
	if pinned.MappedPages() != 128 {
		t.Fatal("pinned region lost pages")
	}
}

func TestSwapShootsDownTLB(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	rec := &recordingShootdown{}
	s.AddShootdownHandler(rec)
	p, _ := s.NewProcess()
	p.EnableSwap()
	if _, err := p.Malloc(64); err != nil {
		t.Fatal(err)
	}
	before := len(rec.events)
	if p.swapOut(16) == 0 {
		t.Fatal("nothing evicted")
	}
	if len(rec.events) <= before {
		t.Fatal("eviction raised no shootdowns")
	}
}

func TestSwapSplitsHugeVictims(t *testing.T) {
	s := newSys(t, 1<<13, true, mm.CompactionNormal)
	p, _ := s.NewProcess()
	p.EnableSwap()
	r, err := p.Malloc(arch.PagesPerHuge)
	if err != nil {
		t.Fatal(err)
	}
	if r.HugeBlocks() == 0 {
		t.Skip("no hugepage formed")
	}
	if p.swapOut(8) == 0 {
		t.Fatal("nothing evicted from huge-backed region")
	}
	if r.HugeBlocks() != 0 {
		t.Fatal("huge mapping survived eviction")
	}
}

func TestFreePagesDiscardsSwapSlots(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal)
	p, _ := s.NewProcess()
	p.EnableSwap()
	r, _ := p.Malloc(64)
	p.swapOut(64)
	var victim arch.VPN
	for vpn := r.Base; vpn < r.End(); vpn++ {
		if r.Swapped(vpn) {
			victim = vpn
			break
		}
	}
	if err := p.FreePages(r, int(victim-r.Base), 1); err != nil {
		t.Fatal(err)
	}
	// A freed page must not be swap-in-able.
	if in, _ := p.EnsureResident(victim); in {
		t.Fatal("freed page swapped back in")
	}
}

func TestOversubscriptionRoundRobin(t *testing.T) {
	s := newSys(t, 1<<12, false, mm.CompactionNormal) // 4096 frames
	a, _ := s.NewProcess()
	a.EnableSwap()
	b, _ := s.NewProcess()
	b.EnableSwap()
	ra, err := a.Malloc(3000)
	if err != nil {
		t.Fatal(err)
	}
	// b's allocation oversubscribes: a must lose pages.
	rb, err := b.Malloc(2000)
	if err != nil {
		t.Fatalf("oversubscribed malloc failed: %v", err)
	}
	if ra.MappedPages() == 3000 {
		t.Fatal("no pages were evicted from the first process")
	}
	// Both victims should have been hit (round-robin), not just one.
	if rb.MappedPages() == 2000 && ra.MappedPages() > 2900 {
		t.Fatal("eviction pressure did not spread")
	}
	if s.MajorFaults() != 0 {
		t.Fatal("no swap-ins should have happened yet")
	}
	_ = rng.New(0)
}

func TestMemhogGrindShattersSpansUnderPressure(t *testing.T) {
	s := newSys(t, 1<<13, false, mm.CompactionNormal)
	m, err := StartMemhog(s, 60, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Fill most of the remaining memory so free drops below the grind
	// threshold.
	p, _ := s.NewProcess()
	p.EnableSwap()
	free := int(s.Buddy.FreePages())
	if _, err := p.Malloc(free - 64); err != nil {
		t.Fatal(err)
	}
	heldBefore := m.HeldPages()
	faultsBefore := s.MajorFaults()
	s.Idle(256)
	// The grind must have cycled memory: memhog stays near target while
	// scattered evictions hit the other process.
	if m.HeldPages() < heldBefore-512 {
		t.Fatalf("memhog shrank: %d -> %d", heldBefore, m.HeldPages())
	}
	if s.MajorFaults() != faultsBefore {
		t.Log("no workload swap-ins yet (no touches); eviction checked below")
	}
	evicted := 0
	for _, reg := range p.Regions() {
		for vpn := reg.Base; vpn < reg.End(); vpn++ {
			if reg.Swapped(vpn) {
				evicted++
			}
		}
	}
	if evicted == 0 {
		t.Fatal("grind never evicted the co-running process")
	}
}

func TestIdleWithoutPressureIsQuiet(t *testing.T) {
	s := newSys(t, 1<<13, true, mm.CompactionNormal)
	p, _ := s.NewProcess()
	r, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	before := r.MappedPages()
	s.Idle(512)
	if r.MappedPages() != before {
		t.Fatal("idle system disturbed a resident region")
	}
}
