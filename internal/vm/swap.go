package vm

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/rng"
)

// The swapper models demand paging under memory oversubscription: when
// the system cannot satisfy a fault, scattered pages of swap-enabled
// processes are evicted (their frames freed, the PTEs cleared, TLB
// entries shot down) and re-faulted on the next touch. This is the
// mechanism behind the paper's memhog(50) observation that heavy load
// "causes page fault rates to greatly increase" and collapses the
// contiguity of thrashing working sets.

// swapChunkPages is the eviction granularity: small and scattered, like
// LRU swap-out.
const swapChunkPages = 2

type swapChunk struct {
	reg *Region
	off int
}

// EnableSwap registers the process as an eviction victim for OOM
// reclaim. The benchmark process and memhog both enable it; the churn
// load (whose pages model long-lived daemons) does not.
func (p *Process) EnableSwap() {
	if p.swapEnabled {
		return
	}
	p.swapEnabled = true
	p.sys.AddReclaimer(p.swapOut)
}

// swapOut evicts up to n pages in shuffled small chunks, returning the
// number evicted.
func (p *Process) swapOut(n int) int {
	freed := 0
	attemptsSinceProgress := 0
	for freed < n {
		if len(p.swapChunks) == 0 {
			if !p.rebuildSwapChunks() {
				return freed
			}
			attemptsSinceProgress = 0
		}
		c := p.swapChunks[len(p.swapChunks)-1]
		p.swapChunks = p.swapChunks[:len(p.swapChunks)-1]
		freed += p.swapOutChunk(c)
		if freed == 0 {
			attemptsSinceProgress++
			if attemptsSinceProgress > len(p.swapChunks)+1 {
				return freed
			}
		}
	}
	return freed
}

// swapOutChunk evicts the mapped pages of one chunk.
func (p *Process) swapOutChunk(c swapChunk) int {
	if p.regions[c.reg.ID] != c.reg {
		return 0 // region was freed since the chunk list was built
	}
	evicted := 0
	for i := 0; i < swapChunkPages && c.off+i < c.reg.Pages; i++ {
		vpn := c.reg.Base + arch.VPN(c.off+i)
		if !c.reg.Mapped(vpn) {
			continue
		}
		// Hugepage-backed pages need a split first; skip them if the
		// split cannot get a table frame right now.
		hb := vpn &^ (arch.PagesPerHuge - 1)
		if c.reg.huge[hb] {
			if err := p.splitHugeAt(hb); err != nil {
				continue
			}
		}
		pte, ok := p.Table.Lookup(vpn)
		if !ok || pte.Huge {
			continue
		}
		p.unmapBase(vpn, pte.PFN)
		c.reg.swapped[vpn] = true
		c.reg.mapped--
		evicted++
	}
	return evicted
}

// rebuildSwapChunks refreshes the shuffled eviction order from the
// current regions. Returns false when there is nothing to evict.
func (p *Process) rebuildSwapChunks() bool {
	p.swapRebuilds++
	var chunks []swapChunk
	for _, reg := range p.Regions() {
		if reg.Pinned || reg.MappedPages() == 0 {
			continue
		}
		for off := 0; off < reg.Pages; off += swapChunkPages {
			chunks = append(chunks, swapChunk{reg: reg, off: off})
		}
	}
	if len(chunks) == 0 {
		return false
	}
	r := rng.New(uint64(p.PID)*0x9e3779b9 + p.swapRebuilds)
	for i := len(chunks) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		chunks[i], chunks[j] = chunks[j], chunks[i]
	}
	p.swapChunks = chunks
	return true
}

// EnsureResident re-faults vpn if it was swapped out, allocating a new
// frame (a major fault). Returns true if a swap-in happened.
func (p *Process) EnsureResident(vpn arch.VPN) (bool, error) {
	var reg *Region
	for _, r := range p.Regions() {
		if r.Swapped(vpn) {
			reg = r
			break
		}
	}
	if reg == nil {
		return false, nil
	}
	pfn, err := p.sys.allocPage()
	if err != nil {
		return false, fmt.Errorf("vm: swap-in of vpn %d: %w", vpn, err)
	}
	attr := AnonAttr
	if reg.FileBacked {
		attr = FileAttr
	}
	if err := p.Table.Reserve(vpn); err != nil {
		p.sys.Buddy.FreeRange(pfn, 1)
		return false, err
	}
	if err := p.Table.Map(vpn, arch.PTE{PFN: pfn, Attr: attr}); err != nil {
		p.sys.Buddy.FreeRange(pfn, 1)
		return false, err
	}
	p.sys.Phys.SetOwner(pfn, mm.PageOwner{PID: p.PID, VPN: vpn}, true)
	delete(reg.swapped, vpn)
	reg.mapped++
	p.sys.majorFaults++
	return true, nil
}
