// Package vm is the operating-system layer of the simulator: processes,
// virtual address spaces, malloc/free with transparent-hugepage and
// batched buddy allocation, the memhog fragmentation utility, and the
// glue that lets the compaction daemon migrate pages (rehoming page
// tables and raising TLB shootdowns). Together with package mm it
// reproduces the memory-management behaviour whose contiguity the paper
// characterizes in §3 and §6.
package vm

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/pagetable"
)

// Config describes one simulated system configuration — the knobs the
// paper sweeps in §5.1.1 (THS on/off, memory compaction normal/low)
// plus the machine size.
type Config struct {
	// Frames is physical memory size in 4 KB frames.
	Frames int
	// THP enables transparent hugepage support ("THS on").
	THP bool
	// Compaction selects the daemon's eagerness (the defrag flag).
	Compaction mm.CompactionMode
}

// DefaultConfig returns the paper's default Linux setting: THS on,
// normal compaction, on a 1 GB machine (scaled from the testbed's 3 GB
// to keep simulations fast; footprints scale with it).
func DefaultConfig() Config {
	return Config{Frames: 1 << 18, THP: true, Compaction: mm.CompactionNormal}
}

// ShootdownHandler observes TLB shootdowns (unmap, remap, migration,
// hugepage split). The TLB simulator registers one so stale entries are
// flushed exactly when a real kernel would flush them.
type ShootdownHandler interface {
	Shootdown(pid int, vpn arch.VPN)
}

// Reclaimer frees up to n pages of its owner's memory when the system
// is under OOM pressure, returning how many pages it released (modeling
// swap-out of cold pages). Memhog registers one.
type Reclaimer func(n int) int

// System owns physical memory and the set of processes.
type System struct {
	cfg       Config
	Phys      *mm.PhysMem
	Buddy     *mm.Buddy
	Compactor *mm.Compactor
	THP       *mm.THP

	procs       map[int]*Process
	procOrder   []int
	nextPID     int
	handlers    []ShootdownHandler
	reclaimers  []Reclaimer
	background  []func()
	opCount     uint64
	reclaiming  bool
	inTick      bool
	reclaimNext int
	majorFaults uint64
}

// MajorFaults counts swap-ins performed by EnsureResident.
func (s *System) MajorFaults() uint64 { return s.majorFaults }

// backgroundPeriod: how many allocation operations between background
// daemon ticks (compaction and THP pressure splitting).
const backgroundPeriod = 16

// NewSystem boots a system with the given configuration.
func NewSystem(cfg Config) *System {
	if cfg.Frames <= 0 {
		panic("vm: system needs physical frames")
	}
	phys := mm.NewPhysMem(cfg.Frames)
	buddy := mm.NewBuddy(phys)
	s := &System{
		cfg:     cfg,
		Phys:    phys,
		Buddy:   buddy,
		procs:   make(map[int]*Process),
		nextPID: mm.KernelPID + 1,
	}
	s.Compactor = mm.NewCompactor(phys, buddy, s, cfg.Compaction)
	s.THP = mm.NewTHP(phys, buddy, s.Compactor, cfg.THP)
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// AddShootdownHandler subscribes a TLB to shootdown events.
func (s *System) AddShootdownHandler(h ShootdownHandler) {
	s.handlers = append(s.handlers, h)
}

// AddReclaimer registers an OOM-pressure reclaimer.
func (s *System) AddReclaimer(r Reclaimer) {
	s.reclaimers = append(s.reclaimers, r)
}

// AddBackgroundWork registers a function run on background ticks —
// concurrent system activity such as memhog's paced growth.
func (s *System) AddBackgroundWork(fn func()) {
	s.background = append(s.background, fn)
}

func (s *System) shootdown(pid int, vpn arch.VPN) {
	for _, h := range s.handlers {
		h.Shootdown(pid, vpn)
	}
}

// MigratePage implements mm.Migrator: the compaction daemon moved the
// frame backing (owner.PID, owner.VPN); rehome the page table and shoot
// down stale TLB entries. On error the compactor rolls the migration
// back, so the page table and frame metadata stay consistent.
func (s *System) MigratePage(owner mm.PageOwner, from, to arch.PFN) error {
	proc, ok := s.procs[owner.PID]
	if !ok {
		return fmt.Errorf("vm: migration for unknown pid %d", owner.PID)
	}
	if err := proc.Table.Remap(owner.VPN, to); err != nil {
		return fmt.Errorf("vm: migration remap pid %d vpn %d: %w", owner.PID, owner.VPN, err)
	}
	s.shootdown(owner.PID, owner.VPN)
	_ = from
	return nil
}

// NewProcess creates a process with an empty address space.
func (s *System) NewProcess() (*Process, error) {
	pid := s.nextPID
	s.nextPID++
	table, err := pagetable.New(&kernelFrames{sys: s})
	if err != nil {
		return nil, fmt.Errorf("vm: creating page table: %w", err)
	}
	p := &Process{
		PID:     pid,
		sys:     s,
		Table:   table,
		regions: make(map[int]*Region),
		nextVPN: heapBase,
	}
	s.procs[pid] = p
	s.procOrder = append(s.procOrder, pid)
	return p, nil
}

// Process returns the process with the given PID, or nil.
func (s *System) Process(pid int) *Process { return s.procs[pid] }

// Processes returns all live processes in creation order.
func (s *System) Processes() []*Process {
	out := make([]*Process, 0, len(s.procOrder))
	for _, pid := range s.procOrder {
		if p, ok := s.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// tick advances the background daemons every few allocation operations,
// the way kcompactd and khugepaged piggyback on system activity. Ticks
// are suppressed while OOM reclaim is in progress: the daemons' own
// allocations (e.g. the table frame a hugepage split needs) must not
// recurse into reclaim.
func (s *System) tick() {
	if s.reclaiming || s.inTick {
		return
	}
	s.inTick = true
	defer func() { s.inTick = false }()
	for _, fn := range s.background {
		fn()
	}
	s.opCount++
	if s.opCount%backgroundPeriod != 0 {
		return
	}
	s.Compactor.BackgroundTick()
	s.THP.MaybeSplit(s.splitHugeMapping)
}

// Idle advances simulated wall-clock time without new foreground work:
// background daemons and registered system activity (memhog's touch
// loop, compaction, THP pressure splitting) run for the given number of
// scheduling slots. Experiments use this to reach the steady state the
// paper's periodic page-table scans observe.
func (s *System) Idle(slots int) {
	for i := 0; i < slots; i++ {
		s.tick()
	}
}

// splitHugeMapping demotes one transparent hugepage to base pages,
// reporting false if the split could not obtain its table frame.
func (s *System) splitHugeMapping(h mm.HugeAlloc) bool {
	proc, ok := s.procs[h.PID]
	if !ok {
		return true // owner exited; nothing to rewrite
	}
	return proc.splitHugeAt(h.BaseVPN) == nil
}

// allocPage services one demand page fault: an order-0 buddy
// allocation. Order-0 requests never trigger direct compaction (they
// cannot fail on fragmentation); under true OOM the system asks
// reclaimers to release memory, modeling swap-out. Consecutive faults
// naturally receive consecutive frames while the buddy drains a split
// block — the contiguity source of paper §3.2.1.
func (s *System) allocPage() (arch.PFN, error) {
	pfn, err := s.Buddy.AllocBlock(0)
	if err == mm.ErrOutOfMemory && s.reclaim(1) {
		pfn, err = s.Buddy.AllocBlock(0)
	}
	return pfn, err
}

// reclaim asks registered reclaimers to free at least n pages; returns
// true if any memory was released. Re-entrant calls (a reclaimer's own
// bookkeeping allocating memory) are refused.
func (s *System) reclaim(n int) bool {
	if s.reclaiming {
		return false
	}
	s.reclaiming = true
	defer func() { s.reclaiming = false }()
	freed := 0
	// Round-robin across victims so no single process absorbs all the
	// eviction pressure (global LRU approximation).
	for i := 0; i < len(s.reclaimers) && freed < 2*n; i++ {
		r := s.reclaimers[(s.reclaimNext+i)%len(s.reclaimers)]
		freed += r(2 * n)
	}
	if len(s.reclaimers) > 0 {
		s.reclaimNext = (s.reclaimNext + 1) % len(s.reclaimers)
	}
	return freed > 0
}

// kernelFrames adapts the buddy allocator as a page-table frame source:
// table frames are kernel-owned and pinned (unmovable), which is why
// compaction cannot defragment around them (§3.2.2).
type kernelFrames struct{ sys *System }

func (k *kernelFrames) AllocFrame() (arch.PFN, error) {
	pfn, err := k.sys.allocPage()
	if err != nil {
		return 0, err
	}
	k.sys.Phys.SetOwner(pfn, mm.PageOwner{PID: mm.KernelPID}, false)
	return pfn, nil
}

func (k *kernelFrames) FreeFrame(pfn arch.PFN) {
	k.sys.Buddy.FreeRange(pfn, 1)
}
