package vm

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/mm"
	"colt/internal/pagetable"
)

// heapBase is the first heap VPN (0x10000000000 >> 12), leaving low
// virtual memory unused as a real process layout would.
const heapBase arch.VPN = 0x10000000

// faultTickPeriod: how many demand faults between yields to background
// system activity during a large region population.
const faultTickPeriod = 384

// Attribute sets for the two mapping kinds. They differ deliberately:
// CoLT only coalesces translations with identical attributes, so
// file-backed pages never coalesce with anonymous heap pages —
// mirroring the paper's observation that file-backed pages are also not
// THP candidates (§6.1).
const (
	AnonAttr = arch.AttrPresent | arch.AttrWritable | arch.AttrUser | arch.AttrAccessed
	FileAttr = arch.AttrPresent | arch.AttrUser | arch.AttrAccessed | arch.AttrFileBacked
)

// Region is one mmap/malloc area of a process's address space.
type Region struct {
	ID         int
	Base       arch.VPN
	Pages      int
	FileBacked bool
	// Pinned regions' frames are unmovable (kernel allocations, page
	// cache, slab): the obstacles that prevent the compaction daemon
	// from manufacturing arbitrarily large free blocks (§3.2.2).
	Pinned bool

	proc *Process
	// huge tracks the base VPNs currently mapped by a 2 MB PTE.
	huge map[arch.VPN]bool
	// freed marks pages released early by FreePages.
	freed map[arch.VPN]bool
	// swapped marks pages evicted by the swapper; they re-fault on the
	// next touch (EnsureResident).
	swapped map[arch.VPN]bool
	mapped  int
}

// End returns one past the region's last VPN.
func (r *Region) End() arch.VPN { return r.Base + arch.VPN(r.Pages) }

// MappedPages returns how many of the region's pages are still mapped.
func (r *Region) MappedPages() int { return r.mapped }

// HugeBlocks returns how many 2 MB mappings currently back the region.
func (r *Region) HugeBlocks() int { return len(r.huge) }

// Contains reports whether vpn lies inside the region.
func (r *Region) Contains(vpn arch.VPN) bool { return vpn >= r.Base && vpn < r.End() }

// Mapped reports whether the region page at vpn is currently mapped
// (not freed and not swapped out).
func (r *Region) Mapped(vpn arch.VPN) bool {
	return r.Contains(vpn) && !r.freed[vpn] && !r.swapped[vpn]
}

// Swapped reports whether the region page at vpn is swapped out.
func (r *Region) Swapped(vpn arch.VPN) bool { return r.Contains(vpn) && r.swapped[vpn] }

// Process is one simulated process: a page table plus its regions.
type Process struct {
	PID   int
	sys   *System
	Table *pagetable.Table

	regions      map[int]*Region
	regionOrder  []int
	nextRegionID int
	nextVPN      arch.VPN
	exited       bool

	swapEnabled  bool
	swapChunks   []swapChunk
	swapRebuilds uint64
}

// Regions returns the live regions in creation order.
func (p *Process) Regions() []*Region {
	out := make([]*Region, 0, len(p.regionOrder))
	for _, id := range p.regionOrder {
		if r, ok := p.regions[id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Malloc allocates an anonymous region of the given page count and
// faults every page in immediately. The application-visible request is
// for pages-many pages at once (paper §3.2.1's malloc of an N-page data
// structure); physically each page is an order-0 fault, and contiguity
// arises because consecutive faults drain consecutive frames from the
// buddy allocator's split blocks.
func (p *Process) Malloc(pages int) (*Region, error) {
	return p.mmap(pages, false, false)
}

// MallocBytes allocates an anonymous region of at least the given size.
func (p *Process) MallocBytes(bytes uint64) (*Region, error) {
	pages := int((bytes + arch.PageSize - 1) / arch.PageSize)
	return p.Malloc(pages)
}

// MapFile allocates a file-backed region (never THP-backed, read-only
// attributes).
func (p *Process) MapFile(pages int) (*Region, error) {
	return p.mmap(pages, true, false)
}

// MallocPinned allocates an anonymous region whose frames are pinned
// (unmovable by compaction), modeling kernel-side allocations.
func (p *Process) MallocPinned(pages int) (*Region, error) {
	return p.mmap(pages, false, true)
}

func (p *Process) mmap(pages int, fileBacked, pinned bool) (*Region, error) {
	if p.exited {
		return nil, fmt.Errorf("vm: pid %d has exited", p.PID)
	}
	if pages <= 0 {
		return nil, fmt.Errorf("vm: region must have pages, got %d", pages)
	}
	base := p.nextVPN
	// Large anonymous regions are 2 MB-aligned in virtual memory so THP
	// has alignment opportunities (glibc behaves this way for big
	// arenas).
	if p.thpEligible(fileBacked, pinned) && pages >= arch.PagesPerHuge {
		base = alignUp(base, arch.PagesPerHuge)
	}
	r := &Region{
		ID:         p.nextRegionID,
		Base:       base,
		Pages:      pages,
		FileBacked: fileBacked,
		Pinned:     pinned,
		proc:       p,
		huge:       make(map[arch.VPN]bool),
		freed:      make(map[arch.VPN]bool),
		swapped:    make(map[arch.VPN]bool),
	}
	// Register before populating: concurrent daemon activity during the
	// fault stream (THP pressure splits, swap-out) must see the region.
	p.nextVPN = base + arch.VPN(pages)
	p.regions[r.ID] = r
	p.regionOrder = append(p.regionOrder, r.ID)
	p.nextRegionID++
	if err := p.populate(r); err != nil {
		p.teardown(r)
		delete(p.regions, r.ID)
		p.regionOrder = p.regionOrder[:len(p.regionOrder)-1]
		return nil, err
	}
	p.sys.tick()
	return r, nil
}

func (p *Process) thpEligible(fileBacked, pinned bool) bool {
	return p.sys.THP.Enabled() && !fileBacked && !pinned
}

// populate faults in every page of the region: a 2 MB-aligned fault in
// a large-enough anonymous region first tries THP (which may invoke
// direct compaction); everything else is an order-0 demand fault.
func (p *Process) populate(r *Region) error {
	attr := AnonAttr
	if r.FileBacked {
		attr = FileAttr
	}
	thp := p.thpEligible(r.FileBacked, r.Pinned)
	vpn := r.Base
	remaining := r.Pages
	faults := 0
	for remaining > 0 {
		// Large populations yield to concurrent system activity
		// periodically, the way a real fault stream interleaves with
		// other processes and daemons.
		faults++
		if faults%faultTickPeriod == 0 {
			p.sys.tick()
		}
		if thp && vpn%arch.PagesPerHuge == 0 && remaining >= arch.PagesPerHuge {
			if pfn, ok := p.sys.THP.TryAllocHuge(p.PID, vpn); ok {
				err := p.Table.MapHuge(vpn, arch.PTE{PFN: pfn, Attr: attr, Huge: true})
				if err != nil {
					return err
				}
				r.huge[vpn] = true
				r.mapped += arch.PagesPerHuge
				vpn += arch.PagesPerHuge
				remaining -= arch.PagesPerHuge
				continue
			}
		}
		// Table pages first, then the data frame, so consecutive
		// faults keep draining consecutive frames.
		if err := p.Table.Reserve(vpn); err != nil {
			return err
		}
		pfn, err := p.sys.allocPage()
		if err != nil {
			return err
		}
		if err := p.Table.Map(vpn, arch.PTE{PFN: pfn, Attr: attr}); err != nil {
			return err
		}
		p.sys.Phys.SetOwner(pfn, mm.PageOwner{PID: p.PID, VPN: vpn}, !r.Pinned)
		r.mapped++
		vpn++
		remaining--
	}
	return nil
}

// teardown releases whatever populate managed to map before failing.
func (p *Process) teardown(r *Region) {
	for vpn := r.Base; vpn < r.End(); vpn++ {
		if r.huge[vpn] {
			p.freeHugeBlock(r, vpn)
		}
		if pte, ok := p.Table.Lookup(vpn); ok && !pte.Huge {
			p.unmapBase(vpn, pte.PFN)
		}
	}
}

// Free releases the whole region.
func (p *Process) Free(r *Region) error {
	if p.regions[r.ID] != r {
		return fmt.Errorf("vm: region %d not owned by pid %d", r.ID, p.PID)
	}
	for vpn := r.Base; vpn < r.End(); vpn++ {
		if r.huge[vpn] {
			p.freeHugeBlock(r, vpn)
			vpn += arch.PagesPerHuge - 1
			continue
		}
		if r.Mapped(vpn) {
			pte, ok := p.Table.Lookup(vpn)
			if !ok {
				panic(fmt.Sprintf("vm: region page %d not in table", vpn))
			}
			p.unmapBase(vpn, pte.PFN)
		}
	}
	delete(p.regions, r.ID)
	p.sys.tick()
	return nil
}

// FreePages releases n pages starting at page offset off within the
// region — the partial frees that fragment physical memory. Hugepage
// mappings overlapping the range are split first (keeping the remainder
// of their contiguity, as THP splitting does).
func (p *Process) FreePages(r *Region, off, n int) error {
	if p.regions[r.ID] != r {
		return fmt.Errorf("vm: region %d not owned by pid %d", r.ID, p.PID)
	}
	if off < 0 || n <= 0 || off+n > r.Pages {
		return fmt.Errorf("vm: FreePages(%d, %d) out of region of %d pages", off, n, r.Pages)
	}
	start := r.Base + arch.VPN(off)
	end := start + arch.VPN(n)
	// Split any hugepage overlapping the range.
	for hb := start &^ (arch.PagesPerHuge - 1); hb < end; hb += arch.PagesPerHuge {
		if r.huge[hb] {
			if err := p.splitHugeAt(hb); err != nil {
				return fmt.Errorf("vm: FreePages needs a hugepage split: %w", err)
			}
		}
	}
	for vpn := start; vpn < end; vpn++ {
		if r.swapped[vpn] {
			// Swapped pages have no frame; freeing them just discards
			// the swap slot.
			delete(r.swapped, vpn)
			r.freed[vpn] = true
			continue
		}
		if !r.Mapped(vpn) {
			continue
		}
		pte, ok := p.Table.Lookup(vpn)
		if !ok || pte.Huge {
			panic(fmt.Sprintf("vm: inconsistent mapping at %d", vpn))
		}
		p.unmapBase(vpn, pte.PFN)
		r.freed[vpn] = true
		r.mapped--
	}
	p.sys.tick()
	return nil
}

// unmapBase removes one base mapping, frees its frame, and raises a
// shootdown.
func (p *Process) unmapBase(vpn arch.VPN, pfn arch.PFN) {
	if err := p.Table.Unmap(vpn); err != nil {
		panic(fmt.Sprintf("vm: unmap %d: %v", vpn, err))
	}
	p.sys.Buddy.FreeRange(pfn, 1)
	p.sys.shootdown(p.PID, vpn)
}

// freeHugeBlock unmaps and frees one live 2 MB mapping of the region.
func (p *Process) freeHugeBlock(r *Region, baseVPN arch.VPN) {
	pte, ok := p.Table.Lookup(baseVPN)
	if !ok || !pte.Huge {
		panic(fmt.Sprintf("vm: huge block at %d not mapped huge", baseVPN))
	}
	if err := p.Table.UnmapHuge(baseVPN); err != nil {
		panic(err)
	}
	p.sys.THP.Release(p.PID, baseVPN)
	p.sys.Buddy.FreeRange(pte.PFN, arch.PagesPerHuge)
	delete(r.huge, baseVPN)
	r.mapped -= arch.PagesPerHuge
	p.sys.shootdown(p.PID, baseVPN)
}

// splitHugeAt demotes the process's 2 MB mapping at baseVPN into 512
// base PTEs over the same frames. Called by THP's pressure daemon and
// by partial frees. Splitting needs one table frame, so it can fail
// under OOM; the mapping is left intact in that case.
func (p *Process) splitHugeAt(baseVPN arch.VPN) error {
	if err := p.Table.SplitHuge(baseVPN); err != nil {
		return err
	}
	p.sys.THP.Release(p.PID, baseVPN)
	// Frames become movable base pages again.
	pte, _ := p.Table.Lookup(baseVPN)
	for i := 0; i < arch.PagesPerHuge; i++ {
		p.sys.Phys.SetOwner(pte.PFN+arch.PFN(i), mm.PageOwner{PID: p.PID, VPN: baseVPN + arch.VPN(i)}, true)
	}
	for _, r := range p.regions {
		if r.huge[baseVPN] {
			delete(r.huge, baseVPN)
		}
	}
	p.sys.shootdown(p.PID, baseVPN)
	return nil
}

// Exit frees every region and the page table.
func (p *Process) Exit() {
	if p.exited {
		return
	}
	for _, r := range p.Regions() {
		if err := p.Free(r); err != nil {
			panic(err)
		}
	}
	p.Table.Release()
	p.exited = true
	delete(p.sys.procs, p.PID)
}

// Resolve translates a VPN through the process page table.
func (p *Process) Resolve(vpn arch.VPN) (arch.PFN, arch.Attr, bool) {
	return p.Table.Resolve(vpn)
}

func alignUp(v arch.VPN, align arch.VPN) arch.VPN {
	return (v + align - 1) &^ (align - 1)
}
