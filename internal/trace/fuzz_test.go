package trace

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the decoder's contract over arbitrary byte streams:
// Read never panics, and any stream it accepts round-trips — the
// decoded trace re-encodes without error and decodes back to identical
// records. Acceptance also implies every format invariant holds
// (InstGap >= 1, address within the 63-bit encoding).
func FuzzRead(f *testing.F) {
	// Seed 1: a valid two-record trace.
	valid := &Trace{}
	valid.Append(Record{VAddr: 0x1000, Write: false, InstGap: 1})
	valid.Append(Record{VAddr: 0xdeadbeef000, Write: true, InstGap: 250})
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Seed 2: the same stream truncated mid-record.
	f.Add(buf.Bytes()[:buf.Len()-5])
	// Seed 3: bad magic.
	f.Add([]byte("NOTATRACE!!!"))
	// Seed 4: magic only (empty trace).
	f.Add(buf.Bytes()[:8])
	// Seed 5: a record with a zero InstGap, which Read must reject.
	corrupt := append([]byte(nil), buf.Bytes()...)
	copy(corrupt[16:20], []byte{0, 0, 0, 0})
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for i := 0; i < tr.Len(); i++ {
			r := tr.At(i)
			if r.InstGap == 0 {
				t.Fatalf("record %d: accepted InstGap 0", i)
			}
			if uint64(r.VAddr)&(uint64(1)<<63) != 0 {
				t.Fatalf("record %d: accepted address %#x outside encoding", i, uint64(r.VAddr))
			}
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace fails to re-encode: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace fails to decode: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round-trip length %d != %d", tr2.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if tr2.At(i) != tr.At(i) {
				t.Fatalf("round-trip record %d: %+v != %+v", i, tr2.At(i), tr.At(i))
			}
		}
		if tr2.Instructions() != tr.Instructions() {
			t.Fatalf("round-trip instructions %d != %d", tr2.Instructions(), tr.Instructions())
		}
	})
}
