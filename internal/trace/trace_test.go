package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"

	"colt/internal/arch"
)

func TestRoundTrip(t *testing.T) {
	in := &Trace{}
	in.Append(Record{VAddr: 0x1000, Write: false, InstGap: 1})
	in.Append(Record{VAddr: 0xdeadbeef000, Write: true, InstGap: 250})
	in.Append(Record{VAddr: 0, Write: false, InstGap: 4_000_000_000})
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("Len = %d, want %d", out.Len(), in.Len())
	}
	for i := 0; i < in.Len(); i++ {
		if out.At(i) != in.At(i) {
			t.Fatalf("record %d: %+v != %+v", i, out.At(i), in.At(i))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, gaps []uint16) bool {
		in := &Trace{}
		for i, a := range addrs {
			gap := uint32(1)
			if i < len(gaps) {
				gap = uint32(gaps[i]) + 1
			}
			in.Append(Record{VAddr: arch.VAddr(a) << 12, Write: a%3 == 0, InstGap: gap})
		}
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || out.Len() != in.Len() {
			return false
		}
		for i := range in.Records() {
			if out.At(i) != in.At(i) {
				return false
			}
		}
		return out.Instructions() == in.Instructions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructions(t *testing.T) {
	tr := &Trace{}
	if tr.Instructions() != 0 {
		t.Fatal("empty trace instructions != 0")
	}
	tr.Append(Record{InstGap: 10})
	tr.Append(Record{InstGap: 5})
	if tr.Instructions() != 15 {
		t.Fatalf("Instructions = %d", tr.Instructions())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE!!!"))); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tr := &Trace{}
	tr.Append(Record{VAddr: 0x1000, InstGap: 1})
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestZeroGapRejectedOnWrite(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{VAddr: 0x1000, InstGap: 1})
	tr.Append(Record{VAddr: 0x2000, InstGap: 0})
	err := tr.Write(&bytes.Buffer{})
	if err == nil {
		t.Fatal("zero InstGap accepted by Write")
	}
	if !strings.Contains(err.Error(), "record 1") || !strings.Contains(err.Error(), "InstGap") {
		t.Errorf("error %q does not name the offending record and field", err)
	}
}

func TestZeroGapRejectedOnRead(t *testing.T) {
	// Hand-assemble a stream with a zero gap, which Write refuses to
	// produce: magic plus one 12-byte record whose gap field is 0.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var rec [12]byte
	binary.LittleEndian.PutUint64(rec[0:8], 0x1000)
	binary.LittleEndian.PutUint32(rec[8:12], 0)
	buf.Write(rec[:])
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("zero InstGap accepted by Read")
	}
	if !strings.Contains(err.Error(), "record 0") || !strings.Contains(err.Error(), "InstGap") {
		t.Errorf("error %q does not name the offending record and field", err)
	}
}

func TestAddressOverflowRejected(t *testing.T) {
	for _, addr := range []uint64{writeBit, uint64(1) << 52, uint64(1) << 62} {
		tr := &Trace{}
		tr.Append(Record{VAddr: arch.VAddr(addr), InstGap: 1})
		if err := tr.Write(&bytes.Buffer{}); err == nil {
			t.Errorf("address %#x accepted by Write", addr)
		}
	}
}

func TestReservedBitsRejectedOnRead(t *testing.T) {
	// Hand-assemble a stream with a reserved address bit set — the bit
	// pattern of a flipped word, which Write refuses to produce.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var rec [12]byte
	binary.LittleEndian.PutUint64(rec[0:8], 0x1000|uint64(1)<<55)
	binary.LittleEndian.PutUint32(rec[8:12], 3)
	buf.Write(rec[:])
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("corrupt address word accepted by Read")
	}
	if !strings.Contains(err.Error(), "record 0") || !strings.Contains(err.Error(), "reserved bits") {
		t.Errorf("error %q does not name the offending record and corruption", err)
	}
}

func TestReplayEarlyStop(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(Record{VAddr: arch.VAddr(i), InstGap: 1})
	}
	n := 0
	tr.Replay(func(Record) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("replayed %d records", n)
	}
}
