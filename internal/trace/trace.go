// Package trace records and replays memory-reference streams: the
// simulator's equivalent of the paper's Simics-derived traces (§5.2.1).
// A record carries the virtual address, the read/write flag, and the
// number of instructions executed since the previous reference, which
// the performance model uses to reconstruct instruction counts.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"colt/internal/arch"
)

// Record is one memory reference.
type Record struct {
	VAddr arch.VAddr
	Write bool
	// InstGap counts instructions executed up to and including this
	// reference since the previous record (always >= 1).
	InstGap uint32
}

// Trace is an in-memory reference stream.
type Trace struct {
	recs []Record
}

// Append adds a record.
func (t *Trace) Append(r Record) { t.recs = append(t.recs, r) }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.recs) }

// At returns record i.
func (t *Trace) At(i int) Record { return t.recs[i] }

// Records returns the underlying slice (not a copy).
func (t *Trace) Records() []Record { return t.recs }

// Instructions returns the total instruction count the trace spans.
func (t *Trace) Instructions() uint64 {
	var total uint64
	for i := range t.recs {
		total += uint64(t.recs[i].InstGap)
	}
	return total
}

// Binary format: 8-byte magic, then per record a 64-bit word packing
// the 52-bit VPN+offset address, write bit, and a 32-bit gap.
var magic = [8]byte{'C', 'O', 'L', 'T', 'T', 'R', 'C', '1'}

const writeBit = uint64(1) << 63

// reservedMask covers the word bits between the 52-bit address and the
// write flag. They are always zero in a valid trace, so a set bit is
// proof of corruption rather than a legal future extension.
const reservedMask = uint64(1)<<63 - uint64(1)<<52

// ErrBadMagic reports a stream that is not a CoLT trace.
var ErrBadMagic = errors.New("trace: bad magic (not a CoLT trace)")

// Write encodes the trace to w. Every record's InstGap must be >= 1
// (each reference is itself an instruction); a zero gap is rejected
// rather than silently corrupting downstream instruction counts.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [12]byte
	for i, r := range t.recs {
		word := uint64(r.VAddr)
		if word&(writeBit|reservedMask) != 0 {
			return fmt.Errorf("trace: address %#x overflows encoding", uint64(r.VAddr))
		}
		if r.InstGap == 0 {
			return fmt.Errorf("trace: record %d: InstGap 0 is invalid (must be >= 1)", i)
		}
		if r.Write {
			word |= writeBit
		}
		binary.LittleEndian.PutUint64(buf[0:8], word)
		binary.LittleEndian.PutUint32(buf[8:12], r.InstGap)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r, enforcing the format's invariants: a
// stream whose records carry a zero InstGap is rejected with a
// descriptive error, never silently accepted.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	t := &Trace{}
	var buf [12]byte
	for i := 0; ; i++ {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
		}
		word := binary.LittleEndian.Uint64(buf[0:8])
		gap := binary.LittleEndian.Uint32(buf[8:12])
		if word&reservedMask != 0 {
			return nil, fmt.Errorf("trace: record %d: corrupt address word %#x (reserved bits set)", i, word)
		}
		if gap == 0 {
			return nil, fmt.Errorf("trace: record %d: InstGap 0 is invalid (must be >= 1)", i)
		}
		t.Append(Record{
			VAddr:   arch.VAddr(word &^ writeBit),
			Write:   word&writeBit != 0,
			InstGap: gap,
		})
	}
}

// Replay feeds every record to fn, stopping early if fn returns false.
func (t *Trace) Replay(fn func(Record) bool) {
	for _, r := range t.recs {
		if !fn(r) {
			return
		}
	}
}
