// Package obs is coltd's production observability layer: a
// zero-dependency Prometheus-text-format metrics registry and the
// request-scoped trace IDs that correlate a submission's log lines,
// WAL record, and span timeline end to end.
//
// The registry follows the same contract as internal/telemetry: the
// recording hot path is pure atomics — Counter.Inc, Gauge.Set, and
// Histogram.Observe never allocate and never take a lock — so the
// serving stack can instrument every admission without measurable
// cost. Scrapes read the same atomics; the registry mutex guards
// registration only (which completes before serving starts) and is
// never held by a recording call, so a monitoring scrape can never
// stall admission. Func collectors export counters the server already
// maintains as atomics without double-counting.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types as they render in the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores an int64 —
// every gauge the server exports is a count or a 0/1 flag.
type Gauge struct {
	v atomic.Int64
}

// Set stores v; Inc, Dec, and Add adjust it.
func (g *Gauge) Set(v int64)  { g.v.Store(v) }
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Bounds are
// ascending upper edges; observations above the last bound land in
// the implicit +Inf bucket. Observe is lock-free and allocation-free:
// one binary search, two atomic adds, and a CAS loop folding the
// observation into the float64 sum.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the bucket (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in (0,1]) from the bucket
// counts, attributing each bucket's mass to its upper bound — the
// same upper-bound convention Prometheus's histogram_quantile uses,
// without interpolation. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LatencyBuckets is the default upper-bound set for wall-clock
// seconds histograms: 100µs to ~2min in roughly 3× steps, tight
// enough at the bottom to resolve cache-hit serving and wide enough
// at the top to hold a full simulation.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// sample is one exported series within a family.
type sample struct {
	labels string // rendered {k="v",...} or ""
	value  func() float64
	hist   *Histogram
}

// family is one metric name: its help, type, and samples.
type family struct {
	name, help, typ string
	samples         []sample
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format. Registration is expected to finish before
// serving begins; recording and scraping are then both lock-free with
// respect to each other and to the hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelPairs renders ("k","v","k2","v2") as a deterministic
// Prometheus label block. Panics on odd-length or empty-key input —
// label sets are compile-time constants in this codebase.
func labelPairs(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "" {
			panic("obs: empty label key")
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register resolves (or creates) the family for name, enforcing that
// help and type never diverge between series of one name, and that no
// series is registered twice.
func (r *Registry) register(name, help, typ string, s sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %s registered with two help strings", name))
	}
	for _, prev := range f.samples {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.samples = append(f.samples, s)
}

// Counter registers and returns a counter series. Labels are
// ("key", "value") pairs; registering the same name with different
// label values grows the family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, sample{
		labels: labelPairs(labels),
		value:  func() float64 { return float64(c.Value()) },
	})
	return c
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time — the bridge to counters the server already keeps as
// atomics (cache hits, journal appends) without double-counting. fn
// must be safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, typeCounter, sample{labels: labelPairs(labels), value: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, sample{
		labels: labelPairs(labels),
		value:  func() float64 { return float64(g.Value()) },
	})
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, typeGauge, sample{labels: labelPairs(labels), value: fn})
}

// Histogram registers and returns a histogram series with the given
// ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, typeHistogram, sample{labels: labelPairs(labels), hist: h})
	return h
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// histLabels splices the le (or no) label into an existing label
// block: "{a=\"b\"}" + le -> "{a=\"b\",le=\"...\"}".
func histLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4), families sorted by name, samples in
// registration order. Values are atomic loads; the registry mutex is
// held only to snapshot the family list.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			if s.hist == nil {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
				continue
			}
			h := s.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, histLabels(s.labels, formatValue(bound)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, histLabels(s.labels, "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatValue(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
