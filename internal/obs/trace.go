package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Trace IDs are 16 lowercase hex characters minted at admission and
// threaded through every layer a request touches: the admission log
// line, the WAL accept record, the worker execution and cache-commit
// logs, the X-Colt-Trace response header, and the job's span
// timeline. They exist to correlate, not to be unguessable — but the
// process-unique random base keeps two daemons (or two restarts of
// one) from ever colliding, so "grep every log for this ID" stays a
// sound debugging move across a fleet.

// traceBase is the per-process random base; traceSeq makes each mint
// unique within the process.
var (
	traceBase uint64
	traceSeq  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		traceBase = binary.LittleEndian.Uint64(b[:])
	} else {
		traceBase = uint64(time.Now().UnixNano())
	}
}

// mix is splitmix64's finalizer: cheap, stateless, and enough to make
// sequential sequence numbers look unrelated in logs.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID mints a fresh 16-hex-char trace ID.
func NewTraceID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], mix(traceBase+traceSeq.Add(1)))
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as an inbound trace ID
// (X-Colt-Trace request header): 8–64 characters of hex or dashes, so
// clients can propagate their own correlation IDs without letting
// arbitrary bytes into log lines and WAL records.
func ValidTraceID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return false
		}
	}
	return true
}
