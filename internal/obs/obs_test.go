package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.", "outcome", "ok")
	c2 := r.Counter("test_ops_total", "Operations.", "outcome", "err")
	g := r.Gauge("test_depth", "Depth.")
	r.GaugeFunc("test_flag", "Flag.", func() float64 { return 1 })
	r.CounterFunc("test_ext_total", "External counter.", func() float64 { return 42 })

	c.Inc()
	c.Add(2)
	c2.Inc()
	g.Set(7)
	g.Inc()
	g.Dec()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		`test_ops_total{outcome="ok"} 3` + "\n",
		`test_ops_total{outcome="err"} 1` + "\n",
		"# TYPE test_depth gauge\n",
		"test_depth 7\n",
		"test_flag 1\n",
		"test_ext_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_ops_total") {
		t.Error("families not sorted by name")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.01)  // le semantics: boundary lands in its own bucket
	h.Observe(0.5)   // le=1
	h.Observe(5)     // +Inf

	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.515) > 1e-9 {
		t.Fatalf("sum = %g, want 5.515", h.Sum())
	}
	if q := h.Quantile(0.5); q != 0.01 {
		t.Fatalf("p50 = %g, want 0.01", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %g, want +Inf", q)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.01"} 2` + "\n",
		`test_latency_seconds_bucket{le="0.1"} 2` + "\n",
		`test_latency_seconds_bucket{le="1"} 3` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 4` + "\n",
		"test_latency_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsSpliceLe(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_phase_seconds", "Phase.", []float64{1}, "phase", "run")
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_phase_seconds_bucket{phase="run",le="1"} 1`) {
		t.Fatalf("le label not spliced into existing labels:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `test_phase_seconds_sum{phase="run"} 0.5`) {
		t.Fatalf("sum missing its labels:\n%s", b.String())
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_empty_seconds", "Empty.", []float64{1})
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_a_total", "A.")
	mustPanic("duplicate series", func() { r.Counter("test_a_total", "A.") })
	mustPanic("type clash", func() { r.Gauge("test_a_total", "A.") })
	mustPanic("help clash", func() { r.Counter("test_a_total", "B.", "k", "v") })
	mustPanic("odd labels", func() { r.Counter("test_b_total", "B.", "k") })
	mustPanic("empty label key", func() { r.Counter("test_c_total", "C.", "", "v") })
	mustPanic("empty buckets", func() { r.Histogram("test_h", "H.", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("test_h2", "H2.", []float64{1, 1}) })
}

// TestRecordingIsAllocFree pins the hot-path contract: recording into
// counters, gauges, and histograms allocates nothing.
func TestRecordingIsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_allocs_total", "A.")
	g := r.Gauge("test_allocs", "G.")
	h := r.Histogram("test_allocs_seconds", "H.", LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.004)
	}); n != 0 {
		t.Fatalf("recording allocates %v per op, want 0", n)
	}
}

// TestConcurrentRecordAndScrape hammers one registry from writers and
// scrapers at once; run under -race this is the lock-free contract.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "C.")
	h := r.Histogram("test_conc_seconds", "H.", []float64{0.001, 0.01, 0.1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 20000 {
		t.Fatalf("counter = %d, want 20000", c.Value())
	}
	if h.Count() != 20000 {
		t.Fatalf("histogram count = %d, want 20000", h.Count())
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two minted trace IDs collide: %s", a)
	}
	if len(a) != 16 || !ValidTraceID(a) {
		t.Fatalf("minted ID %q is not a valid 16-hex trace ID", a)
	}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("trace ID %s repeated within 1000 mints", id)
		}
		seen[id] = true
	}
	valid := []string{"deadbeef", "0123456789abcdef", "A1B2-C3D4-E5F6aa"}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "short", strings.Repeat("a", 65), "deadbeefg", "dead beef", "хекс-байт"}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-2:     "-2",
		0.5:    "0.5",
		1e16:   "1e+16",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", in, got, want)
		}
	}
}
