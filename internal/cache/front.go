package cache

import "colt/internal/arch"

// This file implements the shared L1/L2 "front" of the split cache
// hierarchy the batched simulator uses. Every TLB variant translates
// the same reference stream against the same page table, so the
// physical data-access stream entering L1 — and therefore the entire
// L1 and L2 state evolution — is identical across variants; only the
// LLC diverges, because the page walker's PTE fetches enter the
// hierarchy there (§4.1.1) and each variant walks at different times.
// Simulating N private L1/L2 pairs therefore repeats the exact same
// probes N times. The Front runs that shared portion once per
// reference and records the requests L2 would have sent to the LLC;
// each variant replays the recording against its own private LLC,
// reproducing its former per-variant LLC state, statistics, and
// demand latency exactly.

// LLCEvent is one L2→LLC request captured by a Front: a demand fill
// (Write false) or an eviction writeback (Write true).
type LLCEvent struct {
	Addr  arch.PAddr
	Write bool
}

// recorder is the terminal Level under the front's L2: it captures
// each request instead of servicing it, contributing zero latency (the
// variant's own LLC supplies the latency during replay).
type recorder struct{ events []LLCEvent }

func (r *recorder) Access(addr arch.PAddr, write bool) int {
	r.events = append(r.events, LLCEvent{Addr: addr, Write: write})
	return 0
}

// Front is the variant-independent L1+L2 pair. It is not safe for
// concurrent use; each job owns one.
type Front struct {
	L1, L2 *Cache
	rec    recorder
}

// NewFront builds the paper-configured L1 and L2 over a recording
// terminal.
func NewFront() *Front {
	f := &Front{}
	f.L2 = New(l2Config(), &f.rec)
	f.L1 = New(l1Config(), f.L2)
	return f
}

// DataAccess services one demand reference through the shared L1/L2
// and returns the latency accumulated down to L2, the LLC-bound
// requests the access generated (valid until the next call), and
// whether the first of them is the demand fill — the only LLC access
// on the reference's critical path. The demand fill, when present, is
// always first: L1's miss path fills from L2 before writing back its
// victim, and L2's miss path fills from the LLC before writing back
// its own, so writeback-induced traffic (which targets evicted lines,
// never the demand line, and whose latency the levels discard) sorts
// strictly after it.
func (f *Front) DataAccess(addr arch.PAddr, write bool) (lat int, events []LLCEvent, demandMiss bool) {
	f.rec.events = f.rec.events[:0]
	lat = f.L1.Access(addr, write)
	events = f.rec.events
	demandMiss = len(events) > 0 && !events[0].Write && events[0].Addr.Line() == addr.Line()
	return lat, events, demandMiss
}
