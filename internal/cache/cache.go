// Package cache models a multi-level set-associative cache hierarchy
// with LRU replacement. It serves two clients: the workload's data
// references (for the performance model's memory stalls) and the page
// walker's PTE fetches. Following the paper (§4.1.1), PTE fetches enter
// the hierarchy at the last-level cache — "the LLC is the highest cache
// level for page table entries" — so the walker is wired to the LLC
// level directly.
package cache

import (
	"fmt"

	"colt/internal/arch"
)

// Level is anything that can service a physical-address access and
// report its latency in cycles.
type Level interface {
	// Access services a read or write of the line containing addr and
	// returns the total latency in cycles.
	Access(addr arch.PAddr, write bool) int
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency int
}

// Stats counts per-level activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is one set-associative level backed by a lower Level.
type Cache struct {
	cfg   Config
	sets  int
	lines []line // sets × ways, row-major
	next  Level
	tick  uint64
	stats Stats
}

// New builds a cache level on top of next. Size must be a multiple of
// ways × line size, and the set count must be a power of two.
func New(cfg Config, next Level) *Cache {
	if next == nil {
		panic("cache: nil next level")
	}
	linesTotal := cfg.SizeBytes / arch.CacheLineSize
	if linesTotal <= 0 || cfg.Ways <= 0 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	return &Cache{cfg: cfg, sets: sets, lines: make([]line, linesTotal), next: next}
}

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (e.g. after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access implements Level.
func (c *Cache) Access(addr arch.PAddr, write bool) int {
	c.tick++
	c.stats.Accesses++
	lineNo := addr.Line()
	set := int(lineNo) & (c.sets - 1)
	tag := lineNo >> uintLog2(c.sets)
	base := set * c.cfg.Ways

	victim := base
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			c.stats.Hits++
			l.lru = c.tick
			if write {
				l.dirty = true
			}
			return c.cfg.HitLatency
		}
		if lessLRU(&c.lines[base+i], &c.lines[victim]) {
			victim = base + i
		}
	}
	c.stats.Misses++
	lat := c.cfg.HitLatency + c.next.Access(addr, false)
	v := &c.lines[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			// Writebacks happen off the critical path; count but do not
			// add latency.
			wbAddr := arch.PAddr((v.tag<<uintLog2(c.sets) | uint64(victim/c.cfg.Ways)) * arch.CacheLineSize)
			c.next.Access(wbAddr, true)
		}
	}
	*v = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return lat
}

// lessLRU orders replacement candidates: invalid lines first, then
// least-recently used.
func lessLRU(a, b *line) bool {
	if a.valid != b.valid {
		return !a.valid
	}
	return a.lru < b.lru
}

func uintLog2(n int) uint {
	var k uint
	for 1<<k < n {
		k++
	}
	return k
}

// Memory is the terminal Level with a flat access latency.
type Memory struct {
	Latency  int
	accesses uint64
}

// Access implements Level.
func (m *Memory) Access(arch.PAddr, bool) int {
	m.accesses++
	return m.Latency
}

// Accesses returns the number of memory accesses serviced.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Hierarchy bundles the three-level configuration the paper simulates
// (32 KB L1 / 256 KB L2 / 4 MB LLC, Intel Core i7-like).
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	LLC *Cache
	Mem *Memory
}

// DefaultHierarchy builds the paper's cache configuration.
func DefaultHierarchy() *Hierarchy {
	mem := &Memory{Latency: 200}
	llc := New(Config{Name: "LLC", SizeBytes: 4 << 20, Ways: 16, HitLatency: 30}, mem)
	l2 := New(Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, HitLatency: 12}, llc)
	l1 := New(Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4}, l2)
	return &Hierarchy{L1: l1, L2: l2, LLC: llc, Mem: mem}
}

// DataAccess services a demand data reference from the core (enters at
// L1) and returns its latency.
func (h *Hierarchy) DataAccess(addr arch.PAddr, write bool) int {
	return h.L1.Access(addr, write)
}

// WalkAccess services a page-walker PTE fetch, which enters at the LLC
// (paper §4.1.1), and returns its latency.
func (h *Hierarchy) WalkAccess(addr arch.PAddr) int {
	return h.LLC.Access(addr, false)
}
