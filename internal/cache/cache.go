// Package cache models a multi-level set-associative cache hierarchy
// with LRU replacement. It serves two clients: the workload's data
// references (for the performance model's memory stalls) and the page
// walker's PTE fetches. Following the paper (§4.1.1), PTE fetches enter
// the hierarchy at the last-level cache — "the LLC is the highest cache
// level for page table entries" — so the walker is wired to the LLC
// level directly.
//
// The per-level state is laid out data-oriented rather than as a
// slice of line structs: each line's whole metadata is one uint64 word
// (tag and dirty bit in the low half, LRU recency in the high half) in
// a single lane blocked by set, so a probe is one load per way over
// adjacent memory and the miss path's victim scan rereads the words
// the probe just pulled into the host cache. This level sits on the simulator's per-reference hot path
// (every data reference and every PTE fetch of every TLB variant
// lands here), so its probe cost multiplies across millions of
// references.
package cache

import (
	"fmt"
	"sort"

	"colt/internal/arch"
)

// Level is anything that can service a physical-address access and
// report its latency in cycles.
type Level interface {
	// Access services a read or write of the line containing addr and
	// returns the total latency in cycles.
	Access(addr arch.PAddr, write bool) int
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency int
}

// Stats counts per-level activity. Accesses is derived at snapshot
// time (every access either hits or misses), keeping the hot probe
// path to a single counter update.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Line-metadata encoding. Each line is one uint64 word in the fused
// meta lane: the low half holds the 31-bit tag plus the dirty bit, the
// high half the LRU recency tick, with recency 0 reserved to mean
// "never filled", i.e. invalid — lines are only ever filled, never
// invalidated, so the encoding is stable. Folding valid into recency
// and dirty into the tag removes every other lane: a probe is a single
// load and mask per way, a hit's recency update a single store, and
// the whole metadata footprint is 8 bytes per line — which is what
// matters when several variants' multi-megabyte LLCs thrash the host
// cache.
const (
	dirtyBit uint32 = 1 << 31
	tagMask  uint32 = dirtyBit - 1
	// invalidTag is the reserved all-ones 31-bit tag an empty line
	// holds, so a hit scan needs no separate valid check: Access
	// guards that no real address ever produces it.
	invalidTag uint32 = tagMask
	// maxTick is the renormalization threshold: when the 32-bit LRU
	// clock would reach it, ticks are compressed rank-preservingly so
	// exact-LRU ordering survives arbitrarily long runs.
	maxTick uint32 = ^uint32(0) - 1
)

// Cache is one set-associative level backed by a lower Level. Line
// metadata lives in one fused lane, blocked by set: ways tag words
// followed by ways recency words, contiguous per set, so a probe's
// tag scan and the miss path's victim scan read adjacent memory.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint // log2(sets), precomputed off the probe path
	ways     int
	hitLat   int

	// meta holds, for each set s, the block meta[s*ways : (s+1)*ways]:
	// one tag|dirty|recency word per way, so a probe's tag scan, its
	// hit-path recency update, and the miss path's victim scan all
	// touch the same adjacent words.
	meta []uint64

	next Level
	// Devirtualized next-level pointers: the common chain is
	// Cache→Cache→Cache→Memory, so the miss path can skip the
	// interface dispatch. next is kept as the fallback for custom
	// Level implementations.
	nextCache *Cache
	nextMem   *Memory

	tick  uint32
	stats Stats
}

// New builds a cache level on top of next. Size must be a multiple of
// ways × line size, and the set count must be a power of two.
func New(cfg Config, next Level) *Cache {
	if next == nil {
		panic("cache: nil next level")
	}
	linesTotal := cfg.SizeBytes / arch.CacheLineSize
	if linesTotal <= 0 || cfg.Ways <= 0 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uintLog2(sets),
		ways:     cfg.Ways,
		hitLat:   cfg.HitLatency,
		meta:     make([]uint64, linesTotal),
		next:     next,
	}
	for j := range c.meta {
		c.meta[j] = uint64(invalidTag)
	}
	switch n := next.(type) {
	case *Cache:
		c.nextCache = n
	case *Memory:
		c.nextMem = n
	}
	return c
}

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Accesses = s.Hits + s.Misses
	return s
}

// ResetStats zeroes the counters (e.g. after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// fill services a miss from the next level (devirtualized when the
// chain is the standard Cache/Memory stack).
func (c *Cache) fill(addr arch.PAddr, write bool) int {
	if c.nextCache != nil {
		return c.nextCache.Access(addr, write)
	}
	if c.nextMem != nil {
		return c.nextMem.Access(addr, write)
	}
	return c.next.Access(addr, write)
}

// Access implements Level.
func (c *Cache) Access(addr arch.PAddr, write bool) int {
	if c.tick >= maxTick {
		c.renormalize()
	}
	c.tick++
	lineNo := addr.Line()
	set := int(lineNo) & (c.sets - 1)
	fullTag := lineNo >> c.setShift
	if fullTag >= uint64(invalidTag) {
		panic(fmt.Sprintf("cache %s: physical address %#x exceeds the 31-bit tag field", c.cfg.Name, uint64(addr)))
	}
	tag := uint32(fullTag)
	block := set * c.ways

	// Hit scan: one load and masked compare per way over the set's
	// contiguous metadata words (invalid lines hold the reserved
	// invalidTag); a hit folds its recency update and dirty-bit set
	// into a single store. Victim selection is deferred to the miss
	// path so hits pay nothing for it.
	lane := c.meta[block : block+c.ways]
	for j := range lane {
		if w := lane[j]; uint32(w)&tagMask == tag {
			c.stats.Hits++
			low := uint32(w)
			if write {
				low |= dirtyBit
			}
			lane[j] = uint64(low) | uint64(c.tick)<<32
			return c.hitLat
		}
	}
	return c.miss(addr, write, block, set, tag)
}

// miss services a demand miss: victim selection, next-level fill, and
// writeback accounting. Because an invalid line's recency half is 0
// and every filled line's is a positive tick, the old ordering —
// invalid ways first, then least-recently used, first-lowest wins —
// collapses to a plain first-minimum scan over the recency halves of
// the words the hit scan just loaded.
func (c *Cache) miss(addr arch.PAddr, write bool, block, set int, tag uint32) int {
	c.stats.Misses++
	lane := c.meta[block : block+c.ways]
	vi, min := 0, uint32(lane[0]>>32)
	if min != 0 {
		for j := 1; j < len(lane); j++ {
			if r := uint32(lane[j] >> 32); r < min {
				vi, min = j, r
			}
			// A never-filled way (recency 0) cannot be beaten — the
			// old ordering takes the first invalid way — so the scan
			// stops there.
			if min == 0 {
				break
			}
		}
	}

	lat := c.hitLat + c.fill(addr, false)
	if vt := uint32(lane[vi]); min != 0 {
		c.stats.Evictions++
		if vt&dirtyBit != 0 {
			c.stats.Writebacks++
			// Writebacks happen off the critical path; count but do not
			// add latency.
			wbAddr := arch.PAddr((uint64(vt&tagMask)<<c.setShift | uint64(set)) * arch.CacheLineSize)
			c.fill(wbAddr, true)
		}
	}
	low := tag
	if write {
		low |= dirtyBit
	}
	lane[vi] = uint64(low) | uint64(c.tick)<<32
	return lat
}

// renormalize compresses the LRU clock: every resident line's recency
// half is remapped to its rank among all resident lines (ranks start
// at 1; 0 keeps meaning invalid), and the tick restarts past the
// highest rank. Ticks are unique per access, so rank order equals
// tick order and exact-LRU victim selection is unchanged. Runs once
// per ~4 billion accesses; cost is a sort over the line count.
func (c *Cache) renormalize() {
	type rec struct {
		tick uint32
		idx  int
	}
	live := make([]rec, 0, c.sets*c.ways)
	for j := range c.meta {
		if t := uint32(c.meta[j] >> 32); t != 0 {
			live = append(live, rec{t, j})
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].tick < live[b].tick })
	for rank, r := range live {
		c.meta[r.idx] = uint64(uint32(c.meta[r.idx])) | uint64(rank+1)<<32
	}
	c.tick = uint32(len(live))
}

func uintLog2(n int) uint {
	var k uint
	for 1<<k < n {
		k++
	}
	return k
}

// Memory is the terminal Level with a flat access latency.
type Memory struct {
	Latency  int
	accesses uint64
}

// Access implements Level.
func (m *Memory) Access(arch.PAddr, bool) int {
	m.accesses++
	return m.Latency
}

// Accesses returns the number of memory accesses serviced.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Hierarchy bundles the three-level configuration the paper simulates
// (32 KB L1 / 256 KB L2 / 4 MB LLC, Intel Core i7-like).
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	LLC *Cache
	Mem *Memory
}

// The paper's level geometries (32 KB L1 / 256 KB L2 / 4 MB LLC,
// Intel Core i7-like), shared by DefaultHierarchy and NewFront so the
// split front/back wiring simulates the same machine.
func l1Config() Config  { return Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4} }
func l2Config() Config  { return Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, HitLatency: 12} }
func llcConfig() Config { return Config{Name: "LLC", SizeBytes: 4 << 20, Ways: 16, HitLatency: 30} }

// DefaultHierarchy builds the paper's cache configuration.
func DefaultHierarchy() *Hierarchy {
	mem := &Memory{Latency: 200}
	llc := New(llcConfig(), mem)
	l2 := New(l2Config(), llc)
	l1 := New(l1Config(), l2)
	return &Hierarchy{L1: l1, L2: l2, LLC: llc, Mem: mem}
}

// DataAccess services a demand data reference from the core (enters at
// L1) and returns its latency.
func (h *Hierarchy) DataAccess(addr arch.PAddr, write bool) int {
	return h.L1.Access(addr, write)
}

// WalkAccess services a page-walker PTE fetch, which enters at the LLC
// (paper §4.1.1), and returns its latency.
func (h *Hierarchy) WalkAccess(addr arch.PAddr) int {
	return h.LLC.Access(addr, false)
}
