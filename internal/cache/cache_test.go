package cache

import (
	"math/rand"
	"testing"

	"colt/internal/arch"
)

func tiny(next Level) *Cache {
	// 4 sets × 2 ways × 64B = 512B.
	return New(Config{Name: "T", SizeBytes: 512, Ways: 2, HitLatency: 2}, next)
}

func TestMissThenHit(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := tiny(mem)
	if lat := c.Access(0, false); lat != 102 {
		t.Fatalf("cold miss latency = %d, want 102", lat)
	}
	if lat := c.Access(16, false); lat != 2 { // same line
		t.Fatalf("hit latency = %d, want 2", lat)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if mem.Accesses() != 1 {
		t.Fatalf("memory accesses = %d", mem.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := tiny(mem)
	// Three lines mapping to set 0 (stride = sets*64 = 256B).
	a, b, d := arch.PAddr(0), arch.PAddr(256), arch.PAddr(512)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent; b is LRU
	c.Access(d, false) // evicts b
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	if lat := c.Access(a, false); lat != 2 {
		t.Fatal("a was evicted but should have been retained")
	}
	if lat := c.Access(b, false); lat == 2 {
		t.Fatal("b should have been evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := tiny(mem)
	c.Access(0, true) // dirty
	c.Access(256, false)
	c.Access(512, false) // evicts dirty line 0
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
	// Clean eviction must not write back.
	c.Access(768, false)
	if c.Stats().Writebacks != 1 {
		t.Fatalf("clean eviction wrote back: %d", c.Stats().Writebacks)
	}
}

func TestResetStats(t *testing.T) {
	c := tiny(&Memory{Latency: 10})
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "x", SizeBytes: 0, Ways: 2},
		{Name: "x", SizeBytes: 192, Ways: 2},  // 3 lines, not divisible
		{Name: "x", SizeBytes: 1536, Ways: 2}, // 12 sets: not power of two... 1536/64=24/2=12
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, &Memory{})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil next did not panic")
			}
		}()
		New(Config{Name: "x", SizeBytes: 512, Ways: 2}, nil)
	}()
}

func TestHierarchyPaths(t *testing.T) {
	h := DefaultHierarchy()
	// A walk access must bypass L1/L2.
	h.WalkAccess(4096)
	if h.L1.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 {
		t.Fatal("walk access touched L1/L2")
	}
	if h.LLC.Stats().Accesses != 1 {
		t.Fatal("walk access missed LLC")
	}
	// Data access enters at L1 and fills all levels.
	lat1 := h.DataAccess(1<<30, false)
	lat2 := h.DataAccess(1<<30, false)
	if lat2 >= lat1 {
		t.Fatalf("second access not faster: %d vs %d", lat2, lat1)
	}
	if lat2 != 4 {
		t.Fatalf("L1 hit latency = %d", lat2)
	}
	// Cold data access latency = 4+12+30+200.
	if lat1 != 246 {
		t.Fatalf("cold access latency = %d, want 246", lat1)
	}
	if h.Mem.Accesses() != 2 {
		t.Fatalf("memory accesses = %d", h.Mem.Accesses())
	}
	if h.L1.Name() != "L1" || h.L1.Sets() != 64 {
		t.Fatalf("L1 geometry: %s/%d sets", h.L1.Name(), h.L1.Sets())
	}
}

func TestDistinctSetsNoConflict(t *testing.T) {
	c := tiny(&Memory{Latency: 10})
	// Fill all 8 lines (4 sets × 2 ways) with distinct lines; no
	// evictions should occur.
	for set := 0; set < 4; set++ {
		for way := 0; way < 2; way++ {
			c.Access(arch.PAddr(set*64+way*256), false)
		}
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	// All hit now.
	before := c.Stats().Hits
	for set := 0; set < 4; set++ {
		for way := 0; way < 2; way++ {
			c.Access(arch.PAddr(set*64+way*256), false)
		}
	}
	if c.Stats().Hits != before+8 {
		t.Fatalf("hits = %d, want %d", c.Stats().Hits, before+8)
	}
}

// TestPropertyVsReferenceModel checks hit/miss decisions against an
// exhaustive reference: a map from set to the list of resident tags
// maintained with exact LRU.
func TestPropertyVsReferenceModel(t *testing.T) {
	const sets, ways = 4, 2
	c := New(Config{Name: "ref", SizeBytes: sets * ways * arch.CacheLineSize, Ways: ways, HitLatency: 1}, &Memory{Latency: 10})
	type refSet struct{ tags []uint64 } // MRU first
	ref := make([]refSet, sets)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50000; i++ {
		line := uint64(rng.Intn(64))
		addr := arch.PAddr(line * arch.CacheLineSize)
		set := int(line) % sets
		tag := line / sets
		// Reference decision.
		hit := false
		rs := &ref[set]
		for j, tg := range rs.tags {
			if tg == tag {
				hit = true
				rs.tags = append(rs.tags[:j], rs.tags[j+1:]...)
				break
			}
		}
		rs.tags = append([]uint64{tag}, rs.tags...)
		if len(rs.tags) > ways {
			rs.tags = rs.tags[:ways]
		}
		lat := c.Access(addr, false)
		gotHit := lat == 1
		if gotHit != hit {
			t.Fatalf("op %d addr %d: model hit=%v, reference hit=%v", i, addr, gotHit, hit)
		}
	}
}
