package mmu

import (
	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/pagetable"
)

// Nested (two-dimensional) page walks: the virtualization scenario the
// paper uses as motivation ("this number worsens to 50% in virtualized
// environments", §1; "CoLT will become even more critical as ...
// virtualization become[s] prevalent", §8). A guest-virtual address is
// translated by the guest page table, but every guest-table entry is
// itself a guest-physical address that must be translated through the
// host (nested) page table before it can be fetched: a 4-level guest
// walk costs up to 4 host walks plus the guest accesses (the 24-access
// worst case of x86 nested paging). TLBs in this regime cache
// guest-virtual to host-physical translations, so every eliminated miss
// saves a whole 2D walk — which is why coalescing pays off more under
// virtualization.

// NestedWalkerStats counts 2D-walk activity.
type NestedWalkerStats struct {
	Walks        uint64
	Failed       uint64
	TotalLatency uint64
	// HostWalks counts nested translations of guest table entries.
	HostWalks uint64
}

// NestedWalker translates guest VPNs through a guest page table whose
// guest-physical frames are mapped by a host page table. It implements
// the same Walker contract as the flat walker, so any TLB hierarchy
// (baseline or CoLT) runs unmodified on top.
type NestedWalker struct {
	guest *pagetable.Table
	host  *pagetable.Table
	mem   *cache.Hierarchy
	// pwc caches guest upper-level entries by host-physical address,
	// as a real combined nested-TLB/page-walk cache does.
	pwc *WalkCache
	// hostPWC caches host upper-level entries used while translating
	// guest table pointers.
	hostPWC *WalkCache
	stats   NestedWalkerStats
}

// NewNestedWalker builds a 2D walker. Either walk cache may be nil to
// disable it.
func NewNestedWalker(guest, host *pagetable.Table, mem *cache.Hierarchy, pwc, hostPWC *WalkCache) *NestedWalker {
	if pwc == nil {
		pwc = NewWalkCache(0)
	}
	if hostPWC == nil {
		hostPWC = NewWalkCache(0)
	}
	return &NestedWalker{guest: guest, host: host, mem: mem, pwc: pwc, hostPWC: hostPWC}
}

// Stats returns a snapshot of the counters.
func (w *NestedWalker) Stats() NestedWalkerStats { return w.stats }

// Flush empties both walk caches (shootdown).
func (w *NestedWalker) Flush() {
	w.pwc.Flush()
	w.hostPWC.Flush()
}

// hostTranslate walks the host table for a guest-physical address,
// charging each level's fetch (with hostPWC acceleration) and returning
// the host-physical address.
func (w *NestedWalker) hostTranslate(gpa arch.PAddr) (arch.PAddr, int, bool) {
	gvpn := arch.VPN(gpa >> arch.PageShift)
	res := w.host.Walk(gvpn)
	latency := 0
	for i := 0; i < res.Depth; i++ {
		addr := res.Levels[i]
		leaf := i == res.Depth-1
		if !leaf && w.hostPWC.Lookup(addr) {
			latency += walkCacheHitLatency
			continue
		}
		latency += w.mem.WalkAccess(addr)
		if !leaf {
			w.hostPWC.Insert(addr)
		}
	}
	w.stats.HostWalks++
	if !res.Found {
		return 0, latency, false
	}
	hpfn := res.PTE.PFN
	if res.PTE.Huge {
		hpfn += arch.PFN(gvpn % arch.PagesPerHuge)
	}
	return hpfn.Addr() + paOffset(gpa), latency, true
}

// Offset helper for PAddr (page-internal bits).
func paOffset(pa arch.PAddr) arch.PAddr { return pa & (arch.PageSize - 1) }

// Walk performs the 2D translation of a guest VPN. The returned
// WalkInfo's PTE maps guest-virtual to HOST-physical frames, and the
// coalescing line contains guest-VPN to host-PFN translations, so CoLT
// coalesces exactly when both the guest and the host allocations are
// contiguous.
func (w *NestedWalker) Walk(vpn arch.VPN) WalkInfo {
	w.stats.Walks++
	res := w.guest.Walk(vpn)
	var info WalkInfo
	for i := 0; i < res.Depth; i++ {
		// Each guest table entry sits at a guest-physical address that
		// must be nested-translated before the fetch.
		haddr, hostLat, ok := w.hostTranslate(res.Levels[i])
		info.Latency += hostLat
		if !ok {
			w.stats.Failed++
			w.stats.TotalLatency += uint64(info.Latency)
			return info
		}
		leaf := i == res.Depth-1
		if !leaf && w.pwc.Lookup(haddr) {
			info.Latency += walkCacheHitLatency
			continue
		}
		info.Latency += w.mem.WalkAccess(haddr)
		if !leaf {
			w.pwc.Insert(haddr)
		}
	}
	if !res.Found {
		w.stats.Failed++
		w.stats.TotalLatency += uint64(info.Latency)
		return info
	}

	// Compose the leaf: guest PFN -> host PFN.
	gpfn := res.PTE.PFN
	if res.PTE.Huge {
		gpfn += arch.PFN(vpn % arch.PagesPerHuge)
	}
	hpfn, _, ok := w.host.Resolve(arch.VPN(gpfn))
	if !ok {
		w.stats.Failed++
		w.stats.TotalLatency += uint64(info.Latency)
		return info
	}
	info.Found = true
	info.PTE = arch.PTE{PFN: hpfn, Attr: res.PTE.Attr}
	w.stats.TotalLatency += uint64(info.Latency)

	// Build the coalescing line: the guest leaf line composed through
	// the host mapping. The host lookups here model the coalescing
	// logic reading the already-fetched line plus host translations it
	// has just exercised, so they charge no extra latency.
	//
	// Guest superpages get a synthesized line: a 4 KB-backed host
	// flattens the guest's 2 MB mapping into base-page composed
	// entries, so the 2 MB of guest contiguity becomes enormous
	// composed contiguity that only coalescing can recover — the
	// reason the paper expects CoLT to matter even more under
	// virtualization.
	if res.PTE.Huge {
		base := vpn &^ (arch.PTEsPerLine - 1)
		hugeStart := vpn &^ (arch.PagesPerHuge - 1)
		var composed [arch.PTEsPerLine]arch.Translation
		for i := range composed {
			v := base + arch.VPN(i)
			composed[i].VPN = v
			if v < hugeStart || v >= hugeStart+arch.PagesPerHuge {
				continue
			}
			gpfn := res.PTE.PFN + arch.PFN(v-hugeStart)
			h, _, ok := w.host.Resolve(arch.VPN(gpfn))
			if !ok {
				continue
			}
			composed[i].PTE = arch.PTE{PFN: h, Attr: res.PTE.Attr}
		}
		info.Line = composed
		info.HasLine = true
		// The guest PMD entry's line stands in for the leaf line.
		info.LineAddr = res.Levels[res.Depth-1] &^ (arch.CacheLineSize - 1)
		return info
	}
	if line, lineAddr, ok := w.guest.Line(vpn); ok {
		composed := line
		for i := range composed {
			pte := composed[i].PTE
			if !pte.Present() || pte.Huge {
				composed[i].PTE = arch.PTE{}
				continue
			}
			h, _, ok := w.host.Resolve(arch.VPN(pte.PFN))
			if !ok {
				composed[i].PTE = arch.PTE{}
				continue
			}
			composed[i].PTE = arch.PTE{PFN: h, Attr: pte.Attr}
		}
		info.Line = composed
		info.HasLine = true
		info.LineAddr = lineAddr
	}
	return info
}
