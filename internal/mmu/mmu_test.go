package mmu

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/pagetable"
)

type seqFrames struct{ next arch.PFN }

func (s *seqFrames) AllocFrame() (arch.PFN, error) {
	s.next++
	return s.next, nil
}
func (s *seqFrames) FreeFrame(arch.PFN) {}

func walkWorld(t *testing.T) (*pagetable.Table, *Walker) {
	t.Helper()
	tbl, err := pagetable.New(&seqFrames{next: 100})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(tbl, cache.DefaultHierarchy(), NewWalkCache(DefaultWalkCacheEntries))
	return tbl, w
}

func pte(pfn arch.PFN) arch.PTE {
	return arch.PTE{PFN: pfn, Attr: arch.AttrPresent | arch.AttrUser}
}

func TestWalkCacheLRU(t *testing.T) {
	c := NewWalkCache(2)
	c.Insert(10)
	c.Insert(20)
	if !c.Lookup(10) || !c.Lookup(20) {
		t.Fatal("inserted entries missing")
	}
	c.Insert(30) // evicts 10 (LRU)
	if c.Lookup(10) {
		t.Fatal("LRU entry survived")
	}
	if !c.Lookup(30) || !c.Lookup(20) {
		t.Fatal("wrong victim")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Flush()
	if c.Len() != 0 || c.Lookup(20) {
		t.Fatal("Flush incomplete")
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Fatal("counters not recorded")
	}
}

func TestWalkCacheZeroCapacity(t *testing.T) {
	c := NewWalkCache(0)
	c.Insert(5)
	if c.Lookup(5) {
		t.Fatal("zero-capacity cache cached something")
	}
}

func TestWalkCacheReinsertWhenFull(t *testing.T) {
	c := NewWalkCache(2)
	c.Insert(1)
	c.Insert(2)
	c.Insert(2) // re-insert must not evict
	if !c.Lookup(1) {
		t.Fatal("re-insert evicted a live entry")
	}
}

func TestWalkBasic(t *testing.T) {
	tbl, w := walkWorld(t)
	if err := tbl.Map(0x123456, pte(42)); err != nil {
		t.Fatal(err)
	}
	info := w.Walk(0x123456)
	if !info.Found || info.PTE.PFN != 42 {
		t.Fatalf("walk = %+v", info)
	}
	if !info.HasLine {
		t.Fatal("base-page walk returned no line")
	}
	if info.Latency <= 0 {
		t.Fatal("no latency charged")
	}
	if w.Stats().Walks != 1 || w.Stats().LevelFetches != pagetable.Levels {
		t.Fatalf("stats = %+v", w.Stats())
	}
}

func TestWalkUsesPWCForUpperLevels(t *testing.T) {
	tbl, w := walkWorld(t)
	if err := tbl.Map(1000, pte(1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(1001, pte(2)); err != nil {
		t.Fatal(err)
	}
	first := w.Walk(1000)
	second := w.Walk(1001) // same upper levels: 3 PWC hits + leaf fetch
	if second.Latency >= first.Latency {
		t.Fatalf("PWC did not accelerate: %d then %d", first.Latency, second.Latency)
	}
	if w.Stats().PWCHits != 3 {
		t.Fatalf("PWCHits = %d, want 3", w.Stats().PWCHits)
	}
}

func TestWalkHugeNoLine(t *testing.T) {
	tbl, w := walkWorld(t)
	h := arch.PTE{PFN: 512, Attr: arch.AttrPresent, Huge: true}
	if err := tbl.MapHuge(arch.PagesPerHuge*2, h); err != nil {
		t.Fatal(err)
	}
	info := w.Walk(arch.PagesPerHuge*2 + 7)
	if !info.Found || !info.PTE.Huge {
		t.Fatalf("huge walk = %+v", info)
	}
	if info.HasLine {
		t.Fatal("huge walk returned a coalescing line")
	}
}

func TestWalkMiss(t *testing.T) {
	_, w := walkWorld(t)
	info := w.Walk(555)
	if info.Found || info.HasLine {
		t.Fatalf("hole walk = %+v", info)
	}
	if w.Stats().Failed != 1 {
		t.Fatal("Failed not counted")
	}
}

func TestWalkLineContents(t *testing.T) {
	tbl, w := walkWorld(t)
	for i := 0; i < 8; i++ {
		if err := tbl.Map(arch.VPN(64+i), pte(arch.PFN(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	info := w.Walk(67)
	if !info.HasLine {
		t.Fatal("no line")
	}
	for i, tr := range info.Line {
		if tr.VPN != arch.VPN(64+i) || tr.PTE.PFN != arch.PFN(500+i) {
			t.Fatalf("line[%d] = %+v", i, tr)
		}
	}
	if uint64(info.LineAddr)%arch.CacheLineSize != 0 {
		t.Fatal("line address misaligned")
	}
}

func TestSetTableFlushesPWC(t *testing.T) {
	tbl, w := walkWorld(t)
	if err := tbl.Map(77, pte(1)); err != nil {
		t.Fatal(err)
	}
	w.Walk(77)
	tbl2, err := pagetable.New(&seqFrames{next: 900})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Map(77, pte(2)); err != nil {
		t.Fatal(err)
	}
	w.SetTable(tbl2)
	if w.Table() != tbl2 {
		t.Fatal("table not switched")
	}
	info := w.Walk(77)
	if info.PTE.PFN != 2 {
		t.Fatalf("stale translation after context switch: %+v", info)
	}
	// All four levels must have been fetched fresh (PWC flushed).
	if w.Stats().PWCHits != 0 {
		t.Fatalf("PWCHits = %d after flush", w.Stats().PWCHits)
	}
}
