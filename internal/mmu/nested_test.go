package mmu

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/pagetable"
)

// nestedWorld builds a guest table over guest-physical frames and a
// host table mapping those guest frames to host frames with the given
// host-side contiguity offset.
func nestedWorld(t *testing.T, pages int, hostContig bool) (*pagetable.Table, *pagetable.Table, *NestedWalker) {
	t.Helper()
	guest, err := pagetable.New(&seqFrames{next: 100})
	if err != nil {
		t.Fatal(err)
	}
	host, err := pagetable.New(&seqFrames{next: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	for i := 0; i < pages; i++ {
		// Guest VPN i -> guest PFN 5000+i (contiguous in the guest).
		if err := guest.Map(arch.VPN(i), arch.PTE{PFN: arch.PFN(5000 + i), Attr: attr}); err != nil {
			t.Fatal(err)
		}
		// Host maps guest frame 5000+i.
		hpfn := arch.PFN(9000 + i)
		if !hostContig {
			hpfn = arch.PFN(9000 + i*7) // break host-side contiguity
		}
		if err := host.Map(arch.VPN(5000+i), arch.PTE{PFN: hpfn, Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	// The guest's own table frames must also be host-mapped: table
	// frames start at 100 (seqFrames); map a generous window identity+x.
	for f := arch.VPN(100); f < 200; f++ {
		if err := host.Map(f, arch.PTE{PFN: arch.PFN(f) + 50000, Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	w := NewNestedWalker(guest, host, cache.DefaultHierarchy(),
		NewWalkCache(DefaultWalkCacheEntries), NewWalkCache(DefaultWalkCacheEntries))
	return guest, host, w
}

func TestNestedWalkComposes(t *testing.T) {
	_, _, w := nestedWorld(t, 16, true)
	info := w.Walk(3)
	if !info.Found {
		t.Fatal("nested walk failed")
	}
	if info.PTE.PFN != 9003 {
		t.Fatalf("composed PFN = %d, want 9003", info.PTE.PFN)
	}
	if w.Stats().HostWalks == 0 {
		t.Fatal("no host walks charged")
	}
}

func TestNestedWalkCostExceedsFlat(t *testing.T) {
	guest, _, w := nestedWorld(t, 16, true)
	flat := NewWalker(guest, cache.DefaultHierarchy(), NewWalkCache(DefaultWalkCacheEntries))
	nested := w.Walk(5)
	plain := flat.Walk(5)
	if nested.Latency <= plain.Latency {
		t.Fatalf("2D walk (%d cycles) not costlier than flat (%d)", nested.Latency, plain.Latency)
	}
}

func TestNestedLineComposition(t *testing.T) {
	_, _, w := nestedWorld(t, 16, true)
	info := w.Walk(8)
	if !info.HasLine {
		t.Fatal("no coalescing line")
	}
	// Host-contiguous mapping: the composed line is coalescible.
	for i := 1; i < len(info.Line); i++ {
		if !info.Line[i-1].ContiguousWith(info.Line[i]) {
			t.Fatalf("composed line not contiguous at %d: %+v %+v", i, info.Line[i-1], info.Line[i])
		}
	}
	// Broken host contiguity: the composed line must not pretend to be
	// contiguous.
	_, _, w2 := nestedWorld(t, 16, false)
	info2 := w2.Walk(8)
	if !info2.HasLine {
		t.Fatal("no line on scattered host")
	}
	for i := 1; i < len(info2.Line); i++ {
		if info2.Line[i-1].ContiguousWith(info2.Line[i]) {
			t.Fatal("scattered host mapping reported as contiguous")
		}
	}
}

func TestNestedWalkUnmappedGuest(t *testing.T) {
	_, _, w := nestedWorld(t, 8, true)
	info := w.Walk(5000)
	if info.Found {
		t.Fatal("hole translated")
	}
	if w.Stats().Failed == 0 {
		t.Fatal("failure not counted")
	}
}

func TestNestedWalkUnmappedHost(t *testing.T) {
	guest, _, w := nestedWorld(t, 8, true)
	// Add a guest mapping whose guest frame the host does not map.
	attr := arch.AttrPresent | arch.AttrUser
	if err := guest.Map(700, arch.PTE{PFN: 777777, Attr: attr}); err != nil {
		t.Fatal(err)
	}
	info := w.Walk(700)
	if info.Found {
		t.Fatal("guest frame without host mapping translated")
	}
}

func TestNestedFlush(t *testing.T) {
	_, _, w := nestedWorld(t, 8, true)
	first := w.Walk(1)
	second := w.Walk(2) // warm caches: cheaper
	if second.Latency >= first.Latency {
		t.Fatalf("walk caches ineffective: %d then %d", first.Latency, second.Latency)
	}
	w.Flush()
	third := w.Walk(3)
	if third.Latency <= second.Latency {
		t.Fatalf("flush had no effect: %d then %d", second.Latency, third.Latency)
	}
}

func TestNestedGuestHugeSynthesizedLine(t *testing.T) {
	guest, err := pagetable.New(&seqFrames{next: 100})
	if err != nil {
		t.Fatal(err)
	}
	host, err := pagetable.New(&seqFrames{next: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	// Guest superpage at guest VPN 512, guest PFN 1024.
	if err := guest.MapHuge(arch.PagesPerHuge, arch.PTE{PFN: 1024, Attr: attr, Huge: true}); err != nil {
		t.Fatal(err)
	}
	// Host backs guest frames 1024..1536 contiguously, and the guest
	// table frames too.
	for g := arch.VPN(1024); g < 1024+arch.PagesPerHuge; g++ {
		if err := host.Map(g, arch.PTE{PFN: arch.PFN(g) + 70000, Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	for f := arch.VPN(100); f < 120; f++ {
		if err := host.Map(f, arch.PTE{PFN: arch.PFN(f) + 50000, Attr: attr}); err != nil {
			t.Fatal(err)
		}
	}
	w := NewNestedWalker(guest, host, cache.DefaultHierarchy(), nil, nil)
	info := w.Walk(arch.PagesPerHuge + 17)
	if !info.Found || info.PTE.Huge {
		t.Fatalf("composed leaf = %+v", info.PTE)
	}
	if info.PTE.PFN != 1024+17+70000 {
		t.Fatalf("composed PFN = %d", info.PTE.PFN)
	}
	if !info.HasLine {
		t.Fatal("guest-huge walk produced no synthesized line")
	}
	for i := 1; i < len(info.Line); i++ {
		if !info.Line[i-1].ContiguousWith(info.Line[i]) {
			t.Fatalf("synthesized line not contiguous at %d", i)
		}
	}
	// A walk at the superpage's first line: entries before the huge
	// start must be absent.
	info2 := w.Walk(arch.PagesPerHuge)
	if !info2.HasLine {
		t.Fatal("no line at superpage start")
	}
	if !info2.Line[0].PTE.Present() {
		t.Fatal("first in-superpage slot absent")
	}
}
