// Package mmu models the hardware page-table walker: on a last-level
// TLB miss it walks the four-level radix page table, fetching PTEs
// through the cache hierarchy (entering at the LLC, per the paper), and
// accelerates upper levels with a small MMU page-walk cache — the
// paper's "more realistic TLB hierarchy with 22-entry MMU caches"
// (§5.2.1). The walker also hands back the eight translations sharing
// the leaf PTE's cache line, which is the raw material for CoLT's
// coalescing logic.
package mmu

import (
	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/pagetable"
)

// DefaultWalkCacheEntries matches the paper's 22-entry MMU cache.
const DefaultWalkCacheEntries = 22

// walkCacheHitLatency is the cycles to read one cached upper-level
// entry instead of fetching it from the memory hierarchy.
const walkCacheHitLatency = 1

// WalkCache is a small fully-associative LRU cache over upper-level
// page-table entries, keyed by the entry's physical address (which is
// uniquely determined by the virtual-address prefix it translates).
type WalkCache struct {
	capacity int
	tick     uint64
	entries  map[arch.PAddr]uint64 // addr -> last-use tick
	hits     uint64
	misses   uint64
}

// NewWalkCache creates a cache holding up to capacity entries; a
// capacity of 0 disables caching (every level goes to memory).
func NewWalkCache(capacity int) *WalkCache {
	return &WalkCache{capacity: capacity, entries: make(map[arch.PAddr]uint64)}
}

// Lookup reports whether addr is cached, updating recency.
func (w *WalkCache) Lookup(addr arch.PAddr) bool {
	w.tick++
	if _, ok := w.entries[addr]; ok {
		w.entries[addr] = w.tick
		w.hits++
		return true
	}
	w.misses++
	return false
}

// Insert caches addr, evicting the LRU entry if full.
func (w *WalkCache) Insert(addr arch.PAddr) {
	if w.capacity == 0 {
		return
	}
	w.tick++
	if len(w.entries) >= w.capacity {
		if _, ok := w.entries[addr]; !ok {
			var victim arch.PAddr
			oldest := ^uint64(0)
			for a, t := range w.entries {
				if t < oldest {
					oldest, victim = t, a
				}
			}
			delete(w.entries, victim)
		}
	}
	w.entries[addr] = w.tick
}

// Flush empties the cache (TLB shootdown side effect).
func (w *WalkCache) Flush() { clear(w.entries) }

// Hits and Misses report lookup counters.
func (w *WalkCache) Hits() uint64   { return w.hits }
func (w *WalkCache) Misses() uint64 { return w.misses }

// Len returns the number of resident entries.
func (w *WalkCache) Len() int { return len(w.entries) }

// WalkInfo is the result of one page walk.
type WalkInfo struct {
	Found bool
	PTE   arch.PTE
	// Latency is the serialized walk cost in cycles.
	Latency int
	// Line holds the eight translations of the leaf PTE's cache line
	// when HasLine is true (base-page walks only).
	Line    [arch.PTEsPerLine]arch.Translation
	HasLine bool
	// LineAddr is the physical address of that cache line.
	LineAddr arch.PAddr
}

// WalkerStats counts walker activity.
type WalkerStats struct {
	Walks        uint64
	Failed       uint64
	TotalLatency uint64
	LevelFetches uint64 // PTE fetches that went to the memory hierarchy
	PWCHits      uint64 // upper-level fetches short-circuited by the MMU cache
}

// Walker performs page walks for one process's page table.
type Walker struct {
	table *pagetable.Table
	mem   *cache.Hierarchy
	pwc   *WalkCache
	stats WalkerStats
}

// NewWalker builds a walker over table using mem for PTE fetches. pwc
// may be nil to disable the MMU cache.
func NewWalker(table *pagetable.Table, mem *cache.Hierarchy, pwc *WalkCache) *Walker {
	if pwc == nil {
		pwc = NewWalkCache(0)
	}
	return &Walker{table: table, mem: mem, pwc: pwc}
}

// SetTable points the walker at a different process's page table
// (context switch).
func (w *Walker) SetTable(table *pagetable.Table) {
	w.table = table
	w.pwc.Flush()
}

// Table returns the current page table.
func (w *Walker) Table() *pagetable.Table { return w.table }

// Stats returns a snapshot of walker counters.
func (w *Walker) Stats() WalkerStats { return w.stats }

// Flush empties the MMU walk cache (shootdown).
func (w *Walker) Flush() { w.pwc.Flush() }

// Walk translates vpn, charging the serialized latency of each level's
// PTE fetch. Upper (non-leaf) levels may hit the MMU walk cache; the
// leaf fetch always goes to the memory hierarchy, and its cache line of
// eight PTEs is returned for coalescing.
func (w *Walker) Walk(vpn arch.VPN) WalkInfo {
	w.stats.Walks++
	res := w.table.Walk(vpn)
	info := WalkInfo{Found: res.Found, PTE: res.PTE}
	for i := 0; i < res.Depth; i++ {
		addr := res.Levels[i]
		leaf := i == res.Depth-1
		if !leaf && w.pwc.Lookup(addr) {
			info.Latency += walkCacheHitLatency
			w.stats.PWCHits++
			continue
		}
		info.Latency += w.mem.WalkAccess(addr)
		w.stats.LevelFetches++
		if !leaf {
			w.pwc.Insert(addr)
		}
	}
	if !res.Found {
		w.stats.Failed++
	} else if !res.PTE.Huge {
		if line, lineAddr, ok := w.table.Line(vpn); ok {
			info.Line = line
			info.HasLine = true
			info.LineAddr = lineAddr
		}
	}
	w.stats.TotalLatency += uint64(info.Latency)
	return info
}
