// Package mmu models the hardware page-table walker: on a last-level
// TLB miss it walks the four-level radix page table, fetching PTEs
// through the cache hierarchy (entering at the LLC, per the paper), and
// accelerates upper levels with a small MMU page-walk cache — the
// paper's "more realistic TLB hierarchy with 22-entry MMU caches"
// (§5.2.1). The walker also hands back the eight translations sharing
// the leaf PTE's cache line, which is the raw material for CoLT's
// coalescing logic.
package mmu

import (
	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/pagetable"
)

// DefaultWalkCacheEntries matches the paper's 22-entry MMU cache.
const DefaultWalkCacheEntries = 22

// walkCacheHitLatency is the cycles to read one cached upper-level
// entry instead of fetching it from the memory hierarchy.
const walkCacheHitLatency = 1

// WalkCache is a small fully-associative LRU cache over upper-level
// page-table entries, keyed by the entry's physical address (which is
// uniquely determined by the virtual-address prefix it translates).
// At its paper-sized 22 entries a linear scan over a contiguous
// address lane beats a hash map on every operation, so the entries
// live in parallel addr/recency slices rather than a map. Replacement
// is exact LRU: ticks are unique, so the minimum-tick victim is the
// same entry the map-based implementation evicted.
type WalkCache struct {
	capacity int
	tick     uint64
	addrs    []arch.PAddr // resident entry addresses, first n valid
	ticks    []uint64     // last-use tick per entry
	n        int
	hits     uint64
	misses   uint64
}

// NewWalkCache creates a cache holding up to capacity entries; a
// capacity of 0 disables caching (every level goes to memory).
func NewWalkCache(capacity int) *WalkCache {
	return &WalkCache{
		capacity: capacity,
		addrs:    make([]arch.PAddr, capacity),
		ticks:    make([]uint64, capacity),
	}
}

// Lookup reports whether addr is cached, updating recency.
func (w *WalkCache) Lookup(addr arch.PAddr) bool {
	w.tick++
	addrs := w.addrs[:w.n]
	for i := range addrs {
		if addrs[i] == addr {
			w.ticks[i] = w.tick
			w.hits++
			return true
		}
	}
	w.misses++
	return false
}

// Insert caches addr, evicting the LRU entry if full.
func (w *WalkCache) Insert(addr arch.PAddr) {
	if w.capacity == 0 {
		return
	}
	w.tick++
	for i := 0; i < w.n; i++ {
		if w.addrs[i] == addr {
			w.ticks[i] = w.tick
			return
		}
	}
	w.place(addr)
}

// insertMissed caches addr that the caller has just probed and missed
// (the walker inserts only after a failed Lookup of the same address),
// skipping Insert's residency-refresh scan. Tick accounting matches
// Insert exactly.
func (w *WalkCache) insertMissed(addr arch.PAddr) {
	if w.capacity == 0 {
		return
	}
	w.tick++
	w.place(addr)
}

// place stores addr in a free slot or over the exact-LRU victim.
func (w *WalkCache) place(addr arch.PAddr) {
	if w.n < w.capacity {
		w.addrs[w.n] = addr
		w.ticks[w.n] = w.tick
		w.n++
		return
	}
	victim := 0
	for i := 1; i < w.n; i++ {
		if w.ticks[i] < w.ticks[victim] {
			victim = i
		}
	}
	w.addrs[victim] = addr
	w.ticks[victim] = w.tick
}

// Flush empties the cache (TLB shootdown side effect).
func (w *WalkCache) Flush() { w.n = 0 }

// Hits and Misses report lookup counters.
func (w *WalkCache) Hits() uint64   { return w.hits }
func (w *WalkCache) Misses() uint64 { return w.misses }

// Len returns the number of resident entries.
func (w *WalkCache) Len() int { return w.n }

// WalkInfo is the result of one page walk.
type WalkInfo struct {
	Found bool
	PTE   arch.PTE
	// Latency is the serialized walk cost in cycles.
	Latency int
	// Line holds the eight translations of the leaf PTE's cache line
	// when HasLine is true (base-page walks only).
	Line    [arch.PTEsPerLine]arch.Translation
	HasLine bool
	// LineAddr is the physical address of that cache line.
	LineAddr arch.PAddr
}

// WalkerStats counts walker activity.
type WalkerStats struct {
	Walks        uint64
	Failed       uint64
	TotalLatency uint64
	LevelFetches uint64 // PTE fetches that went to the memory hierarchy
	PWCHits      uint64 // upper-level fetches short-circuited by the MMU cache
}

// Walker performs page walks for one process's page table.
type Walker struct {
	table *pagetable.Table
	mem   *cache.Hierarchy
	pwc   *WalkCache
	stats WalkerStats
}

// NewWalker builds a walker over table using mem for PTE fetches. pwc
// may be nil to disable the MMU cache.
func NewWalker(table *pagetable.Table, mem *cache.Hierarchy, pwc *WalkCache) *Walker {
	if pwc == nil {
		pwc = NewWalkCache(0)
	}
	return &Walker{table: table, mem: mem, pwc: pwc}
}

// SetTable points the walker at a different process's page table
// (context switch).
func (w *Walker) SetTable(table *pagetable.Table) {
	w.table = table
	w.pwc.Flush()
}

// Table returns the current page table.
func (w *Walker) Table() *pagetable.Table { return w.table }

// Stats returns a snapshot of walker counters.
func (w *Walker) Stats() WalkerStats { return w.stats }

// Flush empties the MMU walk cache (shootdown).
func (w *Walker) Flush() { w.pwc.Flush() }

// Walk translates vpn, charging the serialized latency of each level's
// PTE fetch. Upper (non-leaf) levels may hit the MMU walk cache; the
// leaf fetch always goes to the memory hierarchy, and its cache line of
// eight PTEs is returned for coalescing.
func (w *Walker) Walk(vpn arch.VPN) WalkInfo {
	var info WalkInfo
	w.WalkInto(vpn, &info)
	return info
}

// WalkInto is Walk with a caller-provided result buffer: WalkInfo
// embeds the leaf PTE's whole cache line, so returning it by value
// costs two ~200-byte copies per page walk. The simulator's hot path
// reuses one buffer per hierarchy instead.
func (w *Walker) WalkInto(vpn arch.VPN, info *WalkInfo) {
	w.stats.Walks++
	res := w.table.WalkRef(vpn)
	// Reset the scalar fields individually: a whole-struct assignment
	// would zero the ~200-byte Line array per walk, which is pure waste
	// since Line is only read when HasLine reports a fresh fill below.
	info.Found = res.Found
	info.PTE = res.PTE
	info.Latency = 0
	info.HasLine = false
	info.LineAddr = 0
	for i := 0; i < res.Depth; i++ {
		addr := res.Levels[i]
		leaf := i == res.Depth-1
		if !leaf && w.pwc.Lookup(addr) {
			info.Latency += walkCacheHitLatency
			w.stats.PWCHits++
			continue
		}
		info.Latency += w.mem.WalkAccess(addr)
		w.stats.LevelFetches++
		if !leaf {
			w.pwc.insertMissed(addr)
		}
	}
	if !res.Found {
		w.stats.Failed++
	} else if !res.PTE.Huge {
		if lineAddr, ok := w.table.LineFromWalk(res, vpn, &info.Line); ok {
			info.HasLine = true
			info.LineAddr = lineAddr
		}
	}
	w.stats.TotalLatency += uint64(info.Latency)
}
