// Package fault is the simulator's deterministic fault-injection
// plane. Experiments thread named injection sites into the hot paths
// (buddy allocation, compaction migration, THP allocation, trace
// decode); a Plane decides per site, from its own rng.Stream, whether
// each crossing of a site fails. Because every draw comes from a
// stream derived purely from (plane seed, site name), the injected
// fault sequence is a function of the job's seed alone — never of
// scheduling, worker count, or which other sites exist — so
// `-parallel 1` and `-parallel N` inject identical faults.
//
// A nil *Plane is valid and injects nothing; hot paths may call its
// methods unconditionally without drawing random numbers or
// allocating.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colt/internal/rng"
	"colt/internal/telemetry"
)

// Site names one fault-injection point in the simulator.
type Site string

// The injection sites threaded into the simulator's hot paths.
const (
	// SiteBuddyAlloc fails buddy block allocations, simulating memory
	// pressure. Jobs see it as an allocation error (fatal unless the
	// caller degrades gracefully).
	SiteBuddyAlloc Site = "buddy-alloc"
	// SiteCompactMigrate fails individual compaction page migrations;
	// the compactor treats the page as unmovable and rolls back.
	SiteCompactMigrate Site = "compact-migrate"
	// SiteTHPAlloc fails huge-page allocations; the THP layer falls
	// back to base pages (graceful, counted in THPStats.HugeFails).
	SiteTHPAlloc Site = "thp-alloc"
	// SiteTraceCorrupt corrupts one reference-stream record, aborting
	// the benchmark job with an injected error.
	SiteTraceCorrupt Site = "trace-corrupt"
)

// Sites lists every valid injection site, in display order.
func Sites() []Site {
	return []Site{SiteBuddyAlloc, SiteCompactMigrate, SiteTHPAlloc, SiteTraceCorrupt}
}

// siteNames renders the valid set for error messages.
func siteNames() string {
	sites := Sites()
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}

// Spec is a per-site injection rate configuration. The zero value
// injects nothing.
type Spec struct {
	// Rates maps each site to its per-crossing failure probability in
	// [0, 1]. Sites absent from the map never fail.
	Rates map[Site]float64
}

// ParseSpec parses a -faults flag value: comma-separated site=rate
// pairs, where site is one of Sites() or "all" (every site at once)
// and rate is a probability in [0, 1]. The empty string parses to the
// zero Spec (no injection).
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, nil
	}
	spec := Spec{Rates: map[Site]float64{}}
	for _, raw := range strings.Split(s, ",") {
		pair := strings.TrimSpace(raw)
		if pair == "" {
			return Spec{}, fmt.Errorf("fault: empty entry in spec %q (valid sites: %s, all)", s, siteNames())
		}
		name, rateStr, ok := strings.Cut(pair, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: entry %q is not site=rate (valid sites: %s, all)", pair, siteNames())
		}
		name = strings.TrimSpace(name)
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: rate in %q is not a number: %v", pair, err)
		}
		if rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("fault: rate %g in %q outside [0, 1]", rate, pair)
		}
		if name == "all" {
			for _, site := range Sites() {
				spec.Rates[site] = rate
			}
			continue
		}
		site := Site(name)
		valid := false
		for _, s := range Sites() {
			if s == site {
				valid = true
				break
			}
		}
		if !valid {
			return Spec{}, fmt.Errorf("fault: unknown site %q (valid sites: %s, all)", name, siteNames())
		}
		spec.Rates[site] = rate
	}
	return spec, nil
}

// Enabled reports whether any site has a non-zero rate.
func (s Spec) Enabled() bool {
	for _, r := range s.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// Rate returns the configured rate for site (0 if unset).
func (s Spec) Rate(site Site) float64 { return s.Rates[site] }

// String renders the spec canonically (sites sorted by name), so it
// can be embedded in deterministic reports. The zero spec renders "".
func (s Spec) String() string {
	var sites []Site
	for site, r := range s.Rates {
		if r > 0 {
			sites = append(sites, site)
		}
	}
	if len(sites) == 0 {
		return ""
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	parts := make([]string, len(sites))
	for i, site := range sites {
		parts[i] = string(site) + "=" + strconv.FormatFloat(s.Rates[site], 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// Error is the error injected at a site. Seq is the (deterministic)
// per-site crossing count at which the fault fired, so failure
// messages are stable across runs and parallel widths.
type Error struct {
	Site Site
	Seq  uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure (crossing %d)", e.Site, e.Seq)
}

// IsInjected reports whether err was produced by the fault plane
// (possibly wrapped).
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// siteState is one site's generator, rate, and counters.
type siteState struct {
	rng       *rng.RNG
	rate      float64
	crossings uint64
	injected  uint64
}

// Plane decides, per site, whether each crossing fails. A nil Plane
// injects nothing and its methods are safe to call. A Plane is NOT
// safe for concurrent use: each job builds its own from its own seed.
type Plane struct {
	sites map[Site]*siteState
	// tracer receives EvFaultInject events (nil when disabled); the
	// event's arg is the firing site's index in Sites() order.
	tracer *telemetry.Tracer
}

// SetTracer attaches an event tracer to the plane: every injected
// fault emits EvFaultInject on the OS thread. Safe on a nil plane.
func (p *Plane) SetTracer(tr *telemetry.Tracer) {
	if p != nil {
		p.tracer = tr
	}
}

// siteIndex returns site's position in Sites() order (for compact
// event payloads), or -1 for unknown sites.
func siteIndex(site Site) int {
	for i, s := range Sites() {
		if s == site {
			return i
		}
	}
	return -1
}

// NewPlane builds a plane for spec, deriving one rng stream per
// configured site from seed. Returns nil when spec injects nothing,
// so the disabled case stays allocation- and draw-free.
func NewPlane(spec Spec, seed uint64) *Plane {
	if !spec.Enabled() {
		return nil
	}
	root := rng.New(seed)
	p := &Plane{sites: make(map[Site]*siteState, len(spec.Rates))}
	for site, rate := range spec.Rates {
		if rate <= 0 {
			continue
		}
		p.sites[site] = &siteState{rng: root.Stream(string(site)), rate: rate}
	}
	return p
}

// Fire reports whether this crossing of site fails. Sites with no
// configured rate never draw, so enabling one site cannot perturb
// another's sequence.
func (p *Plane) Fire(site Site) bool {
	if p == nil {
		return false
	}
	st := p.sites[site]
	if st == nil {
		return false
	}
	st.crossings++
	if !st.rng.Bool(st.rate) {
		return false
	}
	st.injected++
	p.tracer.Emit(telemetry.EvFaultInject, 0, telemetry.LevelNone, uint64(siteIndex(site)), st.injected)
	return true
}

// Fail returns an injected *Error if this crossing of site fails, and
// nil otherwise.
func (p *Plane) Fail(site Site) error {
	if !p.Fire(site) {
		return nil
	}
	return &Error{Site: site, Seq: p.sites[site].crossings}
}

// Injected returns how many faults have fired at site.
func (p *Plane) Injected(site Site) uint64 {
	if p == nil || p.sites[site] == nil {
		return 0
	}
	return p.sites[site].injected
}

// Crossings returns how many times site has been evaluated.
func (p *Plane) Crossings(site Site) uint64 {
	if p == nil || p.sites[site] == nil {
		return 0
	}
	return p.sites[site].crossings
}
