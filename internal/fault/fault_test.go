package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	t.Run("empty is disabled", func(t *testing.T) {
		spec, err := ParseSpec("")
		if err != nil {
			t.Fatalf("ParseSpec(\"\"): %v", err)
		}
		if spec.Enabled() {
			t.Error("empty spec reports Enabled")
		}
		if spec.String() != "" {
			t.Errorf("empty spec String() = %q, want \"\"", spec.String())
		}
	})
	t.Run("per-site rates with whitespace", func(t *testing.T) {
		spec, err := ParseSpec(" buddy-alloc = 0.5 , trace-corrupt=0.25 ")
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		if got := spec.Rate(SiteBuddyAlloc); got != 0.5 {
			t.Errorf("buddy-alloc rate = %g, want 0.5", got)
		}
		if got := spec.Rate(SiteTraceCorrupt); got != 0.25 {
			t.Errorf("trace-corrupt rate = %g, want 0.25", got)
		}
		if got := spec.Rate(SiteTHPAlloc); got != 0 {
			t.Errorf("unset site rate = %g, want 0", got)
		}
	})
	t.Run("all expands to every site", func(t *testing.T) {
		spec, err := ParseSpec("all=0.1")
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		for _, site := range Sites() {
			if spec.Rate(site) != 0.1 {
				t.Errorf("site %s rate = %g, want 0.1", site, spec.Rate(site))
			}
		}
	})
	t.Run("unknown site names the valid set", func(t *testing.T) {
		_, err := ParseSpec("buddy-aloc=0.1")
		if err == nil {
			t.Fatal("unknown site accepted")
		}
		msg := err.Error()
		if !strings.Contains(msg, `"buddy-aloc"`) {
			t.Errorf("error %q does not quote the bad site", msg)
		}
		for _, site := range Sites() {
			if !strings.Contains(msg, string(site)) {
				t.Errorf("error %q does not list valid site %q", msg, site)
			}
		}
	})
	t.Run("bad rates rejected", func(t *testing.T) {
		for _, in := range []string{"buddy-alloc=x", "buddy-alloc=-0.1", "buddy-alloc=1.5", "buddy-alloc", "buddy-alloc=0.1,,thp-alloc=0.2"} {
			if _, err := ParseSpec(in); err == nil {
				t.Errorf("ParseSpec(%q) accepted a bad entry", in)
			}
		}
	})
	t.Run("String is canonical and round-trips", func(t *testing.T) {
		spec, err := ParseSpec("trace-corrupt=0.25,buddy-alloc=0.5")
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		want := "buddy-alloc=0.5,trace-corrupt=0.25"
		if got := spec.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parsing String(): %v", err)
		}
		if again.String() != want {
			t.Errorf("round-trip String() = %q, want %q", again.String(), want)
		}
	})
}

func TestNilPlaneInjectsNothing(t *testing.T) {
	var p *Plane
	if p.Fire(SiteBuddyAlloc) {
		t.Error("nil plane fired")
	}
	if err := p.Fail(SiteTraceCorrupt); err != nil {
		t.Errorf("nil plane Fail = %v", err)
	}
	if p.Injected(SiteTHPAlloc) != 0 || p.Crossings(SiteTHPAlloc) != 0 {
		t.Error("nil plane has counters")
	}
	if NewPlane(Spec{}, 1) != nil {
		t.Error("NewPlane with zero spec is not nil")
	}
	if NewPlane(Spec{Rates: map[Site]float64{SiteBuddyAlloc: 0}}, 1) != nil {
		t.Error("NewPlane with all-zero rates is not nil")
	}
}

func TestPlaneDeterministicSequence(t *testing.T) {
	spec := Spec{Rates: map[Site]float64{SiteBuddyAlloc: 0.3, SiteTraceCorrupt: 0.3}}
	draw := func(p *Plane, site Site, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			if p.Fire(site) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	// Same seed, same per-site sequences, regardless of interleaving
	// with the other site.
	a := NewPlane(spec, 42)
	seqA := draw(a, SiteBuddyAlloc, 200)
	b := NewPlane(spec, 42)
	var seqB strings.Builder
	for i := 0; i < 200; i++ {
		b.Fire(SiteTraceCorrupt) // interleave draws on another site
		if b.Fire(SiteBuddyAlloc) {
			seqB.WriteByte('1')
		} else {
			seqB.WriteByte('0')
		}
	}
	if seqA != seqB.String() {
		t.Error("buddy-alloc sequence perturbed by interleaved trace-corrupt draws")
	}
	if !strings.Contains(seqA, "1") || !strings.Contains(seqA, "0") {
		t.Errorf("sequence %q is degenerate at rate 0.3", seqA[:32])
	}
	// Different seeds give different sequences.
	c := NewPlane(spec, 43)
	if draw(c, SiteBuddyAlloc, 200) == seqA {
		t.Error("seed 43 reproduced seed 42's sequence")
	}
}

func TestPlaneRateOne(t *testing.T) {
	p := NewPlane(Spec{Rates: map[Site]float64{SiteCompactMigrate: 1}}, 7)
	for i := 1; i <= 10; i++ {
		err := p.Fail(SiteCompactMigrate)
		if err == nil {
			t.Fatalf("crossing %d did not fail at rate 1", i)
		}
		if !IsInjected(err) {
			t.Fatalf("IsInjected(%v) = false", err)
		}
		if !IsInjected(fmt.Errorf("wrapping: %w", err)) {
			t.Fatal("IsInjected fails through wrapping")
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Site != SiteCompactMigrate || fe.Seq != uint64(i) {
			t.Fatalf("error %v, want site %s seq %d", err, SiteCompactMigrate, i)
		}
	}
	if p.Injected(SiteCompactMigrate) != 10 || p.Crossings(SiteCompactMigrate) != 10 {
		t.Errorf("counters injected=%d crossings=%d, want 10/10",
			p.Injected(SiteCompactMigrate), p.Crossings(SiteCompactMigrate))
	}
	if IsInjected(errors.New("ordinary")) {
		t.Error("IsInjected true for an ordinary error")
	}
}

func TestUnconfiguredSiteNeverDraws(t *testing.T) {
	// A site with no rate must not consume randomness, so enabling a
	// second site can't perturb the first site's sequence.
	one := NewPlane(Spec{Rates: map[Site]float64{SiteBuddyAlloc: 0.5}}, 99)
	both := NewPlane(Spec{Rates: map[Site]float64{SiteBuddyAlloc: 0.5, SiteTHPAlloc: 0.5}}, 99)
	for i := 0; i < 100; i++ {
		both.Fire(SiteTHPAlloc)
		if one.Fire(SiteBuddyAlloc) != both.Fire(SiteBuddyAlloc) {
			t.Fatalf("crossing %d: buddy-alloc sequence differs when thp-alloc is enabled", i)
		}
	}
	if one.Crossings(SiteTHPAlloc) != 0 {
		t.Error("unconfigured site recorded crossings")
	}
}
