package mm

import (
	"testing"

	"colt/internal/arch"
)

func newTHPWorld(t *testing.T, frames int, enabled bool) (*PhysMem, *Buddy, *THP) {
	t.Helper()
	pm := NewPhysMem(frames)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	return pm, b, NewTHP(pm, b, c, enabled)
}

func TestTHPDisabled(t *testing.T) {
	_, _, thp := newTHPWorld(t, 2048, false)
	if _, ok := thp.TryAllocHuge(1, 0); ok {
		t.Fatal("disabled THP allocated a superpage")
	}
	if thp.Enabled() {
		t.Fatal("Enabled() wrong")
	}
}

func TestTHPAllocAlignedAndUnmovable(t *testing.T) {
	pm, b, thp := newTHPWorld(t, 2048, true)
	pfn, ok := thp.TryAllocHuge(7, 512)
	if !ok {
		t.Fatal("huge alloc failed on empty memory")
	}
	if uint64(pfn)%arch.PagesPerHuge != 0 {
		t.Fatalf("huge block at %d not 2MB-aligned", pfn)
	}
	if b.FreePages() != 2048-512 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	for i := 0; i < arch.PagesPerHuge; i++ {
		f := pm.Frame(pfn + arch.PFN(i))
		if !f.Allocated || f.Movable {
			t.Fatalf("huge frame %d: %+v", i, *f)
		}
		if f.Owner.PID != 7 || f.Owner.VPN != arch.VPN(512+i) {
			t.Fatalf("huge frame %d owner: %+v", i, f.Owner)
		}
	}
	if thp.LiveHuges() != 1 || thp.Stats().HugeAllocs != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestTHPUnalignedPanics(t *testing.T) {
	_, _, thp := newTHPWorld(t, 2048, true)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned TryAllocHuge did not panic")
		}
	}()
	thp.TryAllocHuge(1, 100)
}

func TestTHPFallbackWhenFragmented(t *testing.T) {
	pm, b, _ := newTHPWorld(t, 1024, true)
	// Pin unmovable pages across memory so compaction cannot help.
	if _, err := b.AllocRange(1024); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
		pm.SetOwner(arch.PFN(i+1), PageOwner{PID: KernelPID}, false)
	}
	c := NewCompactor(pm, b, nil, CompactionNormal)
	thp := NewTHP(pm, b, c, true)
	if _, ok := thp.TryAllocHuge(1, 0); ok {
		t.Fatal("huge alloc should fail: memory pinned-fragmented")
	}
	if thp.Stats().HugeFails != 1 {
		t.Fatalf("HugeFails = %d", thp.Stats().HugeFails)
	}
	if thp.Stats().CompactForTHP != 1 {
		t.Fatalf("CompactForTHP = %d (direct compaction should have been tried)", thp.Stats().CompactForTHP)
	}
}

func TestTHPCompactionRescuesHugeAlloc(t *testing.T) {
	pm, b, _ := newTHPWorld(t, 2048, true)
	// Fragment with *movable* pages: compaction can fix this.
	if _, err := b.AllocRange(2048); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2048; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
		pm.SetOwner(arch.PFN(i+1), PageOwner{PID: 2, VPN: arch.VPN(i)}, true)
	}
	c := NewCompactor(pm, b, nil, CompactionNormal)
	thp := NewTHP(pm, b, c, true)
	if _, ok := thp.TryAllocHuge(1, 0); !ok {
		t.Fatal("compaction should have rescued the huge allocation")
	}
}

func TestTHPPressureSplit(t *testing.T) {
	pm, b, thp := newTHPWorld(t, 2048, true)
	var allocated []arch.PFN
	for v := arch.VPN(0); ; v += arch.PagesPerHuge {
		pfn, ok := thp.TryAllocHuge(1, v)
		if !ok {
			break
		}
		allocated = append(allocated, pfn)
	}
	if len(allocated) < 3 {
		t.Fatalf("only %d superpages fit", len(allocated))
	}
	// Memory is now nearly exhausted -> under pressure.
	var splitCalls []HugeAlloc
	n := thp.MaybeSplit(func(h HugeAlloc) bool { splitCalls = append(splitCalls, h); return true })
	if n == 0 {
		t.Fatal("pressure split did not run")
	}
	if len(splitCalls) != n {
		t.Fatalf("splitter called %d times for %d splits", len(splitCalls), n)
	}
	// Oldest superpage must split first.
	if splitCalls[0].BasePFN != allocated[0] {
		t.Fatalf("split order: got %d first, want %d", splitCalls[0].BasePFN, allocated[0])
	}
	// Split frames become movable but stay allocated (residual
	// contiguity preserved).
	f := pm.Frame(splitCalls[0].BasePFN)
	if !f.Allocated || !f.Movable {
		t.Fatalf("split frame state: %+v", *f)
	}
	if b.FreePages() >= 2048 {
		t.Fatal("splitting must not free memory")
	}
}

func TestTHPNoSplitWithoutPressure(t *testing.T) {
	_, _, thp := newTHPWorld(t, 4096, true)
	if _, ok := thp.TryAllocHuge(1, 0); !ok {
		t.Fatal("alloc failed")
	}
	if n := thp.MaybeSplit(nil); n != 0 {
		t.Fatalf("split %d superpages with ample free memory", n)
	}
}

func TestTHPRelease(t *testing.T) {
	_, _, thp := newTHPWorld(t, 2048, true)
	if _, ok := thp.TryAllocHuge(3, 1024); !ok {
		t.Fatal("alloc failed")
	}
	if !thp.Release(3, 1024) {
		t.Fatal("Release failed")
	}
	if thp.Release(3, 1024) {
		t.Fatal("double Release succeeded")
	}
	if thp.LiveHuges() != 0 {
		t.Fatal("record not removed")
	}
}

func TestTHPSplitAll(t *testing.T) {
	pm, _, thp := newTHPWorld(t, 4096, true)
	pfn1, ok1 := thp.TryAllocHuge(1, 0)
	_, ok2 := thp.TryAllocHuge(1, 512)
	if !ok1 || !ok2 {
		t.Fatal("allocs failed")
	}
	if n := thp.SplitAll(nil); n != 2 {
		t.Fatalf("SplitAll = %d", n)
	}
	if thp.LiveHuges() != 0 {
		t.Fatal("huges remain")
	}
	if !pm.Frame(pfn1).Movable {
		t.Fatal("frames not movable after SplitAll")
	}
}
