package mm

import (
	"colt/internal/arch"
	"colt/internal/telemetry"
)

// HugeAlloc records one live transparent hugepage: 512 contiguous,
// 2 MB-aligned frames backing 512 contiguous virtual pages of a process.
type HugeAlloc struct {
	PID     int
	BaseVPN arch.VPN
	BasePFN arch.PFN
}

// THPStats counts transparent-hugepage activity.
type THPStats struct {
	HugeAllocs    uint64
	HugeFails     uint64 // attempts that fell back to base pages
	Splits        uint64 // pressure-driven demotions to base pages
	CompactForTHP uint64 // direct compactions triggered by a THP fault
}

// THP models Linux Transparent Hugepage Support (paper §3.2.3): the
// allocator opportunistically backs large anonymous regions with
// naturally-aligned 2 MB blocks, leaning on the compaction daemon to
// create them, and a pressure daemon later splits superpages back into
// base pages — which is precisely how THP "leaves large amounts of
// smaller, residual contiguity" that CoLT exploits.
type THP struct {
	phys    *PhysMem
	buddy   *Buddy
	compact *Compactor
	enabled bool

	// live superpages in allocation order; pressure splits the oldest
	// first (an LRU approximation of Linux's shrinker behaviour).
	huges []HugeAlloc
	stats THPStats

	// failHuge, when set, may veto huge allocations before any state
	// changes (the fault-injection plane's hook); vetoed attempts fall
	// back to base pages like any other huge-allocation failure.
	failHuge func() error

	// tracer receives THP promote/demote events (nil when disabled).
	tracer *telemetry.Tracer
}

// splitWatermark: when free memory drops below this fraction of total,
// MaybeSplit demotes superpages (models min_free_kbytes pressure).
const splitWatermark = 0.08

// NewTHP creates the hugepage manager. compact may be nil to disable
// THP-driven direct compaction.
func NewTHP(pm *PhysMem, b *Buddy, compact *Compactor, enabled bool) *THP {
	return &THP{phys: pm, buddy: b, compact: compact, enabled: enabled}
}

// Enabled reports whether THP is on (the paper's "THS on/off" knob).
func (t *THP) Enabled() bool { return t.enabled }

// Stats returns a snapshot of the counters.
func (t *THP) Stats() THPStats { return t.stats }

// SetTracer attaches an event tracer: superpage allocations emit
// EvTHPPromote and pressure splits emit EvTHPDemote on the OS thread.
// nil detaches.
func (t *THP) SetTracer(tr *telemetry.Tracer) { t.tracer = tr }

// SetHugeFaultHook installs fn to run at the top of every TryAllocHuge
// call: a non-nil return fails the attempt (counted in HugeFails) and
// the caller falls back to base pages — the graceful THP degradation
// path. nil uninstalls.
func (t *THP) SetHugeFaultHook(fn func() error) { t.failHuge = fn }

// LiveHuges returns the number of currently-mapped superpages.
func (t *THP) LiveHuges() int { return len(t.huges) }

// TryAllocHuge attempts to back the 512 virtual pages at baseVPN (which
// must be 2 MB aligned) with one aligned 2 MB physical block. On
// fragmentation it invokes direct compaction once (as a THP page fault
// does when defrag is enabled) and retries. Returns the base PFN and
// true on success; on failure the caller falls back to the buddy
// allocator for base pages.
func (t *THP) TryAllocHuge(pid int, baseVPN arch.VPN) (arch.PFN, bool) {
	if !t.enabled {
		return 0, false
	}
	if baseVPN%arch.PagesPerHuge != 0 {
		panic("mm: TryAllocHuge with unaligned base VPN")
	}
	if t.failHuge != nil {
		if err := t.failHuge(); err != nil {
			t.stats.HugeFails++
			return 0, false
		}
	}
	pfn, err := t.buddy.AllocBlock(HugeOrder)
	if err == ErrFragmented && t.compact != nil {
		if t.compact.OnAllocFailure(HugeOrder) {
			t.stats.CompactForTHP++
			pfn, err = t.buddy.AllocBlock(HugeOrder)
		}
	}
	if err != nil {
		t.stats.HugeFails++
		return 0, false
	}
	for i := 0; i < arch.PagesPerHuge; i++ {
		// Frames backing a live superpage are unmovable: migrating one
		// base frame would break the superpage's physical contiguity.
		t.phys.SetOwner(pfn+arch.PFN(i), PageOwner{PID: pid, VPN: baseVPN + arch.VPN(i)}, false)
	}
	t.huges = append(t.huges, HugeAlloc{PID: pid, BaseVPN: baseVPN, BasePFN: pfn})
	t.stats.HugeAllocs++
	t.tracer.Emit(telemetry.EvTHPPromote, 0, telemetry.LevelNone, uint64(baseVPN), uint64(pfn))
	return pfn, true
}

// Release drops the manager's record of the superpage at baseVPN for
// pid, e.g. because the process unmapped it. The caller frees the
// frames. Returns true if a record was removed.
func (t *THP) Release(pid int, baseVPN arch.VPN) bool {
	for i, h := range t.huges {
		if h.PID == pid && h.BaseVPN == baseVPN {
			t.huges = append(t.huges[:i], t.huges[i+1:]...)
			return true
		}
	}
	return false
}

// MaybeSplit runs the pressure daemon: while free memory is below the
// watermark and superpages remain, demote the oldest superpage to 512
// base-page mappings. The splitter callback rewrites the owning page
// table (replacing the huge PTE with 512 base PTEs that keep the same
// physical frames, i.e. full residual contiguity) and returns false if
// it could not (splitting needs a table frame and may itself hit OOM),
// in which case the superpage is kept and the daemon stops. Frames
// become movable again after a split. Returns the number of superpages
// split.
func (t *THP) MaybeSplit(splitter func(HugeAlloc) bool) int {
	split := 0
	for len(t.huges) > 0 && t.underPressure() {
		h := t.huges[0]
		if splitter != nil && !splitter(h) {
			break
		}
		// The splitter's page-table rewrite may already have released
		// the record; drop it if it is still ours.
		t.Release(h.PID, h.BaseVPN)
		for i := 0; i < arch.PagesPerHuge; i++ {
			t.phys.Frame(h.BasePFN + arch.PFN(i)).Movable = true
		}
		t.stats.Splits++
		t.tracer.Emit(telemetry.EvTHPDemote, 0, telemetry.LevelNone, uint64(h.BaseVPN), uint64(h.BasePFN))
		split++
	}
	return split
}

// SplitAll unconditionally demotes every live superpage; used when THP
// is administratively disabled mid-run and by failure-injection tests.
// Superpages whose split fails are kept.
func (t *THP) SplitAll(splitter func(HugeAlloc) bool) int {
	pending := append([]HugeAlloc(nil), t.huges...)
	n := 0
	for _, h := range pending {
		if splitter != nil && !splitter(h) {
			continue // kept; still recorded in t.huges
		}
		t.Release(h.PID, h.BaseVPN)
		for i := 0; i < arch.PagesPerHuge; i++ {
			t.phys.Frame(h.BasePFN + arch.PFN(i)).Movable = true
		}
		t.stats.Splits++
		t.tracer.Emit(telemetry.EvTHPDemote, 0, telemetry.LevelNone, uint64(h.BaseVPN), uint64(h.BasePFN))
		n++
	}
	return n
}

func (t *THP) underPressure() bool {
	total := uint64(t.phys.NumFrames())
	return float64(t.buddy.FreePages()) < splitWatermark*float64(total)
}
