package mm

import (
	"colt/internal/arch"
	"colt/internal/telemetry"
)

// Migrator is implemented by the virtual-memory layer: when the
// compaction daemon moves a frame, the owning process's page table must
// be rehomed to the new frame (and any TLB entries shot down). A
// non-nil error means the rehoming did not happen; the compactor rolls
// the migration back and leaves the source frame in place.
type Migrator interface {
	MigratePage(owner PageOwner, from, to arch.PFN) error
}

// CompactionMode selects how eagerly the compaction daemon runs,
// modeling the Linux `defrag` flag the paper toggles (§5.1.1).
type CompactionMode int

const (
	// CompactionNormal triggers direct compaction on every fragmented
	// allocation failure and background compaction when the
	// fragmentation index crosses a threshold.
	CompactionNormal CompactionMode = iota
	// CompactionLow models `defrag` disabled: no background runs and
	// direct compaction only once every lowModePeriod fragmented
	// failures ("greatly reduces the number of times the daemon runs").
	CompactionLow
)

// String implements fmt.Stringer.
func (m CompactionMode) String() string {
	if m == CompactionLow {
		return "low"
	}
	return "normal"
}

const (
	// backgroundFragThreshold is the fragmentation index above which a
	// background pass compacts (Linux uses 0.5 via
	// sysctl_extfrag_threshold=500).
	backgroundFragThreshold = 0.5
	// lowModePeriod: in CompactionLow mode only every Nth fragmented
	// failure triggers a direct compaction.
	lowModePeriod = 100
	// exitCheckInterval: how many migrations between checks whether the
	// target order has been satisfied.
	exitCheckInterval = 16
	// maxMigratePerRun bounds one compaction pass's migration work,
	// modeling Linux's deferred/partial compaction: a single run does a
	// bounded amount of work rather than defragmenting the whole zone.
	maxMigratePerRun = 4096
	// maxDirectMigrate bounds a direct (allocation-failure) compaction:
	// a faulting allocation cannot afford a full background pass.
	maxDirectMigrate = 1024
	// maxDeferShift: after an unsuccessful direct compaction, up to
	// 2^maxDeferShift subsequent failures skip compaction (Linux's
	// defer_compaction backoff).
	maxDeferShift = 6
	// backgroundCooldown: only every Nth eligible background tick
	// actually compacts (kcompactd does not run continuously).
	backgroundCooldown = 8
)

// CompactStats counts daemon activity.
type CompactStats struct {
	Runs       uint64
	Migrated   uint64
	Aborted    uint64 // runs that ended with scanners meeting
	Background uint64
	Direct     uint64
	Skipped    uint64 // direct triggers suppressed by CompactionLow
	// MigrateFails counts individual page migrations that failed (the
	// rehoming callback errored, the target vanished, or the fault
	// plane vetoed) and were rolled back.
	MigrateFails uint64
}

// Compactor is the memory-compaction daemon of paper §3.2.2 / Figure 3:
// a migrate scanner walks up from the bottom of physical memory
// collecting movable allocated pages while a free scanner walks down
// from the top claiming free target frames; movable pages migrate to the
// top, and the buddy merge of the vacated bottom frames yields large
// contiguous free blocks.
type Compactor struct {
	phys     *PhysMem
	buddy    *Buddy
	migrator Migrator
	mode     CompactionMode

	fragFailures uint64
	bgTicks      uint64
	deferShift   uint
	deferCount   uint64
	bgBackoff    uint
	bgSkip       uint64
	stats        CompactStats

	// failMigrate, when set, may veto individual page migrations
	// before any state changes (the fault-injection plane's hook).
	failMigrate func() error

	// tracer receives migration events (nil when disabled).
	tracer *telemetry.Tracer
}

// NewCompactor wires a compaction daemon to the allocator. migrator may
// be nil when no page tables exist (tests).
func NewCompactor(pm *PhysMem, b *Buddy, migrator Migrator, mode CompactionMode) *Compactor {
	return &Compactor{phys: pm, buddy: b, migrator: migrator, mode: mode}
}

// Mode returns the configured compaction mode.
func (c *Compactor) Mode() CompactionMode { return c.mode }

// Stats returns a snapshot of daemon counters.
func (c *Compactor) Stats() CompactStats { return c.stats }

// SetTracer attaches an event tracer: each successful page migration
// emits EvCompactMigrate on the OS thread. nil detaches.
func (c *Compactor) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// SetMigrateFaultHook installs fn to run before each individual page
// migration: a non-nil return fails that migration (counted in
// MigrateFails) and the page is treated as unmovable for the rest of
// the pass. nil uninstalls. The daemon stays fault-agnostic — callers
// wire this to the fault plane.
func (c *Compactor) SetMigrateFaultHook(fn func() error) { c.failMigrate = fn }

// OnAllocFailure is called by the VM layer when an allocation fails with
// ErrFragmented. It decides, per the mode and the deferral backoff,
// whether to run direct compaction targeting the failed order. Returns
// true if a compaction run happened (the caller should retry its
// allocation).
func (c *Compactor) OnAllocFailure(order int) bool {
	c.fragFailures++
	if c.mode == CompactionLow && c.fragFailures%lowModePeriod != 0 {
		c.stats.Skipped++
		return false
	}
	// Deferral: if recent direct compactions failed to produce the
	// order, back off exponentially before trying again.
	if c.deferCount < (uint64(1)<<c.deferShift)-1 {
		c.deferCount++
		c.stats.Skipped++
		return false
	}
	c.deferCount = 0
	c.stats.Direct++
	c.compact(order, maxDirectMigrate)
	if c.orderSatisfied(order) {
		c.deferShift = 0
	} else if c.deferShift < maxDeferShift {
		c.deferShift++
	}
	return true
}

// BackgroundTick gives the daemon a chance to run proactively, as
// kcompactd does. In CompactionNormal mode it compacts when the
// fragmentation index at HugeOrder exceeds the threshold. Returns true
// if it ran.
func (c *Compactor) BackgroundTick() bool {
	if c.mode != CompactionNormal {
		return false
	}
	if c.buddy.FragmentationIndex(HugeOrder) <= backgroundFragThreshold {
		return false
	}
	c.bgTicks++
	if c.bgTicks%backgroundCooldown != 1 {
		return false
	}
	// No-progress backoff: when compaction repeatedly fails to build a
	// huge-order block (pinned pages in the way), kcompactd defers
	// exponentially instead of burning cycles re-scanning.
	if c.bgSkip > 0 {
		c.bgSkip--
		c.stats.Skipped++
		return false
	}
	c.stats.Background++
	c.Compact(HugeOrder)
	if c.orderSatisfied(HugeOrder) {
		c.bgBackoff = 0
	} else {
		if c.bgBackoff < maxDeferShift {
			c.bgBackoff++
		}
		c.bgSkip = uint64(1)<<c.bgBackoff - 1
	}
	return true
}

// Compact runs one compaction pass. targetOrder >= 0 lets the pass stop
// early once a free block of that order exists; pass a negative order to
// compact until the scanners meet. A pass migrates at most
// maxMigratePerRun pages (partial compaction). Returns the number of
// migrated pages.
func (c *Compactor) Compact(targetOrder int) int {
	return c.compact(targetOrder, maxMigratePerRun)
}

// maxMigrateRun caps how many pages migrate as one contiguous unit.
const maxMigrateRun = 64

func (c *Compactor) compact(targetOrder, budget int) int {
	c.stats.Runs++
	migScan := arch.PFN(0)
	freeScan := arch.PFN(c.phys.NumFrames() - 1)
	moved := 0
	for migScan < freeScan && moved < budget {
		if targetOrder >= 0 && moved%exitCheckInterval == 0 && c.orderSatisfied(targetOrder) {
			return moved
		}
		f := c.phys.Frame(migScan)
		if !f.Allocated || !f.Movable {
			migScan++
			continue
		}
		// Isolate a run of movable pages and migrate it to an equally
		// long free run near the top, ascending within the run: page
		// migration preserves the virtual-to-physical contiguity of
		// what it moves.
		k := 1
		for k < maxMigrateRun && moved+k < budget && migScan+arch.PFN(k) < freeScan {
			nf := c.phys.Frame(migScan + arch.PFN(k))
			if !nf.Allocated || !nf.Movable {
				break
			}
			k++
		}
		target, hint, ok := c.findFreeRun(migScan+arch.PFN(k), freeScan, k)
		if !ok && k > 1 {
			k = 1
			target, hint, ok = c.findFreeRun(migScan+1, freeScan, 1)
		}
		if !ok {
			break
		}
		freeScan = hint
		failedAt := arch.PFN(0)
		failed := false
		for i := 0; i < k; i++ {
			from := migScan + arch.PFN(i)
			to := target + arch.PFN(i)
			if !c.migratePage(from, to) {
				// The page stays where it is, metadata intact; treat it
				// as unmovable and resume scanning past it. Target
				// frames beyond i were never claimed and remain free.
				failedAt, failed = from, true
				break
			}
			moved++
			c.stats.Migrated++
		}
		if failed {
			migScan = failedAt + 1
			continue
		}
		migScan += arch.PFN(k)
	}
	c.stats.Aborted++
	return moved
}

// migratePage moves one allocated movable frame from 'from' to the
// free frame 'to', claiming the target, copying ownership, rehoming
// the owner's page table, and freeing the source. Any failure —
// injected veto, vanished target, or rehoming error — is rolled back
// so frame metadata stays consistent: the source keeps its owner and
// the target returns to (or stays on) the free lists. Returns whether
// the page moved.
func (c *Compactor) migratePage(from, to arch.PFN) bool {
	if c.failMigrate != nil {
		if err := c.failMigrate(); err != nil {
			c.stats.MigrateFails++
			return false
		}
	}
	if !c.buddy.AllocSpecific(to) {
		c.stats.MigrateFails++
		return false
	}
	owner := c.phys.Frame(from).Owner
	c.phys.SetOwner(to, owner, true)
	if c.migrator != nil {
		if err := c.migrator.MigratePage(owner, from, to); err != nil {
			// The page table still references 'from'; release the
			// claimed target (FreeRange clears its owner metadata).
			c.buddy.FreeRange(to, 1)
			c.stats.MigrateFails++
			return false
		}
	}
	c.buddy.FreeRange(from, 1)
	c.tracer.Emit(telemetry.EvCompactMigrate, 0, telemetry.LevelNone, uint64(from), uint64(to))
	return true
}

// findFreeRun searches downward from hi for k consecutive free frames
// strictly above lo, returning the run base and a new downward-scan
// hint.
func (c *Compactor) findFreeRun(lo, hi arch.PFN, k int) (base, hint arch.PFN, ok bool) {
	run := 0
	for p := hi; p > lo; p-- {
		if !c.phys.Frame(p).Allocated {
			run++
		} else {
			run = 0
		}
		if run == k {
			hint = p - 1
			if p == 0 {
				hint = 0
			}
			return p, hint, true
		}
	}
	return 0, lo, false
}

func (c *Compactor) orderSatisfied(order int) bool {
	for k := order; k < MaxOrder; k++ {
		if c.buddy.FreeBlocksOfOrder(k) > 0 {
			return true
		}
	}
	return false
}
