package mm

import (
	"errors"
	"testing"

	"colt/internal/arch"
)

// recordingMigrator remembers every migration so tests can validate
// rehoming callbacks. failAfter > 0 makes every migration past that
// count fail, exercising the rollback path.
type recordingMigrator struct {
	moves []struct {
		owner    PageOwner
		from, to arch.PFN
	}
	failAfter int
}

func (m *recordingMigrator) MigratePage(owner PageOwner, from, to arch.PFN) error {
	if m.failAfter > 0 && len(m.moves) >= m.failAfter {
		return errors.New("rehoming refused")
	}
	m.moves = append(m.moves, struct {
		owner    PageOwner
		from, to arch.PFN
	}{owner, from, to})
	return nil
}

// fragment sets up a checkerboard: all frames allocated, every even
// frame freed, odd frames movable user pages.
func fragment(t *testing.T, pm *PhysMem, b *Buddy, movable bool) {
	t.Helper()
	if _, err := b.AllocRange(pm.NumFrames()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pm.NumFrames(); i++ {
		pfn := arch.PFN(i)
		if i%2 == 0 {
			b.FreeRange(pfn, 1)
		} else {
			pm.SetOwner(pfn, PageOwner{PID: 1, VPN: arch.VPN(i)}, movable)
		}
	}
}

func TestCompactDefragments(t *testing.T) {
	pm := NewPhysMem(256)
	b := NewBuddy(pm)
	mig := &recordingMigrator{}
	c := NewCompactor(pm, b, mig, CompactionNormal)
	fragment(t, pm, b, true)

	if _, err := b.AllocBlock(4); err != ErrFragmented {
		t.Fatalf("setup: want fragmented, got %v", err)
	}
	moved := c.Compact(-1)
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	if len(mig.moves) != moved {
		t.Fatalf("migrator called %d times for %d moves", len(mig.moves), moved)
	}
	// Every migration must go upward (movable pages move to the top).
	for _, m := range mig.moves {
		if m.to <= m.from {
			t.Fatalf("migration went down: %d -> %d", m.from, m.to)
		}
		if m.owner.PID != 1 {
			t.Fatalf("owner lost in migration: %+v", m.owner)
		}
	}
	// After full compaction a large contiguous block must exist.
	if _, err := b.AllocBlock(6); err != nil {
		t.Fatalf("still fragmented after compaction: %v", err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Frame metadata must have followed the pages.
	for _, m := range mig.moves {
		f := pm.Frame(m.to)
		if !f.Allocated || f.Owner != m.owner {
			t.Fatalf("target frame %d metadata wrong: %+v", m.to, *f)
		}
	}
}

func TestCompactEarlyExitAtTargetOrder(t *testing.T) {
	pm := NewPhysMem(1024)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	fragment(t, pm, b, true)
	moved := c.Compact(3)
	if moved >= 512 {
		t.Fatalf("compaction did not stop early: moved %d", moved)
	}
	if b.LargestFreeOrder() < 3 {
		t.Fatal("target order not satisfied")
	}
}

func TestCompactSkipsUnmovable(t *testing.T) {
	pm := NewPhysMem(64)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	fragment(t, pm, b, false) // pinned pages
	if moved := c.Compact(-1); moved != 0 {
		t.Fatalf("compaction moved %d pinned pages", moved)
	}
}

func TestOnAllocFailureModes(t *testing.T) {
	pm := NewPhysMem(64)
	b := NewBuddy(pm)
	normal := NewCompactor(pm, b, nil, CompactionNormal)
	if !normal.OnAllocFailure(2) {
		t.Fatal("normal mode must compact on failure")
	}
	if normal.Stats().Direct != 1 {
		t.Fatalf("Direct = %d", normal.Stats().Direct)
	}

	low := NewCompactor(pm, b, nil, CompactionLow)
	ran := 0
	for i := 0; i < lowModePeriod; i++ {
		if low.OnAllocFailure(2) {
			ran++
		}
	}
	if ran != 1 {
		t.Fatalf("low mode ran %d times in %d failures, want 1", ran, lowModePeriod)
	}
	if low.Stats().Skipped != lowModePeriod-1 {
		t.Fatalf("Skipped = %d", low.Stats().Skipped)
	}
}

func TestBackgroundTick(t *testing.T) {
	pm := NewPhysMem(2048)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	if c.BackgroundTick() {
		t.Fatal("background compaction ran on unfragmented memory")
	}
	fragment(t, pm, b, true)
	if !c.BackgroundTick() {
		t.Fatal("background compaction did not run on fragmented memory")
	}
	if c.Stats().Background != 1 {
		t.Fatalf("Background = %d", c.Stats().Background)
	}
	lo := NewCompactor(pm, b, nil, CompactionLow)
	if lo.BackgroundTick() {
		t.Fatal("low mode must never background-compact")
	}
}

func TestCompactionModeString(t *testing.T) {
	if CompactionNormal.String() != "normal" || CompactionLow.String() != "low" {
		t.Fatal("mode strings wrong")
	}
}

func TestCompactPreservesRunOrder(t *testing.T) {
	pm := NewPhysMem(512)
	b := NewBuddy(pm)
	mig := &recordingMigrator{}
	c := NewCompactor(pm, b, mig, CompactionNormal)
	// A movable run of 16 pages at the bottom, free space at the top.
	if _, err := b.AllocRange(32); err != nil {
		t.Fatal(err)
	}
	b.FreeRange(16, 16)
	for i := 0; i < 16; i++ {
		pm.SetOwner(arch.PFN(i), PageOwner{PID: 1, VPN: arch.VPN(1000 + i)}, true)
	}
	if c.Compact(-1) != 16 {
		t.Fatal("run not fully migrated")
	}
	// The run must land ascending and contiguous: VPN order preserved
	// in PFN order.
	for i := 1; i < len(mig.moves); i++ {
		prev, cur := mig.moves[i-1], mig.moves[i]
		if cur.owner.VPN == prev.owner.VPN+1 && cur.to != prev.to+1 {
			t.Fatalf("migration scattered a contiguous run: %+v then %+v", prev, cur)
		}
	}
}

func TestCompactMigrationBudget(t *testing.T) {
	pm := NewPhysMem(1 << 14)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	// More movable pages than one pass's budget.
	if _, err := b.AllocRange(1 << 14); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
		pm.SetOwner(arch.PFN(i+1), PageOwner{PID: 1, VPN: arch.VPN(i)}, true)
	}
	moved := c.Compact(-1)
	if moved > maxMigratePerRun {
		t.Fatalf("pass exceeded budget: %d > %d", moved, maxMigratePerRun)
	}
	// The scanners meet near the middle of the checkerboard, so a pass
	// moves roughly half the movable pages up to the budget.
	if moved < 2000 {
		t.Fatalf("pass moved only %d pages", moved)
	}
	// Repeated passes stay bounded too.
	if again := c.Compact(-1); again > maxMigratePerRun {
		t.Fatalf("second pass exceeded budget: %d", again)
	}
}

func TestDirectCompactionDeferral(t *testing.T) {
	pm := NewPhysMem(1 << 12)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	// Pin everything: compaction can never build the order, so
	// deferral must back off exponentially.
	if _, err := b.AllocRange(1 << 12); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<12; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
		pm.SetOwner(arch.PFN(i+1), PageOwner{PID: KernelPID}, false)
	}
	ran := 0
	for i := 0; i < 200; i++ {
		if c.OnAllocFailure(9) {
			ran++
		}
	}
	if ran >= 20 {
		t.Fatalf("deferral ineffective: %d direct compactions in 200 failures", ran)
	}
	if c.Stats().Skipped == 0 {
		t.Fatal("no skips recorded")
	}
}

func TestBackgroundCompactionBackoff(t *testing.T) {
	pm := NewPhysMem(1 << 12)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	if _, err := b.AllocRange(1 << 12); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<12; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
		pm.SetOwner(arch.PFN(i+1), PageOwner{PID: KernelPID}, false)
	}
	ran := 0
	for i := 0; i < 1000; i++ {
		if c.BackgroundTick() {
			ran++
		}
	}
	// Cooldown alone would allow ~125 runs; the no-progress backoff
	// must cut that dramatically.
	if ran >= 40 {
		t.Fatalf("background backoff ineffective: %d runs in 1000 ticks", ran)
	}
}

// TestCompactNoFreeTarget: when no free frame exists above the migrate
// scanner there is nowhere to move pages to; the pass must stop
// cleanly with nothing migrated and the allocator consistent.
func TestCompactNoFreeTarget(t *testing.T) {
	pm := NewPhysMem(64)
	b := NewBuddy(pm)
	mig := &recordingMigrator{}
	c := NewCompactor(pm, b, mig, CompactionNormal)
	// Fill memory completely: movable pages at the bottom, pinned pages
	// above them, zero free frames anywhere.
	if _, err := b.AllocRange(64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		pm.SetOwner(arch.PFN(i), PageOwner{PID: 1, VPN: arch.VPN(i)}, true)
	}
	for i := 32; i < 64; i++ {
		pm.SetOwner(arch.PFN(i), PageOwner{PID: KernelPID}, false)
	}
	if moved := c.Compact(-1); moved != 0 {
		t.Fatalf("compaction moved %d pages with no free target", moved)
	}
	if len(mig.moves) != 0 {
		t.Fatalf("migrator called %d times with no free target", len(mig.moves))
	}
	if issues := b.Audit(); len(issues) > 0 {
		t.Fatalf("allocator inconsistent: %v", issues)
	}
	// The movable pages must be untouched.
	for i := 0; i < 32; i++ {
		f := pm.Frame(arch.PFN(i))
		if !f.Allocated || f.Owner.PID != 1 || f.Owner.VPN != arch.VPN(i) {
			t.Fatalf("frame %d metadata disturbed: %+v", i, *f)
		}
	}
}

// TestCompactRehomingFailureRollsBack: a failing rehoming callback must
// leave the source frame owned and allocated, return the claimed
// target to the free lists, and keep the allocator consistent — and
// the failure must be counted.
func TestCompactRehomingFailureRollsBack(t *testing.T) {
	pm := NewPhysMem(256)
	b := NewBuddy(pm)
	mig := &recordingMigrator{failAfter: 3}
	c := NewCompactor(pm, b, mig, CompactionNormal)
	fragment(t, pm, b, true)

	freeBefore := b.FreePages()
	moved := c.Compact(-1)
	if moved != 3 {
		t.Fatalf("moved %d pages, want exactly the 3 successful rehomings", moved)
	}
	if got := c.Stats().MigrateFails; got == 0 {
		t.Fatal("MigrateFails not counted")
	}
	if b.FreePages() != freeBefore {
		t.Fatalf("free pages drifted: %d -> %d", freeBefore, b.FreePages())
	}
	if issues := b.Audit(); len(issues) > 0 {
		t.Fatalf("allocator inconsistent after rollback: %v", issues)
	}
	// Every odd frame that did not migrate must still be owned by pid 1
	// with its original VPN (fragment() set Owner.VPN = frame index).
	migrated := map[arch.PFN]bool{}
	for _, m := range mig.moves {
		migrated[m.from] = true
	}
	for i := 1; i < pm.NumFrames(); i += 2 {
		pfn := arch.PFN(i)
		if migrated[pfn] {
			continue
		}
		f := pm.Frame(pfn)
		if !f.Allocated || f.Owner.PID != 1 || f.Owner.VPN != arch.VPN(i) {
			t.Fatalf("unmigrated frame %d metadata wrong after rollback: %+v", i, *f)
		}
	}
}

// TestCompactMigrateFaultHook: an injected veto skips the page without
// touching any state and is counted in MigrateFails.
func TestCompactMigrateFaultHook(t *testing.T) {
	pm := NewPhysMem(256)
	b := NewBuddy(pm)
	mig := &recordingMigrator{}
	c := NewCompactor(pm, b, mig, CompactionNormal)
	fragment(t, pm, b, true)
	vetoed := errors.New("vetoed")
	c.SetMigrateFaultHook(func() error { return vetoed })
	if moved := c.Compact(-1); moved != 0 {
		t.Fatalf("compaction moved %d pages with every migration vetoed", moved)
	}
	if len(mig.moves) != 0 {
		t.Fatal("migrator reached despite veto")
	}
	if c.Stats().MigrateFails == 0 {
		t.Fatal("vetoes not counted")
	}
	if issues := b.Audit(); len(issues) > 0 {
		t.Fatalf("allocator inconsistent: %v", issues)
	}
	// Uninstall: compaction proceeds normally again.
	c.SetMigrateFaultHook(nil)
	if moved := c.Compact(-1); moved == 0 {
		t.Fatal("compaction still stuck after hook removal")
	}
}

func TestFindFreeRun(t *testing.T) {
	pm := NewPhysMem(64)
	b := NewBuddy(pm)
	c := NewCompactor(pm, b, nil, CompactionNormal)
	// Allocate everything, then free [40,44) and [50,51).
	if _, err := b.AllocRange(64); err != nil {
		t.Fatal(err)
	}
	b.FreeRange(40, 4)
	b.FreeRange(50, 1)
	base, hint, ok := c.findFreeRun(0, 63, 4)
	if !ok || base != 40 {
		t.Fatalf("findFreeRun(4) = %d,%v", base, ok)
	}
	if hint != base-1 {
		t.Fatalf("hint = %d", hint)
	}
	if _, _, ok := c.findFreeRun(0, 63, 5); ok {
		t.Fatal("found a 5-run that does not exist")
	}
	base, _, ok = c.findFreeRun(45, 63, 1)
	if !ok || base != 50 {
		t.Fatalf("findFreeRun(1, lo=45) = %d,%v", base, ok)
	}
}
