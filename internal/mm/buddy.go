package mm

import (
	"errors"
	"fmt"
	"math/bits"

	"colt/internal/arch"
)

// MaxOrder is the number of buddy free lists, matching Linux's
// MAX_ORDER=11: blocks of 2^0 .. 2^10 pages (4 KB .. 4 MB).
const MaxOrder = 11

// HugeOrder is the buddy order of one 2 MB superpage (order 9 = 512
// pages). Buddy blocks are naturally aligned, so an order-9 allocation
// satisfies THP's 2 MB alignment requirement for free.
const HugeOrder = arch.HugePageShift - arch.PageShift

// ErrOutOfMemory is returned when an allocation cannot be satisfied at
// all, and ErrFragmented when enough pages are free but no contiguous
// block of the requested order exists. The distinction drives the
// compaction trigger: compacting helps fragmentation, not true OOM.
var (
	ErrOutOfMemory = errors.New("mm: out of physical memory")
	ErrFragmented  = errors.New("mm: no contiguous block of requested order (memory fragmented)")
)

const nilPFN = int64(-1)

// Run is a contiguous range of physical frames.
type Run struct {
	Base arch.PFN
	Len  int
}

// End returns one past the last frame of the run.
func (r Run) End() arch.PFN { return r.Base + arch.PFN(r.Len) }

// BuddyStats counts allocator activity.
type BuddyStats struct {
	Allocs       uint64
	Frees        uint64
	Splits       uint64
	Merges       uint64
	AllocFails   uint64
	FragFails    uint64 // failures with free memory available (fragmentation)
	RangeFallbck uint64 // AllocRange calls that returned multiple runs
}

// Buddy is a Linux-style binary buddy allocator over a PhysMem
// (paper §3.2.1, Figures 1-2). Free blocks of 2^k pages are kept on
// order-k free lists; allocation splits larger blocks downward and
// freeing iteratively merges buddy pairs upward, which is the mechanism
// that regenerates large contiguous runs.
type Buddy struct {
	phys *PhysMem

	// freeHead[k] is the PFN of the first free block of order k, or
	// nilPFN. Blocks are intrusively double-linked through next/prev
	// (indexed by block-head PFN), giving deterministic LIFO reuse.
	freeHead [MaxOrder]int64
	next     []int64
	prev     []int64
	// orderOf[pfn] is k when pfn heads a free block of order k, else -1.
	orderOf []int8

	freeBlocks [MaxOrder]int
	freePages  uint64
	stats      BuddyStats

	// failAlloc, when set, may veto block allocations before any state
	// changes (the fault-injection plane's memory-pressure hook).
	failAlloc func(order int) error
}

// NewBuddy builds an allocator owning every frame of pm, initially all
// free.
func NewBuddy(pm *PhysMem) *Buddy {
	b := &Buddy{
		phys:    pm,
		next:    make([]int64, pm.NumFrames()),
		prev:    make([]int64, pm.NumFrames()),
		orderOf: make([]int8, pm.NumFrames()),
	}
	for k := range b.freeHead {
		b.freeHead[k] = nilPFN
	}
	for i := range b.orderOf {
		b.orderOf[i] = -1
		b.next[i] = nilPFN
		b.prev[i] = nilPFN
	}
	// Seed the free lists by decomposing [0, n) into maximal aligned
	// power-of-two blocks.
	b.insertRange(0, pm.NumFrames())
	return b
}

// insertRange frees the frames [base, base+n) as aligned blocks without
// merge attempts (used only at init; frames must not be on free lists).
func (b *Buddy) insertRange(base arch.PFN, n int) {
	for n > 0 {
		k := maxOrderFor(base, n)
		b.pushFree(base, k)
		base += arch.PFN(1) << k
		n -= 1 << k
	}
}

// maxOrderFor returns the largest order k (< MaxOrder) such that base is
// 2^k-aligned and 2^k <= n.
func maxOrderFor(base arch.PFN, n int) int {
	k := MaxOrder - 1
	if base != 0 {
		if a := bits.TrailingZeros64(uint64(base)); a < k {
			k = a
		}
	}
	for (1 << k) > n {
		k--
	}
	return k
}

func (b *Buddy) pushFree(pfn arch.PFN, order int) {
	p := int64(pfn)
	b.orderOf[p] = int8(order)
	b.next[p] = b.freeHead[order]
	b.prev[p] = nilPFN
	if b.freeHead[order] != nilPFN {
		b.prev[b.freeHead[order]] = p
	}
	b.freeHead[order] = p
	b.freeBlocks[order]++
	b.freePages += 1 << order
}

func (b *Buddy) removeFree(pfn arch.PFN, order int) {
	p := int64(pfn)
	if b.orderOf[p] != int8(order) {
		panic(fmt.Sprintf("mm: removeFree(%d, %d) but block has order %d", pfn, order, b.orderOf[p]))
	}
	if b.prev[p] != nilPFN {
		b.next[b.prev[p]] = b.next[p]
	} else {
		b.freeHead[order] = b.next[p]
	}
	if b.next[p] != nilPFN {
		b.prev[b.next[p]] = b.prev[p]
	}
	b.orderOf[p] = -1
	b.next[p], b.prev[p] = nilPFN, nilPFN
	b.freeBlocks[order]--
	b.freePages -= 1 << order
}

// FreePages returns the number of free frames.
func (b *Buddy) FreePages() uint64 { return b.freePages }

// FreeBlocksOfOrder returns how many free blocks of exactly order k
// exist.
func (b *Buddy) FreeBlocksOfOrder(k int) int { return b.freeBlocks[k] }

// LargestFreeOrder returns the highest order with a free block, or -1
// when memory is exhausted.
func (b *Buddy) LargestFreeOrder() int {
	for k := MaxOrder - 1; k >= 0; k-- {
		if b.freeHead[k] != nilPFN {
			return k
		}
	}
	return -1
}

// Stats returns a snapshot of allocator counters.
func (b *Buddy) Stats() BuddyStats { return b.stats }

// SetAllocFaultHook installs fn to run at the top of every AllocBlock
// call (including those made by AllocRange): a non-nil return fails
// the allocation with that error before any allocator state changes,
// simulating memory pressure. nil uninstalls. The allocator stays
// fault-agnostic — callers wire this to the fault plane.
func (b *Buddy) SetAllocFaultHook(fn func(order int) error) { b.failAlloc = fn }

// AllocBlock allocates one naturally-aligned block of 2^order frames,
// splitting a larger block if needed (Figure 2's walk up the free
// lists). The returned block's frames are marked allocated; the caller
// assigns ownership.
func (b *Buddy) AllocBlock(order int) (arch.PFN, error) {
	if order < 0 || order >= MaxOrder {
		return 0, fmt.Errorf("mm: invalid order %d", order)
	}
	if b.failAlloc != nil {
		if err := b.failAlloc(order); err != nil {
			b.stats.AllocFails++
			return 0, err
		}
	}
	k := order
	for k < MaxOrder && b.freeHead[k] == nilPFN {
		k++
	}
	if k == MaxOrder {
		b.stats.AllocFails++
		if b.freePages >= uint64(1)<<order {
			b.stats.FragFails++
			return 0, ErrFragmented
		}
		return 0, ErrOutOfMemory
	}
	pfn := arch.PFN(b.freeHead[k])
	b.removeFree(pfn, k)
	// Iteratively halve the block, returning upper halves to their
	// free lists, until we hold a block of the requested order.
	for k > order {
		k--
		b.pushFree(pfn+arch.PFN(1)<<k, k)
		b.stats.Splits++
	}
	b.markAllocated(pfn, 1<<order)
	b.stats.Allocs++
	return pfn, nil
}

// AllocRange allocates n contiguous frames when possible: it takes the
// smallest block of at least n frames and frees the tail back. When no
// single block is large enough it falls back to multiple smaller runs
// (greedy largest-first), mirroring how the kernel satisfies a large
// malloc when contiguity has run out. Returns ErrOutOfMemory (with
// nothing allocated) if fewer than n frames are free.
func (b *Buddy) AllocRange(n int) ([]Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mm: invalid range length %d", n)
	}
	if uint64(n) > b.freePages {
		b.stats.AllocFails++
		return nil, ErrOutOfMemory
	}
	if r, ok := b.allocSingleRun(n); ok {
		return []Run{r}, nil
	}
	// Fragmented: gather multiple runs, largest blocks first.
	b.stats.RangeFallbck++
	var runs []Run
	remaining := n
	for remaining > 0 {
		k := b.LargestFreeOrder()
		if k < 0 {
			// Cannot happen: freePages >= n was checked, but guard
			// against bookkeeping bugs by rolling back.
			for _, r := range runs {
				b.FreeRange(r.Base, r.Len)
			}
			b.stats.AllocFails++
			return nil, ErrOutOfMemory
		}
		for k > 0 && (1<<(k-1)) >= remaining {
			k--
		}
		take := 1 << k
		if take > remaining {
			take = remaining
		}
		pfn, err := b.AllocBlock(k)
		if err != nil {
			for _, r := range runs {
				b.FreeRange(r.Base, r.Len)
			}
			return nil, err
		}
		if take < 1<<k {
			b.freeFramesNoStats(pfn+arch.PFN(take), (1<<k)-take)
		}
		runs = append(runs, Run{Base: pfn, Len: take})
		remaining -= take
	}
	return runs, nil
}

// allocSingleRun tries to carve exactly n contiguous frames out of one
// block, freeing the unused tail.
func (b *Buddy) allocSingleRun(n int) (Run, bool) {
	order := orderForCount(n)
	if order >= MaxOrder {
		return Run{}, false
	}
	pfn, err := b.AllocBlock(order)
	if err != nil {
		return Run{}, false
	}
	if tail := (1 << order) - n; tail > 0 {
		b.freeFramesNoStats(pfn+arch.PFN(n), tail)
	}
	return Run{Base: pfn, Len: n}, true
}

// orderForCount returns ceil(log2(n)): the smallest order whose block
// covers n pages (paper §3.2.1).
func orderForCount(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// AllocSpecific allocates exactly the given free frame, splitting
// whatever free block currently contains it. It is the primitive the
// compaction daemon uses to claim migration targets taken from the top
// of memory. Returns false if the frame is already allocated.
func (b *Buddy) AllocSpecific(pfn arch.PFN) bool {
	if !b.phys.Valid(pfn) || b.phys.Frame(pfn).Allocated {
		return false
	}
	// Find the free block containing pfn: its head is pfn rounded down
	// to the block's alignment for some order.
	for k := 0; k < MaxOrder; k++ {
		head := pfn &^ (arch.PFN(1)<<k - 1)
		if b.orderOf[head] == int8(k) {
			b.removeFree(head, k)
			// Split off everything except pfn itself, re-freeing the
			// fragments as maximal aligned blocks.
			if before := int(pfn - head); before > 0 {
				b.insertRange(head, before)
			}
			if after := int(head + arch.PFN(1)<<k - pfn - 1); after > 0 {
				b.insertRange(pfn+1, after)
			}
			b.markAllocated(pfn, 1)
			b.stats.Allocs++
			return true
		}
	}
	return false
}

// FreeBlock frees an aligned block previously returned by AllocBlock.
func (b *Buddy) FreeBlock(pfn arch.PFN, order int) {
	b.FreeRange(pfn, 1<<order)
}

// FreeRange frees the frames [pfn, pfn+n), which need not be aligned or
// correspond to a single prior allocation (THP splitting and partial
// munmap free arbitrary subranges). Freed frames are merged with their
// buddies iteratively, the process that "leads to large amounts of
// contiguity" (paper §3.2.1).
func (b *Buddy) FreeRange(pfn arch.PFN, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("mm: FreeRange length %d", n))
	}
	for i := 0; i < n; i++ {
		f := b.phys.Frame(pfn + arch.PFN(i))
		if !f.Allocated {
			panic(fmt.Sprintf("mm: double free of frame %d", pfn+arch.PFN(i)))
		}
		f.Allocated = false
		f.Movable = false
		f.Owner = PageOwner{}
	}
	b.stats.Frees++
	b.freeFrames(pfn, n)
}

// freeFramesNoStats returns still-marked-allocated frames to the free
// lists after clearing their metadata; used for tails of oversized
// blocks.
func (b *Buddy) freeFramesNoStats(pfn arch.PFN, n int) {
	for i := 0; i < n; i++ {
		f := b.phys.Frame(pfn + arch.PFN(i))
		f.Allocated = false
		f.Movable = false
		f.Owner = PageOwner{}
	}
	b.freeFrames(pfn, n)
}

// freeFrames inserts [pfn, pfn+n) into the free lists with buddy
// merging. Frames must already be marked not-allocated.
func (b *Buddy) freeFrames(pfn arch.PFN, n int) {
	base := pfn
	remaining := n
	for remaining > 0 {
		k := maxOrderFor(base, remaining)
		b.freeOne(base, k)
		base += arch.PFN(1) << k
		remaining -= 1 << k
	}
}

// freeOne frees a single aligned block with iterative buddy merging.
func (b *Buddy) freeOne(pfn arch.PFN, order int) {
	for order < MaxOrder-1 {
		buddy := pfn ^ (arch.PFN(1) << order)
		if !b.phys.Valid(buddy) || b.orderOf[buddy] != int8(order) {
			break
		}
		b.removeFree(buddy, order)
		if buddy < pfn {
			pfn = buddy
		}
		order++
		b.stats.Merges++
	}
	b.pushFree(pfn, order)
}

func (b *Buddy) markAllocated(pfn arch.PFN, n int) {
	for i := 0; i < n; i++ {
		f := b.phys.Frame(pfn + arch.PFN(i))
		if f.Allocated {
			panic(fmt.Sprintf("mm: frame %d allocated twice", pfn+arch.PFN(i)))
		}
		f.Allocated = true
	}
}

// FragmentationIndex computes Linux's fragmentation index for the given
// order in [0, 1]: values near 1 mean failures at that order are due to
// fragmentation (compaction will help); near 0 means memory is simply
// low. Returns 0 when a block of the order is already free.
func (b *Buddy) FragmentationIndex(order int) float64 {
	for k := order; k < MaxOrder; k++ {
		if b.freeBlocks[k] > 0 {
			return 0
		}
	}
	var totalBlocks uint64
	for k := 0; k < MaxOrder; k++ {
		totalBlocks += uint64(b.freeBlocks[k])
	}
	if totalBlocks == 0 {
		return 0 // true OOM, not fragmentation
	}
	requested := uint64(1) << order
	return 1 - (1+float64(b.freePages)/float64(requested))/(1+float64(totalBlocks))
}

// Audit validates the free-list structure against frame metadata and
// returns EVERY inconsistency found, one line each: free-list blocks
// must match their recorded order, be naturally aligned, stay inside
// memory, never overlap, and never cover allocated frames; the
// per-order block counts and the free-page total must match the
// lists; and every frame must be either allocated or on a free list.
// An empty slice means the allocator is consistent.
func (b *Buddy) Audit() []string {
	var issues []string
	seen := make(map[arch.PFN]bool)
	var pages uint64
	for k := 0; k < MaxOrder; k++ {
		count := 0
		for p := b.freeHead[k]; p != nilPFN; p = b.next[p] {
			count++
			head := arch.PFN(p)
			if b.orderOf[p] != int8(k) {
				issues = append(issues, fmt.Sprintf("block %d on list %d has orderOf %d", head, k, b.orderOf[p]))
			}
			if uint64(head)%(1<<k) != 0 {
				issues = append(issues, fmt.Sprintf("block %d on list %d is misaligned", head, k))
			}
			for i := 0; i < 1<<k; i++ {
				f := head + arch.PFN(i)
				if !b.phys.Valid(f) {
					issues = append(issues, fmt.Sprintf("block %d order %d exceeds memory", head, k))
					break
				}
				if seen[f] {
					issues = append(issues, fmt.Sprintf("frame %d on two free blocks", f))
				}
				seen[f] = true
				if b.phys.Frame(f).Allocated {
					issues = append(issues, fmt.Sprintf("frame %d free but marked allocated", f))
				}
			}
			pages += 1 << k
		}
		if count != b.freeBlocks[k] {
			issues = append(issues, fmt.Sprintf("order %d: counted %d blocks, recorded %d", k, count, b.freeBlocks[k]))
		}
	}
	if pages != b.freePages {
		issues = append(issues, fmt.Sprintf("counted %d free pages, recorded %d", pages, b.freePages))
	}
	for i := 0; i < b.phys.NumFrames(); i++ {
		pfn := arch.PFN(i)
		if !b.phys.Frame(pfn).Allocated && !seen[pfn] {
			issues = append(issues, fmt.Sprintf("frame %d neither allocated nor on a free list", pfn))
		}
	}
	return issues
}

// CheckInvariants validates the free-list structure against frame
// metadata and returns an error describing the first inconsistency
// found (nil when consistent). Audit returns the full list.
func (b *Buddy) CheckInvariants() error {
	if issues := b.Audit(); len(issues) > 0 {
		return errors.New(issues[0])
	}
	return nil
}
