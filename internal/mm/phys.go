// Package mm implements the OS memory-management substrate whose
// behaviour the CoLT paper characterizes in §3: a Linux-style binary
// buddy allocator, a memory-compaction daemon, and transparent hugepage
// (THP) support. Together these are the mechanisms that "naturally
// assign contiguous physical pages to contiguous virtual pages" and that
// CoLT's coalescing hardware exploits.
package mm

import (
	"fmt"

	"colt/internal/arch"
)

// KernelPID identifies kernel-owned (pinned, unmovable) frames such as
// page-table pages.
const KernelPID = 0

// PageOwner records which process virtual page a frame currently backs,
// so the compaction daemon can rehome the mapping when it migrates the
// frame.
type PageOwner struct {
	PID int
	VPN arch.VPN
}

// Frame is the per-physical-frame metadata, the simulator's equivalent
// of Linux's struct page.
type Frame struct {
	Allocated bool
	// Movable marks frames the compaction daemon may migrate. User
	// pages are movable; kernel and page-table pages are not
	// (paper §3.2.2).
	Movable bool
	Owner   PageOwner
}

// PhysMem models the machine's physical memory as an array of frames.
type PhysMem struct {
	frames []Frame
}

// NewPhysMem creates a physical memory with n frames.
func NewPhysMem(n int) *PhysMem {
	if n <= 0 {
		panic("mm: physical memory must have at least one frame")
	}
	return &PhysMem{frames: make([]Frame, n)}
}

// NumFrames returns the total number of frames.
func (pm *PhysMem) NumFrames() int { return len(pm.frames) }

// Bytes returns the physical memory size in bytes.
func (pm *PhysMem) Bytes() uint64 { return uint64(len(pm.frames)) * arch.PageSize }

// Frame returns a pointer to the metadata for pfn.
func (pm *PhysMem) Frame(pfn arch.PFN) *Frame {
	return &pm.frames[pfn]
}

// Valid reports whether pfn addresses a frame inside this memory.
func (pm *PhysMem) Valid(pfn arch.PFN) bool {
	return uint64(pfn) < uint64(len(pm.frames))
}

// SetOwner marks a frame's owner and movability in one step.
func (pm *PhysMem) SetOwner(pfn arch.PFN, owner PageOwner, movable bool) {
	f := &pm.frames[pfn]
	f.Owner = owner
	f.Movable = movable
}

// AllocatedFrames counts currently allocated frames (O(n); intended for
// tests and reporting, not hot paths).
func (pm *PhysMem) AllocatedFrames() int {
	n := 0
	for i := range pm.frames {
		if pm.frames[i].Allocated {
			n++
		}
	}
	return n
}

// String summarizes occupancy.
func (pm *PhysMem) String() string {
	return fmt.Sprintf("PhysMem{%d frames, %d allocated}", len(pm.frames), pm.AllocatedFrames())
}
