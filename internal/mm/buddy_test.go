package mm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colt/internal/arch"
)

func newTestBuddy(t *testing.T, frames int) (*PhysMem, *Buddy) {
	t.Helper()
	pm := NewPhysMem(frames)
	b := NewBuddy(pm)
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("fresh buddy invalid: %v", err)
	}
	return pm, b
}

func TestBuddyInitialFreeLists(t *testing.T) {
	_, b := newTestBuddy(t, 1024)
	if b.FreePages() != 1024 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if b.FreeBlocksOfOrder(10) != 1 {
		t.Fatalf("want one order-10 block, got %d", b.FreeBlocksOfOrder(10))
	}
	if b.LargestFreeOrder() != 10 {
		t.Fatalf("LargestFreeOrder = %d", b.LargestFreeOrder())
	}
}

func TestBuddyNonPowerOfTwoMemory(t *testing.T) {
	_, b := newTestBuddy(t, 1000) // 512+256+128+64+32+8
	if b.FreePages() != 1000 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if b.FreeBlocksOfOrder(9) != 1 || b.FreeBlocksOfOrder(8) != 1 || b.FreeBlocksOfOrder(3) != 1 {
		t.Fatal("decomposition of 1000 frames incorrect")
	}
}

func TestBuddyAllocSplitsLikePaperFigure2(t *testing.T) {
	// Reproduce paper Figure 1→2: 8-frame memory with frames 1,2,3
	// allocated leaves free blocks {0} (order 0) and {4-7} (order 2).
	// A request for 2 pages must split 4-7, returning 4-5 and leaving
	// 6-7 on order-1.
	pm, b := newTestBuddy(t, 8)
	for _, pfn := range []arch.PFN{1, 2, 3} {
		if !b.AllocSpecific(pfn) {
			t.Fatalf("AllocSpecific(%d) failed", pfn)
		}
	}
	if b.FreeBlocksOfOrder(0) != 1 || b.FreeBlocksOfOrder(2) != 1 {
		t.Fatalf("pre-state wrong: order0=%d order2=%d", b.FreeBlocksOfOrder(0), b.FreeBlocksOfOrder(2))
	}
	pfn, err := b.AllocBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if pfn != 4 {
		t.Fatalf("allocated block at %d, want 4", pfn)
	}
	if b.FreeBlocksOfOrder(1) != 1 {
		t.Fatalf("want pages 6-7 on order-1 list, got %d blocks", b.FreeBlocksOfOrder(1))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Freeing the allocated pages must iteratively merge back to one
	// order-3 block.
	b.FreeBlock(4, 1)
	b.FreeRange(1, 3)
	if !pm.Frame(0).Allocated && b.FreeBlocksOfOrder(3) != 1 {
		t.Fatalf("merge back failed: order3=%d", b.FreeBlocksOfOrder(3))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyBlockAlignment(t *testing.T) {
	_, b := newTestBuddy(t, 4096)
	for order := 0; order < MaxOrder; order++ {
		pfn, err := b.AllocBlock(order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if uint64(pfn)%(1<<order) != 0 {
			t.Fatalf("order %d block at %d not naturally aligned", order, pfn)
		}
	}
}

func TestBuddyOOMAndFragmented(t *testing.T) {
	_, b := newTestBuddy(t, 16)
	if _, err := b.AllocBlock(MaxOrder); err == nil {
		t.Fatal("invalid order accepted")
	}
	// Allocate everything as order-0 then free alternating frames:
	// 8 pages free but max contiguity 1.
	for i := 0; i < 16; i++ {
		if _, err := b.AllocBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AllocBlock(0); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	for i := 0; i < 16; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
	}
	if _, err := b.AllocBlock(1); err != ErrFragmented {
		t.Fatalf("want ErrFragmented, got %v", err)
	}
	st := b.Stats()
	if st.FragFails == 0 {
		t.Fatal("FragFails not counted")
	}
}

func TestBuddyAllocRangeSingleRun(t *testing.T) {
	_, b := newTestBuddy(t, 1024)
	runs, err := b.AllocRange(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Len != 100 {
		t.Fatalf("runs = %+v", runs)
	}
	// Tail of the 128-block must be free again.
	if b.FreePages() != 1024-100 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if runs[0].End() != runs[0].Base+100 {
		t.Fatal("Run.End arithmetic")
	}
}

func TestBuddyAllocRangeFallback(t *testing.T) {
	_, b := newTestBuddy(t, 64)
	// Fragment: allocate all, free two disjoint 16-page runs.
	if _, err := b.AllocRange(64); err != nil {
		t.Fatal(err)
	}
	b.FreeRange(0, 16)
	b.FreeRange(32, 16)
	runs, err := b.AllocRange(24)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range runs {
		total += r.Len
	}
	if total != 24 || len(runs) < 2 {
		t.Fatalf("fallback runs = %+v", runs)
	}
	if b.Stats().RangeFallbck == 0 {
		t.Fatal("fallback not counted")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyAllocRangeOOMRollback(t *testing.T) {
	_, b := newTestBuddy(t, 32)
	if _, err := b.AllocRange(16); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AllocRange(17); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if b.FreePages() != 16 {
		t.Fatalf("failed alloc leaked frames: FreePages = %d", b.FreePages())
	}
}

func TestBuddyAllocSpecific(t *testing.T) {
	_, b := newTestBuddy(t, 64)
	if !b.AllocSpecific(13) {
		t.Fatal("AllocSpecific(13) failed on empty memory")
	}
	if b.AllocSpecific(13) {
		t.Fatal("AllocSpecific succeeded on allocated frame")
	}
	if b.FreePages() != 63 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The remaining frames must still be allocatable as a 32-block
	// (upper half untouched).
	if _, err := b.AllocBlock(5); err != nil {
		t.Fatalf("order-5 after AllocSpecific: %v", err)
	}
	b.FreeRange(13, 1)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	_, b := newTestBuddy(t, 16)
	pfn, err := b.AllocBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	b.FreeRange(pfn, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.FreeRange(pfn, 1)
}

func TestBuddyFragmentationIndex(t *testing.T) {
	_, b := newTestBuddy(t, 64)
	if b.FragmentationIndex(HugeOrder) != 0 {
		// order-9 blocks can't exist in 64 frames, but there IS free
		// memory: index should be > 0 only when order is unsatisfiable.
		t.Log("small memory: huge order unsatisfiable by construction")
	}
	if b.FragmentationIndex(2) != 0 {
		t.Fatal("unfragmented memory should have index 0 for order 2")
	}
	if _, err := b.AllocRange(64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i += 2 {
		b.FreeRange(arch.PFN(i), 1)
	}
	idx := b.FragmentationIndex(2)
	if idx < 0.5 {
		t.Fatalf("alternating free pattern should be highly fragmented, index = %v", idx)
	}
}

func TestOrderForCount(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 512: 9, 513: 10, 1024: 10}
	for n, want := range cases {
		if got := orderForCount(n); got != want {
			t.Errorf("orderForCount(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestBuddyPropertyRandomOps drives the allocator through random
// alloc/free sequences and checks structural invariants: no frame ever
// double-allocated, free-list bookkeeping consistent, all memory
// recovered at the end.
func TestBuddyPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := NewPhysMem(2048)
		b := NewBuddy(pm)
		type alloc struct{ runs []Run }
		var live []alloc
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := 1 + rng.Intn(200)
				runs, err := b.AllocRange(n)
				if err != nil {
					continue
				}
				live = append(live, alloc{runs})
			} else {
				i := rng.Intn(len(live))
				for _, r := range live[i].runs {
					b.FreeRange(r.Base, r.Len)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if op%37 == 0 {
				if err := b.CheckInvariants(); err != nil {
					t.Logf("seed %d op %d: %v", seed, op, err)
					return false
				}
			}
		}
		for _, a := range live {
			for _, r := range a.runs {
				b.FreeRange(r.Base, r.Len)
			}
		}
		if b.FreePages() != 2048 {
			t.Logf("seed %d: leaked frames, free=%d", seed, b.FreePages())
			return false
		}
		// Full free must merge everything back to maximal blocks.
		if b.FreeBlocksOfOrder(10) != 2 {
			t.Logf("seed %d: merge incomplete, order10=%d", seed, b.FreeBlocksOfOrder(10))
			return false
		}
		return b.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPhysMemBasics(t *testing.T) {
	pm := NewPhysMem(8)
	if pm.Bytes() != 8*arch.PageSize {
		t.Fatalf("Bytes = %d", pm.Bytes())
	}
	if !pm.Valid(7) || pm.Valid(8) {
		t.Fatal("Valid bounds wrong")
	}
	pm.SetOwner(3, PageOwner{PID: 9, VPN: 42}, true)
	f := pm.Frame(3)
	if f.Owner.PID != 9 || f.Owner.VPN != 42 || !f.Movable {
		t.Fatalf("Frame metadata = %+v", *f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPhysMem(0) did not panic")
		}
	}()
	NewPhysMem(0)
}
