package mm_test

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/invariant"
	"colt/internal/mm"
)

// fuzzBlock tracks one live allocation during the fuzz run.
type fuzzBlock struct {
	pfn   arch.PFN
	order int
}

// fuzzMigrator keeps the fuzz harness's view of movable pages in sync
// with compaction: every tracked order-0 page the daemon moves is
// rehomed in the live list so later frees release the right frames.
type fuzzMigrator struct{ live *[]fuzzBlock }

func (m fuzzMigrator) MigratePage(owner mm.PageOwner, from, to arch.PFN) error {
	for i := range *m.live {
		if (*m.live)[i].order == 0 && (*m.live)[i].pfn == from {
			(*m.live)[i].pfn = to
			break
		}
	}
	return nil
}

// FuzzBuddyAllocFree drives random alloc/free/compact sequences against
// a small machine and runs the buddy free-list auditor after every
// step: no operation order may corrupt block alignment, free-page
// accounting, or the allocated/free partition. Movable order-0 pages
// let the compaction daemon migrate under the allocator's feet; larger
// blocks are pinned, modeling the kernel obstacles of paper §3.2.2.
func FuzzBuddyAllocFree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x04, 0x08, 0x02, 0x06})
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x02, 0x03, 0x00, 0x02})
	f.Add([]byte{0x11, 0x25, 0x00, 0x03, 0x0a, 0x03, 0x16, 0x02, 0x02})
	f.Add([]byte{0x00, 0x01, 0x04, 0x05, 0x02, 0x06, 0x03, 0x07, 0x0b, 0x0f})
	f.Fuzz(func(t *testing.T, ops []byte) {
		phys := mm.NewPhysMem(256)
		buddy := mm.NewBuddy(phys)
		var live []fuzzBlock
		comp := mm.NewCompactor(phys, buddy, fuzzMigrator{live: &live}, mm.CompactionNormal)

		nextVPN := arch.VPN(0)
		audit := func(step int, op byte) {
			if vs := invariant.AuditBuddy(buddy); len(vs) != 0 {
				t.Fatalf("step %d (op 0x%02x): buddy invariant broken: %v", step, op, vs[0])
			}
		}
		audit(-1, 0)
		for step, op := range ops {
			switch op % 4 {
			case 0, 1: // allocate a block of order 0..2
				order := int(op>>2) % 3
				pfn, err := buddy.AllocBlock(order)
				if err == nil {
					for i := 0; i < 1<<order; i++ {
						// Only single pages are movable; the harness
						// cannot track a split multi-page block across
						// migration.
						phys.SetOwner(pfn+arch.PFN(i), mm.PageOwner{PID: 1, VPN: nextVPN}, order == 0)
						nextVPN++
					}
					live = append(live, fuzzBlock{pfn: pfn, order: order})
				}
			case 2: // free a live block
				if len(live) > 0 {
					idx := int(op>>2) % len(live)
					b := live[idx]
					buddy.FreeRange(b.pfn, 1<<b.order)
					live = append(live[:idx], live[idx+1:]...)
				}
			case 3: // run the compaction daemon
				comp.Compact(-1)
			}
			audit(step, op)
		}
	})
}
