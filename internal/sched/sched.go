// Package sched is the experiment engine's worker-pool scheduler. The
// paper's artifact set is a grid of independent (benchmark × setup)
// simulations; sched fans such job grids out across GOMAXPROCS
// goroutines while keeping the OUTPUT deterministic: results are
// gathered into a slice indexed by job input order, so a table built
// from them is byte-identical whether the pool runs one worker or
// sixteen. Determinism of each job's CONTENT is the caller's
// responsibility — experiment jobs seed their RNGs from
// (seed, benchmark, setup) via rng.Stream, never from shared mutable
// state, so completion order cannot leak into results.
//
// Jobs inside one benchmark run (the per-variant TLB simulators) are
// deliberately NOT split across workers: all variants of a benchmark
// share one reference stream and one set of OS shootdown events, so
// they must advance in lockstep on a single goroutine.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool schedules independent jobs over a fixed number of workers. The
// zero value is not useful; use New.
type Pool struct {
	workers int
	observe func(job int, d time.Duration)
}

// New returns a pool running up to workers jobs concurrently. Values
// <= 0 select runtime.GOMAXPROCS(0), the number of CPUs the runtime
// will actually use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency limit.
func (p *Pool) Workers() int { return p.workers }

// SetObserver registers fn to receive each job's wall-clock duration
// as it completes (the metrics layer's per-job timing hook). fn may be
// called concurrently from several workers and must be safe for that;
// it is invoked for failed jobs too. Returns p for chaining.
func (p *Pool) SetObserver(fn func(job int, d time.Duration)) *Pool {
	p.observe = fn
	return p
}

// timed runs fn(i) and reports its duration to the observer, if any.
func (p *Pool) timed(i int, fn func(i int) error) error {
	if p.observe == nil {
		return fn(i)
	}
	start := time.Now()
	err := fn(i)
	p.observe(i, time.Since(start))
	return err
}

// Map runs fn(i) for every i in [0, n) on the pool's workers and
// returns the results ordered by input index — never by completion
// order. The first error (by job index) cancels dispatch of jobs that
// have not yet started and is returned; results from jobs that already
// completed are discarded. A panic in fn propagates to the caller,
// annotated with the job index.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Degenerate pool: run inline, stopping at the first error, so
		// -parallel 1 has the exact serial semantics (and stack traces)
		// of the pre-scheduler code.
		for i := 0; i < n; i++ {
			if err := p.timed(i, func(i int) error {
				var err error
				results[i], err = fn(i)
				return err
			}); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next job index to claim
		failed  atomic.Bool  // set once any job errors
		panicMu sync.Mutex
		panics  []panicInfo
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							failed.Store(true)
							panicMu.Lock()
							panics = append(panics, panicInfo{job: i, value: r})
							panicMu.Unlock()
						}
					}()
					if err := p.timed(i, func(i int) error {
						var err error
						results[i], err = fn(i)
						return err
					}); err != nil {
						errs[i] = err
						failed.Store(true)
					}
				}()
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		// Re-panic deterministically: lowest job index wins.
		min := panics[0]
		for _, p := range panics[1:] {
			if p.job < min.job {
				min = p
			}
		}
		panic(fmt.Sprintf("sched: job %d panicked: %v", min.job, min.value))
	}
	// First error by job index, not completion order, so the reported
	// failure is deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

type panicInfo struct {
	job   int
	value any
}

// MapSlice is Map over a slice: it runs fn(i, items[i]) for every item
// and returns the outputs in item order.
func MapSlice[S, T any](p *Pool, items []S, fn func(i int, item S) (T, error)) ([]T, error) {
	return Map(p, len(items), func(i int) (T, error) { return fn(i, items[i]) })
}
