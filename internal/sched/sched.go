// Package sched is the experiment engine's worker-pool scheduler. The
// paper's artifact set is a grid of independent (benchmark × setup)
// simulations; sched fans such job grids out across GOMAXPROCS
// goroutines while keeping the OUTPUT deterministic: results are
// gathered into a slice indexed by job input order, so a table built
// from them is byte-identical whether the pool runs one worker or
// sixteen. Determinism of each job's CONTENT is the caller's
// responsibility — experiment jobs seed their RNGs from
// (seed, benchmark, setup) via rng.Stream, never from shared mutable
// state, so completion order cannot leak into results.
//
// Jobs inside one benchmark run (the per-variant TLB simulators) are
// deliberately NOT split across workers: all variants of a benchmark
// share one reference stream and one set of OS shootdown events, so
// they must advance in lockstep on a single goroutine.
//
// Failure containment: a panicking job never tears down the pool or
// the process — it is converted into a *PanicError for that job, on
// both the serial and concurrent paths. Pools can also bound each
// job's wall-clock via SetJobTimeout, and MapPartial runs every job
// to completion reporting per-job errors, which is what lets the
// experiment drivers render partial results instead of aborting.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a job panic converted to an error. Error() is a pure
// function of the job index and panic value — the stack (kept in
// Stack for debugging) is excluded so failure reports stay
// byte-identical across runs and parallel widths.
type PanicError struct {
	Job   int
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %d panicked: %v", e.Job, e.Value)
}

// TimeoutError is a job that exceeded the pool's per-job timeout.
type TimeoutError struct {
	Job     int
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sched: job %d exceeded %v timeout", e.Job, e.Timeout)
}

// CanceledError is a job that never ran because the pool's context was
// canceled before the job was dispatched. It unwraps to the context's
// error, so errors.Is(err, context.Canceled) works on it.
type CanceledError struct {
	Job   int
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sched: job %d canceled: %v", e.Job, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// Pool schedules independent jobs over a fixed number of workers. The
// zero value is not useful; use New.
//
// Configuration (SetObserver, SetLabeler, SetJobTimeout, SetContext)
// must complete before the first Map/MapPartial call: once a map has
// started the pool's configuration is frozen, and any further setter
// call panics. The guard exists because servers construct pools
// concurrently with request handling, where a silently-ignored or
// racy late registration would be far harder to debug than a panic.
type Pool struct {
	workers    int
	mu         sync.Mutex
	started    bool
	jobTimeout time.Duration
	ctx        context.Context
	observe    func(job int, label string, d time.Duration)
	labeler    func(job int) string
}

// New returns a pool running up to workers jobs concurrently. Values
// <= 0 select runtime.GOMAXPROCS(0), the number of CPUs the runtime
// will actually use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency limit.
func (p *Pool) Workers() int { return p.workers }

// configure runs a setter under the pool's configuration guard,
// panicking if any Map/MapPartial has already started. The panic (not
// a silent drop) is deliberate: a late registration is a programming
// error, and under concurrent construction a dropped observer would
// surface as mysteriously missing timings instead of a stack trace.
func (p *Pool) configure(what string, set func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		panic("sched: " + what + " called after Map started; configure the pool before scheduling jobs")
	}
	set()
}

// SetObserver registers fn to receive each job's wall-clock duration
// as it completes (the metrics layer's per-job timing hook), together
// with the job's human-readable label from the pool's labeler (empty
// when none is set). fn may be called concurrently from several
// workers and must be safe for that; it is invoked for failed jobs
// too. Panics if called after the pool has started scheduling.
// Returns p for chaining.
func (p *Pool) SetObserver(fn func(job int, label string, d time.Duration)) *Pool {
	p.configure("SetObserver", func() { p.observe = fn })
	return p
}

// SetLabeler registers fn mapping a job index to the job's display
// label (e.g. "bench/mcf/ths-on"), so timing sidecars and progress
// lines can name jobs instead of showing opaque indices. Panics if
// called after the pool has started scheduling. Returns p for
// chaining.
func (p *Pool) SetLabeler(fn func(job int) string) *Pool {
	p.configure("SetLabeler", func() { p.labeler = fn })
	return p
}

// SetContext attaches ctx to the pool: once ctx is canceled, jobs that
// have not yet been dispatched fail with a *CanceledError wrapping
// ctx's error instead of running. Jobs already in flight are not
// interrupted — the simulator has no preemption points — so
// cancellation granularity is the job unless the job's own code also
// watches ctx. Panics if called after the pool has started
// scheduling. Returns p for chaining.
func (p *Pool) SetContext(ctx context.Context) *Pool {
	p.configure("SetContext", func() { p.ctx = ctx })
	return p
}

// Label resolves job's display label ("" without a labeler).
func (p *Pool) Label(job int) string {
	if p.labeler == nil {
		return ""
	}
	return p.labeler(job)
}

// SetJobTimeout bounds each job's wall-clock at d (<= 0 disables, the
// default). A job that exceeds the bound fails with *TimeoutError;
// its goroutine keeps running to completion in the background (the
// simulator has no preemption points), but its result is discarded.
// Timeouts are inherently wall-clock-dependent, so deterministic runs
// should set a bound generous enough that it only fires on hangs.
// Panics if called after the pool has started scheduling. Returns p
// for chaining.
func (p *Pool) SetJobTimeout(d time.Duration) *Pool {
	p.configure("SetJobTimeout", func() { p.jobTimeout = d })
	return p
}

// canceled returns the pool context's error, or nil when no context is
// attached or it is still live.
func (p *Pool) canceled() error {
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// timed runs fn(i) and reports its duration and label to the
// observer, if any.
func (p *Pool) timed(i int, fn func(i int) error) error {
	if p.observe == nil {
		return fn(i)
	}
	start := time.Now()
	err := fn(i)
	p.observe(i, p.Label(i), time.Since(start))
	return err
}

// runJob runs one job with panic containment and the pool's per-job
// timeout. Panics become *PanicError; overruns become *TimeoutError.
func (p *Pool) runJob(i int, fn func(i int) error) error {
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Job: i, Value: r, Stack: string(debug.Stack())}
			}
		}()
		return p.timed(i, fn)
	}
	if p.jobTimeout <= 0 {
		return run()
	}
	done := make(chan error, 1)
	go func() { done <- run() }()
	timer := time.NewTimer(p.jobTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &TimeoutError{Job: i, Timeout: p.jobTimeout}
	}
}

// Map runs fn(i) for every i in [0, n) on the pool's workers and
// returns the results ordered by input index — never by completion
// order. The first error (by job index) cancels dispatch of jobs that
// have not yet started and is returned; results from jobs that already
// completed are discarded. A panic in fn is contained to its job and
// reported as a *PanicError — it never tears down the pool.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	results, errs := mapAll(p, n, fn, true)
	if results == nil && errs == nil {
		return nil, nil
	}
	// First error by job index, not completion order, so the reported
	// failure is deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MapPartial runs fn(i) for EVERY i in [0, n) — an error or panic in
// one job never cancels the others — and returns both slices indexed
// by job: errs[i] is nil exactly when results[i] is valid. This is
// the graceful-degradation entry point: callers render the surviving
// jobs and report the failed ones.
func MapPartial[T any](p *Pool, n int, fn func(i int) (T, error)) (results []T, errs []error) {
	return mapAll(p, n, fn, false)
}

// mapAll is the shared engine behind Map and MapPartial. When
// cancelOnError is set, a failed job stops dispatch of jobs that have
// not yet started (Map's contract); otherwise every job runs.
func mapAll[T any](p *Pool, n int, fn func(i int) (T, error), cancelOnError bool) ([]T, []error) {
	// Freeze the pool's configuration: setters panic from here on, so
	// the unguarded field reads below can never race with a writer.
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Degenerate pool: run inline so -parallel 1 has the exact
		// serial semantics of the pre-scheduler code (stopping at the
		// first error when cancellation is on).
		for i := 0; i < n; i++ {
			if cause := p.canceled(); cause != nil {
				errs[i] = &CanceledError{Job: i, Cause: cause}
				if cancelOnError {
					break
				}
				continue
			}
			errs[i] = p.runJob(i, func(i int) error {
				var err error
				results[i], err = fn(i)
				return err
			})
			if errs[i] != nil && cancelOnError {
				break
			}
		}
		return results, errs
	}

	var (
		next   atomic.Int64 // next job index to claim
		failed atomic.Bool  // set once any job errors (cancel mode)
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || (cancelOnError && failed.Load()) {
					return
				}
				if cause := p.canceled(); cause != nil {
					// Mark this and keep claiming: every undispatched
					// job gets a CanceledError record rather than a
					// silent zero result.
					errs[i] = &CanceledError{Job: i, Cause: cause}
					failed.Store(true)
					continue
				}
				if err := p.runJob(i, func(i int) error {
					var err error
					results[i], err = fn(i)
					return err
				}); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// MapSlice is Map over a slice: it runs fn(i, items[i]) for every item
// and returns the outputs in item order.
func MapSlice[S, T any](p *Pool, items []S, fn func(i int, item S) (T, error)) ([]T, error) {
	return Map(p, len(items), func(i int) (T, error) { return fn(i, items[i]) })
}

// Retry runs fn up to attempts times (attempt is 0-based), returning
// nil on the first success. Only errors for which transient returns
// true are retried; other errors — including *TimeoutError, which is
// wall-clock-dependent — return immediately. Between attempts it
// sleeps backoff << attempt (bounded), which spaces wall-clock without
// affecting results: fn's outcome must be a deterministic function of
// the attempt number, so the retry trajectory is identical at every
// parallel width.
func Retry(attempts int, backoff time.Duration, transient func(error) bool, fn func(attempt int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && backoff > 0 {
			d := backoff << uint(attempt-1)
			if max := 100 * backoff; d > max {
				d = max
			}
			time.Sleep(d)
		}
		if err = fn(attempt); err == nil {
			return nil
		}
		var te *TimeoutError
		if errors.As(err, &te) || transient == nil || !transient(err) {
			return err
		}
	}
	return err
}
