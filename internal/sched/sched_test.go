package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByInput(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := New(workers)
		got, err := Map(p, 100, func(i int) (int, error) {
			// Skew completion order: later jobs finish first under
			// concurrency by burning less work.
			busy(100 - i)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("job-%d", i*7%13), nil }
	serial, err := Map(New(1), 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(New(8), 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result[%d]: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapErrorCancelsAndIsDeterministic(t *testing.T) {
	boom := errors.New("job 3 failed")
	var started atomic.Int64
	_, err := Map(New(4), 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("error did not cancel dispatch: %d jobs started", n)
	}
	// The reported error must be the lowest-index failure, not a race
	// winner.
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(New(8), 16, func(i int) (int, error) {
			switch i {
			case 2:
				busy(500) // slow failure at the lower index
				return 0, errA
			case 9:
				return 0, errB // fast failure at the higher index
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, errB) && !errors.Is(err, errA) {
			// Job 9 may run before job 2 is even dispatched once the
			// failed flag stops the pool; only flag nondeterminism when
			// both ran and the higher index won.
			continue
		}
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map[int](New(4), 0, nil); err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	got, err := Map(New(4), 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single map: %v, %v", got, err)
	}
}

func TestMapSlice(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	got, err := MapSlice(New(2), items, func(i int, s string) (int, error) {
		return i * len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "job 5") {
			t.Fatalf("panic lost job context: %v", s)
		}
	}()
	Map(New(4), 8, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if New(-3).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative workers did not default")
	}
	if New(7).Workers() != 7 {
		t.Fatal("explicit workers not honored")
	}
}

// busy burns a little deterministic CPU so completion order under
// concurrency differs from dispatch order.
func busy(n int) uint64 {
	var x uint64 = 88172645463325252
	for i := 0; i < n*50; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// TestObserverSeesEveryJob: the per-job timing hook fires exactly once
// per job (including failed jobs) on both the serial and concurrent
// paths, with non-negative durations.
func TestObserverSeesEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		var negative atomic.Bool
		seen := make([]atomic.Int64, 10)
		p := New(workers).SetObserver(func(job int, d time.Duration) {
			calls.Add(1)
			if d < 0 {
				negative.Store(true)
			}
			seen[job].Add(1)
		})
		if _, err := Map(p, 10, func(i int) (uint64, error) { return busy(i), nil }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 10 {
			t.Errorf("workers=%d: observer fired %d times, want 10", workers, calls.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Errorf("workers=%d: job %d observed %d times", workers, i, seen[i].Load())
			}
		}
		if negative.Load() {
			t.Errorf("workers=%d: observer saw a negative duration", workers)
		}
	}

	// Failed jobs are observed too (serial path stops at the error, so
	// the observed count equals the jobs actually dispatched).
	var calls atomic.Int64
	p := New(1).SetObserver(func(int, time.Duration) { calls.Add(1) })
	_, err := Map(p, 5, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error not propagated through timed path")
	}
	if calls.Load() != 3 {
		t.Errorf("observer fired %d times before the serial error stop, want 3", calls.Load())
	}
}
