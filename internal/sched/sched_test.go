package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByInput(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := New(workers)
		got, err := Map(p, 100, func(i int) (int, error) {
			// Skew completion order: later jobs finish first under
			// concurrency by burning less work.
			busy(100 - i)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("job-%d", i*7%13), nil }
	serial, err := Map(New(1), 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(New(8), 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result[%d]: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapErrorCancelsAndIsDeterministic(t *testing.T) {
	boom := errors.New("job 3 failed")
	var started atomic.Int64
	_, err := Map(New(4), 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("error did not cancel dispatch: %d jobs started", n)
	}
	// The reported error must be the lowest-index failure, not a race
	// winner.
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(New(8), 16, func(i int) (int, error) {
			switch i {
			case 2:
				busy(500) // slow failure at the lower index
				return 0, errA
			case 9:
				return 0, errB // fast failure at the higher index
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, errB) && !errors.Is(err, errA) {
			// Job 9 may run before job 2 is even dispatched once the
			// failed flag stops the pool; only flag nondeterminism when
			// both ran and the higher index won.
			continue
		}
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map[int](New(4), 0, nil); err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	got, err := Map(New(4), 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single map: %v, %v", got, err)
	}
}

func TestMapSlice(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	got, err := MapSlice(New(2), items, func(i int, s string) (int, error) {
		return i * len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestMapPanicContained: a panicking job is converted to a *PanicError
// and never tears down the pool (regression: the pool used to re-panic
// after the wait, killing every job in the run).
func TestMapPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(New(workers), 8, func(i int) (int, error) {
			if i == 5 {
				panic("boom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as an error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %T %v, want *PanicError", workers, err, err)
		}
		if pe.Job != 5 || !strings.Contains(err.Error(), "job 5") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("workers=%d: error lost job context: %v", workers, err)
		}
		if pe.Stack == "" {
			t.Errorf("workers=%d: stack not captured", workers)
		}
		if strings.Contains(err.Error(), "goroutine") {
			t.Errorf("workers=%d: Error() leaks the stack (nondeterministic text): %q", workers, err.Error())
		}
	}
}

// TestPoolSurvivesPanic: the same pool keeps scheduling after a job
// panicked — the process and its sibling jobs are unaffected.
func TestPoolSurvivesPanic(t *testing.T) {
	p := New(4)
	if _, err := Map(p, 4, func(i int) (int, error) {
		if i == 2 {
			panic(fmt.Sprintf("job %d exploding", i))
		}
		return i, nil
	}); err == nil {
		t.Fatal("expected the panic error")
	}
	got, err := Map(p, 4, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatalf("pool unusable after a contained panic: %v", err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d] = %d after panic recovery", i, v)
		}
	}
}

func TestMapPartialRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var started atomic.Int64
		results, errs := MapPartial(New(workers), 10, func(i int) (int, error) {
			started.Add(1)
			switch i {
			case 3:
				return 0, errors.New("job 3 failed")
			case 7:
				panic("job 7 panicked")
			}
			return i * i, nil
		})
		if started.Load() != 10 {
			t.Fatalf("workers=%d: only %d of 10 jobs ran", workers, started.Load())
		}
		for i := 0; i < 10; i++ {
			switch i {
			case 3:
				if errs[i] == nil || !strings.Contains(errs[i].Error(), "job 3 failed") {
					t.Errorf("workers=%d: errs[3] = %v", workers, errs[i])
				}
			case 7:
				var pe *PanicError
				if !errors.As(errs[i], &pe) || pe.Job != 7 {
					t.Errorf("workers=%d: errs[7] = %v, want *PanicError job 7", workers, errs[i])
				}
			default:
				if errs[i] != nil {
					t.Errorf("workers=%d: errs[%d] = %v", workers, i, errs[i])
				}
				if results[i] != i*i {
					t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, results[i], i*i)
				}
			}
		}
	}
}

func TestJobTimeout(t *testing.T) {
	p := New(2).SetJobTimeout(20 * time.Millisecond)
	block := make(chan struct{})
	defer close(block)
	_, errs := MapPartial(p, 3, func(i int) (int, error) {
		if i == 1 {
			<-block // hang until the test exits
		}
		return i, nil
	})
	var te *TimeoutError
	if !errors.As(errs[1], &te) {
		t.Fatalf("errs[1] = %v, want *TimeoutError", errs[1])
	}
	if te.Job != 1 || !strings.Contains(te.Error(), "timeout") {
		t.Errorf("timeout error = %v", te)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy jobs failed: %v %v", errs[0], errs[2])
	}
}

func TestRetry(t *testing.T) {
	transient := func(err error) bool { return strings.Contains(err.Error(), "transient") }
	t.Run("retries transient until success", func(t *testing.T) {
		var calls []int
		err := Retry(4, 0, transient, func(attempt int) error {
			calls = append(calls, attempt)
			if attempt < 2 {
				return errors.New("transient glitch")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Retry: %v", err)
		}
		if len(calls) != 3 || calls[0] != 0 || calls[1] != 1 || calls[2] != 2 {
			t.Fatalf("attempts = %v, want [0 1 2]", calls)
		}
	})
	t.Run("exhausts attempts and returns last error", func(t *testing.T) {
		var calls int
		err := Retry(3, 0, transient, func(attempt int) error {
			calls++
			return fmt.Errorf("transient %d", attempt)
		})
		if calls != 3 {
			t.Fatalf("fn called %d times, want 3", calls)
		}
		if err == nil || !strings.Contains(err.Error(), "transient 2") {
			t.Fatalf("err = %v, want the final attempt's error", err)
		}
	})
	t.Run("permanent error not retried", func(t *testing.T) {
		var calls int
		err := Retry(5, 0, transient, func(int) error {
			calls++
			return errors.New("permanent")
		})
		if calls != 1 {
			t.Fatalf("permanent error retried %d times", calls)
		}
		if err == nil {
			t.Fatal("error swallowed")
		}
	})
	t.Run("timeouts never retried", func(t *testing.T) {
		var calls int
		err := Retry(5, 0, func(error) bool { return true }, func(int) error {
			calls++
			return fmt.Errorf("wrapped: %w", &TimeoutError{Job: 0, Timeout: time.Second})
		})
		if calls != 1 {
			t.Fatalf("timeout retried %d times", calls)
		}
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("err = %v, want *TimeoutError", err)
		}
	})
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if New(-3).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative workers did not default")
	}
	if New(7).Workers() != 7 {
		t.Fatal("explicit workers not honored")
	}
}

// busy burns a little deterministic CPU so completion order under
// concurrency differs from dispatch order.
func busy(n int) uint64 {
	var x uint64 = 88172645463325252
	for i := 0; i < n*50; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// TestObserverSeesEveryJob: the per-job timing hook fires exactly once
// per job (including failed jobs) on both the serial and concurrent
// paths, with non-negative durations.
func TestObserverSeesEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		var negative atomic.Bool
		seen := make([]atomic.Int64, 10)
		p := New(workers).SetObserver(func(job int, label string, d time.Duration) {
			calls.Add(1)
			if d < 0 {
				negative.Store(true)
			}
			seen[job].Add(1)
		})
		if _, err := Map(p, 10, func(i int) (uint64, error) { return busy(i), nil }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 10 {
			t.Errorf("workers=%d: observer fired %d times, want 10", workers, calls.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Errorf("workers=%d: job %d observed %d times", workers, i, seen[i].Load())
			}
		}
		if negative.Load() {
			t.Errorf("workers=%d: observer saw a negative duration", workers)
		}
	}

	// Failed jobs are observed too (serial path stops at the error, so
	// the observed count equals the jobs actually dispatched).
	var calls atomic.Int64
	p := New(1).SetObserver(func(int, string, time.Duration) { calls.Add(1) })
	_, err := Map(p, 5, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error not propagated through timed path")
	}
	if calls.Load() != 3 {
		t.Errorf("observer fired %d times before the serial error stop, want 3", calls.Load())
	}
}

// TestObserverReceivesLabels: with a labeler installed, the observer
// sees each job's display label (on both pool paths); without one it
// sees "".
func TestObserverReceivesLabels(t *testing.T) {
	names := []string{"bench/astar/ths-on", "bench/mcf/ths-on", "bench/mcf/ths-off"}
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		got := make(map[int]string)
		p := New(workers).
			SetLabeler(func(job int) string { return names[job] }).
			SetObserver(func(job int, label string, _ time.Duration) {
				mu.Lock()
				got[job] = label
				mu.Unlock()
			})
		if _, err := Map(p, len(names), func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, want := range names {
			if got[i] != want {
				t.Errorf("workers=%d: job %d labeled %q, want %q", workers, i, got[i], want)
			}
		}
	}

	p := New(1)
	if p.Label(0) != "" {
		t.Errorf("Label without labeler = %q, want empty", p.Label(0))
	}
	var sawLabel string
	p.SetObserver(func(_ int, label string, _ time.Duration) { sawLabel = label })
	if _, err := Map(p, 1, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if sawLabel != "" {
		t.Errorf("observer got label %q from labeler-less pool, want empty", sawLabel)
	}
}

// TestSetterPanicsAfterMapStarted: pool configuration is frozen once
// scheduling begins — a late SetObserver/SetLabeler/SetJobTimeout/
// SetContext is a programming error and must panic, not be silently
// dropped or race with the workers (coltd constructs pools
// concurrently with request handling).
func TestSetterPanicsAfterMapStarted(t *testing.T) {
	setters := map[string]func(p *Pool){
		"SetObserver":   func(p *Pool) { p.SetObserver(func(int, string, time.Duration) {}) },
		"SetLabeler":    func(p *Pool) { p.SetLabeler(func(int) string { return "" }) },
		"SetJobTimeout": func(p *Pool) { p.SetJobTimeout(time.Second) },
		"SetContext":    func(p *Pool) { p.SetContext(context.Background()) },
	}
	for name, set := range setters {
		p := New(2)
		if _, err := Map(p, 4, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatalf("%s: warmup map: %v", name, err)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s after Map started did not panic", name)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, name) || !strings.Contains(msg, "after Map started") {
					t.Errorf("%s panic message %q does not name the setter and the rule", name, msg)
				}
			}()
			set(p)
		}()
	}
}

// TestSetterPanicsWhileMapRunning: the guard also fires while a map is
// in flight, not just after one finished.
func TestSetterPanicsWhileMapRunning(t *testing.T) {
	p := New(2)
	inJob := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Map(p, 1, func(i int) (int, error) {
			close(inJob)
			<-release
			return i, nil
		})
	}()
	<-inJob
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetObserver during an in-flight Map did not panic")
			}
		}()
		p.SetObserver(func(int, string, time.Duration) {})
	}()
	close(release)
	<-done
}

// TestContextCancelSkipsUndispatchedJobs: once the pool's context is
// canceled, jobs that have not started fail with *CanceledError
// (unwrapping to context.Canceled) instead of running, on both the
// serial and concurrent paths, and jobs already completed keep their
// results.
func TestContextCancelSkipsUndispatchedJobs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 32
		results, errs := MapPartial(New(workers).SetContext(ctx), n, func(i int) (int, error) {
			ran.Add(1)
			if ran.Load() >= int64(workers) {
				cancel() // cancel once every worker has a job in hand
			}
			return i, nil
		})
		canceled := 0
		for i := 0; i < n; i++ {
			if errs[i] == nil {
				if results[i] != i {
					t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, results[i], i)
				}
				continue
			}
			canceled++
			var ce *CanceledError
			if !errors.As(errs[i], &ce) {
				t.Fatalf("workers=%d: errs[%d] = %v, want *CanceledError", workers, i, errs[i])
			}
			if ce.Job != i {
				t.Errorf("workers=%d: CanceledError.Job = %d, want %d", workers, ce.Job, i)
			}
			if !errors.Is(errs[i], context.Canceled) {
				t.Errorf("workers=%d: errs[%d] does not unwrap to context.Canceled", workers, i)
			}
		}
		if canceled == 0 {
			t.Errorf("workers=%d: no job was canceled", workers)
		}
		if int(ran.Load())+canceled != n {
			t.Errorf("workers=%d: ran %d + canceled %d != %d jobs", workers, ran.Load(), canceled, n)
		}
	}
}

// TestContextCancelBeforeMap: a pre-canceled context fails every job
// without running any.
func TestContextCancelBeforeMap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(New(4).SetContext(ctx), 8, func(i int) (int, error) {
		t.Error("job ran under a pre-canceled context")
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
}
