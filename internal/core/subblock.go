package core

import (
	"fmt"
	"math/bits"

	"colt/internal/arch"
)

// Partial-subblock TLB (Talluri & Hill, ASPLOS 1994) — the prior
// approach the paper positions CoLT against in §2.3. Like CoLT-SA, a
// partial-subblock entry holds one base physical page and a valid bit
// per member of an aligned virtual block; unlike CoLT, a translation
// may join an entry only when its physical frame sits at the SAME
// OFFSET within an aligned physical block as its virtual page does
// within the virtual block ("base physical pages [must] be placed in an
// aligned manner within subblock regions"). CoLT drops both the
// physical-alignment and the amount restrictions, which is exactly what
// the paper claims buys its extra coverage — the subblock experiment
// quantifies that claim.

// SubblockFactor is the subblock size in pages (matching CoLT-SA's
// default maximum coalescing of four for a fair comparison).
const SubblockFactor = 4

// sbEntry is one partial-subblock entry: virtual block tag, valid bits,
// and the ALIGNED physical block base.
type sbEntry struct {
	valid    bool
	tag      uint64
	vbits    uint8
	blockPFN arch.PFN // physical base of the aligned subblock
	attr     arch.Attr
	lru      uint64
}

// SubblockTLB is a set-associative partial-subblock TLB. Set selection
// uses the virtual block number, so (like CoLT-SA's shifted indexing)
// all pages of a block probe one set.
type SubblockTLB struct {
	sets    int
	ways    int
	setBits uint
	entries []sbEntry
	tick    uint64
	stats   TLBStats
	// Rejected counts fills that could not share an entry because the
	// physical frame was misaligned — the cost of the alignment
	// restriction.
	rejected uint64
}

// NewSubblockTLB builds a partial-subblock TLB with the given geometry.
func NewSubblockTLB(sets, ways int) *SubblockTLB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: set count %d must be a power of two", sets))
	}
	if ways <= 0 {
		panic("core: ways must be positive")
	}
	return &SubblockTLB{
		sets:    sets,
		ways:    ways,
		setBits: uint(bits.TrailingZeros(uint(sets))),
		entries: make([]sbEntry, sets*ways),
	}
}

// Stats returns a snapshot of the counters.
func (t *SubblockTLB) Stats() TLBStats { return t.stats }

// Rejected counts alignment-rejected sharing attempts.
func (t *SubblockTLB) Rejected() uint64 { return t.rejected }

// ResetStats zeroes the counters.
func (t *SubblockTLB) ResetStats() {
	t.stats = TLBStats{}
	t.rejected = 0
}

func (t *SubblockTLB) index(vpn arch.VPN) (set int, tag uint64, off uint) {
	block := uint64(vpn) / SubblockFactor
	return int(block & uint64(t.sets-1)), block >> t.setBits, uint(vpn) % SubblockFactor
}

// Lookup translates vpn: PFN = aligned block base + virtual offset.
func (t *SubblockTLB) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	t.stats.Lookups++
	set, tag, off := t.index(vpn)
	base := set * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&(1<<off) != 0 {
			t.stats.Hits++
			t.tick++
			e.lru = t.tick
			return e.blockPFN + arch.PFN(off), true
		}
	}
	t.stats.Misses++
	return 0, false
}

// Insert fills the translation (vpn -> pfn). If an entry for the block
// already exists with the matching aligned physical base and
// attributes, the valid bit is added; a misaligned frame forces a fresh
// entry whose other valid bits can never be shared (counted in
// Rejected). Returns the evicted block's first VPN for inclusive
// back-invalidation.
func (t *SubblockTLB) Insert(vpn arch.VPN, pfn arch.PFN, attr arch.Attr) (evictedVPN arch.VPN, evicted bool) {
	set, tag, off := t.index(vpn)
	blockPFN := pfn - arch.PFN(off)
	alignedOK := blockPFN%SubblockFactor == 0

	t.tick++
	t.stats.Fills++
	base := set * t.ways
	victim := base
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag {
			if alignedOK && e.blockPFN == blockPFN && e.attr == attr {
				// Partial-subblock sharing: just set the valid bit.
				e.vbits |= 1 << off
				e.lru = t.tick
				t.stats.CoalescedIn++
				return 0, false
			}
			if e.vbits&(1<<off) != 0 {
				// The offset is covered by a stale/conflicting base:
				// replace this entry.
				t.rejected++
				*e = sbEntry{valid: true, tag: tag, vbits: 1 << off, blockPFN: blockPFN, attr: attr, lru: t.tick}
				return 0, false
			}
			t.rejected++
		}
		if lessSBLRU(&t.entries[base+i], &t.entries[victim]) {
			victim = base + i
		}
	}
	v := &t.entries[victim]
	if v.valid {
		t.stats.Evictions++
		evictedVPN = arch.VPN((v.tag<<t.setBits | uint64(set)) * SubblockFactor)
		evicted = true
	}
	*v = sbEntry{valid: true, tag: tag, vbits: 1 << off, blockPFN: blockPFN, attr: attr, lru: t.tick}
	return evictedVPN, evicted
}

func lessSBLRU(a, b *sbEntry) bool {
	if a.valid != b.valid {
		return !a.valid
	}
	return a.lru < b.lru
}

// Invalidate drops any entry covering vpn (whole entries, as in the
// original proposal). Returns true if one was removed.
func (t *SubblockTLB) Invalidate(vpn arch.VPN) bool {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	removed := false
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&(1<<off) != 0 {
			e.valid = false
			removed = true
			t.stats.Invalidates++
		}
	}
	return removed
}

// InvalidateAll flushes the TLB.
func (t *SubblockTLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.stats.Invalidates++
}

// Occupied returns the number of valid entries.
func (t *SubblockTLB) Occupied() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
