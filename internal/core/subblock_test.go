package core

import (
	"testing"

	"colt/internal/arch"
)

func TestSubblockAlignedSharing(t *testing.T) {
	tlb := NewSubblockTLB(8, 4)
	// Aligned physical block 400..403 backing virtual block 100..103.
	for i := 0; i < 4; i++ {
		tlb.Insert(arch.VPN(100+i), arch.PFN(400+i), testAttr)
	}
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d, want one shared entry", tlb.Occupied())
	}
	for i := 0; i < 4; i++ {
		pfn, ok := tlb.Lookup(arch.VPN(100 + i))
		if !ok || pfn != arch.PFN(400+i) {
			t.Fatalf("Lookup(%d) = %d,%v", 100+i, pfn, ok)
		}
	}
	if tlb.Rejected() != 0 {
		t.Fatalf("Rejected = %d", tlb.Rejected())
	}
}

func TestSubblockMisalignedCannotShare(t *testing.T) {
	tlb := NewSubblockTLB(8, 4)
	// Contiguous V->P but the physical run starts at offset 1 within
	// the physical subblock: CoLT would coalesce; partial-subblock
	// cannot.
	for i := 0; i < 4; i++ {
		tlb.Insert(arch.VPN(100+i), arch.PFN(401+i), testAttr)
	}
	if tlb.Occupied() != 4 {
		t.Fatalf("Occupied = %d, want 4 separate entries (alignment)", tlb.Occupied())
	}
	if tlb.Rejected() == 0 {
		t.Fatal("alignment rejections not counted")
	}
	// Translations remain correct regardless.
	for i := 0; i < 4; i++ {
		pfn, ok := tlb.Lookup(arch.VPN(100 + i))
		if !ok || pfn != arch.PFN(401+i) {
			t.Fatalf("Lookup(%d) = %d,%v", 100+i, pfn, ok)
		}
	}
}

func TestSubblockRemapReplacesStaleBit(t *testing.T) {
	tlb := NewSubblockTLB(8, 4)
	tlb.Insert(100, 400, testAttr)
	// The page migrates to a different frame; a fresh fill must win.
	tlb.Invalidate(100)
	tlb.Insert(100, 888, testAttr)
	pfn, ok := tlb.Lookup(100)
	if !ok || pfn != 888 {
		t.Fatalf("Lookup = %d,%v", pfn, ok)
	}
}

func TestSubblockEvictionReportsBlock(t *testing.T) {
	tlb := NewSubblockTLB(1, 1)
	tlb.Insert(0, 100, testAttr)
	evicted, was := tlb.Insert(4, 200, testAttr) // same set, different block
	if !was || evicted != 0 {
		t.Fatalf("evicted = %d,%v", evicted, was)
	}
}

func TestSubblockInvalidateAllAndStats(t *testing.T) {
	tlb := NewSubblockTLB(4, 2)
	tlb.Insert(8, 80, testAttr)
	tlb.Lookup(8)
	tlb.Lookup(9)
	st := tlb.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
	tlb.InvalidateAll()
	if tlb.Occupied() != 0 {
		t.Fatal("InvalidateAll incomplete")
	}
	tlb.ResetStats()
	if tlb.Stats().Lookups != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestSubblockConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSubblockTLB(3, 1) },
		func() { NewSubblockTLB(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

// TestSubblockHierarchyVsCoLT demonstrates the paper's §2.3 argument on
// a misaligned-contiguity address space: CoLT-SA coalesces it, the
// partial-subblock TLB cannot, and the miss rates separate accordingly.
func TestSubblockHierarchyVsCoLT(t *testing.T) {
	build := func() (Walker, int) {
		tbl, w := newWorld(t)
		const pages = 2000
		pfn := arch.PFN(1 << 22)
		for v := arch.VPN(0); v < pages; v++ {
			if v%16 == 0 {
				pfn += 101 // every run starts misaligned (101 % 4 != 0)
			}
			if err := tbl.Map(v, arch.PTE{PFN: pfn, Attr: testAttr}); err != nil {
				t.Fatal(err)
			}
			pfn++
		}
		return w, pages
	}
	run := func(cfg Config) Stats {
		w, pages := build()
		h := NewHierarchy(cfg, w)
		r := newDetRand(21)
		for i := 0; i < 150_000; i++ {
			vpn := arch.VPN(r.Intn(pages))
			for b := 0; b <= r.Intn(3) && vpn+arch.VPN(b) < arch.VPN(pages); b++ {
				if res := h.Access(vpn + arch.VPN(b)); res.Fault {
					t.Fatal("fault")
				}
			}
		}
		return h.Stats()
	}
	base := run(BaselineConfig())
	sb := run(PartialSubblockConfig())
	colt := run(CoLTSAConfig(2))
	// Subblocking shares nothing on misaligned runs: at best baseline.
	if sb.L2Misses < colt.L2Misses {
		t.Fatalf("misaligned space: subblock (%d) beat CoLT (%d)", sb.L2Misses, colt.L2Misses)
	}
	if colt.L2Misses >= base.L2Misses {
		t.Fatalf("CoLT did not beat baseline: %d vs %d", colt.L2Misses, base.L2Misses)
	}
	t.Logf("L2 misses: baseline=%d subblock=%d colt-sa=%d", base.L2Misses, sb.L2Misses, colt.L2Misses)
}

// TestSubblockHierarchyOracle checks translation correctness under the
// subblock policy with shootdowns.
func TestSubblockHierarchyOracle(t *testing.T) {
	tbl, w := newWorld(t)
	for c := 0; c < 32; c++ {
		mapRun(t, tbl, arch.VPN(c*16), arch.PFN(1<<21+c*16+c), 16)
	}
	h := NewHierarchy(PartialSubblockConfig(), w)
	r := newDetRand(33)
	next := arch.PFN(1 << 24)
	for i := 0; i < 40_000; i++ {
		vpn := arch.VPN(r.Intn(512))
		if r.Intn(100) == 0 {
			if err := tbl.Remap(vpn, next); err != nil {
				t.Fatal(err)
			}
			next++
			h.Invalidate(vpn)
		}
		res := h.Access(vpn)
		want, _, _ := tbl.Resolve(vpn)
		if res.Fault || res.PFN != want {
			t.Fatalf("Access(%d) = %+v, want %d", vpn, res, want)
		}
	}
	l1, l2 := h.Subblock()
	if l1.Stats().Lookups == 0 || l2.Stats().Lookups == 0 {
		t.Fatal("subblock structures unused")
	}
}
