package core

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/telemetry"
)

// MaxFACoalesce caps a fully-associative entry's coalescing length: the
// paper's coalescing-length field "captures a contiguity of 1024
// pages" (§4.2.2).
const MaxFACoalesce = 1024

// FullyAssocTLB is the small fully-associative TLB that conventionally
// caches superpage entries, extended by CoLT-FA to also hold coalesced
// base-page ranges (§4.2). Superpage and coalesced entries share the
// structure; LRU replacement keeps frequently-touched superpages alive.
//
// Entry state is laid out structure-of-arrays (§4.2.2, Figure 5 top —
// each conceptual entry is a superpage mapping or a coalesced range):
// the probe path scans only the baseVPN/endVPN lanes, with endVPN held
// at baseVPN+span for resident entries and collapsed to baseVPN for
// invalid ones, so a lookup is a branch-light contiguous range scan
// with no separate valid check. For superpage entries the span is
// arch.PagesPerHuge, which InsertHuge also records in the length lane,
// so endVPN = baseVPN + length holds for every resident entry.
type FullyAssocTLB struct {
	capacity int

	valid   []bool
	huge    []bool
	baseVPN []arch.VPN
	endVPN  []arch.VPN // baseVPN+span when resident, baseVPN when not
	basePFN []arch.PFN
	length  []int
	attr    []arch.Attr
	// rank fuses validity and LRU recency into one replacement-ordering
	// key (see validRankBit), so victim scans read a single lane.
	rank []uint64
	// born is the telemetry clock value at fill, so eviction can report
	// the entry's lifetime in references without any per-entry map.
	born []uint64

	tick uint64
	// occupied counts valid entries, maintained by setEntry/dropEntry,
	// so a probe of an empty structure (common: workloads without
	// superpages leave the non-CoLT-FA variants' sup TLB empty forever)
	// is a single compare instead of a full range scan.
	occupied int
	stats    TLBStats
	merges   uint64
	// coalesceBias enables coalescing-aware replacement (future work
	// of paper §4.2.3): see SetReplacementBias.
	coalesceBias bool
	// Telemetry (nil when disabled); see SetAssocTLB.SetTelemetry.
	tel      *telemetry.Sink
	telLevel uint8
	telClock *uint64
}

// SetTelemetry attaches a telemetry sink reporting this structure as
// level, with clock as the monotonic reference counter used to stamp
// fills and measure entry lifetimes. Pass a nil sink to detach.
func (t *FullyAssocTLB) SetTelemetry(s *telemetry.Sink, level uint8, clock *uint64) {
	t.tel, t.telLevel, t.telClock = s, level, clock
}

// telNow reads the telemetry clock (0 when detached).
func (t *FullyAssocTLB) telNow() uint64 {
	if t.telClock == nil {
		return 0
	}
	return *t.telClock
}

// NewFullyAssocTLB builds an empty structure with the given capacity
// (paper: 16 entries baseline, 8 with CoLT-FA/All to pay for the range
// comparators).
func NewFullyAssocTLB(capacity int) *FullyAssocTLB {
	if capacity <= 0 {
		panic("core: fully-associative TLB needs positive capacity")
	}
	return &FullyAssocTLB{
		capacity: capacity,
		valid:    make([]bool, capacity),
		huge:     make([]bool, capacity),
		baseVPN:  make([]arch.VPN, capacity),
		endVPN:   make([]arch.VPN, capacity),
		basePFN:  make([]arch.PFN, capacity),
		length:   make([]int, capacity),
		attr:     make([]arch.Attr, capacity),
		rank:     make([]uint64, capacity),
		born:     make([]uint64, capacity),
	}
}

// Capacity returns the entry count.
func (t *FullyAssocTLB) Capacity() int { return t.capacity }

// Stats returns a snapshot of the counters; Lookups is derived (every
// probe either hits or misses), keeping the probe path to one counter.
func (t *FullyAssocTLB) Stats() TLBStats {
	s := t.stats
	s.Lookups = s.Hits + s.Misses
	return s
}

// Merges counts fill-time coalescings with resident entries (§4.2.1
// step 5).
func (t *FullyAssocTLB) Merges() uint64 { return t.merges }

// ResetStats zeroes the counters.
func (t *FullyAssocTLB) ResetStats() {
	t.stats = TLBStats{}
	t.merges = 0
}

// dropEntry marks entry i invalid, collapsing its probe range so the
// lookup scan skips it without consulting the valid lane, and clearing
// the rank word's valid bit so replacement prefers the slot. length,
// the rank's stale tick, and born are left intact: stale values keep
// ordering replacement candidates among invalid slots.
func (t *FullyAssocTLB) dropEntry(i int) {
	if t.valid[i] {
		t.occupied--
	}
	t.valid[i] = false
	t.endVPN[i] = t.baseVPN[i]
	t.rank[i] &^= validRankBit
}

// span returns the number of pages entry i covers.
func (t *FullyAssocTLB) span(i int) int {
	if t.huge[i] {
		return arch.PagesPerHuge
	}
	return t.length[i]
}

// Lookup translates vpn via range check plus PPN generation: the offset
// of vpn within the entry's range is added to the base physical page
// (§4.2.2 steps a-b). Invalid entries hold empty ranges, so the scan
// needs no validity branch; VPNs are unsigned, so the two range bounds
// fold into one compare — vpn below the base wraps the subtraction to
// a huge value no entry's span can reach.
func (t *FullyAssocTLB) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	if t.occupied == 0 {
		t.stats.Misses++
		return 0, false
	}
	base := t.baseVPN
	end := t.endVPN[:len(base)]
	for i := range base {
		if off := vpn - base[i]; off < end[i]-base[i] {
			t.stats.Hits++
			t.tick++
			t.rank[i] = t.tick | validRankBit
			return t.basePFN[i] + arch.PFN(off), true
		}
	}
	t.stats.Misses++
	return 0, false
}

// setEntry overwrites entry i's lanes with a freshly-filled entry.
func (t *FullyAssocTLB) setEntry(i int, huge bool, baseVPN arch.VPN, basePFN arch.PFN, length int, attr arch.Attr) {
	if !t.valid[i] {
		t.occupied++
	}
	t.valid[i] = true
	t.huge[i] = huge
	t.baseVPN[i] = baseVPN
	t.endVPN[i] = baseVPN + arch.VPN(length)
	t.basePFN[i] = basePFN
	t.length[i] = length
	t.attr[i] = attr
	t.rank[i] = t.tick | validRankBit
	// born is only read when an eviction reports a lifetime, so the
	// store is skipped entirely when no sink is attached.
	if t.tel != nil {
		t.born[i] = t.telNow()
	}
}

// InsertHuge fills a 2 MB superpage entry. baseVPN and basePFN must be
// 512-aligned.
func (t *FullyAssocTLB) InsertHuge(baseVPN arch.VPN, basePFN arch.PFN, attr arch.Attr) {
	if baseVPN%arch.PagesPerHuge != 0 || basePFN%arch.PagesPerHuge != 0 {
		panic(fmt.Sprintf("core: unaligned superpage v%d p%d", baseVPN, basePFN))
	}
	t.tick++
	t.stats.Fills++
	// Refresh in place if already resident.
	for i := 0; i < t.capacity; i++ {
		if t.valid[i] && t.huge[i] && t.baseVPN[i] == baseVPN {
			t.basePFN[i], t.attr[i], t.rank[i] = basePFN, attr, t.tick|validRankBit
			return
		}
	}
	t.setEntry(t.victim(), true, baseVPN, basePFN, arch.PagesPerHuge, attr)
}

// Insert fills a coalesced range entry, first attempting to coalesce
// with resident entries: any resident non-superpage entry whose range
// is adjacent to or overlaps the new run with a consistent VPN→PFN
// offset and equal attributes is merged into it (the paper's
// fill-path secondary coalescing, §4.2.1). Merging cascades until no
// further neighbor qualifies.
func (t *FullyAssocTLB) Insert(run Run) {
	if run.Len <= 0 {
		panic("core: empty run")
	}
	if run.Len > MaxFACoalesce {
		run.Len = MaxFACoalesce
	}
	t.tick++
	t.stats.Fills++
	t.stats.CoalescedIn += uint64(run.Len - 1)

	// Absorb every mergeable resident entry into run.
	for {
		mergedAny := false
		for i := 0; i < t.capacity; i++ {
			if !t.valid[i] || t.huge[i] || t.attr[i] != run.Attr {
				continue
			}
			if !t.rangesMergeable(i, run) {
				continue
			}
			lo := t.baseVPN[i]
			if run.BaseVPN < lo {
				lo = run.BaseVPN
			}
			hi := t.baseVPN[i] + arch.VPN(t.length[i])
			if run.End() > hi {
				hi = run.End()
			}
			if int(hi-lo) > MaxFACoalesce {
				continue
			}
			run = Run{
				BaseVPN: lo,
				BasePFN: run.BasePFN - arch.PFN(run.BaseVPN-lo),
				Len:     int(hi - lo),
				Attr:    run.Attr,
			}
			t.dropEntry(i)
			t.merges++
			if t.tel != nil {
				t.tel.Merge(t.telLevel, uint64(run.BaseVPN), uint64(run.Len))
			}
			mergedAny = true
		}
		if !mergedAny {
			break
		}
	}

	t.setEntry(t.victim(), false, run.BaseVPN, run.BasePFN, run.Len, run.Attr)
}

// rangesMergeable reports whether entry i and run cover adjacent or
// overlapping VPN ranges with the same VPN→PFN delta, i.e. whether
// their union is still a single contiguous translation range.
func (t *FullyAssocTLB) rangesMergeable(i int, run Run) bool {
	if arch.VPN(t.basePFN[i])-arch.VPN(t.baseVPN[i]) != arch.VPN(run.BasePFN)-arch.VPN(run.BaseVPN) {
		return false
	}
	eEnd := t.baseVPN[i] + arch.VPN(t.length[i])
	return run.BaseVPN <= eEnd && t.baseVPN[i] <= run.End()
}

// victim returns the index to overwrite: an invalid slot if one exists,
// else the LRU entry (or, under coalescing-aware replacement, the
// shortest-range entry with LRU as the tie-breaker; superpages count as
// maximal ranges).
func (t *FullyAssocTLB) victim() int {
	victim := 0
	if t.coalesceBias {
		for i := 1; i < t.capacity; i++ {
			if t.lessFACoalesce(i, victim) {
				victim = i
			}
		}
	} else {
		vRank := t.rank[0]
		for i := 1; i < t.capacity; i++ {
			if r := t.rank[i]; r < vRank {
				victim, vRank = i, r
			}
		}
	}
	if t.valid[victim] {
		t.stats.Evictions++
		if t.tel != nil {
			t.tel.Evict(t.telLevel, uint64(t.baseVPN[victim]), t.telNow()-t.born[victim])
		}
	}
	return victim
}

func (t *FullyAssocTLB) lessFACoalesce(a, b int) bool {
	if t.valid[a] != t.valid[b] {
		return !t.valid[a]
	}
	la, lb := t.length[a], t.length[b]
	if la != lb {
		return la < lb
	}
	return t.rank[a] < t.rank[b]
}

// lessFALRU orders replacement candidates: invalid slots first, then
// least-recently used — exactly the rank lane's unsigned order.
func (t *FullyAssocTLB) lessFALRU(a, b int) bool {
	return t.rank[a] < t.rank[b]
}

// Invalidate drops every entry whose range covers vpn (whole entries,
// §4.2.3). Returns true if any entry was removed.
func (t *FullyAssocTLB) Invalidate(vpn arch.VPN) bool {
	removed := false
	for i := 0; i < t.capacity; i++ {
		if t.valid[i] && vpn >= t.baseVPN[i] && vpn < t.endVPN[i] {
			t.dropEntry(i)
			removed = true
			t.stats.Invalidates++
		}
	}
	return removed
}

// InvalidateAll flushes the TLB.
func (t *FullyAssocTLB) InvalidateAll() {
	for i := 0; i < t.capacity; i++ {
		t.dropEntry(i)
	}
	t.stats.Invalidates++
}

// EachEntry calls fn with every valid entry's range (as a Run) and
// whether it is a superpage entry, in entry order. Invariant auditors
// use this to check resident ranges against the page table; it does
// not touch recency or counters.
func (t *FullyAssocTLB) EachEntry(fn func(run Run, huge bool)) {
	for i := 0; i < t.capacity; i++ {
		if !t.valid[i] {
			continue
		}
		fn(Run{BaseVPN: t.baseVPN[i], BasePFN: t.basePFN[i], Len: t.span(i), Attr: t.attr[i]}, t.huge[i])
	}
}

// Occupied returns the number of valid entries.
func (t *FullyAssocTLB) Occupied() int { return t.occupied }
