package core

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/telemetry"
)

// MaxFACoalesce caps a fully-associative entry's coalescing length: the
// paper's coalescing-length field "captures a contiguity of 1024
// pages" (§4.2.2).
const MaxFACoalesce = 1024

// faEntry is one fully-associative TLB entry (§4.2.2, Figure 5 top):
// either a superpage mapping or a coalesced range with a base virtual
// page, base physical page, and coalescing length. Range checking
// compares the requested VPN against [BaseVPN, BaseVPN+Len).
type faEntry struct {
	valid   bool
	huge    bool
	baseVPN arch.VPN
	basePFN arch.PFN
	length  int
	attr    arch.Attr
	lru     uint64
	// born is the telemetry clock value at fill, so eviction can report
	// the entry's lifetime in references without any per-entry map.
	born uint64
}

func (e *faEntry) contains(vpn arch.VPN) bool {
	n := e.length
	if e.huge {
		n = arch.PagesPerHuge
	}
	return vpn >= e.baseVPN && vpn < e.baseVPN+arch.VPN(n)
}

// FullyAssocTLB is the small fully-associative TLB that conventionally
// caches superpage entries, extended by CoLT-FA to also hold coalesced
// base-page ranges (§4.2). Superpage and coalesced entries share the
// structure; LRU replacement keeps frequently-touched superpages alive.
type FullyAssocTLB struct {
	capacity int
	entries  []faEntry
	tick     uint64
	stats    TLBStats
	merges   uint64
	// coalesceBias enables coalescing-aware replacement (future work
	// of paper §4.2.3): see SetReplacementBias.
	coalesceBias bool
	// Telemetry (nil when disabled); see SetAssocTLB.SetTelemetry.
	tel      *telemetry.Sink
	telLevel uint8
	telClock *uint64
}

// SetTelemetry attaches a telemetry sink reporting this structure as
// level, with clock as the monotonic reference counter used to stamp
// fills and measure entry lifetimes. Pass a nil sink to detach.
func (t *FullyAssocTLB) SetTelemetry(s *telemetry.Sink, level uint8, clock *uint64) {
	t.tel, t.telLevel, t.telClock = s, level, clock
}

// telNow reads the telemetry clock (0 when detached).
func (t *FullyAssocTLB) telNow() uint64 {
	if t.telClock == nil {
		return 0
	}
	return *t.telClock
}

// NewFullyAssocTLB builds an empty structure with the given capacity
// (paper: 16 entries baseline, 8 with CoLT-FA/All to pay for the range
// comparators).
func NewFullyAssocTLB(capacity int) *FullyAssocTLB {
	if capacity <= 0 {
		panic("core: fully-associative TLB needs positive capacity")
	}
	return &FullyAssocTLB{capacity: capacity, entries: make([]faEntry, capacity)}
}

// Capacity returns the entry count.
func (t *FullyAssocTLB) Capacity() int { return t.capacity }

// Stats returns a snapshot of the counters.
func (t *FullyAssocTLB) Stats() TLBStats { return t.stats }

// Merges counts fill-time coalescings with resident entries (§4.2.1
// step 5).
func (t *FullyAssocTLB) Merges() uint64 { return t.merges }

// ResetStats zeroes the counters.
func (t *FullyAssocTLB) ResetStats() {
	t.stats = TLBStats{}
	t.merges = 0
}

// Lookup translates vpn via range check plus PPN generation: the offset
// of vpn within the entry's range is added to the base physical page
// (§4.2.2 steps a-b).
func (t *FullyAssocTLB) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	t.stats.Lookups++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.contains(vpn) {
			t.stats.Hits++
			t.tick++
			e.lru = t.tick
			return e.basePFN + arch.PFN(vpn-e.baseVPN), true
		}
	}
	t.stats.Misses++
	return 0, false
}

// InsertHuge fills a 2 MB superpage entry. baseVPN and basePFN must be
// 512-aligned.
func (t *FullyAssocTLB) InsertHuge(baseVPN arch.VPN, basePFN arch.PFN, attr arch.Attr) {
	if baseVPN%arch.PagesPerHuge != 0 || basePFN%arch.PagesPerHuge != 0 {
		panic(fmt.Sprintf("core: unaligned superpage v%d p%d", baseVPN, basePFN))
	}
	t.tick++
	t.stats.Fills++
	// Refresh in place if already resident.
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.huge && e.baseVPN == baseVPN {
			e.basePFN, e.attr, e.lru = basePFN, attr, t.tick
			return
		}
	}
	v := t.victim()
	*v = faEntry{valid: true, huge: true, baseVPN: baseVPN, basePFN: basePFN, length: arch.PagesPerHuge, attr: attr, lru: t.tick, born: t.telNow()}
}

// Insert fills a coalesced range entry, first attempting to coalesce
// with resident entries: any resident non-superpage entry whose range
// is adjacent to or overlaps the new run with a consistent VPN→PFN
// offset and equal attributes is merged into it (the paper's
// fill-path secondary coalescing, §4.2.1). Merging cascades until no
// further neighbor qualifies.
func (t *FullyAssocTLB) Insert(run Run) {
	if run.Len <= 0 {
		panic("core: empty run")
	}
	if run.Len > MaxFACoalesce {
		run.Len = MaxFACoalesce
	}
	t.tick++
	t.stats.Fills++
	t.stats.CoalescedIn += uint64(run.Len - 1)

	// Absorb every mergeable resident entry into run.
	for {
		mergedAny := false
		for i := range t.entries {
			e := &t.entries[i]
			if !e.valid || e.huge || e.attr != run.Attr {
				continue
			}
			if !rangesMergeable(e, run) {
				continue
			}
			lo := e.baseVPN
			if run.BaseVPN < lo {
				lo = run.BaseVPN
			}
			hi := e.baseVPN + arch.VPN(e.length)
			if run.End() > hi {
				hi = run.End()
			}
			if int(hi-lo) > MaxFACoalesce {
				continue
			}
			run = Run{
				BaseVPN: lo,
				BasePFN: run.BasePFN - arch.PFN(run.BaseVPN-lo),
				Len:     int(hi - lo),
				Attr:    run.Attr,
			}
			e.valid = false
			t.merges++
			if t.tel != nil {
				t.tel.Merge(t.telLevel, uint64(run.BaseVPN), uint64(run.Len))
			}
			mergedAny = true
		}
		if !mergedAny {
			break
		}
	}

	v := t.victim()
	*v = faEntry{valid: true, baseVPN: run.BaseVPN, basePFN: run.BasePFN, length: run.Len, attr: run.Attr, lru: t.tick, born: t.telNow()}
}

// rangesMergeable reports whether entry e and run cover adjacent or
// overlapping VPN ranges with the same VPN→PFN delta, i.e. whether
// their union is still a single contiguous translation range.
func rangesMergeable(e *faEntry, run Run) bool {
	if arch.VPN(e.basePFN)-arch.VPN(e.baseVPN) != arch.VPN(run.BasePFN)-arch.VPN(run.BaseVPN) {
		return false
	}
	eEnd := e.baseVPN + arch.VPN(e.length)
	return run.BaseVPN <= eEnd && e.baseVPN <= run.End()
}

// victim returns the entry to overwrite: an invalid slot if one exists,
// else the LRU entry (or, under coalescing-aware replacement, the
// shortest-range entry with LRU as the tie-breaker; superpages count as
// maximal ranges).
func (t *FullyAssocTLB) victim() *faEntry {
	victim := &t.entries[0]
	for i := 1; i < len(t.entries); i++ {
		e := &t.entries[i]
		if t.coalesceBias {
			if lessFACoalesce(e, victim) {
				victim = e
			}
		} else if lessFALRU(e, victim) {
			victim = e
		}
	}
	if victim.valid {
		t.stats.Evictions++
		if t.tel != nil {
			t.tel.Evict(t.telLevel, uint64(victim.baseVPN), t.telNow()-victim.born)
		}
	}
	return victim
}

func lessFACoalesce(a, b *faEntry) bool {
	if a.valid != b.valid {
		return !a.valid
	}
	la, lb := a.length, b.length
	if la != lb {
		return la < lb
	}
	return a.lru < b.lru
}

func lessFALRU(a, b *faEntry) bool {
	if a.valid != b.valid {
		return !a.valid
	}
	return a.lru < b.lru
}

// Invalidate drops every entry whose range covers vpn (whole entries,
// §4.2.3). Returns true if any entry was removed.
func (t *FullyAssocTLB) Invalidate(vpn arch.VPN) bool {
	removed := false
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.contains(vpn) {
			e.valid = false
			removed = true
			t.stats.Invalidates++
		}
	}
	return removed
}

// InvalidateAll flushes the TLB.
func (t *FullyAssocTLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.stats.Invalidates++
}

// EachEntry calls fn with every valid entry's range (as a Run) and
// whether it is a superpage entry, in entry order. Invariant auditors
// use this to check resident ranges against the page table; it does
// not touch recency or counters.
func (t *FullyAssocTLB) EachEntry(fn func(run Run, huge bool)) {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		n := e.length
		if e.huge {
			n = arch.PagesPerHuge
		}
		fn(Run{BaseVPN: e.baseVPN, BasePFN: e.basePFN, Len: n, Attr: e.attr}, e.huge)
	}
}

// Occupied returns the number of valid entries.
func (t *FullyAssocTLB) Occupied() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
