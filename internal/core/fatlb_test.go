package core

import (
	"testing"

	"colt/internal/arch"
)

func TestFATLBRangeLookup(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	if tlb.Capacity() != 8 {
		t.Fatalf("Capacity = %d", tlb.Capacity())
	}
	tlb.Insert(Run{BaseVPN: 100, BasePFN: 1000, Len: 30, Attr: testAttr})
	for _, v := range []arch.VPN{100, 115, 129} {
		pfn, ok := tlb.Lookup(v)
		if !ok || pfn != 1000+arch.PFN(v-100) {
			t.Fatalf("Lookup(%d) = %d,%v", v, pfn, ok)
		}
	}
	if _, ok := tlb.Lookup(130); ok {
		t.Fatal("hit past range end")
	}
	if _, ok := tlb.Lookup(99); ok {
		t.Fatal("hit before range start")
	}
}

func TestFATLBHugeEntry(t *testing.T) {
	tlb := NewFullyAssocTLB(4)
	tlb.InsertHuge(512, 2048, testAttr)
	pfn, ok := tlb.Lookup(512 + 37)
	if !ok || pfn != 2048+37 {
		t.Fatalf("huge Lookup = %d,%v", pfn, ok)
	}
	if _, ok := tlb.Lookup(511); ok {
		t.Fatal("hit outside superpage")
	}
	// Re-inserting the same superpage must not duplicate.
	tlb.InsertHuge(512, 2048, testAttr)
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d after duplicate InsertHuge", tlb.Occupied())
	}
}

func TestFATLBHugeAlignmentPanics(t *testing.T) {
	tlb := NewFullyAssocTLB(4)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned superpage accepted")
		}
	}()
	tlb.InsertHuge(100, 2048, testAttr)
}

func TestFATLBMergeAdjacent(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 10, BasePFN: 110, Len: 8, Attr: testAttr})
	// Adjacent after, consistent delta: must merge into one entry.
	tlb.Insert(Run{BaseVPN: 18, BasePFN: 118, Len: 8, Attr: testAttr})
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d, want merged single entry", tlb.Occupied())
	}
	if tlb.Merges() != 1 {
		t.Fatalf("Merges = %d", tlb.Merges())
	}
	pfn, ok := tlb.Lookup(25)
	if !ok || pfn != 125 {
		t.Fatalf("merged Lookup = %d,%v", pfn, ok)
	}
	// Adjacent before.
	tlb.Insert(Run{BaseVPN: 2, BasePFN: 102, Len: 8, Attr: testAttr})
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d after pre-merge", tlb.Occupied())
	}
	if pfn, _ := tlb.Lookup(2); pfn != 102 {
		t.Fatalf("pre-merged base = %d", pfn)
	}
}

func TestFATLBMergeCascades(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 4, Attr: testAttr})
	tlb.Insert(Run{BaseVPN: 8, BasePFN: 108, Len: 4, Attr: testAttr})
	// The bridging run connects both: all three become one entry.
	tlb.Insert(Run{BaseVPN: 4, BasePFN: 104, Len: 4, Attr: testAttr})
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d, want fully cascaded merge", tlb.Occupied())
	}
	for v := arch.VPN(0); v < 12; v++ {
		pfn, ok := tlb.Lookup(v)
		if !ok || pfn != 100+arch.PFN(v) {
			t.Fatalf("Lookup(%d) = %d,%v", v, pfn, ok)
		}
	}
}

func TestFATLBNoMergeOnInconsistentDelta(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 4, Attr: testAttr})
	// Adjacent VPNs but the physical side jumps: not mergeable.
	tlb.Insert(Run{BaseVPN: 4, BasePFN: 500, Len: 4, Attr: testAttr})
	if tlb.Occupied() != 2 {
		t.Fatalf("Occupied = %d, want 2 distinct entries", tlb.Occupied())
	}
}

func TestFATLBNoMergeOnAttrMismatch(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 4, Attr: testAttr})
	tlb.Insert(Run{BaseVPN: 4, BasePFN: 104, Len: 4, Attr: arch.AttrPresent})
	if tlb.Occupied() != 2 {
		t.Fatalf("Occupied = %d, want 2 (attrs differ)", tlb.Occupied())
	}
}

func TestFATLBMergeRespectsCap(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 0, Len: MaxFACoalesce - 4, Attr: testAttr})
	tlb.Insert(Run{BaseVPN: arch.VPN(MaxFACoalesce - 4), BasePFN: arch.PFN(MaxFACoalesce - 4), Len: 100, Attr: testAttr})
	if tlb.Occupied() != 2 {
		t.Fatalf("merge exceeded %d-page cap: occupied=%d", MaxFACoalesce, tlb.Occupied())
	}
	// Oversized inserts are truncated.
	tlb.Insert(Run{BaseVPN: 1 << 30, BasePFN: 0, Len: MaxFACoalesce + 100, Attr: testAttr})
	if _, ok := tlb.Lookup(1<<30 + arch.VPN(MaxFACoalesce)); ok {
		t.Fatal("entry exceeds cap")
	}
	if _, ok := tlb.Lookup(1<<30 + arch.VPN(MaxFACoalesce) - 1); !ok {
		t.Fatal("capped entry missing coverage below cap")
	}
}

func TestFATLBLRUAndSuperpageRetention(t *testing.T) {
	tlb := NewFullyAssocTLB(2)
	tlb.InsertHuge(0, 0, testAttr)
	tlb.Insert(Run{BaseVPN: 1000, BasePFN: 1, Len: 2, Attr: testAttr})
	// Touch the superpage: it becomes MRU, so the range entry is the
	// victim (the paper's observation that hot superpages stay at the
	// head of the LRU list).
	tlb.Lookup(5)
	tlb.Insert(Run{BaseVPN: 2000, BasePFN: 9, Len: 2, Attr: testAttr})
	if _, ok := tlb.Lookup(5); !ok {
		t.Fatal("hot superpage evicted")
	}
	if _, ok := tlb.Lookup(1000); ok {
		t.Fatal("LRU range entry survived")
	}
	if tlb.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", tlb.Stats().Evictions)
	}
}

func TestFATLBInvalidate(t *testing.T) {
	tlb := NewFullyAssocTLB(4)
	tlb.Insert(Run{BaseVPN: 50, BasePFN: 500, Len: 10, Attr: testAttr})
	if !tlb.Invalidate(55) {
		t.Fatal("Invalidate found nothing")
	}
	// Whole range flushed.
	if _, ok := tlb.Lookup(50); ok {
		t.Fatal("range survived invalidation")
	}
	if tlb.Invalidate(55) {
		t.Fatal("second invalidate removed something")
	}
	tlb.InsertHuge(512, 512, testAttr)
	tlb.InvalidateAll()
	if tlb.Occupied() != 0 {
		t.Fatal("InvalidateAll incomplete")
	}
}

func TestFATLBConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewFullyAssocTLB(0)
}

func TestFATLBEmptyRunPanics(t *testing.T) {
	tlb := NewFullyAssocTLB(2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty run accepted")
		}
	}()
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 0, Len: 0, Attr: testAttr})
}

func TestFATLBResetStats(t *testing.T) {
	tlb := NewFullyAssocTLB(2)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 0, Len: 2, Attr: testAttr})
	tlb.Insert(Run{BaseVPN: 2, BasePFN: 2, Len: 2, Attr: testAttr})
	tlb.Lookup(0)
	tlb.ResetStats()
	if tlb.Stats().Lookups != 0 || tlb.Merges() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}
