// Package core implements the paper's contribution: Coalesced
// Large-Reach TLBs. It provides the set-associative TLB with
// left-shifted set indexing and valid-bit coalescing (CoLT-SA, §4.1),
// the fully-associative range-coalescing superpage TLB (CoLT-FA, §4.2),
// the threshold-routed combined design (CoLT-All, §4.3), the coalescing
// logic that scans the eight PTEs of a page-walk cache line, and the
// two-level TLB hierarchy that ties them together.
package core

import (
	"fmt"

	"colt/internal/arch"
)

// Run is a coalesced group of translations: Len consecutive virtual
// pages starting at BaseVPN mapped to Len consecutive physical frames
// starting at BasePFN, all sharing Attr. Len == 1 is an ordinary
// translation.
type Run struct {
	BaseVPN arch.VPN
	BasePFN arch.PFN
	Len     int
	Attr    arch.Attr
}

// End returns one past the last VPN of the run.
func (r Run) End() arch.VPN { return r.BaseVPN + arch.VPN(r.Len) }

// Contains reports whether the run translates vpn.
func (r Run) Contains(vpn arch.VPN) bool {
	return vpn >= r.BaseVPN && vpn < r.End()
}

// Translate returns the frame backing vpn; Contains must hold.
func (r Run) Translate(vpn arch.VPN) arch.PFN {
	return r.BasePFN + arch.PFN(vpn-r.BaseVPN)
}

// Single builds a one-page run from a translation.
func Single(vpn arch.VPN, pte arch.PTE) Run {
	return Run{BaseVPN: vpn, BasePFN: pte.PFN, Len: 1, Attr: pte.Attr}
}

// String implements fmt.Stringer.
func (r Run) String() string {
	return fmt.Sprintf("Run{v%d->p%d x%d}", r.BaseVPN, r.BasePFN, r.Len)
}

// FindRun scans a page-walk cache line (eight translations with
// consecutive VPNs) for the maximal contiguous, attribute-matching run
// containing req, which must be one of the line's VPNs. This is the
// coalescing logic of §4.1.1/§4.1.4: it inspects only the translations
// that the walk's 64-byte LLC fill already fetched, so detecting the
// run costs no extra memory references and coalescing is bounded at
// eight translations.
func FindRun(line [arch.PTEsPerLine]arch.Translation, req arch.VPN) Run {
	idx := int(req - line[0].VPN)
	if idx < 0 || idx >= arch.PTEsPerLine || line[idx].VPN != req {
		panic(fmt.Sprintf("core: requested VPN %d not in line starting at %d", req, line[0].VPN))
	}
	lo, hi := idx, idx
	for lo > 0 && line[lo-1].ContiguousWith(line[lo]) {
		lo--
	}
	for hi < arch.PTEsPerLine-1 && line[hi].ContiguousWith(line[hi+1]) {
		hi++
	}
	base := line[lo]
	return Run{
		BaseVPN: base.VPN,
		BasePFN: base.PTE.PFN,
		Len:     hi - lo + 1,
		Attr:    base.PTE.Attr,
	}
}

// ClipToBlock intersects the run with the aligned 2^shift-page block
// containing req — the largest group of translations a set-associative
// TLB indexed with a shift-bit left-shifted index can hold in one entry
// (§4.1.2). req must be inside the run.
func ClipToBlock(r Run, req arch.VPN, shift uint) Run {
	if !r.Contains(req) {
		panic(fmt.Sprintf("core: ClipToBlock: %v does not contain %d", r, req))
	}
	blockSize := arch.VPN(1) << shift
	blockStart := req &^ (blockSize - 1)
	start := r.BaseVPN
	if blockStart > start {
		start = blockStart
	}
	end := r.End()
	if blockEnd := blockStart + blockSize; blockEnd < end {
		end = blockEnd
	}
	return Run{
		BaseVPN: start,
		BasePFN: r.BasePFN + arch.PFN(start-r.BaseVPN),
		Len:     int(end - start),
		Attr:    r.Attr,
	}
}
