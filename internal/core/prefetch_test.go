package core

import (
	"testing"

	"colt/internal/arch"
)

func TestPrefetchBufferBasics(t *testing.T) {
	pb := NewPrefetchBuffer(2)
	pb.Insert(10, 100, testAttr)
	pfn, attr, ok := pb.Lookup(10)
	if !ok || pfn != 100 || attr != testAttr {
		t.Fatalf("Lookup = %d,%v,%v", pfn, attr, ok)
	}
	// Consumed on hit.
	if _, _, ok := pb.Lookup(10); ok {
		t.Fatal("entry survived consumption")
	}
	if pb.Hits() != 1 || pb.Misses() != 1 || pb.Filled() != 1 {
		t.Fatalf("counters: hits=%d misses=%d filled=%d", pb.Hits(), pb.Misses(), pb.Filled())
	}
}

func TestPrefetchBufferLRUAndDedup(t *testing.T) {
	pb := NewPrefetchBuffer(2)
	pb.Insert(1, 10, testAttr)
	pb.Insert(2, 20, testAttr)
	pb.Insert(1, 11, testAttr) // refresh in place, not a new slot
	if _, _, ok := pb.Lookup(2); !ok {
		t.Fatal("refresh evicted the other entry")
	}
	pb.Insert(3, 30, testAttr)
	pb.Insert(4, 40, testAttr) // evicts LRU (vpn 1)
	if _, _, ok := pb.Lookup(1); ok {
		t.Fatal("LRU entry survived")
	}
	pb.Invalidate(3)
	if _, _, ok := pb.Lookup(3); ok {
		t.Fatal("invalidated entry resident")
	}
	pb.InvalidateAll()
	if _, _, ok := pb.Lookup(4); ok {
		t.Fatal("InvalidateAll incomplete")
	}
}

func TestPrefetchBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewPrefetchBuffer(0)
}

func TestSeqPrefetchHierarchy(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 8)
	h := NewHierarchy(SeqPrefetchConfig(), w)
	first := h.Access(64)
	if !first.Walked {
		t.Fatal("first access did not walk")
	}
	// The sequential prefetcher fetched vpn 65: next access avoids a
	// demand walk.
	res := h.Access(65)
	if res.Walked {
		t.Fatal("prefetched page still walked")
	}
	if res.PFN != 5001 {
		t.Fatalf("prefetched PFN = %d", res.PFN)
	}
	st := h.PrefetchStats()
	if st.BufferHits != 1 {
		t.Fatalf("BufferHits = %d", st.BufferHits)
	}
	if st.PrefetchWalks == 0 {
		t.Fatal("no prefetch walks recorded")
	}
	// Demand walk cycles exclude prefetch traffic.
	if h.Stats().Walks != 2 { // 64 walk + 65's own +1/-1 fills... 65 hit PB: walks stay at the two demand walks? 64 walked once; 65 did not walk.
		t.Logf("walks = %d", h.Stats().Walks)
	}
}

func TestSeqPrefetchOracle(t *testing.T) {
	tbl, w := newWorld(t)
	for c := 0; c < 32; c++ {
		mapRun(t, tbl, arch.VPN(c*16), arch.PFN(1<<21+c*16), 16)
	}
	h := NewHierarchy(SeqPrefetchConfig(), w)
	r := newDetRand(3)
	for i := 0; i < 40_000; i++ {
		vpn := arch.VPN(r.Intn(512))
		res := h.Access(vpn)
		want, _, _ := tbl.Resolve(vpn)
		if res.Fault || res.PFN != want {
			t.Fatalf("Access(%d) = %+v, want %d", vpn, res, want)
		}
	}
	st := h.Stats()
	if st.L1Hits+st.SupHits+st.L1Misses != st.Accesses {
		t.Fatalf("accounting broken: %+v", st)
	}
	if h.PrefetchStats().BufferHits == 0 {
		t.Fatal("prefetcher never hit on a bursty workload")
	}
}

func TestSeqPrefetchHelpsSequentialHurtsBandwidth(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 0, 1<<21, 2048)
	h := NewHierarchy(SeqPrefetchConfig(), w)
	base := NewHierarchy(BaselineConfig(), w)
	for v := arch.VPN(0); v < 2048; v++ {
		h.Access(v)
		base.Access(v)
	}
	if h.Stats().Walks >= base.Stats().Walks {
		t.Fatalf("prefetching did not cut demand walks on a scan: %d vs %d",
			h.Stats().Walks, base.Stats().Walks)
	}
	// The bandwidth objection: extra walks were spent filling the
	// buffer.
	if h.PrefetchStats().PrefetchWalks == 0 {
		t.Fatal("no bandwidth overhead recorded")
	}
	if h.PrefetchStats().Wasted == 0 {
		t.Fatal("a +/-1 prefetcher on a forward scan must waste the -1 fills")
	}
}

func TestSeqPrefetchShootdown(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 4)
	h := NewHierarchy(SeqPrefetchConfig(), w)
	h.Access(64) // prefetches 65
	if err := tbl.Remap(65, 9999); err != nil {
		t.Fatal(err)
	}
	h.Invalidate(65)
	res := h.Access(65)
	if res.PFN != 9999 {
		t.Fatalf("stale prefetched translation served: %d", res.PFN)
	}
}

func TestPolicyStringPrefetch(t *testing.T) {
	if PolicySeqPrefetch.String() != "seq-prefetch" {
		t.Fatal("policy name")
	}
}
