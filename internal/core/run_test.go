package core

import (
	"testing"

	"colt/internal/arch"
)

const testAttr = arch.AttrPresent | arch.AttrWritable | arch.AttrUser

// makeLine builds a PTE cache line of 8 translations starting at
// baseVPN; pfns[i] < 0 marks slot i absent.
func makeLine(baseVPN arch.VPN, pfns [8]int64) [arch.PTEsPerLine]arch.Translation {
	var line [arch.PTEsPerLine]arch.Translation
	for i := range line {
		line[i].VPN = baseVPN + arch.VPN(i)
		if pfns[i] >= 0 {
			line[i].PTE = arch.PTE{PFN: arch.PFN(pfns[i]), Attr: testAttr}
		}
	}
	return line
}

func TestRunBasics(t *testing.T) {
	r := Run{BaseVPN: 10, BasePFN: 100, Len: 4, Attr: testAttr}
	if r.End() != 14 {
		t.Fatalf("End = %d", r.End())
	}
	if !r.Contains(10) || !r.Contains(13) || r.Contains(14) || r.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if r.Translate(12) != 102 {
		t.Fatalf("Translate = %d", r.Translate(12))
	}
	s := Single(5, arch.PTE{PFN: 50, Attr: testAttr})
	if s.Len != 1 || s.BaseVPN != 5 || s.BasePFN != 50 {
		t.Fatalf("Single = %+v", s)
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestFindRunFullLine(t *testing.T) {
	line := makeLine(16, [8]int64{200, 201, 202, 203, 204, 205, 206, 207})
	r := FindRun(line, 19)
	if r.BaseVPN != 16 || r.BasePFN != 200 || r.Len != 8 {
		t.Fatalf("run = %+v", r)
	}
}

func TestFindRunMidLineBreaks(t *testing.T) {
	// PFNs: contiguous 0-2, gap, contiguous 4-7.
	line := makeLine(16, [8]int64{200, 201, 202, 900, 204, 205, 206, 207})
	if r := FindRun(line, 17); r.BaseVPN != 16 || r.Len != 3 {
		t.Fatalf("left run = %+v", r)
	}
	if r := FindRun(line, 19); r.Len != 1 || r.BasePFN != 900 {
		t.Fatalf("isolated run = %+v", r)
	}
	if r := FindRun(line, 21); r.BaseVPN != 20 || r.BasePFN != 204 || r.Len != 4 {
		t.Fatalf("right run = %+v", r)
	}
}

func TestFindRunAbsentNeighbors(t *testing.T) {
	line := makeLine(0, [8]int64{-1, 101, 102, -1, -1, -1, -1, -1})
	r := FindRun(line, 2)
	if r.BaseVPN != 1 || r.Len != 2 {
		t.Fatalf("run = %+v", r)
	}
}

func TestFindRunAttrBreaks(t *testing.T) {
	line := makeLine(8, [8]int64{300, 301, 302, 303, -1, -1, -1, -1})
	line[2].PTE.Attr = arch.AttrPresent // different attributes
	r := FindRun(line, 9)
	if r.Len != 2 || r.BaseVPN != 8 {
		t.Fatalf("attr-limited run = %+v", r)
	}
	// The differently-attributed page starts its own run.
	r2 := FindRun(line, 10)
	if r2.Len != 1 {
		t.Fatalf("run at attr boundary = %+v", r2)
	}
}

func TestFindRunPanicsOutsideLine(t *testing.T) {
	line := makeLine(8, [8]int64{1, 2, 3, 4, 5, 6, 7, 8})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-line VPN")
		}
	}()
	FindRun(line, 99)
}

func TestClipToBlock(t *testing.T) {
	r := Run{BaseVPN: 14, BasePFN: 140, Len: 8, Attr: testAttr} // covers 14..21
	// Blocks of 4: [12,16) and [16,20) and [20,24).
	c := ClipToBlock(r, 15, 2)
	if c.BaseVPN != 14 || c.Len != 2 || c.BasePFN != 140 {
		t.Fatalf("clip lower = %+v", c)
	}
	c = ClipToBlock(r, 17, 2)
	if c.BaseVPN != 16 || c.Len != 4 || c.BasePFN != 142 {
		t.Fatalf("clip middle = %+v", c)
	}
	c = ClipToBlock(r, 21, 2)
	if c.BaseVPN != 20 || c.Len != 2 || c.BasePFN != 146 {
		t.Fatalf("clip upper = %+v", c)
	}
	// shift 0: always a single page.
	c = ClipToBlock(r, 18, 0)
	if c.Len != 1 || c.BaseVPN != 18 || c.BasePFN != 144 {
		t.Fatalf("clip shift0 = %+v", c)
	}
	// shift 3: block [16,24) clips to 16..21.
	c = ClipToBlock(r, 18, 3)
	if c.BaseVPN != 16 || c.Len != 6 {
		t.Fatalf("clip shift3 = %+v", c)
	}
}

func TestClipToBlockPanicsOutside(t *testing.T) {
	r := Run{BaseVPN: 4, BasePFN: 40, Len: 2, Attr: testAttr}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ClipToBlock(r, 10, 2)
}
