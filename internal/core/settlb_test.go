package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colt/internal/arch"
)

func TestSetTLBBaselineSingleEntry(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 0)
	if tlb.Entries() != 32 || tlb.MaxCoalesce() != 1 {
		t.Fatalf("geometry: %d entries, max %d", tlb.Entries(), tlb.MaxCoalesce())
	}
	if _, ok := tlb.Lookup(5); ok {
		t.Fatal("hit on empty TLB")
	}
	tlb.Insert(Run{BaseVPN: 5, BasePFN: 50, Len: 1, Attr: testAttr})
	pfn, ok := tlb.Lookup(5)
	if !ok || pfn != 50 {
		t.Fatalf("Lookup = %d, %v", pfn, ok)
	}
	// Neighbor must miss in a baseline TLB.
	if _, ok := tlb.Lookup(6); ok {
		t.Fatal("baseline TLB hit for uninserted neighbor")
	}
	st := tlb.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Misses != 2 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetTLBCoalescedPPNGeneration(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	// Run covering offsets 1..3 of block [100..104): VPNs 101,102,103.
	tlb.Insert(Run{BaseVPN: 101, BasePFN: 700, Len: 3, Attr: testAttr})
	for i, want := range map[arch.VPN]arch.PFN{101: 700, 102: 701, 103: 702} {
		pfn, ok := tlb.Lookup(i)
		if !ok || pfn != want {
			t.Fatalf("Lookup(%d) = %d,%v want %d", i, pfn, ok, want)
		}
	}
	if _, ok := tlb.Lookup(100); ok {
		t.Fatal("offset 0 should miss (valid bit clear)")
	}
	if _, ok := tlb.Lookup(104); ok {
		t.Fatal("next block should miss")
	}
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d, want 1 coalesced entry", tlb.Occupied())
	}
}

func TestSetTLBIndexScheme(t *testing.T) {
	// 8 sets, shift 2 => VPN[4-2] selects the set (paper §4.1.2).
	tlb := NewSetAssocTLB(8, 1, 2)
	// VPNs 0..3 (block 0) map to set 0; VPNs 4..7 to set 1; with one
	// way, inserting 9 distinct blocks must wrap and evict block 0.
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 10, Len: 4, Attr: testAttr})
	if _, ok := tlb.Lookup(3); !ok {
		t.Fatal("block 0 missing")
	}
	// Same set (set 0) is hit again by block 8 (VPN 32..35).
	tlb.Insert(Run{BaseVPN: 32, BasePFN: 20, Len: 4, Attr: testAttr})
	if _, ok := tlb.Lookup(3); ok {
		t.Fatal("conflict eviction did not happen: 1-way set should hold one block")
	}
	if _, ok := tlb.Lookup(33); !ok {
		t.Fatal("new block missing")
	}
	// A block in a different set must not conflict.
	tlb.Insert(Run{BaseVPN: 4, BasePFN: 30, Len: 4, Attr: testAttr})
	if _, ok := tlb.Lookup(33); !ok {
		t.Fatal("cross-set insert evicted unrelated entry")
	}
}

func TestSetTLBLRUWithinSet(t *testing.T) {
	tlb := NewSetAssocTLB(2, 2, 0)
	// Set 0 receives VPNs 0, 2, 4 (even VPNs).
	tlb.Insert(Single(0, arch.PTE{PFN: 1, Attr: testAttr}))
	tlb.Insert(Single(2, arch.PTE{PFN: 2, Attr: testAttr}))
	tlb.Lookup(0) // touch 0; 2 becomes LRU
	tlb.Insert(Single(4, arch.PTE{PFN: 3, Attr: testAttr}))
	if _, ok := tlb.Lookup(0); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := tlb.Lookup(2); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestSetTLBInsertReturnsEvicted(t *testing.T) {
	tlb := NewSetAssocTLB(2, 1, 1)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 40, Len: 2, Attr: testAttr})
	evicted, was := tlb.Insert(Run{BaseVPN: 4, BasePFN: 80, Len: 2, Attr: testAttr}) // same set 0
	if !was {
		t.Fatal("eviction not reported")
	}
	if evicted.BaseVPN != 0 || evicted.Len != 2 || evicted.BasePFN != 40 {
		t.Fatalf("evicted = %+v", evicted)
	}
	if _, was := tlb.Insert(Run{BaseVPN: 2, BasePFN: 90, Len: 2, Attr: testAttr}); was {
		t.Fatal("insert into other set reported eviction")
	}
}

func TestSetTLBOverlapReplacesInPlace(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 2, Attr: testAttr}) // offs 0-1
	tlb.Insert(Run{BaseVPN: 1, BasePFN: 201, Len: 3, Attr: testAttr}) // offs 1-3, overlaps
	if tlb.Occupied() != 1 {
		t.Fatalf("Occupied = %d, want in-place replacement", tlb.Occupied())
	}
	pfn, ok := tlb.Lookup(2)
	if !ok || pfn != 202 {
		t.Fatalf("Lookup(2) = %d,%v", pfn, ok)
	}
	// Non-overlapping same-block runs coexist in different ways.
	tlb.Insert(Run{BaseVPN: 8, BasePFN: 300, Len: 2, Attr: testAttr})  // block 2, offs 0-1
	tlb.Insert(Run{BaseVPN: 11, BasePFN: 511, Len: 1, Attr: testAttr}) // block 2, off 3
	if tlb.Occupied() != 3 {
		t.Fatalf("Occupied = %d, want 3", tlb.Occupied())
	}
	if pfn, _ := tlb.Lookup(11); pfn != 511 {
		t.Fatalf("disjoint sibling lookup = %d", pfn)
	}
	if pfn, _ := tlb.Lookup(9); pfn != 301 {
		t.Fatalf("first sibling lookup = %d", pfn)
	}
}

func TestSetTLBInvalidateFlushesWholeEntry(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	tlb.Insert(Run{BaseVPN: 100, BasePFN: 900, Len: 4, Attr: testAttr})
	if !tlb.Invalidate(102) {
		t.Fatal("Invalidate found nothing")
	}
	// The whole coalesced entry is gone, including untouched siblings.
	for v := arch.VPN(100); v < 104; v++ {
		if _, ok := tlb.Lookup(v); ok {
			t.Fatalf("VPN %d survived entry invalidation", v)
		}
	}
	if tlb.Invalidate(102) {
		t.Fatal("second Invalidate reported removal")
	}
}

func TestSetTLBInvalidateAll(t *testing.T) {
	tlb := NewSetAssocTLB(4, 2, 1)
	for v := arch.VPN(0); v < 16; v += 2 {
		tlb.Insert(Run{BaseVPN: v, BasePFN: arch.PFN(v + 100), Len: 2, Attr: testAttr})
	}
	tlb.InvalidateAll()
	if tlb.Occupied() != 0 {
		t.Fatal("entries survived InvalidateAll")
	}
}

func TestSetTLBLookupRun(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	in := Run{BaseVPN: 21, BasePFN: 555, Len: 3, Attr: testAttr}
	tlb.Insert(in)
	got, ok := tlb.LookupRun(22)
	if !ok || got != in {
		t.Fatalf("LookupRun = %+v, %v", got, ok)
	}
	if _, ok := tlb.LookupRun(20); ok {
		t.Fatal("LookupRun hit uncovered offset")
	}
}

func TestSetTLBInsertPanics(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 1)
	for _, run := range []Run{
		{BaseVPN: 0, BasePFN: 1, Len: 0, Attr: testAttr},
		{BaseVPN: 0, BasePFN: 1, Len: 3, Attr: testAttr}, // exceeds max 2
		{BaseVPN: 1, BasePFN: 1, Len: 2, Attr: testAttr}, // spans blocks [0,2) and [2,4)
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("insert %+v did not panic", run)
				}
			}()
			tlb.Insert(run)
		}()
	}
}

func TestSetTLBConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSetAssocTLB(3, 2, 0) },
		func() { NewSetAssocTLB(0, 2, 0) },
		func() { NewSetAssocTLB(4, 0, 0) },
		func() { NewSetAssocTLB(4, 2, MaxSAShift+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

// TestSetTLBPropertyMatchesReference inserts random runs and checks
// every lookup against a reference translation map built from the same
// runs: the TLB may miss (capacity) but must never return a wrong
// frame.
func TestSetTLBPropertyMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shift := uint(rng.Intn(MaxSAShift + 1))
		tlb := NewSetAssocTLB(8, 4, shift)
		ref := make(map[arch.VPN]arch.PFN)
		maxC := 1 << shift
		for i := 0; i < 200; i++ {
			vpn := arch.VPN(rng.Intn(512))
			pfn := arch.PFN(rng.Intn(1 << 20))
			length := 1 + rng.Intn(maxC)
			run := Run{BaseVPN: vpn, BasePFN: pfn, Len: length, Attr: testAttr}
			run = ClipToBlock(run, vpn, shift)
			// Model the OS shootdown that accompanies any remapping:
			// stale entries for the run's pages must be flushed first.
			for v := run.BaseVPN; v < run.End(); v++ {
				tlb.Invalidate(v)
			}
			tlb.Insert(run)
			for v := run.BaseVPN; v < run.End(); v++ {
				ref[v] = run.Translate(v)
			}
			// Random lookups: any hit must agree with the reference.
			for j := 0; j < 4; j++ {
				probe := arch.VPN(rng.Intn(512))
				if got, ok := tlb.Lookup(probe); ok {
					want, exists := ref[probe]
					if !exists || got != want {
						t.Logf("seed %d: Lookup(%d) = %d, ref %d (exists=%v)", seed, probe, got, want, exists)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
