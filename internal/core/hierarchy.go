package core

import (
	"fmt"

	"colt/internal/arch"
	"colt/internal/mmu"
	"colt/internal/telemetry"
)

// Policy selects which CoLT variant the hierarchy runs.
type Policy int

const (
	// PolicyBaseline is a conventional two-level hierarchy: one
	// translation per set-associative entry, superpages in the
	// fully-associative TLB.
	PolicyBaseline Policy = iota
	// PolicyCoLTSA coalesces into the set-associative L1/L2 TLBs
	// (§4.1).
	PolicyCoLTSA
	// PolicyCoLTFA coalesces into the fully-associative superpage TLB
	// (§4.2).
	PolicyCoLTFA
	// PolicyCoLTAll routes by contiguity threshold into both (§4.3).
	PolicyCoLTAll
	// PolicySeqPrefetch is the comparison point from the prefetching
	// literature the paper contrasts CoLT with (§2.1/§2.4): a baseline
	// hierarchy plus a separate sequential (±1) prefetch buffer.
	PolicySeqPrefetch
	// PolicyPartialSubblock is Talluri & Hill's partial-subblock TLB
	// (§2.3's alternative): CoLT-like valid-bit sharing, but only for
	// physically subblock-aligned frames.
	PolicyPartialSubblock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyCoLTSA:
		return "colt-sa"
	case PolicyCoLTFA:
		return "colt-fa"
	case PolicyCoLTAll:
		return "colt-all"
	case PolicySeqPrefetch:
		return "seq-prefetch"
	case PolicyPartialSubblock:
		return "partial-subblock"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config describes a two-level TLB hierarchy. The zero value is not
// usable; start from one of the preset constructors.
type Config struct {
	Policy Policy

	L1Sets, L1Ways int
	L2Sets, L2Ways int
	// L1Shift/L2Shift are the index left-shifts (log2 of the maximum
	// per-entry coalescing) for the set-associative TLBs. Zero for the
	// baseline and CoLT-FA.
	L1Shift, L2Shift uint
	// SupEntries sizes the fully-associative superpage TLB: 16
	// baseline, halved to 8 under CoLT-FA/All to pay for range-check
	// logic (§4.2.4).
	SupEntries int
	// FAL2Fill (§4.2.1/§7.1.3): when CoLT-FA fills a coalesced entry
	// into the superpage TLB, also bring the requested translation
	// into the L2 TLB.
	FAL2Fill bool
	// AllL2Fill (§4.3.1/§7.1.3): when CoLT-All routes a long run to
	// the superpage TLB, also insert its index-scheme-clipped version
	// into the L2 TLB.
	AllL2Fill bool
	// AllThreshold is CoLT-All's routing threshold: runs no longer
	// than this go to the set-associative TLBs. Defaults to the L2
	// scheme's maximum coalescing when zero.
	AllThreshold int
	// PrefetchEntries sizes PolicySeqPrefetch's separate buffer
	// (default DefaultPrefetchEntries when zero).
	PrefetchEntries int
	// InclusiveL2: evicting an L2 entry back-invalidates the L1 (the
	// paper's "L2 TLB is inclusive of just the set-associative L1").
	InclusiveL2 bool
	// Refinements enables the paper's future-work options (§4.1.5,
	// §4.2.3): graceful uncoalescing on invalidation and
	// coalescing-aware replacement.
	Refinements Refinements
}

// The paper's simulated hierarchy (§5.2.1): 32-entry 4-way L1, 128-entry
// 4-way L2, 16-entry superpage TLB. CoLT-SA's default shift of 2 yields
// the VPN[4-2]/VPN[6-2] index schemes of §7.1.1.
const (
	defaultL1Sets    = 8
	defaultL1Ways    = 4
	defaultL2Sets    = 32
	defaultL2Ways    = 4
	defaultSupBase   = 16
	defaultSupCoLT   = 8
	DefaultCoLTShift = 2
)

// BaselineConfig returns the paper's baseline hierarchy.
func BaselineConfig() Config {
	return Config{
		Policy:      PolicyBaseline,
		L1Sets:      defaultL1Sets,
		L1Ways:      defaultL1Ways,
		L2Sets:      defaultL2Sets,
		L2Ways:      defaultL2Ways,
		SupEntries:  defaultSupBase,
		InclusiveL2: true,
	}
}

// CoLTSAConfig returns the CoLT-SA hierarchy with the given index
// left-shift (paper default 2; Figure 19 sweeps 1-3).
func CoLTSAConfig(shift uint) Config {
	c := BaselineConfig()
	c.Policy = PolicyCoLTSA
	c.L1Shift = shift
	c.L2Shift = shift
	return c
}

// CoLTFAConfig returns the CoLT-FA hierarchy: conventional
// set-associative TLBs plus an 8-entry coalescing superpage TLB.
func CoLTFAConfig() Config {
	c := BaselineConfig()
	c.Policy = PolicyCoLTFA
	c.SupEntries = defaultSupCoLT
	c.FAL2Fill = true
	return c
}

// CoLTAllConfig returns the CoLT-All hierarchy.
func CoLTAllConfig() Config {
	c := CoLTSAConfig(DefaultCoLTShift)
	c.Policy = PolicyCoLTAll
	c.SupEntries = defaultSupCoLT
	c.AllL2Fill = true
	return c
}

// PartialSubblockConfig returns the partial-subblock comparison
// hierarchy: subblocked L1/L2 TLBs (factor 4) plus the conventional
// superpage TLB.
func PartialSubblockConfig() Config {
	c := BaselineConfig()
	c.Policy = PolicyPartialSubblock
	return c
}

// SeqPrefetchConfig returns the sequential-prefetching comparison
// hierarchy: conventional TLBs plus a 16-entry prefetch buffer.
func SeqPrefetchConfig() Config {
	c := BaselineConfig()
	c.Policy = PolicySeqPrefetch
	c.PrefetchEntries = DefaultPrefetchEntries
	return c
}

// RealSystemBaselineConfig mirrors the characterization platform's
// larger TLBs (64-entry L1, 512-entry L2; §5.1.1), used for Table 1.
func RealSystemBaselineConfig() Config {
	c := BaselineConfig()
	c.L1Sets = 16
	c.L2Sets = 128
	return c
}

// Walker abstracts the page-table walker the hierarchy consults on a
// full TLB miss; *mmu.Walker implements it.
type Walker interface {
	Walk(vpn arch.VPN) mmu.WalkInfo
}

// Stats aggregates the hierarchy's event counts. The L1 miss count
// follows the paper's convention: the set-associative L1 TLB and the
// superpage TLB are probed in parallel, and only a miss in both counts
// as an L1 miss.
type Stats struct {
	Accesses uint64
	L1Hits   uint64 // set-associative L1 hits
	SupHits  uint64 // superpage/coalesced FA hits (same level as L1)
	L1Misses uint64
	L2Hits   uint64
	L2Misses uint64
	Walks    uint64
	Faults   uint64
	// WalkCycles is the serialized page-walk latency total, the
	// component the performance model treats as critical-path stalls.
	WalkCycles uint64
	// CoalescedFills counts fills whose run length exceeded one.
	CoalescedFills uint64
}

// L1MissRate returns L1 misses per access.
func (s Stats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// L2MissRate returns L2 misses per access.
func (s Stats) L2MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.Accesses)
}

// AccessResult reports how one translation resolved.
type AccessResult struct {
	PFN         arch.PFN
	L1Hit       bool // hit in L1 or superpage TLB (parallel probe)
	L2Hit       bool
	Walked      bool
	Fault       bool
	WalkLatency int
}

// Hierarchy is the two-level TLB hierarchy of Figure 4/5/6: a
// set-associative L1 probed in parallel with the fully-associative
// superpage TLB, backed by an inclusive set-associative L2 and the page
// walker, with fill-path coalescing per the configured policy.
type Hierarchy struct {
	cfg      Config
	l1       *SetAssocTLB
	l2       *SetAssocTLB
	sup      *FullyAssocTLB
	pb       *PrefetchBuffer // PolicySeqPrefetch only
	sb1, sb2 *SubblockTLB    // PolicyPartialSubblock only
	walker   Walker
	// mw is the devirtualized walker: when the configured Walker is the
	// concrete *mmu.Walker (every production setup), the access path
	// calls it directly instead of through the interface. walker remains
	// the fallback for test doubles.
	mw       *mmu.Walker
	stats    Stats
	prefetch PrefetchStats
	// winfo/pfinfo are reused walk-result buffers (WalkInfo embeds the
	// leaf PTE's cache line; returning it by value costs ~200-byte
	// copies per walk). pfinfo keeps prefetch probe walks from
	// clobbering the demand walk's line while Access still reads it.
	// A Hierarchy is single-goroutine by contract, like its TLB state.
	winfo  mmu.WalkInfo
	pfinfo mmu.WalkInfo
	// tel receives per-access telemetry (hit/miss/walk/fill events and
	// walk-cycle/coalesce-length histograms). Nil when disabled; every
	// call is a nil-safe no-op, but the access path still pays the call,
	// so telOn caches the decision and the hot path branches on it.
	tel   *telemetry.Sink
	telOn bool
}

// SetTelemetry attaches a telemetry sink to the hierarchy and its
// component TLBs. clock must point at the driver's monotonic
// reference counter (it stamps entry lifetimes; it must never rewind,
// so drivers keep counting across warmup resets). Pass a nil sink to
// detach.
func (h *Hierarchy) SetTelemetry(s *telemetry.Sink, clock *uint64) {
	h.tel = s
	h.telOn = s != nil
	h.l1.SetTelemetry(s, telemetry.LevelL1, clock)
	h.l2.SetTelemetry(s, telemetry.LevelL2, clock)
	h.sup.SetTelemetry(s, telemetry.LevelSup, clock)
}

// NewHierarchy builds a hierarchy from cfg, validating the geometry.
func NewHierarchy(cfg Config, walker Walker) *Hierarchy {
	if walker == nil {
		panic("core: nil walker")
	}
	if cfg.AllThreshold == 0 {
		cfg.AllThreshold = 1 << cfg.L2Shift
	}
	h := &Hierarchy{
		cfg:    cfg,
		l1:     NewSetAssocTLB(cfg.L1Sets, cfg.L1Ways, cfg.L1Shift),
		l2:     NewSetAssocTLB(cfg.L2Sets, cfg.L2Ways, cfg.L2Shift),
		sup:    NewFullyAssocTLB(cfg.SupEntries),
		walker: walker,
	}
	if mw, ok := walker.(*mmu.Walker); ok {
		h.mw = mw
	}
	if cfg.Policy == PolicyPartialSubblock {
		h.sb1 = NewSubblockTLB(cfg.L1Sets, cfg.L1Ways)
		h.sb2 = NewSubblockTLB(cfg.L2Sets, cfg.L2Ways)
	}
	if cfg.Policy == PolicySeqPrefetch {
		n := cfg.PrefetchEntries
		if n == 0 {
			n = DefaultPrefetchEntries
		}
		h.pb = NewPrefetchBuffer(n)
	}
	if cfg.Refinements.CoalescingAwareLRU {
		h.l1.SetReplacementBias(true)
		h.l2.SetReplacementBias(true)
		h.sup.SetReplacementBias(true)
	}
	return h
}

// Config returns the hierarchy's configuration (with defaults resolved).
func (h *Hierarchy) Config() Config { return h.cfg }

// L1 returns the set-associative L1 TLB.
func (h *Hierarchy) L1() *SetAssocTLB { return h.l1 }

// L2 returns the set-associative L2 TLB.
func (h *Hierarchy) L2() *SetAssocTLB { return h.l2 }

// Sup returns the fully-associative superpage TLB.
func (h *Hierarchy) Sup() *FullyAssocTLB { return h.sup }

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	// Derived at snapshot time: every access lands in exactly one of
	// the three level-one outcomes, and every L1 miss in exactly one of
	// the two level-two outcomes, so the hot path updates one counter
	// per level instead of a running total too.
	s.L1Misses = s.L2Hits + s.L2Misses
	s.Accesses = s.L1Hits + s.SupHits + s.L1Misses
	return s
}

// PrefetchStats returns the prefetch-policy counters (zero for other
// policies), with Wasted computed from the buffer.
func (h *Hierarchy) PrefetchStats() PrefetchStats {
	st := h.prefetch
	if h.pb != nil {
		st.Wasted = h.pb.Filled() - h.pb.Hits()
	}
	return st
}

// ResetStats zeroes all hierarchy and component counters (after
// warmup).
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.l1.ResetStats()
	h.l2.ResetStats()
	h.sup.ResetStats()
	if h.sb1 != nil {
		h.sb1.ResetStats()
		h.sb2.ResetStats()
	}
}

// Subblock returns the subblocked L1/L2 TLBs (PolicyPartialSubblock
// only; nil otherwise).
func (h *Hierarchy) Subblock() (l1, l2 *SubblockTLB) { return h.sb1, h.sb2 }

// LevelStats bundles the per-structure counters of the hierarchy's
// three TLBs into one snapshot, the machine-readable metrics layer's
// per-level view. For the partial-subblock policy the L1/L2 slots hold
// the subblocked structures' counters (those replace the
// set-associative TLBs on that policy's access path).
type LevelStats struct {
	L1, L2, Sup TLBStats
	// SupMerges counts the superpage TLB's fill-time coalescings with
	// resident entries (§4.2.1 step 5).
	SupMerges uint64
}

// LevelStats returns a snapshot of every structure's counters.
func (h *Hierarchy) LevelStats() LevelStats {
	ls := LevelStats{
		L1:        h.l1.Stats(),
		L2:        h.l2.Stats(),
		Sup:       h.sup.Stats(),
		SupMerges: h.sup.Merges(),
	}
	if h.sb1 != nil {
		ls.L1, ls.L2 = h.sb1.Stats(), h.sb2.Stats()
	}
	return ls
}

// walkInto invokes the page walker into the given reused buffer,
// devirtualized when the concrete *mmu.Walker is wired in.
func (h *Hierarchy) walkInto(info *mmu.WalkInfo, vpn arch.VPN) {
	if h.mw != nil {
		h.mw.WalkInto(vpn, info)
		return
	}
	*info = h.walker.Walk(vpn)
}

// Access translates vpn, filling TLBs per the policy on misses.
func (h *Hierarchy) Access(vpn arch.VPN) AccessResult {
	if h.cfg.Policy == PolicyPartialSubblock {
		return h.accessSubblock(vpn)
	}
	// Step 1: probe the set-associative L1 and the superpage TLB in
	// parallel; both have the same hit time.
	if pfn, ok := h.l1.Lookup(vpn); ok {
		h.stats.L1Hits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelL1, uint64(vpn))
		}
		return AccessResult{PFN: pfn, L1Hit: true}
	}
	if pfn, ok := h.sup.Lookup(vpn); ok {
		h.stats.SupHits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelSup, uint64(vpn))
		}
		return AccessResult{PFN: pfn, L1Hit: true}
	}
	if h.telOn {
		h.tel.Miss(telemetry.LevelL1, uint64(vpn))
	}

	// PolicySeqPrefetch: the prefetch buffer is probed alongside the
	// L2; a hit consumes the entry, promotes it into the TLBs, and
	// avoids the demand walk.
	if h.pb != nil {
		if pfn, attr, ok := h.pb.Lookup(vpn); ok {
			h.stats.L2Hits++
			h.prefetch.BufferHits++
			single := Run{BaseVPN: vpn, BasePFN: pfn, Len: 1, Attr: attr}
			h.insertL2(single)
			h.insertL1(single)
			return AccessResult{PFN: pfn, L2Hit: true}
		}
	}

	// Step 2: L2 probe, fused with the run extraction the L1 copy-down
	// needs so an L2 hit scans its set once rather than twice.
	if pfn, run, ok := h.l2.lookupWithRun(vpn); ok {
		h.stats.L2Hits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelL2, uint64(vpn))
		}
		h.insertL1(ClipToBlock(run, vpn, h.l1.Shift()))
		return AccessResult{PFN: pfn, L2Hit: true}
	}
	h.stats.L2Misses++
	if h.telOn {
		h.tel.Miss(telemetry.LevelL2, uint64(vpn))
	}

	// Step 3: page walk; the LLC fill exposes the PTE's cache line to
	// the coalescing logic.
	info := &h.winfo
	h.walkInto(info, vpn)
	h.stats.Walks++
	h.stats.WalkCycles += uint64(info.Latency)
	if h.telOn {
		h.tel.Walk(uint64(vpn), uint64(info.Latency))
	}
	if !info.Found {
		h.stats.Faults++
		return AccessResult{Fault: true, Walked: true, WalkLatency: info.Latency}
	}

	res := AccessResult{Walked: true, WalkLatency: info.Latency}
	if info.PTE.Huge {
		res.PFN = info.PTE.PFN + arch.PFN(vpn%arch.PagesPerHuge)
		h.sup.InsertHuge(vpn&^(arch.PagesPerHuge-1), info.PTE.PFN, info.PTE.Attr)
		return res
	}
	res.PFN = info.PTE.PFN

	// PolicySeqPrefetch: on a demand miss, prefetch the neighbours into
	// the separate buffer. The prefetch walks are charged as bandwidth
	// (PrefetchWalks), not critical-path latency.
	if h.pb != nil {
		for _, cand := range [2]arch.VPN{vpn + 1, vpn - 1} {
			pf := &h.pfinfo
			h.walkInto(pf, cand)
			h.prefetch.PrefetchWalks++
			if pf.Found && !pf.PTE.Huge {
				h.pb.Insert(cand, pf.PTE.PFN, pf.PTE.Attr)
			}
		}
	}

	run := Single(vpn, info.PTE)
	// The baseline has no coalescing logic; CoLT variants scan the
	// fetched cache line for the contiguous run around the request.
	if h.cfg.Policy != PolicyBaseline && h.cfg.Policy != PolicySeqPrefetch && info.HasLine {
		run = FindRun(info.Line, vpn)
	}
	if run.Len > 1 {
		h.stats.CoalescedFills++
	}
	if h.telOn {
		h.tel.Fill(uint64(run.BaseVPN), uint64(run.Len))
	}
	h.fill(vpn, run, info.PTE)
	return res
}

// accessSubblock is the partial-subblock hierarchy's access path: the
// same two-level organization with subblocked structures in place of
// the set-associative TLBs.
func (h *Hierarchy) accessSubblock(vpn arch.VPN) AccessResult {
	if pfn, ok := h.sb1.Lookup(vpn); ok {
		h.stats.L1Hits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelL1, uint64(vpn))
		}
		return AccessResult{PFN: pfn, L1Hit: true}
	}
	if pfn, ok := h.sup.Lookup(vpn); ok {
		h.stats.SupHits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelSup, uint64(vpn))
		}
		return AccessResult{PFN: pfn, L1Hit: true}
	}
	if h.telOn {
		h.tel.Miss(telemetry.LevelL1, uint64(vpn))
	}
	if pfn, ok := h.sb2.Lookup(vpn); ok {
		h.stats.L2Hits++
		if h.telOn {
			h.tel.Hit(telemetry.LevelL2, uint64(vpn))
		}
		h.sb1.Insert(vpn, pfn, 0)
		return AccessResult{PFN: pfn, L2Hit: true}
	}
	h.stats.L2Misses++
	if h.telOn {
		h.tel.Miss(telemetry.LevelL2, uint64(vpn))
	}
	info := &h.winfo
	h.walkInto(info, vpn)
	h.stats.Walks++
	h.stats.WalkCycles += uint64(info.Latency)
	if h.telOn {
		h.tel.Walk(uint64(vpn), uint64(info.Latency))
	}
	if !info.Found {
		h.stats.Faults++
		return AccessResult{Fault: true, Walked: true, WalkLatency: info.Latency}
	}
	res := AccessResult{Walked: true, WalkLatency: info.Latency}
	if info.PTE.Huge {
		res.PFN = info.PTE.PFN + arch.PFN(vpn%arch.PagesPerHuge)
		h.sup.InsertHuge(vpn&^(arch.PagesPerHuge-1), info.PTE.PFN, info.PTE.Attr)
		return res
	}
	res.PFN = info.PTE.PFN
	if evictedVPN, evicted := h.sb2.Insert(vpn, info.PTE.PFN, info.PTE.Attr); evicted && h.cfg.InclusiveL2 {
		for v := evictedVPN; v < evictedVPN+SubblockFactor; v++ {
			h.sb1.Invalidate(v)
		}
	}
	h.sb1.Insert(vpn, info.PTE.PFN, info.PTE.Attr)
	return res
}

// fill installs the coalesced run after an L2 miss according to the
// active policy.
func (h *Hierarchy) fill(vpn arch.VPN, run Run, pte arch.PTE) {
	switch h.cfg.Policy {
	case PolicyBaseline, PolicySeqPrefetch:
		single := Single(vpn, pte)
		h.insertL2(single)
		h.insertL1(single)

	case PolicyCoLTSA:
		h.insertL2(ClipToBlock(run, vpn, h.l2.Shift()))
		h.insertL1(ClipToBlock(run, vpn, h.l1.Shift()))

	case PolicyCoLTFA:
		if run.Len >= 2 {
			h.sup.Insert(run)
			if h.cfg.FAL2Fill {
				// Bring just the requested translation into the L2 so
				// an eviction from the small superpage TLB does not
				// immediately cost a walk (§4.2.1). The L1 is left
				// unaffected due to its small capacity.
				h.insertL2(Single(vpn, pte))
			}
		} else {
			single := Single(vpn, pte)
			h.insertL2(single)
			h.insertL1(single)
		}

	case PolicyCoLTAll:
		if run.Len <= h.cfg.AllThreshold {
			// The set-associative index scheme can accommodate this
			// contiguity.
			h.insertL2(ClipToBlock(run, vpn, h.l2.Shift()))
			h.insertL1(ClipToBlock(run, vpn, h.l1.Shift()))
		} else {
			h.sup.Insert(run)
			if h.cfg.AllL2Fill {
				// Unlike CoLT-FA, bring as much of the run as the L2's
				// index scheme permits (§4.3.1).
				h.insertL2(ClipToBlock(run, vpn, h.l2.Shift()))
			}
		}
	}
}

func (h *Hierarchy) insertL1(run Run) {
	h.l1.InsertDiscard(run)
}

// insertL2 fills the L2 and, when the hierarchy is inclusive,
// back-invalidates L1 translations covered by the evicted L2 entry.
func (h *Hierarchy) insertL2(run Run) {
	evicted, was := h.l2.Insert(run)
	if was && h.cfg.InclusiveL2 {
		h.l1.invalidateRange(evicted.BaseVPN, evicted.End())
	}
}

// Invalidate performs a TLB shootdown for vpn. The paper's base policy
// flushes whole coalesced entries covering the victim (§4.1.5); with
// the GracefulInvalidation refinement only the victim translation is
// removed, preserving its coalesced siblings.
func (h *Hierarchy) Invalidate(vpn arch.VPN) {
	if h.pb != nil {
		h.pb.Invalidate(vpn)
	}
	if h.sb1 != nil {
		h.sb1.Invalidate(vpn)
		h.sb2.Invalidate(vpn)
	}
	if h.cfg.Refinements.GracefulInvalidation {
		h.l1.InvalidateOne(vpn)
		h.l2.InvalidateOne(vpn)
		h.sup.InvalidateOne(vpn)
		return
	}
	h.l1.Invalidate(vpn)
	h.l2.Invalidate(vpn)
	h.sup.Invalidate(vpn)
}

// EachRun calls fn with every translation range resident in the L1,
// L2, or superpage TLB, labeled with the holding level ("l1", "l2",
// "sup") and whether it is a superpage entry. Invariant auditors use
// this to check resident translations against the page table. The
// prefetch buffer and subblock structures are not enumerated: they
// hold speculative or partial-coverage state audited by their own
// unit tests, not page-table-coherent ranges.
func (h *Hierarchy) EachRun(fn func(level string, run Run, huge bool)) {
	h.l1.EachRun(func(r Run) { fn("l1", r, false) })
	h.l2.EachRun(func(r Run) { fn("l2", r, false) })
	h.sup.EachEntry(func(r Run, huge bool) { fn("sup", r, huge) })
}

// InvalidateAll flushes the entire hierarchy (context switch without
// ASIDs).
func (h *Hierarchy) InvalidateAll() {
	h.l1.InvalidateAll()
	h.l2.InvalidateAll()
	h.sup.InvalidateAll()
	if h.pb != nil {
		h.pb.InvalidateAll()
	}
	if h.sb1 != nil {
		h.sb1.InvalidateAll()
		h.sb2.InvalidateAll()
	}
}
