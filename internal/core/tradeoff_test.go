package core

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/rng"
)

// buildSpace maps n pages whose physical contiguity comes in runs of
// runLen (broken by frame jumps), over contiguous virtual addresses.
func buildSpace(t *testing.T, n, runLen int) (*pagetable.Table, Walker) {
	t.Helper()
	tbl, w := newWorld(t)
	pfn := arch.PFN(1 << 22)
	for i := 0; i < n; i++ {
		if runLen > 0 && i%runLen == 0 {
			pfn += 1000
		}
		if err := tbl.Map(arch.VPN(i), arch.PTE{PFN: pfn, Attr: testAttr}); err != nil {
			t.Fatal(err)
		}
		pfn++
	}
	return tbl, w
}

func missesAtShift(t *testing.T, pages, runLen int, shift uint) uint64 {
	t.Helper()
	tbl, _ := buildSpace(t, pages, runLen)
	walker := mmu.NewWalker(tbl, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
	cfg := BaselineConfig()
	if shift > 0 {
		cfg = CoLTSAConfig(shift)
	}
	h := NewHierarchy(cfg, walker)
	r := rng.New(99)
	for i := 0; i < 120_000; i++ {
		h.Access(arch.VPN(r.Zipf(pages, 0.7)))
	}
	return h.Stats().L2Misses
}

// TestShiftTradeoffHighContiguity reproduces the Figure-19 mechanism's
// winning side: with ample contiguity, larger index shifts coalesce
// more and eliminate more misses.
func TestShiftTradeoffHighContiguity(t *testing.T) {
	base := missesAtShift(t, 1500, 64, 0)
	s1 := missesAtShift(t, 1500, 64, 1)
	s2 := missesAtShift(t, 1500, 64, 2)
	s3 := missesAtShift(t, 1500, 64, 3)
	if !(s1 < base && s2 < s1 && s3 < s2) {
		t.Fatalf("high contiguity: misses base=%d s1=%d s2=%d s3=%d (want strictly decreasing)", base, s1, s2, s3)
	}
}

// TestShiftTradeoffLowContiguity reproduces the losing side: with no
// contiguity to coalesce, left-shifted indexing concentrates
// consecutive virtual pages into the same set and conflict misses grow
// with the shift — the paper's argument for stopping at shift 2.
func TestShiftTradeoffLowContiguity(t *testing.T) {
	base := missesAtShift(t, 1500, 1, 0)
	s3 := missesAtShift(t, 1500, 1, 3)
	if s3 <= base {
		t.Fatalf("low contiguity: shift-3 misses %d not worse than baseline %d", s3, base)
	}
	s2 := missesAtShift(t, 1500, 1, 2)
	if s2 >= s3 {
		t.Fatalf("shift-2 (%d) should hurt less than shift-3 (%d) without contiguity", s2, s3)
	}
}

// TestHierarchyShootdownStorm injects invalidations between accesses
// and checks the hierarchy never serves a stale translation after its
// page is remapped (the compaction-migration pattern).
func TestHierarchyShootdownStorm(t *testing.T) {
	tbl, w := newWorld(t)
	const pages = 512
	for i := 0; i < pages; i++ {
		if err := tbl.Map(arch.VPN(i), arch.PTE{PFN: arch.PFN(1<<21 + i), Attr: testAttr}); err != nil {
			t.Fatal(err)
		}
	}
	for _, cfg := range []Config{BaselineConfig(), CoLTSAConfig(2), CoLTFAConfig(), CoLTAllConfig()} {
		h := NewHierarchy(cfg, w)
		r := rng.New(5)
		next := arch.PFN(1 << 23)
		for i := 0; i < 50_000; i++ {
			vpn := arch.VPN(r.Intn(pages))
			if r.Bool(0.01) {
				// Migrate the page: remap + shootdown, like compaction.
				if err := tbl.Remap(vpn, next); err != nil {
					t.Fatal(err)
				}
				next++
				h.Invalidate(vpn)
			}
			res := h.Access(vpn)
			want, _, _ := tbl.Resolve(vpn)
			if res.PFN != want {
				t.Fatalf("%v: stale translation for %d after %d ops: got %d want %d",
					cfg.Policy, vpn, i, res.PFN, want)
			}
		}
	}
}
