package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colt/internal/arch"
)

func TestSAInvalidateOneMiddleSplits(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	tlb.Insert(Run{BaseVPN: 100, BasePFN: 500, Len: 4, Attr: testAttr})
	if !tlb.InvalidateOne(102) {
		t.Fatal("nothing removed")
	}
	// Victim gone; all siblings survive with correct translations.
	if _, ok := tlb.Lookup(102); ok {
		t.Fatal("victim still resident")
	}
	for _, v := range []arch.VPN{100, 101, 103} {
		pfn, ok := tlb.Lookup(v)
		if !ok || pfn != 500+arch.PFN(v-100) {
			t.Fatalf("sibling %d = %d,%v", v, pfn, ok)
		}
	}
	// The split produced two entries.
	if tlb.Occupied() != 2 {
		t.Fatalf("Occupied = %d, want 2 after split", tlb.Occupied())
	}
}

func TestSAInvalidateOneEdges(t *testing.T) {
	tlb := NewSetAssocTLB(8, 4, 2)
	tlb.Insert(Run{BaseVPN: 100, BasePFN: 500, Len: 4, Attr: testAttr})
	// Remove the lowest translation: base PPN must slide.
	tlb.InvalidateOne(100)
	for _, v := range []arch.VPN{101, 102, 103} {
		pfn, ok := tlb.Lookup(v)
		if !ok || pfn != 500+arch.PFN(v-100) {
			t.Fatalf("after low removal, %d = %d,%v", v, pfn, ok)
		}
	}
	// Remove the highest.
	tlb.InvalidateOne(103)
	if _, ok := tlb.Lookup(103); ok {
		t.Fatal("high victim resident")
	}
	if pfn, ok := tlb.Lookup(101); !ok || pfn != 501 {
		t.Fatal("middle translation lost")
	}
	// Remove the rest: entry disappears entirely.
	tlb.InvalidateOne(101)
	tlb.InvalidateOne(102)
	if tlb.Occupied() != 0 {
		t.Fatalf("Occupied = %d", tlb.Occupied())
	}
	if tlb.InvalidateOne(101) {
		t.Fatal("removal from empty TLB")
	}
}

func TestFAInvalidateOneSplitsRange(t *testing.T) {
	tlb := NewFullyAssocTLB(8)
	tlb.Insert(Run{BaseVPN: 100, BasePFN: 900, Len: 20, Attr: testAttr})
	if !tlb.InvalidateOne(107) {
		t.Fatal("nothing removed")
	}
	if _, ok := tlb.Lookup(107); ok {
		t.Fatal("victim resident")
	}
	for _, v := range []arch.VPN{100, 106, 108, 119} {
		pfn, ok := tlb.Lookup(v)
		if !ok || pfn != 900+arch.PFN(v-100) {
			t.Fatalf("split lost %d: %d,%v", v, pfn, ok)
		}
	}
	if tlb.Occupied() != 2 {
		t.Fatalf("Occupied = %d", tlb.Occupied())
	}
	// Edge removals shrink in place.
	tlb.InvalidateOne(100)
	tlb.InvalidateOne(119)
	if _, ok := tlb.Lookup(100); ok {
		t.Fatal("low edge resident")
	}
	if pfn, _ := tlb.Lookup(101); pfn != 901 {
		t.Fatal("low shrink broke translation")
	}
	// Superpages still flush whole.
	tlb.InsertHuge(1024, 2048, testAttr)
	tlb.InvalidateOne(1024 + 7)
	if _, ok := tlb.Lookup(1024); ok {
		t.Fatal("superpage partially invalidated")
	}
}

// TestInvalidateOnePropertyMatchesReference drives random inserts and
// graceful invalidations against a reference map.
func TestInvalidateOnePropertyMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tlb := NewFullyAssocTLB(16)
		ref := make(map[arch.VPN]arch.PFN)
		for op := 0; op < 300; op++ {
			if rng.Intn(3) == 0 && len(ref) > 0 {
				// Invalidate a random known page.
				for v := range ref {
					tlb.InvalidateOne(v)
					delete(ref, v)
					break
				}
			} else {
				base := arch.VPN(rng.Intn(256))
				n := 1 + rng.Intn(12)
				run := Run{BaseVPN: base, BasePFN: arch.PFN(base) + 10000, Len: n, Attr: testAttr}
				// Shoot down overlaps first (remap semantics); the
				// VPN->PFN delta is constant here so translations stay
				// consistent regardless.
				tlb.Insert(run)
				for v := run.BaseVPN; v < run.End(); v++ {
					ref[v] = run.Translate(v)
				}
			}
			// All hits must agree with the reference.
			for probe := arch.VPN(0); probe < 270; probe += 7 {
				if got, ok := tlb.Lookup(probe); ok {
					want, exists := ref[probe]
					if !exists || got != want {
						t.Logf("seed %d op %d: Lookup(%d)=%d want %d (exists=%v)", seed, op, probe, got, want, exists)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingAwareReplacementSA(t *testing.T) {
	tlb := NewSetAssocTLB(1, 2, 2)
	tlb.SetReplacementBias(true)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 4, Attr: testAttr}) // big entry
	tlb.Insert(Run{BaseVPN: 4, BasePFN: 200, Len: 1, Attr: testAttr}) // small entry
	// Touch the small entry so plain LRU would evict the big one.
	tlb.Lookup(4)
	tlb.Insert(Run{BaseVPN: 8, BasePFN: 300, Len: 2, Attr: testAttr})
	if _, ok := tlb.Lookup(0); !ok {
		t.Fatal("coalescing-aware replacement evicted the large entry")
	}
	if _, ok := tlb.Lookup(4); ok {
		t.Fatal("small entry survived")
	}
}

func TestCoalescingAwareReplacementFA(t *testing.T) {
	tlb := NewFullyAssocTLB(2)
	tlb.SetReplacementBias(true)
	tlb.Insert(Run{BaseVPN: 0, BasePFN: 100, Len: 30, Attr: testAttr})
	tlb.Insert(Run{BaseVPN: 1000, BasePFN: 1, Len: 2, Attr: testAttr})
	tlb.Lookup(1000) // make the short range MRU
	tlb.Insert(Run{BaseVPN: 2000, BasePFN: 9, Len: 3, Attr: testAttr})
	if _, ok := tlb.Lookup(15); !ok {
		t.Fatal("long range evicted despite bias")
	}
	if _, ok := tlb.Lookup(1000); ok {
		t.Fatal("short range survived")
	}
}

func TestHierarchyGracefulInvalidation(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 4)
	cfg := CoLTSAConfig(2)
	cfg.Refinements.GracefulInvalidation = true
	h := NewHierarchy(cfg, w)
	h.Access(64) // coalesces all four
	h.Invalidate(66)
	// Siblings survive the shootdown (unlike the base policy).
	for _, v := range []arch.VPN{64, 65, 67} {
		if res := h.Access(v); !res.L1Hit {
			t.Fatalf("graceful invalidation lost sibling %d", v)
		}
	}
	if res := h.Access(66); res.L1Hit || res.L2Hit {
		t.Fatal("victim translation survived")
	}
}

// TestHierarchyRefinementsUnderShootdowns compares walk counts with and
// without graceful invalidation under frequent single-page shootdowns.
// The paper conjectures graceful uncoalescing "will perform even
// better" (§4.1.5); in this configuration the effect is mixed — split
// fragments occupy extra ways in the small TLBs — so the test pins the
// measured behaviour (both correct, difference bounded) rather than the
// conjecture. The ablation experiment reports the numbers.
func TestHierarchyRefinementsUnderShootdowns(t *testing.T) {
	run := func(graceful bool) uint64 {
		tbl, w := newWorld(t)
		for c := 0; c < 64; c++ {
			mapRun(t, tbl, arch.VPN(c*8), arch.PFN(1<<21+c*8), 8)
		}
		cfg := CoLTAllConfig()
		cfg.Refinements.GracefulInvalidation = graceful
		h := NewHierarchy(cfg, w)
		r := newDetRand(9)
		for i := 0; i < 60_000; i++ {
			vpn := arch.VPN(r.Intn(512))
			h.Access(vpn)
			if r.Intn(50) == 0 {
				h.Invalidate(arch.VPN(r.Intn(512)))
			}
		}
		return h.Stats().Walks
	}
	base := run(false)
	graceful := run(true)
	t.Logf("walks: whole-entry flush %d, graceful %d", base, graceful)
	lo, hi := base/2, base*2
	if graceful < lo || graceful > hi {
		t.Fatalf("graceful invalidation walks %d wildly off base %d", graceful, base)
	}
}

// newDetRand gives tests a tiny deterministic generator without pulling
// in the workload RNG.
type detRand struct{ s uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: seed} }
func (d *detRand) Intn(n int) int {
	d.s = d.s*6364136223846793005 + 1442695040888963407
	return int((d.s >> 33) % uint64(n))
}
