package core

// This file implements the paper's stated future-work refinements
// (§4.1.5, §4.2.3), each switchable so the ablation benchmarks can
// quantify them against the baseline CoLT designs:
//
//   - Graceful uncoalescing: "Gracefully uncoalescing TLB entries and
//     only invalidating victim translations will perform even better.
//     This too is the subject of future work."
//   - Coalescing-aware replacement: "While there may be benefits in
//     prioritizing entries with different coalescing amounts
//     differently, we leave this for future work."
//   - Per-translation attributes: "More sophisticated schemes
//     supporting separate attribute bits per translation in a coalesced
//     entry will improve our results."

import (
	"math/bits"

	"colt/internal/arch"
)

// Refinements collects the future-work options for a hierarchy.
type Refinements struct {
	// GracefulInvalidation clears only the victim translation's valid
	// bit (or splits an FA range around it) instead of flushing the
	// whole coalesced entry.
	GracefulInvalidation bool
	// CoalescingAwareLRU biases replacement toward entries holding
	// fewer translations: a victim is the entry with the lowest
	// (coalescing, recency) priority, so large-reach entries survive
	// longer.
	CoalescingAwareLRU bool
}

// --- Graceful set-associative invalidation -------------------------

// InvalidateOne clears only vpn's valid bit from any covering entry.
// If the removal splits a run's valid bits into two groups, the lower
// group keeps the entry (base PPN unchanged) and the upper group is
// reinserted as its own entry, preserving every sibling translation.
// Returns true if a translation was removed.
func (t *SetAssocTLB) InvalidateOne(vpn arch.VPN) bool {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	removed := false
	for i := base; i < base+t.ways; i++ {
		vb := uint8(t.tagv[i])
		if !t.valid[i] || t.tagv[i]>>8 != tag || vb&(1<<off) == 0 {
			continue
		}
		removed = true
		t.stats.Invalidates++
		lower := vb & (1<<off - 1)
		upper := vb &^ (1<<off - 1) &^ (1 << off)
		switch {
		case lower == 0 && upper == 0:
			t.dropEntry(i)
		case lower == 0:
			// Slide the base PPN up past the removed translation.
			dist := bits.OnesCount8(vb & (1<<off - 1 | 1<<off))
			t.basePPN[i] += arch.PFN(dist)
			t.setVbits(i, upper)
		case upper == 0:
			t.setVbits(i, lower)
		default:
			// Split: keep the lower half in place, reinsert the upper
			// half as a separate run in the same set.
			upperRun := t.entryRunFromBits(vpn, upper, t.basePPN[i]+arch.PFN(bits.OnesCount8(lower))+1, t.attr[i])
			t.setVbits(i, lower)
			t.Insert(upperRun)
		}
	}
	return removed
}

// entryRunFromBits rebuilds a Run from a contiguous valid-bit group.
func (t *SetAssocTLB) entryRunFromBits(vpn arch.VPN, vbits uint8, basePPN arch.PFN, attr arch.Attr) Run {
	blockStart := vpn &^ (arch.VPN(1)<<t.shift - 1)
	lo := uint(bits.TrailingZeros8(vbits))
	return Run{
		BaseVPN: blockStart + arch.VPN(lo),
		BasePFN: basePPN,
		Len:     bits.OnesCount8(vbits),
		Attr:    attr,
	}
}

// --- Graceful fully-associative invalidation -----------------------

// InvalidateOne splits any covering range around vpn, keeping both
// remainders resident (the second remainder re-enters through Insert
// and may evict the LRU entry if the structure is full). Superpage
// entries are still flushed whole: a 2 MB mapping has no partial
// invalidation. Returns true if a translation was removed.
func (t *FullyAssocTLB) InvalidateOne(vpn arch.VPN) bool {
	removed := false
	var reinserts []Run
	for i := 0; i < t.capacity; i++ {
		if !t.valid[i] || vpn < t.baseVPN[i] || vpn >= t.endVPN[i] {
			continue
		}
		removed = true
		t.stats.Invalidates++
		if t.huge[i] {
			t.dropEntry(i)
			continue
		}
		leftLen := int(vpn - t.baseVPN[i])
		rightLen := t.length[i] - leftLen - 1
		switch {
		case leftLen == 0 && rightLen == 0:
			t.dropEntry(i)
		case leftLen == 0:
			t.baseVPN[i]++
			t.basePFN[i]++
			t.length[i] = rightLen
		case rightLen == 0:
			t.length[i] = leftLen
			t.endVPN[i] = t.baseVPN[i] + arch.VPN(leftLen)
		default:
			t.length[i] = leftLen
			t.endVPN[i] = t.baseVPN[i] + arch.VPN(leftLen)
			reinserts = append(reinserts, Run{
				BaseVPN: vpn + 1,
				BasePFN: t.basePFN[i] + arch.PFN(leftLen) + 1,
				Len:     rightLen,
				Attr:    t.attr[i],
			})
		}
	}
	for _, r := range reinserts {
		t.Insert(r)
	}
	return removed
}

// --- Coalescing-aware replacement ----------------------------------

// SetReplacementBias switches the set-associative TLB to
// coalescing-aware replacement: among the least-recently-used half of a
// set, prefer evicting the entry covering the fewest translations.
func (t *SetAssocTLB) SetReplacementBias(enabled bool) { t.coalesceBias = enabled }

// SetReplacementBias is the fully-associative analogue: prefer evicting
// short ranges over long ones among stale entries.
func (t *FullyAssocTLB) SetReplacementBias(enabled bool) { t.coalesceBias = enabled }
