package core

import (
	"fmt"
	"math/bits"

	"colt/internal/arch"
	"colt/internal/telemetry"
)

// MaxSAShift bounds the left-shift of the set-index bits: a shift of 3
// coalesces up to eight translations, the most a single page-walk cache
// line can supply (§4.1.4).
const MaxSAShift = 3

// TLBStats counts one TLB structure's activity.
type TLBStats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	CoalescedIn uint64 // translations inserted beyond the requested one
	Evictions   uint64
	Invalidates uint64
}

// HitRate returns Hits/Lookups. A structure that was never probed
// (zero lookups) reports 0, never NaN.
func (s TLBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// saEntry is one CoLT-SA TLB entry (§4.1.3, Figure 4 top): the tag is
// the VPN bits above the (shifted) index; vbits has one valid bit per
// possible translation of the aligned coalescing block; BasePPN is the
// frame of the first valid translation; a single attribute set covers
// the whole entry.
type saEntry struct {
	valid   bool
	tag     uint64
	vbits   uint8
	basePPN arch.PFN
	attr    arch.Attr
	lru     uint64
	// born is the telemetry clock value at fill, so eviction can report
	// the entry's lifetime in references without any per-entry map.
	born uint64
}

// SetAssocTLB is a set-associative TLB supporting CoLT-SA coalescing.
// With Shift()==0 it behaves as a conventional TLB (one translation per
// entry): the baseline configuration.
type SetAssocTLB struct {
	sets    int
	ways    int
	shift   uint // log2(max translations per entry)
	setBits uint
	entries []saEntry
	tick    uint64
	stats   TLBStats
	// coalesceBias enables coalescing-aware replacement (future work
	// of paper §4.1.5): see SetReplacementBias.
	coalesceBias bool
	// Telemetry (nil when disabled): tel receives eviction events at
	// telLevel; telClock points at the driver's monotonic reference
	// counter, stamping fills so evictions can report entry lifetime.
	tel      *telemetry.Sink
	telLevel uint8
	telClock *uint64
}

// SetTelemetry attaches a telemetry sink reporting this structure as
// level, with clock as the monotonic reference counter used to stamp
// fills and measure entry lifetimes. Pass a nil sink to detach.
func (t *SetAssocTLB) SetTelemetry(s *telemetry.Sink, level uint8, clock *uint64) {
	t.tel, t.telLevel, t.telClock = s, level, clock
}

// NewSetAssocTLB builds a TLB with the given geometry. shift selects
// the indexing scheme: set index = VPN[shift+log2(sets)-1 : shift],
// so up to 2^shift consecutive translations share a set and may be
// coalesced into one entry.
func NewSetAssocTLB(sets, ways int, shift uint) *SetAssocTLB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: set count %d must be a power of two", sets))
	}
	if ways <= 0 {
		panic("core: ways must be positive")
	}
	if shift > MaxSAShift {
		panic(fmt.Sprintf("core: shift %d exceeds max %d", shift, MaxSAShift))
	}
	return &SetAssocTLB{
		sets:    sets,
		ways:    ways,
		shift:   shift,
		setBits: uint(bits.TrailingZeros(uint(sets))),
		entries: make([]saEntry, sets*ways),
	}
}

// Entries returns the capacity in entries (sets × ways).
func (t *SetAssocTLB) Entries() int { return t.sets * t.ways }

// Sets returns the set count.
func (t *SetAssocTLB) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *SetAssocTLB) Ways() int { return t.ways }

// Shift returns the index left-shift (log2 max coalescing).
func (t *SetAssocTLB) Shift() uint { return t.shift }

// MaxCoalesce returns the most translations one entry can hold.
func (t *SetAssocTLB) MaxCoalesce() int { return 1 << t.shift }

// Stats returns a snapshot of the counters.
func (t *SetAssocTLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the counters.
func (t *SetAssocTLB) ResetStats() { t.stats = TLBStats{} }

func (t *SetAssocTLB) index(vpn arch.VPN) (set int, tag uint64, off uint) {
	block := uint64(vpn) >> t.shift
	return int(block & uint64(t.sets-1)), block >> t.setBits, uint(vpn) & (uint(1)<<t.shift - 1)
}

// Lookup translates vpn. On a hit the physical frame is reconstructed
// by the PPN Generation Logic of §4.1.3: the stored base PPN plus the
// number of valid bits between the first valid translation and the
// requested one.
func (t *SetAssocTLB) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	t.stats.Lookups++
	set, tag, off := t.index(vpn)
	base := set * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&(1<<off) != 0 {
			t.stats.Hits++
			t.tick++
			e.lru = t.tick
			return e.basePPN + arch.PFN(bits.OnesCount8(e.vbits&(1<<off-1))), true
		}
	}
	t.stats.Misses++
	return 0, false
}

// LookupRun returns the full coalesced run covering vpn, used to copy
// an L2 entry down into the L1 on an L2 hit without a new page walk.
// It does not update recency or counters.
func (t *SetAssocTLB) LookupRun(vpn arch.VPN) (Run, bool) {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&(1<<off) != 0 {
			return t.entryRun(e, vpn), true
		}
	}
	return Run{}, false
}

// entryRun reconstructs the Run stored in e; vpn identifies the block.
func (t *SetAssocTLB) entryRun(e *saEntry, vpn arch.VPN) Run {
	blockStart := vpn &^ (arch.VPN(1)<<t.shift - 1)
	lo := uint(bits.TrailingZeros8(e.vbits))
	n := bits.OnesCount8(e.vbits)
	return Run{
		BaseVPN: blockStart + arch.VPN(lo),
		BasePFN: e.basePPN,
		Len:     n,
		Attr:    e.attr,
	}
}

// Insert fills one coalesced entry holding run, which must lie within a
// single aligned coalescing block (use ClipToBlock first). If a
// resident entry for the same block overlaps the run it is replaced;
// otherwise the set's LRU way is evicted. Insert returns the evicted
// run (for inclusive back-invalidation) and whether an eviction
// happened.
func (t *SetAssocTLB) Insert(run Run) (evicted Run, wasEvicted bool) {
	if run.Len <= 0 || run.Len > t.MaxCoalesce() {
		panic(fmt.Sprintf("core: insert of %v into TLB with max coalesce %d", run, t.MaxCoalesce()))
	}
	set, tag, off := t.index(run.BaseVPN)
	if endSet, endTag, _ := t.index(run.End() - 1); endSet != set || endTag != tag {
		panic(fmt.Sprintf("core: %v spans coalescing blocks", run))
	}
	var vbits uint8
	for i := 0; i < run.Len; i++ {
		vbits |= 1 << (off + uint(i))
	}
	t.tick++
	t.stats.Fills++
	t.stats.CoalescedIn += uint64(run.Len - 1)
	var now uint64
	if t.telClock != nil {
		now = *t.telClock
	}

	base := set * t.ways
	victim := base
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&vbits != 0 {
			// Same block, overlapping coverage: replace in place.
			*e = saEntry{valid: true, tag: tag, vbits: vbits, basePPN: run.BasePFN, attr: run.Attr, lru: t.tick, born: now}
			return Run{}, false
		}
		if lessEntryLRU(&t.entries[base+i], &t.entries[victim]) {
			victim = base + i
		}
	}
	if t.coalesceBias {
		victim = t.biasedVictim(base)
	}
	v := &t.entries[victim]
	if v.valid {
		t.stats.Evictions++
		evicted = t.entryRun(v, t.victimVPN(victim, v))
		wasEvicted = true
		if t.tel != nil {
			t.tel.Evict(t.telLevel, uint64(evicted.BaseVPN), now-v.born)
		}
	}
	*v = saEntry{valid: true, tag: tag, vbits: vbits, basePPN: run.BasePFN, attr: run.Attr, lru: t.tick, born: now}
	return evicted, wasEvicted
}

// biasedVictim picks a victim among the set's stale half, preferring
// entries that coalesce the fewest translations (so large-reach entries
// survive). Invalid ways still win outright.
func (t *SetAssocTLB) biasedVictim(base int) int {
	victim := base
	for i := 0; i < t.ways; i++ {
		a, b := &t.entries[base+i], &t.entries[victim]
		if a.valid != b.valid {
			if !a.valid {
				victim = base + i
			}
			continue
		}
		ca, cb := bits.OnesCount8(a.vbits), bits.OnesCount8(b.vbits)
		if ca != cb {
			if ca < cb {
				victim = base + i
			}
			continue
		}
		if a.lru < b.lru {
			victim = base + i
		}
	}
	return victim
}

// victimVPN reconstructs a VPN inside the victim entry's block from its
// set index and tag.
func (t *SetAssocTLB) victimVPN(idx int, e *saEntry) arch.VPN {
	set := idx / t.ways
	block := e.tag<<t.setBits | uint64(set)
	return arch.VPN(block << t.shift)
}

func lessEntryLRU(a, b *saEntry) bool {
	if a.valid != b.valid {
		return !a.valid
	}
	return a.lru < b.lru
}

// Invalidate drops any entry translating vpn. Entire coalesced entries
// are flushed, losing the sibling translations (§4.1.5). Returns true
// if an entry was removed.
func (t *SetAssocTLB) Invalidate(vpn arch.VPN) bool {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	removed := false
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag && e.vbits&(1<<off) != 0 {
			e.valid = false
			removed = true
			t.stats.Invalidates++
		}
	}
	return removed
}

// InvalidateAll flushes the TLB.
func (t *SetAssocTLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.stats.Invalidates++
}

// EachRun calls fn with every valid entry's coalesced run, in entry
// order. Invariant auditors use this to check resident translations
// against the page table; it does not touch recency or counters.
func (t *SetAssocTLB) EachRun(fn func(Run)) {
	for idx := range t.entries {
		e := &t.entries[idx]
		if !e.valid || e.vbits == 0 {
			continue
		}
		fn(t.entryRun(e, t.victimVPN(idx, e)))
	}
}

// Occupied returns the number of valid entries; coalesced entries count
// once.
func (t *SetAssocTLB) Occupied() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
