package core

import (
	"fmt"
	"math/bits"

	"colt/internal/arch"
	"colt/internal/telemetry"
)

// MaxSAShift bounds the left-shift of the set-index bits: a shift of 3
// coalesces up to eight translations, the most a single page-walk cache
// line can supply (§4.1.4).
const MaxSAShift = 3

// invalidSATag's tag field (the top 56 bits) marks an invalid entry
// in the fused tagv lane. A tagv word packs tag<<8 | vbits; real tags
// are VPN bits shifted down past the index, far below 2^56, so a probe
// scan needs no separate valid check: an invalid entry's all-ones tag
// field never matches. Invalidation rewrites only the tag field,
// leaving the low byte's stale valid bits for biasedVictim's ordering
// among invalid entries. The valid lane is still maintained for the
// non-probe readers (EachRun, Occupied, eviction accounting).
const invalidSATag = ^uint64(0)

// validRankBit is the top bit of a rank word. A rank lane fuses the
// replacement ordering "invalid ways first, then least-recently used"
// into one unsigned key per entry: the low 63 bits are the LRU tick,
// the top bit is set while the entry is valid. A plain first-minimum
// scan over ranks then picks exactly the entry the two-lane
// (valid,lru) comparison would: invalid ranks (top bit clear) sort
// below every valid one, and within a validity class the tick decides.
// Invalidation only clears the top bit, so stale ticks keep ordering
// invalid entries among themselves. LRU ticks increment once per
// lookup or fill and cannot plausibly reach 2^63.
const validRankBit = uint64(1) << 63

// TLBStats counts one TLB structure's activity.
type TLBStats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	CoalescedIn uint64 // translations inserted beyond the requested one
	Evictions   uint64
	Invalidates uint64
}

// HitRate returns Hits/Lookups. A structure that was never probed
// (zero lookups) reports 0, never NaN.
func (s TLBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// SetAssocTLB is a set-associative TLB supporting CoLT-SA coalescing.
// With Shift()==0 it behaves as a conventional TLB (one translation per
// entry): the baseline configuration.
//
// Entry state is laid out structure-of-arrays: parallel lanes indexed
// set*ways+way, so a set probe scans ways-many adjacent words instead
// of striding over entry structs. Each conceptual entry is one CoLT-SA
// entry (§4.1.3, Figure 4 top): the tag is the VPN bits above the
// (shifted) index; vbits has one valid bit per possible translation of
// the aligned coalescing block; basePPN is the frame of the first
// valid translation; a single attribute set covers the whole entry.
// The probe path reads a single fused lane, tagv = tag<<8 | vbits
// (vbits is at most 8 bits, MaxSAShift = 3), so a lookup's tag match
// AND valid-bit test are one load and two ALU ops per way. The low
// byte is the only home of the valid bits: invalidation rewrites just
// the tag field to the sentinel, keeping the stale vbits in place for
// biasedVictim's ordering among invalid entries.
type SetAssocTLB struct {
	sets    int
	ways    int
	shift   uint // log2(max translations per entry)
	setBits uint

	valid   []bool
	tagv    []uint64 // tag<<8 | vbits; tag field all-ones when invalid
	basePPN []arch.PFN
	attr    []arch.Attr
	// rank fuses validity and LRU recency into one replacement-ordering
	// key (see validRankBit), so victim scans read a single lane.
	rank []uint64
	// born is the telemetry clock value at fill, so eviction can report
	// the entry's lifetime in references without any per-entry map.
	born []uint64

	tick  uint64
	stats TLBStats
	// coalesceBias enables coalescing-aware replacement (future work
	// of paper §4.1.5): see SetReplacementBias.
	coalesceBias bool
	// Telemetry (nil when disabled): tel receives eviction events at
	// telLevel; telClock points at the driver's monotonic reference
	// counter, stamping fills so evictions can report entry lifetime.
	tel      *telemetry.Sink
	telLevel uint8
	telClock *uint64
}

// SetTelemetry attaches a telemetry sink reporting this structure as
// level, with clock as the monotonic reference counter used to stamp
// fills and measure entry lifetimes. Pass a nil sink to detach.
func (t *SetAssocTLB) SetTelemetry(s *telemetry.Sink, level uint8, clock *uint64) {
	t.tel, t.telLevel, t.telClock = s, level, clock
}

// NewSetAssocTLB builds a TLB with the given geometry. shift selects
// the indexing scheme: set index = VPN[shift+log2(sets)-1 : shift],
// so up to 2^shift consecutive translations share a set and may be
// coalesced into one entry.
func NewSetAssocTLB(sets, ways int, shift uint) *SetAssocTLB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: set count %d must be a power of two", sets))
	}
	if ways <= 0 {
		panic("core: ways must be positive")
	}
	if shift > MaxSAShift {
		panic(fmt.Sprintf("core: shift %d exceeds max %d", shift, MaxSAShift))
	}
	n := sets * ways
	t := &SetAssocTLB{
		sets:    sets,
		ways:    ways,
		shift:   shift,
		setBits: uint(bits.TrailingZeros(uint(sets))),
		valid:   make([]bool, n),
		tagv:    make([]uint64, n),
		basePPN: make([]arch.PFN, n),
		attr:    make([]arch.Attr, n),
		rank:    make([]uint64, n),
		born:    make([]uint64, n),
	}
	for i := range t.tagv {
		t.tagv[i] = invalidSATag &^ 0xff // sentinel tag, zero stale vbits
	}
	return t
}

// Entries returns the capacity in entries (sets × ways).
func (t *SetAssocTLB) Entries() int { return t.sets * t.ways }

// Sets returns the set count.
func (t *SetAssocTLB) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *SetAssocTLB) Ways() int { return t.ways }

// Shift returns the index left-shift (log2 max coalescing).
func (t *SetAssocTLB) Shift() uint { return t.shift }

// MaxCoalesce returns the most translations one entry can hold.
func (t *SetAssocTLB) MaxCoalesce() int { return 1 << t.shift }

// Stats returns a snapshot of the counters; Lookups is derived (every
// probe either hits or misses), keeping the probe path to one counter.
func (t *SetAssocTLB) Stats() TLBStats {
	s := t.stats
	s.Lookups = s.Hits + s.Misses
	return s
}

// ResetStats zeroes the counters.
func (t *SetAssocTLB) ResetStats() { t.stats = TLBStats{} }

func (t *SetAssocTLB) index(vpn arch.VPN) (set int, tag uint64, off uint) {
	block := uint64(vpn) >> t.shift
	return int(block & uint64(t.sets-1)), block >> t.setBits, uint(vpn) & (uint(1)<<t.shift - 1)
}

// Lookup translates vpn. On a hit the physical frame is reconstructed
// by the PPN Generation Logic of §4.1.3: the stored base PPN plus the
// number of valid bits between the first valid translation and the
// requested one.
func (t *SetAssocTLB) Lookup(vpn arch.VPN) (arch.PFN, bool) {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	bit := uint64(1) << off
	tagv := t.tagv[base : base+t.ways]
	for i := range tagv {
		if w := tagv[i]; w>>8 == tag && w&bit != 0 {
			j := base + i
			t.stats.Hits++
			t.tick++
			t.rank[j] = t.tick | validRankBit
			return t.basePPN[j] + arch.PFN(bits.OnesCount8(uint8(w)&(uint8(bit)-1))), true
		}
	}
	t.stats.Misses++
	return 0, false
}

// lookupWithRun is Lookup fused with LookupRun for the hierarchy's
// L2-hit path: one set scan yields both the translation (updating
// recency and counters exactly as Lookup does) and the full resident
// run to copy down into the L1, instead of scanning the same set twice
// back-to-back.
func (t *SetAssocTLB) lookupWithRun(vpn arch.VPN) (arch.PFN, Run, bool) {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	bit := uint64(1) << off
	tagv := t.tagv[base : base+t.ways]
	for i := range tagv {
		if w := tagv[i]; w>>8 == tag && w&bit != 0 {
			j := base + i
			t.stats.Hits++
			t.tick++
			t.rank[j] = t.tick | validRankBit
			pfn := t.basePPN[j] + arch.PFN(bits.OnesCount8(uint8(w)&(uint8(bit)-1)))
			return pfn, t.entryRun(j, vpn), true
		}
	}
	t.stats.Misses++
	return 0, Run{}, false
}

// LookupRun returns the full coalesced run covering vpn, used to copy
// an L2 entry down into the L1 on an L2 hit without a new page walk.
// It does not update recency or counters.
func (t *SetAssocTLB) LookupRun(vpn arch.VPN) (Run, bool) {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	bit := uint64(1) << off
	for i := base; i < base+t.ways; i++ {
		if w := t.tagv[i]; w>>8 == tag && w&bit != 0 {
			return t.entryRun(i, vpn), true
		}
	}
	return Run{}, false
}

// entryRun reconstructs the Run stored in entry i; vpn identifies the
// block.
func (t *SetAssocTLB) entryRun(i int, vpn arch.VPN) Run {
	blockStart := vpn &^ (arch.VPN(1)<<t.shift - 1)
	vb := uint8(t.tagv[i])
	lo := uint(bits.TrailingZeros8(vb))
	return Run{
		BaseVPN: blockStart + arch.VPN(lo),
		BasePFN: t.basePPN[i],
		Len:     bits.OnesCount8(vb),
		Attr:    t.attr[i],
	}
}

// setEntry overwrites entry i's lanes with a freshly-filled entry.
func (t *SetAssocTLB) setEntry(i int, tag uint64, vbits uint8, basePPN arch.PFN, attr arch.Attr, now uint64) {
	t.valid[i] = true
	t.tagv[i] = tag<<8 | uint64(vbits)
	t.basePPN[i] = basePPN
	t.attr[i] = attr
	t.rank[i] = t.tick | validRankBit
	// born is only read when an eviction reports a lifetime, so the
	// store is skipped entirely when no sink is attached.
	if t.tel != nil {
		t.born[i] = now
	}
}

// setVbits rewrites a resident entry's valid bits in the fused probe
// word's low byte (graceful invalidation shrinks them).
func (t *SetAssocTLB) setVbits(i int, vbits uint8) {
	t.tagv[i] = t.tagv[i]&^uint64(0xff) | uint64(vbits)
}

// Insert fills one coalesced entry holding run, which must lie within a
// single aligned coalescing block (use ClipToBlock first). If a
// resident entry for the same block overlaps the run it is replaced;
// otherwise the set's LRU way is evicted. Insert returns the evicted
// run (for inclusive back-invalidation) and whether an eviction
// happened.
func (t *SetAssocTLB) Insert(run Run) (evicted Run, wasEvicted bool) {
	return t.insert(run, true)
}

// InsertDiscard is Insert for fills whose caller ignores the evicted
// run (the L1 copy-down path): the victim's range reconstruction is
// skipped unless eviction telemetry needs it.
func (t *SetAssocTLB) InsertDiscard(run Run) {
	t.insert(run, false)
}

func (t *SetAssocTLB) insert(run Run, needEvicted bool) (evicted Run, wasEvicted bool) {
	if run.Len <= 0 || run.Len > t.MaxCoalesce() {
		panic(fmt.Sprintf("core: insert of %v into TLB with max coalesce %d", run, t.MaxCoalesce()))
	}
	set, tag, off := t.index(run.BaseVPN)
	// Same aligned coalescing block ⟺ identical bits above the shift;
	// one XOR-shift checks what re-deriving the end's set and tag would.
	if (uint64(run.BaseVPN)^uint64(run.End()-1))>>t.shift != 0 {
		panic(fmt.Sprintf("core: %v spans coalescing blocks", run))
	}
	vbits := uint8(1<<uint(run.Len)-1) << off
	t.tick++
	t.stats.Fills++
	if run.Len > 1 {
		t.stats.CoalescedIn += uint64(run.Len - 1)
	}
	var now uint64
	if t.telClock != nil {
		now = *t.telClock
	}

	// One fused pass over the set: the overlap check (same block,
	// overlapping coverage → replace in place) and the victim scan — a
	// first-minimum over the rank lane, which encodes lessEntryLRU's
	// "invalid ways first, then least-recently used, first-lowest wins"
	// ordering in a single unsigned compare per way. Fills rarely
	// overlap a resident entry, so a separate overlap pass would walk
	// the whole set for nothing on almost every insert.
	base := set * t.ways
	if w := t.tagv[base]; w>>8 == tag && w&uint64(vbits) != 0 {
		t.setEntry(base, tag, vbits, run.BasePFN, run.Attr, now)
		return Run{}, false
	}
	victim, vRank := base, t.rank[base]
	for i := base + 1; i < base+t.ways; i++ {
		if w := t.tagv[i]; w>>8 == tag && w&uint64(vbits) != 0 {
			t.setEntry(i, tag, vbits, run.BasePFN, run.Attr, now)
			return Run{}, false
		}
		if r := t.rank[i]; r < vRank {
			victim, vRank = i, r
		}
	}
	if t.coalesceBias {
		victim = t.biasedVictim(base)
	}
	if t.valid[victim] {
		t.stats.Evictions++
		wasEvicted = true
		if needEvicted || t.tel != nil {
			// victimVPN re-derives the set with a division; the insert
			// path already has it in hand.
			vvpn := arch.VPN((t.tagv[victim]>>8<<t.setBits | uint64(set)) << t.shift)
			evicted = t.entryRun(victim, vvpn)
			if t.tel != nil {
				t.tel.Evict(t.telLevel, uint64(evicted.BaseVPN), now-t.born[victim])
			}
		}
	}
	t.setEntry(victim, tag, vbits, run.BasePFN, run.Attr, now)
	return evicted, wasEvicted
}

// biasedVictim picks a victim among the set's stale half, preferring
// entries that coalesce the fewest translations (so large-reach entries
// survive). Invalid ways still win outright.
func (t *SetAssocTLB) biasedVictim(base int) int {
	victim := base
	for i := base; i < base+t.ways; i++ {
		if t.valid[i] != t.valid[victim] {
			if !t.valid[i] {
				victim = i
			}
			continue
		}
		ca, cb := bits.OnesCount8(uint8(t.tagv[i])), bits.OnesCount8(uint8(t.tagv[victim]))
		if ca != cb {
			if ca < cb {
				victim = i
			}
			continue
		}
		if t.rank[i] < t.rank[victim] {
			victim = i
		}
	}
	return victim
}

// victimVPN reconstructs a VPN inside entry i's block from its set
// index and tag.
func (t *SetAssocTLB) victimVPN(i int) arch.VPN {
	set := i / t.ways
	block := t.tagv[i]>>8<<t.setBits | uint64(set)
	return arch.VPN(block << t.shift)
}

// lessEntryLRU orders replacement candidates: invalid ways first, then
// least-recently used — exactly the rank lane's unsigned order.
func (t *SetAssocTLB) lessEntryLRU(a, b int) bool {
	return t.rank[a] < t.rank[b]
}

// Invalidate drops any entry translating vpn. Entire coalesced entries
// are flushed, losing the sibling translations (§4.1.5). Returns true
// if an entry was removed.
func (t *SetAssocTLB) Invalidate(vpn arch.VPN) bool {
	set, tag, off := t.index(vpn)
	base := set * t.ways
	bit := uint64(1) << off
	removed := false
	for i := base; i < base+t.ways; i++ {
		if w := t.tagv[i]; w>>8 == tag && w&bit != 0 {
			t.dropEntry(i)
			removed = true
			t.stats.Invalidates++
		}
	}
	return removed
}

// invalidateRange drops every entry translating a vpn in [base, end) —
// Invalidate's loop over the range, but with one set probe per aligned
// coalescing block instead of one per vpn: the block's covered slots
// collapse into a single valid-bit mask. Entry drops, and therefore
// the Invalidates counter, match the per-vpn loop exactly (an entry is
// dropped once, on its first covering probe, either way).
func (t *SetAssocTLB) invalidateRange(base, end arch.VPN) {
	for v := base; v < end; {
		set, tag, off := t.index(v)
		n := arch.VPN(1)<<t.shift - arch.VPN(off)
		if rem := end - v; rem < n {
			n = rem
		}
		mask := uint64(uint16(1)<<n-1) << off
		b0 := set * t.ways
		for i := b0; i < b0+t.ways; i++ {
			if w := t.tagv[i]; w>>8 == tag && w&mask != 0 {
				t.dropEntry(i)
				t.stats.Invalidates++
			}
		}
		v += n
	}
}

// dropEntry marks entry i invalid: rewriting the tag field to the
// sentinel removes it from the probe scans, and clearing the rank
// word's valid bit moves it ahead of every resident entry in
// replacement order. The tagv low byte (the valid bits), the rank's
// stale tick, and born are kept — biasedVictim's comparisons among
// invalid entries read them.
func (t *SetAssocTLB) dropEntry(i int) {
	t.valid[i] = false
	t.tagv[i] |= invalidSATag &^ 0xff
	t.rank[i] &^= validRankBit
}

// InvalidateAll flushes the TLB.
func (t *SetAssocTLB) InvalidateAll() {
	for i := range t.valid {
		t.dropEntry(i)
	}
	t.stats.Invalidates++
}

// EachRun calls fn with every valid entry's coalesced run, in entry
// order. Invariant auditors use this to check resident translations
// against the page table; it does not touch recency or counters.
func (t *SetAssocTLB) EachRun(fn func(Run)) {
	for i := range t.valid {
		if !t.valid[i] || uint8(t.tagv[i]) == 0 {
			continue
		}
		fn(t.entryRun(i, t.victimVPN(i)))
	}
}

// Occupied returns the number of valid entries; coalesced entries count
// once.
func (t *SetAssocTLB) Occupied() int {
	n := 0
	for i := range t.valid {
		if t.valid[i] {
			n++
		}
	}
	return n
}
