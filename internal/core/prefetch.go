package core

import "colt/internal/arch"

// The paper positions CoLT against TLB prefetching (§2.1, §2.4,
// references [11,19]): prefetchers also exploit spatial regularity but
// need a separate buffer, extra page walks for bandwidth, and can evict
// useful entries on bad guesses. This file provides that comparison
// point: a classic sequential (±1) TLB prefetcher with a small
// fully-associative prefetch buffer, usable as its own hierarchy policy
// so the experiments can put CoLT and prefetching side by side on the
// identical reference stream.

// DefaultPrefetchEntries sizes the prefetch buffer like the literature's
// small distance/stride buffers.
const DefaultPrefetchEntries = 16

// pbEntry is one prefetched translation (always a single page).
type pbEntry struct {
	valid bool
	vpn   arch.VPN
	pfn   arch.PFN
	attr  arch.Attr
	lru   uint64
}

// PrefetchBuffer is a small fully-associative buffer of prefetched
// translations, separate from the TLBs (the structural cost the paper
// contrasts CoLT against).
type PrefetchBuffer struct {
	entries []pbEntry
	tick    uint64
	hits    uint64
	misses  uint64
	filled  uint64
}

// NewPrefetchBuffer builds an empty buffer.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	if capacity <= 0 {
		panic("core: prefetch buffer needs positive capacity")
	}
	return &PrefetchBuffer{entries: make([]pbEntry, capacity)}
}

// Lookup consumes a prefetched translation: on a hit the entry is
// removed (it moves into the TLBs proper) and returned.
func (p *PrefetchBuffer) Lookup(vpn arch.VPN) (arch.PFN, arch.Attr, bool) {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.vpn == vpn {
			p.hits++
			e.valid = false
			return e.pfn, e.attr, true
		}
	}
	p.misses++
	return 0, 0, false
}

// Insert stores a prefetched translation, evicting the LRU slot.
func (p *PrefetchBuffer) Insert(vpn arch.VPN, pfn arch.PFN, attr arch.Attr) {
	p.tick++
	p.filled++
	victim := &p.entries[0]
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.vpn == vpn {
			victim = e
			break
		}
		if (!e.valid && victim.valid) || (e.valid == victim.valid && e.lru < victim.lru) {
			victim = e
		}
	}
	*victim = pbEntry{valid: true, vpn: vpn, pfn: pfn, attr: attr, lru: p.tick}
}

// Invalidate drops any entry for vpn.
func (p *PrefetchBuffer) Invalidate(vpn arch.VPN) {
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].vpn == vpn {
			p.entries[i].valid = false
		}
	}
}

// InvalidateAll flushes the buffer.
func (p *PrefetchBuffer) InvalidateAll() {
	for i := range p.entries {
		p.entries[i].valid = false
	}
}

// Hits, Misses, and Filled report buffer activity. Filled minus Hits is
// the wasted-prefetch count (the bandwidth objection).
func (p *PrefetchBuffer) Hits() uint64   { return p.hits }
func (p *PrefetchBuffer) Misses() uint64 { return p.misses }
func (p *PrefetchBuffer) Filled() uint64 { return p.filled }

// PrefetchStats extends the hierarchy stats for the prefetch policy.
type PrefetchStats struct {
	// BufferHits are L2 misses satisfied by the prefetch buffer
	// without a demand walk.
	BufferHits uint64
	// PrefetchWalks counts the extra page-table walks issued to fill
	// the buffer (bandwidth overhead; off the critical path).
	PrefetchWalks uint64
	// Wasted counts prefetched translations evicted unused.
	Wasted uint64
}
