package core

import (
	"math/rand"
	"testing"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/mmu"
	"colt/internal/pagetable"
)

type seqFrames struct{ next arch.PFN }

func (s *seqFrames) AllocFrame() (arch.PFN, error) {
	s.next++
	return s.next, nil
}
func (s *seqFrames) FreeFrame(arch.PFN) {}

func newWorld(t *testing.T) (*pagetable.Table, Walker) {
	t.Helper()
	tbl, err := pagetable.New(&seqFrames{next: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mmu.NewWalker(tbl, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
}

func mapRun(t *testing.T, tbl *pagetable.Table, baseVPN arch.VPN, basePFN arch.PFN, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := tbl.Map(baseVPN+arch.VPN(i), arch.PTE{PFN: basePFN + arch.PFN(i), Attr: testAttr})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHierarchyBaselineNoCoalescing(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 4)
	h := NewHierarchy(BaselineConfig(), w)
	for i := 0; i < 4; i++ {
		res := h.Access(64 + arch.VPN(i))
		if !res.Walked {
			t.Fatalf("access %d did not walk in baseline", i)
		}
		if res.PFN != 5000+arch.PFN(i) {
			t.Fatalf("access %d PFN = %d", i, res.PFN)
		}
	}
	st := h.Stats()
	if st.Walks != 4 || st.L2Misses != 4 || st.CoalescedFills != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-access: all L1 hits now.
	for i := 0; i < 4; i++ {
		if res := h.Access(64 + arch.VPN(i)); !res.L1Hit {
			t.Fatalf("re-access %d missed L1", i)
		}
	}
}

func TestHierarchyCoLTSACoalesces(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 4) // aligned 4-block
	h := NewHierarchy(CoLTSAConfig(2), w)
	first := h.Access(64)
	if !first.Walked || first.PFN != 5000 {
		t.Fatalf("first access = %+v", first)
	}
	// The other three translations were coalesced in: all L1 hits.
	for i := 1; i < 4; i++ {
		res := h.Access(64 + arch.VPN(i))
		if !res.L1Hit {
			t.Fatalf("sibling %d missed (should be coalesced)", i)
		}
		if res.PFN != 5000+arch.PFN(i) {
			t.Fatalf("sibling %d PFN = %d", i, res.PFN)
		}
	}
	st := h.Stats()
	if st.Walks != 1 || st.CoalescedFills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchyCoLTSARespectsBlockClipping(t *testing.T) {
	tbl, w := newWorld(t)
	// 8 contiguous pages spanning two 4-blocks [64,68) and [68,72).
	mapRun(t, tbl, 64, 5000, 8)
	h := NewHierarchy(CoLTSAConfig(2), w)
	h.Access(64)
	// Pages of the second block were NOT coalesced (index scheme limit).
	res := h.Access(68)
	if res.L1Hit || res.L2Hit {
		t.Fatalf("second block should miss: %+v", res)
	}
	if h.Stats().Walks != 2 {
		t.Fatalf("Walks = %d", h.Stats().Walks)
	}
}

func TestHierarchyCoLTFARangeFill(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 8)
	h := NewHierarchy(CoLTFAConfig(), w)
	h.Access(67)
	// The whole 8-page run landed in the superpage TLB.
	for i := 0; i < 8; i++ {
		res := h.Access(64 + arch.VPN(i))
		if !res.L1Hit {
			t.Fatalf("page %d missed after FA fill", i)
		}
	}
	st := h.Stats()
	if st.Walks != 1 {
		t.Fatalf("Walks = %d", st.Walks)
	}
	if st.SupHits != 8 {
		t.Fatalf("SupHits = %d, want 8", st.SupHits)
	}
	// FAL2Fill: the requested translation also entered the L2.
	if h.L2().Stats().Fills != 1 {
		t.Fatalf("L2 fills = %d, want 1 (requested entry)", h.L2().Stats().Fills)
	}
	// Only the requested translation is in L2, as a single entry.
	if run, ok := h.L2().LookupRun(67); !ok || run.Len != 1 {
		t.Fatalf("L2 run = %+v, %v", run, ok)
	}
}

func TestHierarchyCoLTFAL2FillAblation(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 8)
	cfg := CoLTFAConfig()
	cfg.FAL2Fill = false
	h := NewHierarchy(cfg, w)
	h.Access(67)
	if h.L2().Stats().Fills != 0 {
		t.Fatalf("L2 fills = %d with FAL2Fill off", h.L2().Stats().Fills)
	}
}

func TestHierarchyCoLTFASingletonGoesSA(t *testing.T) {
	tbl, w := newWorld(t)
	// Isolated translation: no contiguity.
	if err := tbl.Map(64, arch.PTE{PFN: 999, Attr: testAttr}); err != nil {
		t.Fatal(err)
	}
	h := NewHierarchy(CoLTFAConfig(), w)
	h.Access(64)
	if h.Sup().Occupied() != 0 {
		t.Fatal("singleton went to the superpage TLB")
	}
	if res := h.Access(64); !res.L1Hit {
		t.Fatal("singleton not in L1")
	}
}

func TestHierarchyCoLTAllThresholdRouting(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 3)  // short run: <= threshold 4
	mapRun(t, tbl, 128, 7000, 8) // long run: > threshold
	h := NewHierarchy(CoLTAllConfig(), w)

	h.Access(64)
	if h.Sup().Occupied() != 0 {
		t.Fatal("short run routed to superpage TLB")
	}
	if res := h.Access(65); !res.L1Hit {
		t.Fatal("short run not coalesced into SA TLBs")
	}

	h.Access(128)
	if h.Sup().Occupied() != 1 {
		t.Fatal("long run not routed to superpage TLB")
	}
	// AllL2Fill: the L2 received the clipped (4-page) version.
	if run, ok := h.L2().LookupRun(128); !ok || run.Len != 4 {
		t.Fatalf("L2 clipped run = %+v, %v", run, ok)
	}
	// All 8 pages hit at L1 level via the superpage TLB.
	for i := 0; i < 8; i++ {
		if res := h.Access(128 + arch.VPN(i)); !res.L1Hit {
			t.Fatalf("long-run page %d missed", i)
		}
	}
}

func TestHierarchyCoLTAllL2FillAblation(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 128, 7000, 8)
	cfg := CoLTAllConfig()
	cfg.AllL2Fill = false
	h := NewHierarchy(cfg, w)
	h.Access(128)
	if h.L2().Stats().Fills != 0 {
		t.Fatalf("L2 fills = %d with AllL2Fill off", h.L2().Stats().Fills)
	}
}

func TestHierarchyHugePagesGoToSup(t *testing.T) {
	tbl, w := newWorld(t)
	huge := arch.PTE{PFN: 512 * 10, Attr: testAttr, Huge: true}
	if err := tbl.MapHuge(arch.PagesPerHuge*4, huge); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{BaselineConfig(), CoLTSAConfig(2), CoLTFAConfig(), CoLTAllConfig()} {
		h := NewHierarchy(cfg, w)
		res := h.Access(arch.PagesPerHuge*4 + 100)
		if !res.Walked || res.PFN != 512*10+100 {
			t.Fatalf("%v: huge walk = %+v", cfg.Policy, res)
		}
		if h.Sup().Occupied() != 1 {
			t.Fatalf("%v: superpage not in sup TLB", cfg.Policy)
		}
		if res := h.Access(arch.PagesPerHuge * 4); !res.L1Hit {
			t.Fatalf("%v: superpage re-access missed", cfg.Policy)
		}
	}
}

func TestHierarchyFault(t *testing.T) {
	_, w := newWorld(t)
	h := NewHierarchy(BaselineConfig(), w)
	res := h.Access(12345)
	if !res.Fault || !res.Walked {
		t.Fatalf("unmapped access = %+v", res)
	}
	if h.Stats().Faults != 1 {
		t.Fatal("fault not counted")
	}
}

func TestHierarchyL2HitRefillsL1(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 0, 100, 1)
	mapRun(t, tbl, 8, 900, 1) // same L1 set (1 set), different L2 set
	cfg := BaselineConfig()
	cfg.L1Sets, cfg.L1Ways = 1, 1
	h := NewHierarchy(cfg, w)
	h.Access(0) // fills L1+L2
	h.Access(8) // evicts VPN 0 from the 1-entry L1
	res := h.Access(0)
	if res.L1Hit || !res.L2Hit {
		t.Fatalf("expected L2 hit, got %+v", res)
	}
	// The L2 hit refilled L1.
	if res := h.Access(0); !res.L1Hit {
		t.Fatal("L1 refill from L2 hit did not happen")
	}
}

func TestHierarchyL2HitRefillsL1Coalesced(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 4)
	mapRun(t, tbl, 8, 900, 1)
	cfg := CoLTSAConfig(2)
	cfg.L1Sets, cfg.L1Ways = 1, 1
	h := NewHierarchy(cfg, w)
	h.Access(64) // coalesced into L1+L2
	h.Access(8)  // evicts the coalesced entry from the 1-entry L1
	if res := h.Access(65); !res.L2Hit {
		t.Fatal("expected L2 hit")
	}
	// The refilled L1 entry is the full coalesced run.
	for _, v := range []arch.VPN{64, 66, 67} {
		if res := h.Access(v); !res.L1Hit {
			t.Fatalf("VPN %d missed after coalesced refill", v)
		}
	}
}

func TestHierarchyInclusiveBackInvalidation(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 0, 100, 1)
	mapRun(t, tbl, 32, 900, 1) // same L2 set when L2 has 1 set... use custom config
	cfg := BaselineConfig()
	cfg.L1Sets, cfg.L1Ways = 4, 4 // roomy L1
	cfg.L2Sets, cfg.L2Ways = 1, 1 // tiny L2 to force eviction
	h := NewHierarchy(cfg, w)
	h.Access(0)
	h.Access(32) // evicts VPN 0 from L2; inclusion must purge L1 too
	res := h.Access(0)
	if res.L1Hit {
		t.Fatal("inclusive back-invalidation missing: VPN 0 still in L1")
	}
	// Without inclusion the L1 hit survives.
	cfg.InclusiveL2 = false
	h2 := NewHierarchy(cfg, w)
	h2.Access(0)
	h2.Access(32)
	if res := h2.Access(0); !res.L1Hit {
		t.Fatal("non-inclusive config purged L1 anyway")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 8)
	h := NewHierarchy(CoLTAllConfig(), w)
	h.Access(64)
	h.Invalidate(66)
	res := h.Access(66)
	if res.L1Hit || res.L2Hit {
		t.Fatalf("access after shootdown = %+v", res)
	}
	h.Access(64)
	h.InvalidateAll()
	if res := h.Access(64); res.L1Hit || res.L2Hit {
		t.Fatal("InvalidateAll incomplete")
	}
}

func TestHierarchyStatsRates(t *testing.T) {
	var s Stats
	if s.L1MissRate() != 0 || s.L2MissRate() != 0 {
		t.Fatal("zero stats rates")
	}
	s = Stats{Accesses: 100, L1Misses: 25, L2Misses: 10}
	if s.L1MissRate() != 0.25 || s.L2MissRate() != 0.10 {
		t.Fatal("rates wrong")
	}
}

func TestTLBStatsHitRate(t *testing.T) {
	// A structure that was never probed must report 0, not NaN: the
	// metrics layer serializes this value to JSON.
	if got := (TLBStats{}).HitRate(); got != 0 {
		t.Fatalf("zero-lookup HitRate = %v, want 0", got)
	}
	s := TLBStats{Lookups: 200, Hits: 150, Misses: 50}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
}

// TestLevelStatsSnapshot checks the per-structure snapshot the metrics
// layer consumes: counters land in the right level and sum up to the
// hierarchy-level view.
func TestLevelStatsSnapshot(t *testing.T) {
	tbl, w := newWorld(t)
	mapRun(t, tbl, 64, 5000, 8)
	h := NewHierarchy(CoLTAllConfig(), w)
	h.Access(64) // walk + fill
	h.Access(65) // L1 (or sup) hit
	ls := h.LevelStats()
	if ls.L1.Lookups == 0 || ls.L2.Lookups == 0 || ls.Sup.Lookups == 0 {
		t.Fatalf("snapshot missing lookups: %+v", ls)
	}
	if ls.L1.Fills+ls.Sup.Fills == 0 {
		t.Fatalf("no fill recorded anywhere: %+v", ls)
	}
	st := h.Stats()
	if hits := ls.L1.Hits + ls.Sup.Hits; hits != st.L1Hits+st.SupHits {
		t.Errorf("level hits %d != hierarchy L1+sup hits %d", hits, st.L1Hits+st.SupHits)
	}
	// The snapshot is a copy: mutating the hierarchy afterwards must
	// not change an already-taken snapshot.
	before := ls.L1.Lookups
	h.Access(66)
	if ls.L1.Lookups != before {
		t.Error("LevelStats snapshot aliases live counters")
	}

	// Partial-subblock policy: the L1/L2 slots expose the subblocked
	// structures actually probed on that access path.
	hs := NewHierarchy(PartialSubblockConfig(), w)
	hs.Access(64)
	hs.Access(65)
	sls := hs.LevelStats()
	if sls.L1.Lookups == 0 {
		t.Fatalf("subblock snapshot has no L1 lookups: %+v", sls)
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyBaseline: "baseline", PolicyCoLTSA: "colt-sa",
		PolicyCoLTFA: "colt-fa", PolicyCoLTAll: "colt-all",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
	if Policy(99).String() != "policy(99)" {
		t.Fatal("unknown policy string")
	}
}

// TestHierarchyOracle drives every policy over random contiguous
// regions with random accesses and checks each returned frame against
// the page table: CoLT must never change a translation's result.
func TestHierarchyOracle(t *testing.T) {
	tbl, w := newWorld(t)
	rng := rand.New(rand.NewSource(42))
	var mapped []arch.VPN
	// A mix of contiguous regions of varying lengths and scattered
	// singletons, plus a superpage.
	nextPFN := arch.PFN(1 << 22)
	base := arch.VPN(0)
	for r := 0; r < 40; r++ {
		n := 1 + rng.Intn(30)
		base += arch.VPN(rng.Intn(64) + 1)
		for i := 0; i < n; i++ {
			if err := tbl.Map(base+arch.VPN(i), arch.PTE{PFN: nextPFN, Attr: testAttr}); err != nil {
				t.Fatal(err)
			}
			mapped = append(mapped, base+arch.VPN(i))
			nextPFN++
		}
		base += arch.VPN(n)
		nextPFN += arch.PFN(rng.Intn(5)) // occasional physical gaps
	}
	hugeBase := arch.VPN(1 << 25)
	if err := tbl.MapHuge(hugeBase, arch.PTE{PFN: 1 << 21, Attr: testAttr, Huge: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mapped = append(mapped, hugeBase+arch.VPN(rng.Intn(arch.PagesPerHuge)))
	}

	for _, cfg := range []Config{BaselineConfig(), CoLTSAConfig(1), CoLTSAConfig(2), CoLTSAConfig(3), CoLTFAConfig(), CoLTAllConfig()} {
		h := NewHierarchy(cfg, w)
		for i := 0; i < 20000; i++ {
			vpn := mapped[rng.Intn(len(mapped))]
			res := h.Access(vpn)
			want, _, ok := tbl.Resolve(vpn)
			if !ok {
				t.Fatal("test bug: unmapped probe")
			}
			if res.Fault || res.PFN != want {
				t.Fatalf("%v: Access(%d) = %+v, want PFN %d", cfg.Policy, vpn, res, want)
			}
		}
		st := h.Stats()
		if st.Accesses != 20000 || st.L1Hits+st.SupHits+st.L1Misses != st.Accesses {
			t.Fatalf("%v: inconsistent stats %+v", cfg.Policy, st)
		}
		if st.L2Hits+st.L2Misses != st.L1Misses {
			t.Fatalf("%v: L2 accounting broken %+v", cfg.Policy, st)
		}
	}
}

// TestHierarchyCoLTReducesMisses checks the headline direction on a
// coalescing-friendly workload: every CoLT variant must eliminate a
// large fraction of baseline misses.
func TestHierarchyCoLTReducesMisses(t *testing.T) {
	tbl, w := newWorld(t)
	// 4096 pages in 16-page contiguous chunks.
	for c := 0; c < 256; c++ {
		mapRun(t, tbl, arch.VPN(c*16), arch.PFN(1<<22+c*16), 16)
	}
	rng := rand.New(rand.NewSource(7))
	access := func(h *Hierarchy) Stats {
		for i := 0; i < 100000; i++ {
			// Random page with some spatial locality: pick a chunk,
			// then sweep a few pages.
			c := rng.Intn(256)
			p := rng.Intn(12)
			for j := 0; j < 4; j++ {
				h.Access(arch.VPN(c*16 + p + j))
			}
		}
		return h.Stats()
	}
	rng = rand.New(rand.NewSource(7))
	base := access(NewHierarchy(BaselineConfig(), w))
	for _, cfg := range []Config{CoLTSAConfig(2), CoLTFAConfig(), CoLTAllConfig()} {
		rng = rand.New(rand.NewSource(7))
		st := access(NewHierarchy(cfg, w))
		if st.L2Misses >= base.L2Misses {
			t.Fatalf("%v did not reduce L2 misses: %d vs baseline %d", cfg.Policy, st.L2Misses, base.L2Misses)
		}
		elim := 100 * float64(base.L2Misses-st.L2Misses) / float64(base.L2Misses)
		if elim < 20 {
			t.Fatalf("%v eliminated only %.1f%% of L2 misses", cfg.Policy, elim)
		}
		t.Logf("%v: L1 elim %.1f%%, L2 elim %.1f%%", cfg.Policy,
			100*float64(base.L1Misses-st.L1Misses)/float64(base.L1Misses), elim)
	}
}
