package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/rng"
	"colt/internal/server"
)

// Config shapes one load-generation run against a coltd base URL.
type Config struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// Clients is the closed-loop concurrency (and the worker pool that
	// absorbs open-loop arrivals). Default 16.
	Clients int
	// Rate selects open-loop mode when > 0: arrivals are dispatched at
	// Rate req/s regardless of completions. Rate == 0 is closed-loop:
	// each client issues its next request when the previous one
	// finishes.
	Rate float64
	// Duration bounds the run (default 5s). In-flight requests at the
	// deadline are allowed to finish and are recorded.
	Duration time.Duration
	// MaxRequests, when > 0, additionally caps total submissions —
	// deterministic test runs use it.
	MaxRequests int
	// Specs is the size of the spec universe (default 64).
	Specs int
	// ZipfS is the popularity skew exponent (default 1.1; 0 = uniform).
	ZipfS float64
	// Seed roots every sampler stream; identical seeds replay
	// identical per-client request sequences.
	Seed uint64
	// Template is the spec sent for item 0; item k overrides Seed with
	// Template.Seed + k so the universe holds Specs distinct content
	// hashes of equal cost.
	Template server.Spec
	// PollInterval paces the job-status polling loop (default 1ms).
	PollInterval time.Duration
	// Prewarm, when set, submits every spec once and waits for the
	// universe to be fully cached before the measured window starts —
	// the run then measures pure serving paths, not simulation time.
	Prewarm bool
	// StatsInterval, when > 0, adds a monitoring client that GETs
	// /v1/stats on that period throughout the window — the traffic
	// shape that exposes a stats path which holds admission locks
	// while it aggregates.
	StatsInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Specs == 0 {
		c.Specs = 64
	}
	if c.PollInterval == 0 {
		c.PollInterval = time.Millisecond
	}
	if c.Template.Seed == 0 {
		c.Template.Seed = 1
	}
	return c
}

// Result is the aggregated outcome of a run.
type Result struct {
	Recorder
	Config  Config
	Elapsed time.Duration
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
	// GoodputRPS is successfully served jobs per second of elapsed
	// wall clock.
	GoodputRPS float64
	// CacheHitRate and CoalesceRate are fractions of accepted
	// submissions.
	CacheHitRate float64
	CoalesceRate float64
}

// submitResponse mirrors the fields of POST /v1/jobs the generator
// consumes.
type submitResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

// jobStatus mirrors GET /v1/jobs/{id}.
type jobStatus struct {
	State string `json:"state"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// runner is the per-run shared state.
type runner struct {
	cfg    Config
	client *http.Client
	bodies [][]byte
	left   atomic.Int64 // remaining request budget; negative = unlimited
}

// Run executes one load-generation run and aggregates the results.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	bodies := make([][]byte, cfg.Specs)
	for k := range bodies {
		spec := cfg.Template
		spec.Seed = cfg.Template.Seed + uint64(k)
		b, err := json.Marshal(spec)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: encoding spec %d: %w", k, err)
		}
		bodies[k] = b
	}
	r := &runner{
		cfg: cfg,
		client: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Clients * 2,
				MaxIdleConnsPerHost: cfg.Clients * 2,
			},
		},
		bodies: bodies,
	}
	if cfg.MaxRequests > 0 {
		r.left.Store(int64(cfg.MaxRequests))
	} else {
		r.left.Store(1 << 62)
	}

	if cfg.Prewarm {
		if err := r.prewarm(); err != nil {
			return Result{}, err
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// In-flight requests at the deadline get a grace window to finish;
	// polls abandoned at the hard context deadline count as errors.
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
	defer cancel()

	if cfg.StatsInterval > 0 {
		pollCtx, stopPoll := context.WithDeadline(context.Background(), deadline)
		defer stopPoll()
		go r.statsPoller(pollCtx)
	}

	recs := make([]*Recorder, cfg.Clients)
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		r.openLoop(ctx, deadline, recs, &wg)
	} else {
		for i := 0; i < cfg.Clients; i++ {
			recs[i] = &Recorder{}
			z := NewZipf(rng.New(cfg.Seed).Stream(fmt.Sprintf("client/%d", i)), cfg.Specs, cfg.ZipfS)
			wg.Add(1)
			go func(rec *Recorder) {
				defer wg.Done()
				for time.Now().Before(deadline) && r.left.Add(-1) >= 0 {
					r.doRequest(ctx, z.Next(), rec)
				}
			}(recs[i])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Config: cfg, Elapsed: elapsed}
	for _, rec := range recs {
		if rec != nil {
			res.Recorder.Merge(rec)
		}
	}
	ps := res.Percentiles(0.50, 0.99, 0.999)
	res.P50, res.P99, res.P999 = ps[0], ps[1], ps[2]
	if elapsed > 0 {
		res.GoodputRPS = float64(res.Done) / elapsed.Seconds()
	}
	if res.Accepted > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(res.Accepted)
		res.CoalesceRate = float64(res.Coalesced) / float64(res.Accepted)
	}
	return res, nil
}

// openLoop dispatches arrivals at cfg.Rate onto goroutines. The zipf
// stream is sampled by the dispatcher, so the arrival sequence is the
// deterministic "arrivals" stream regardless of service times.
func (r *runner) openLoop(ctx context.Context, deadline time.Time, recs []*Recorder, wg *sync.WaitGroup) {
	z := NewZipf(rng.New(r.cfg.Seed).Stream("arrivals"), r.cfg.Specs, r.cfg.ZipfS)
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var mu sync.Mutex
	shared := &Recorder{}
	recs[0] = shared
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for time.Now().Before(deadline) && r.left.Add(-1) >= 0 {
		k := z.Next()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rec Recorder
			r.doRequest(ctx, k, &rec)
			mu.Lock()
			shared.Merge(&rec)
			mu.Unlock()
		}()
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
	}
}

// statsPoller is the monitoring client: a steady drip of /v1/stats
// reads for the length of the window.
func (r *runner) statsPoller(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.StatsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/stats", nil)
		if err != nil {
			return
		}
		resp, err := r.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// prewarm seeds the cache: every spec in the universe is submitted
// once and the run does not start until each has terminated.
func (r *runner) prewarm() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for k := range r.bodies {
		for {
			var rec Recorder
			r.doRequest(ctx, k, &rec)
			if rec.Done > 0 {
				break
			}
			if ctx.Err() != nil {
				return fmt.Errorf("loadgen: prewarm of spec %d timed out", k)
			}
			// Refused (queue full) or failed: back off and retry.
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

// doRequest submits spec k and follows the job to a terminal state,
// recording the outcome into rec.
func (r *runner) doRequest(ctx context.Context, k int, rec *Recorder) {
	rec.Requests++
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.cfg.BaseURL+"/v1/jobs", bytes.NewReader(r.bodies[k]))
	if err != nil {
		rec.Errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		rec.Errors++
		return
	}
	var sr submitResponse
	decErr := json.NewDecoder(resp.Body).Decode(&sr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		rec.Refused++
		return
	case http.StatusCreated, http.StatusOK:
		if decErr != nil {
			rec.Errors++
			return
		}
	default:
		rec.Errors++
		return
	}
	rec.Accepted++
	if resp.StatusCode == http.StatusOK {
		rec.Coalesced++ // folded onto an identical in-flight job
	}
	if sr.Cached {
		rec.CacheHits++
	}
	state := sr.State
	for !terminal(state) {
		select {
		case <-ctx.Done():
			rec.Errors++
			return
		case <-time.After(r.cfg.PollInterval):
		}
		st, code, err := r.poll(ctx, sr.ID)
		if err != nil {
			rec.Errors++
			return
		}
		if code == http.StatusNotFound {
			// The job finished and was evicted from the bounded
			// registry between polls; eviction implies terminal, and
			// only done jobs outlive their tracking via the cache.
			state = "done"
			break
		}
		state = st
	}
	if state == "done" {
		rec.Done++
		rec.Latencies = append(rec.Latencies, time.Since(t0))
	} else {
		rec.Errors++
	}
}

// poll fetches one job-status snapshot.
func (r *runner) poll(ctx context.Context, id string) (state string, code int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.cfg.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return "", http.StatusNotFound, nil
	}
	var js jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return "", resp.StatusCode, err
	}
	io.Copy(io.Discard, resp.Body)
	return js.State, resp.StatusCode, nil
}
