package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"colt/internal/rng"
	"colt/internal/server"
)

// Config shapes one load-generation run against a coltd base URL.
type Config struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// BaseURLs, when non-empty, overrides BaseURL with several
	// daemons: requests round-robin across them, and each request's
	// whole lifecycle (submit, retries, status polls) stays on the
	// target it drew — the way a DNS-round-robin client would behave
	// against a coltd fleet. The Result then carries a per-target
	// breakdown.
	BaseURLs []string
	// Clients is the closed-loop concurrency (and the worker pool that
	// absorbs open-loop arrivals). Default 16.
	Clients int
	// Rate selects open-loop mode when > 0: arrivals are dispatched at
	// Rate req/s regardless of completions. Rate == 0 is closed-loop:
	// each client issues its next request when the previous one
	// finishes.
	Rate float64
	// Duration bounds the run (default 5s). In-flight requests at the
	// deadline are allowed to finish and are recorded.
	Duration time.Duration
	// MaxRequests, when > 0, additionally caps total submissions —
	// deterministic test runs use it.
	MaxRequests int
	// Specs is the size of the spec universe (default 64).
	Specs int
	// ZipfS is the popularity skew exponent (default 1.1; 0 = uniform).
	ZipfS float64
	// Seed roots every sampler stream; identical seeds replay
	// identical per-client request sequences.
	Seed uint64
	// Template is the spec sent for item 0; item k overrides Seed with
	// Template.Seed + k so the universe holds Specs distinct content
	// hashes of equal cost.
	Template server.Spec
	// PollInterval paces the job-status polling loop (default 1ms).
	PollInterval time.Duration
	// Prewarm, when set, submits every spec once and waits for the
	// universe to be fully cached before the measured window starts —
	// the run then measures pure serving paths, not simulation time.
	Prewarm bool
	// StatsInterval, when > 0, adds a monitoring client that GETs
	// /v1/stats on that period throughout the window — the traffic
	// shape that exposes a stats path which holds admission locks
	// while it aggregates.
	StatsInterval time.Duration
	// RetryMax bounds how many times one request retries a 503 before
	// counting it refused (default 4; negative disables retries). 429
	// is never retried — the spec itself is over the server's ceiling
	// and will be over it next time too.
	RetryMax int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries (defaults 25ms and 1s): attempt n waits
	// jitter × min(cap, max(base·2ⁿ, server Retry-After)), with
	// deterministic jitter in [0.5, 1.0) from a per-client rng stream.
	RetryBase time.Duration
	RetryCap  time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.BaseURLs) == 0 {
		c.BaseURLs = []string{c.BaseURL}
	}
	c.BaseURL = c.BaseURLs[0]
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Specs == 0 {
		c.Specs = 64
	}
	if c.PollInterval == 0 {
		c.PollInterval = time.Millisecond
	}
	if c.Template.Seed == 0 {
		c.Template.Seed = 1
	}
	if c.RetryMax == 0 {
		c.RetryMax = 4
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap == 0 {
		c.RetryCap = time.Second
	}
	return c
}

// backoff derives deterministic retry waits for one client: the jitter
// stream is a pure function of (seed, stream name), so a rerun with
// the same seed backs off identically. Safe for concurrent use (the
// open loop shares one across its arrival goroutines).
type backoff struct {
	mu        sync.Mutex
	rng       *rng.RNG
	base, cap time.Duration
}

func (r *runner) newBackoff(name string) *backoff {
	return &backoff{
		rng:  rng.New(r.cfg.Seed).Stream(name),
		base: r.cfg.RetryBase,
		cap:  r.cfg.RetryCap,
	}
}

// next returns the wait before retry number attempt (0-based), folding
// in the server's Retry-After hint: the wait doubles per attempt,
// never undercuts what the server asked for, never exceeds the cap,
// and carries jitter in [0.5, 1.0) so a refused crowd spreads out
// instead of returning as the same thundering herd that was refused.
func (b *backoff) next(attempt int, retryAfter time.Duration) time.Duration {
	d := b.base << uint(attempt)
	if retryAfter > d {
		d = retryAfter
	}
	if d > b.cap || d <= 0 {
		d = b.cap
	}
	b.mu.Lock()
	f := b.rng.Float64()
	b.mu.Unlock()
	return time.Duration((0.5 + 0.5*f) * float64(d))
}

// Result is the aggregated outcome of a run.
type Result struct {
	Recorder
	Config  Config
	Elapsed time.Duration
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
	// GoodputRPS is successfully served jobs per second of elapsed
	// wall clock.
	GoodputRPS float64
	// CacheHitRate and CoalesceRate are fractions of accepted
	// submissions.
	CacheHitRate float64
	CoalesceRate float64
	// PerTarget breaks the run down by daemon when BaseURLs named more
	// than one; nil on single-target runs.
	PerTarget []TargetResult
}

// TargetResult is one daemon's slice of a multi-target run.
type TargetResult struct {
	BaseURL    string
	Requests   int
	Done       int
	Refused    int
	Errors     int
	GoodputRPS float64
	P50        time.Duration
	P99        time.Duration
}

// submitResponse mirrors the fields of POST /v1/jobs the generator
// consumes.
type submitResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

// jobStatus mirrors GET /v1/jobs/{id}.
type jobStatus struct {
	State string `json:"state"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// runner is the per-run shared state.
type runner struct {
	cfg    Config
	client *http.Client
	bodies [][]byte
	left   atomic.Int64 // remaining request budget; negative = unlimited

	// rr cycles requests across cfg.BaseURLs; trecs accumulates the
	// per-target breakdown (mutex-guarded: it's touched once per
	// request completion, off the latency-critical path).
	rr    atomic.Uint64
	tmu   sync.Mutex
	trecs []*Recorder
}

// nextTarget draws the round-robin target for one request.
func (r *runner) nextTarget() int {
	return int((r.rr.Add(1) - 1) % uint64(len(r.cfg.BaseURLs)))
}

// recordTarget mirrors one finished request's outcome into the
// per-target breakdown.
func (r *runner) recordTarget(idx int, rec *Recorder) {
	if len(r.cfg.BaseURLs) < 2 {
		return
	}
	r.tmu.Lock()
	r.trecs[idx].Merge(rec)
	r.tmu.Unlock()
}

// Run executes one load-generation run and aggregates the results.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	bodies := make([][]byte, cfg.Specs)
	for k := range bodies {
		spec := cfg.Template
		spec.Seed = cfg.Template.Seed + uint64(k)
		b, err := json.Marshal(spec)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: encoding spec %d: %w", k, err)
		}
		bodies[k] = b
	}
	r := &runner{
		cfg: cfg,
		client: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Clients * 2,
				MaxIdleConnsPerHost: cfg.Clients * 2,
			},
		},
		bodies: bodies,
	}
	if cfg.MaxRequests > 0 {
		r.left.Store(int64(cfg.MaxRequests))
	} else {
		r.left.Store(1 << 62)
	}
	r.trecs = make([]*Recorder, len(cfg.BaseURLs))
	for i := range r.trecs {
		r.trecs[i] = &Recorder{}
	}

	if cfg.Prewarm {
		if err := r.prewarm(); err != nil {
			return Result{}, err
		}
		// Prewarm traffic routes through the same round-robin path;
		// drop it from the per-target breakdown so those recorders
		// cover only the measured window, like the per-client ones.
		for i := range r.trecs {
			r.trecs[i] = &Recorder{}
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// In-flight requests at the deadline get a grace window to finish;
	// polls abandoned at the hard context deadline count as errors.
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
	defer cancel()

	if cfg.StatsInterval > 0 {
		pollCtx, stopPoll := context.WithDeadline(context.Background(), deadline)
		defer stopPoll()
		go r.statsPoller(pollCtx)
	}

	recs := make([]*Recorder, cfg.Clients)
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		r.openLoop(ctx, deadline, recs, &wg)
	} else {
		for i := 0; i < cfg.Clients; i++ {
			recs[i] = &Recorder{}
			z := NewZipf(rng.New(cfg.Seed).Stream(fmt.Sprintf("client/%d", i)), cfg.Specs, cfg.ZipfS)
			bo := r.newBackoff(fmt.Sprintf("backoff/client/%d", i))
			wg.Add(1)
			go func(rec *Recorder) {
				defer wg.Done()
				for time.Now().Before(deadline) && r.left.Add(-1) >= 0 {
					r.doRequest(ctx, z.Next(), rec, bo)
				}
			}(recs[i])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Config: cfg, Elapsed: elapsed}
	for _, rec := range recs {
		if rec != nil {
			res.Recorder.Merge(rec)
		}
	}
	ps := res.Percentiles(0.50, 0.99, 0.999)
	res.P50, res.P99, res.P999 = ps[0], ps[1], ps[2]
	if elapsed > 0 {
		res.GoodputRPS = float64(res.Done) / elapsed.Seconds()
	}
	if res.Accepted > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(res.Accepted)
		res.CoalesceRate = float64(res.Coalesced) / float64(res.Accepted)
	}
	if len(cfg.BaseURLs) > 1 {
		for i, tr := range r.trecs {
			ps := tr.Percentiles(0.50, 0.99)
			t := TargetResult{
				BaseURL:  cfg.BaseURLs[i],
				Requests: tr.Requests,
				Done:     tr.Done,
				Refused:  tr.Refused,
				Errors:   tr.Errors,
				P50:      ps[0],
				P99:      ps[1],
			}
			if elapsed > 0 {
				t.GoodputRPS = float64(tr.Done) / elapsed.Seconds()
			}
			res.PerTarget = append(res.PerTarget, t)
		}
	}
	return res, nil
}

// openLoop dispatches arrivals at cfg.Rate onto goroutines. The zipf
// stream is sampled by the dispatcher, so the arrival sequence is the
// deterministic "arrivals" stream regardless of service times.
func (r *runner) openLoop(ctx context.Context, deadline time.Time, recs []*Recorder, wg *sync.WaitGroup) {
	z := NewZipf(rng.New(r.cfg.Seed).Stream("arrivals"), r.cfg.Specs, r.cfg.ZipfS)
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var mu sync.Mutex
	shared := &Recorder{}
	recs[0] = shared
	bo := r.newBackoff("backoff/arrivals")
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for time.Now().Before(deadline) && r.left.Add(-1) >= 0 {
		k := z.Next()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rec Recorder
			r.doRequest(ctx, k, &rec, bo)
			mu.Lock()
			shared.Merge(&rec)
			mu.Unlock()
		}()
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
	}
}

// statsPoller is the monitoring client: a steady drip of /v1/stats
// reads for the length of the window.
func (r *runner) statsPoller(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.StatsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/stats", nil)
		if err != nil {
			return
		}
		resp, err := r.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// prewarm seeds the cache: every spec in the universe is submitted
// once and the run does not start until each has terminated.
func (r *runner) prewarm() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for k := range r.bodies {
		for {
			var rec Recorder
			// Prewarm runs its own unbounded retry loop below, so it
			// submits without the bounded backoff helper.
			r.doRequest(ctx, k, &rec, nil)
			if rec.Done > 0 {
				break
			}
			if ctx.Err() != nil {
				return fmt.Errorf("loadgen: prewarm of spec %d timed out", k)
			}
			// Refused (queue full) or failed: back off and retry.
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

// doRequest submits spec k against the next round-robin target —
// retrying 503 refusals with jittered exponential backoff when bo is
// non-nil — and follows the accepted job to a terminal state,
// recording the outcome into rec (and the per-target breakdown). A
// retried request stays one Request; its waits accumulate in
// rec.Backoff and its eventual latency (client-perceived) includes
// them.
func (r *runner) doRequest(ctx context.Context, k int, rec *Recorder, bo *backoff) {
	idx := r.nextTarget()
	var local Recorder
	r.doRequestAt(ctx, r.cfg.BaseURLs[idx], k, &local, bo)
	rec.Merge(&local)
	r.recordTarget(idx, &local)
}

// doRequestAt is doRequest pinned to one target base URL.
func (r *runner) doRequestAt(ctx context.Context, base string, k int, rec *Recorder, bo *backoff) {
	rec.Requests++
	t0 := time.Now()
	var sr submitResponse
	var code int
	var trace string
	for attempt := 0; ; attempt++ {
		var retryAfter time.Duration
		var err error
		code, retryAfter, trace, err = r.submit(ctx, base, k, &sr)
		if err != nil {
			rec.Errors++
			return
		}
		switch code {
		case http.StatusCreated, http.StatusOK:
			// Admitted.
		case http.StatusServiceUnavailable:
			// Transient pressure (queue full, draining): the server's
			// Retry-After says when it expects room again.
			if bo != nil && attempt < r.cfg.RetryMax {
				d := bo.next(attempt, retryAfter)
				rec.Retries++
				rec.Backoff += d
				select {
				case <-ctx.Done():
					rec.Refused++
					return
				case <-time.After(d):
				}
				continue
			}
			rec.Refused++
			return
		case http.StatusTooManyRequests:
			// Hard admission ceiling: the same spec meets the same
			// ceiling on every resubmission, so never retry.
			rec.Refused++
			return
		default:
			rec.Errors++
			return
		}
		break
	}
	rec.Accepted++
	if code == http.StatusOK {
		rec.Coalesced++ // folded onto an identical in-flight job
	}
	if sr.Cached {
		rec.CacheHits++
	}
	state := sr.State
	for !terminal(state) {
		select {
		case <-ctx.Done():
			rec.Errors++
			return
		case <-time.After(r.cfg.PollInterval):
		}
		st, code, err := r.poll(ctx, base, sr.ID)
		if err != nil {
			rec.Errors++
			return
		}
		if code == http.StatusNotFound {
			// The job finished and was evicted from the bounded
			// registry between polls; eviction implies terminal, and
			// only done jobs outlive their tracking via the cache.
			state = "done"
			break
		}
		state = st
	}
	if state == "done" {
		rec.Done++
		rec.Latencies = append(rec.Latencies, time.Since(t0))
		rec.Slow = append(rec.Slow, SlowSample{TraceID: trace, Latency: time.Since(t0)})
	} else {
		rec.Errors++
	}
}

// submit performs one POST /v1/jobs attempt for spec k, decoding the
// body into sr on 2xx, the Retry-After header (whole seconds, as
// coltd sends it) into retryAfter on refusals, and returning the
// X-Colt-Trace the server minted (or adopted) for the request.
func (r *runner) submit(ctx context.Context, base string, k int, sr *submitResponse) (code int, retryAfter time.Duration, trace string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/jobs", bytes.NewReader(r.bodies[k]))
	if err != nil {
		return 0, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, "", err
	}
	defer resp.Body.Close()
	trace = resp.Header.Get("X-Colt-Trace")
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(sr); derr != nil {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, 0, trace, derr
		}
	}
	io.Copy(io.Discard, resp.Body)
	if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, trace, nil
}

// poll fetches one job-status snapshot.
func (r *runner) poll(ctx context.Context, base, id string) (state string, code int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return "", http.StatusNotFound, nil
	}
	var js jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return "", resp.StatusCode, err
	}
	io.Copy(io.Discard, resp.Body)
	return js.State, resp.StatusCode, nil
}
