package loadgen

import (
	"testing"
	"time"

	"colt/internal/rng"
)

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rng.New(7).Stream("client/0"), 32, 1.1)
	b := NewZipf(rng.New(7).Stream("client/0"), 32, 1.1)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d != %d; identical seeds must replay identically", i, x, y)
		}
	}
	c := NewZipf(rng.New(8).Stream("client/0"), 32, 1.1)
	same := true
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical draw sequence")
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	const n, draws = 16, 20000
	z := NewZipf(rng.New(1), n, 1.2)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("draw out of range: %d", k)
		}
		counts[k]++
	}
	// Item 0 must be the hot key: under zipf(1.2) over 16 items it
	// carries ~38% of the mass, far above the 1/16 uniform share.
	if counts[0] <= draws/n {
		t.Fatalf("hot item drew %d of %d, no more than the uniform share", counts[0], draws)
	}
	if counts[0] <= counts[n-1]*4 {
		t.Fatalf("skew too weak: head=%d tail=%d", counts[0], counts[n-1])
	}
	// The head of the distribution must be ordered hot-to-cold.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("head not monotonically popular: %v", counts[:3])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	const n, draws = 8, 40000
	z := NewZipf(rng.New(3), n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("s=0 item %d drew %d of %d; want near-uniform %d", k, c, draws, draws/n)
		}
	}
}

func TestZipfPanicsOnMisuse(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil rng": func() { NewZipf(nil, 4, 1) },
		"n=0":     func() { NewZipf(rng.New(1), 0, 1) },
		"s<0":     func() { NewZipf(rng.New(1), 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRecorderPercentilesNearestRank(t *testing.T) {
	r := &Recorder{}
	for i := 100; i >= 1; i-- { // reversed: Percentiles must sort
		r.Latencies = append(r.Latencies, time.Duration(i)*time.Millisecond)
	}
	ps := r.Percentiles(0.50, 0.99, 0.999, 1.0)
	want := []time.Duration{50 * time.Millisecond, 99 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("quantile %d = %v, want %v", i, ps[i], want[i])
		}
	}
	empty := &Recorder{}
	if ps := empty.Percentiles(0.5); ps[0] != 0 {
		t.Fatalf("empty recorder p50 = %v, want 0", ps[0])
	}
}

func TestRecorderMerge(t *testing.T) {
	a := &Recorder{Requests: 3, Accepted: 2, Refused: 1, Done: 2, CacheHits: 1,
		Latencies: []time.Duration{time.Millisecond}}
	b := &Recorder{Requests: 2, Accepted: 2, Errors: 1, Done: 1, Coalesced: 1,
		Latencies: []time.Duration{2 * time.Millisecond}}
	a.Merge(b)
	if a.Requests != 5 || a.Accepted != 4 || a.Refused != 1 || a.Errors != 1 ||
		a.Done != 3 || a.CacheHits != 1 || a.Coalesced != 1 || len(a.Latencies) != 2 {
		t.Fatalf("merge result %+v", a)
	}
}
