package loadgen

import (
	"sort"
	"time"
)

// SlowSample ties one served request's client-perceived latency to
// the trace ID the server returned for it, so a slow tail entry in
// the bench summary can be chased through the daemon's structured
// logs and /v1/jobs/{id}/timeline.
type SlowSample struct {
	TraceID string
	Latency time.Duration
}

// Recorder accumulates one client's request outcomes. Clients record
// into private Recorders (no cross-goroutine sharing on the hot path)
// and the runner merges them when the run ends.
type Recorder struct {
	// Latencies holds one submit→terminal latency per successfully
	// served request (cache hits included — their latency is the POST
	// round trip, which is the point of measuring them).
	Latencies []time.Duration
	// Slow pairs each served request's latency with its X-Colt-Trace.
	// Kept separate from Latencies because Percentiles sorts that
	// slice in place, destroying any index alignment.
	Slow []SlowSample
	// Requests counts every submission attempt.
	Requests int
	// Accepted counts submissions the server admitted (2xx).
	Accepted int
	// Refused counts admission refusals (503 queue-full/draining, 429).
	Refused int
	// Errors counts transport failures, unexpected statuses, and jobs
	// that finished failed/canceled.
	Errors int
	// Done counts jobs observed to reach the done state.
	Done int
	// CacheHits counts submissions served straight from the result
	// cache.
	CacheHits int
	// Coalesced counts submissions folded onto an identical in-flight
	// execution.
	Coalesced int
	// Retries counts 503 refusals answered with a backoff-and-retry
	// instead of giving up; Backoff is the total time spent in those
	// waits. Refused counts only requests that exhausted their retry
	// budget (or drew a non-retryable 429).
	Retries int
	Backoff time.Duration
}

// Merge folds o into r.
func (r *Recorder) Merge(o *Recorder) {
	r.Latencies = append(r.Latencies, o.Latencies...)
	r.Slow = append(r.Slow, o.Slow...)
	r.Requests += o.Requests
	r.Accepted += o.Accepted
	r.Refused += o.Refused
	r.Errors += o.Errors
	r.Done += o.Done
	r.CacheHits += o.CacheHits
	r.Coalesced += o.Coalesced
	r.Retries += o.Retries
	r.Backoff += o.Backoff
}

// Percentiles sorts the recorded latencies in place and returns the
// requested quantiles (q in (0, 1]) using the nearest-rank method.
// With no samples every quantile is 0.
func (r *Recorder) Percentiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(r.Latencies) == 0 {
		return out
	}
	sort.Slice(r.Latencies, func(i, j int) bool { return r.Latencies[i] < r.Latencies[j] })
	for i, q := range qs {
		idx := int(float64(len(r.Latencies))*q+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(r.Latencies) {
			idx = len(r.Latencies) - 1
		}
		out[i] = r.Latencies[idx]
	}
	return out
}

// SlowestN returns the n slowest served requests, descending by
// latency, sorting a copy so the Recorder's sample order survives.
func (r *Recorder) SlowestN(n int) []SlowSample {
	out := append([]SlowSample(nil), r.Slow...)
	sort.Slice(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
