package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
	"colt/internal/server"
)

// fastRegistry is a one-entry experiment registry whose driver
// completes instantly with a seed-derived record, like the server
// package's test stub: the generator's accounting is exercised
// without simulating anything.
func fastRegistry() []experiments.NamedExperiment {
	return []experiments.NamedExperiment{{
		Name: "stub", Desc: "loadgen test stub",
		Run: func(opts experiments.Options) error {
			opts.Metrics.Add(metrics.Record{
				Kind: "bench", Bench: "stub", Setup: "s", Seed: opts.Seed,
			}, 0)
			return nil
		},
	}}
}

func newTarget(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.NewServer(server.Config{
		Registry:   fastRegistry(),
		Workers:    2,
		QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopRun(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      4,
		Duration:     30 * time.Second, // bounded by MaxRequests below
		MaxRequests:  300,
		Specs:        8,
		ZipfS:        1.1,
		Seed:         42,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 {
		t.Fatalf("requests = %d, want exactly the MaxRequests cap 300", res.Requests)
	}
	if got := res.Accepted + res.Refused + res.Errors; got != res.Requests {
		t.Fatalf("accepted %d + refused %d + errors %d != requests %d",
			res.Accepted, res.Refused, res.Errors, res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 against a healthy stub server", res.Errors)
	}
	if res.Done == 0 || len(res.Latencies) != res.Done {
		t.Fatalf("done = %d with %d latency samples", res.Done, len(res.Latencies))
	}
	// 300 zipf draws over 8 specs repeat heavily: the cache must get
	// hit, and the rate accounting must reflect it.
	if res.CacheHits == 0 || res.CacheHitRate == 0 {
		t.Fatalf("cache hits = %d (rate %g); repeated specs must hit the cache",
			res.CacheHits, res.CacheHitRate)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if res.GoodputRPS <= 0 {
		t.Fatalf("goodput = %g, want > 0", res.GoodputRPS)
	}
}

func TestOpenLoopRun(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      4,
		Rate:         500,
		Duration:     300 * time.Millisecond,
		Specs:        4,
		ZipfS:        1.0,
		Seed:         7,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Done == 0 {
		t.Fatalf("open loop made %d requests, %d done; want both > 0", res.Requests, res.Done)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
}

func TestPrewarmMakesWindowAllHits(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      2,
		Duration:     30 * time.Second,
		MaxRequests:  100,
		Specs:        4,
		ZipfS:        1.1,
		Seed:         5,
		PollInterval: 200 * time.Microsecond,
		Prewarm:      true,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every spec was computed before the window, so every accepted
	// submission in the window is a cache hit.
	if res.CacheHitRate != 1.0 {
		t.Fatalf("cache hit rate after prewarm = %g, want 1.0 (%d hits / %d accepted)",
			res.CacheHitRate, res.CacheHits, res.Accepted)
	}
}
