package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"colt/internal/experiments"
	"colt/internal/metrics"
	"colt/internal/server"
)

// fastRegistry is a one-entry experiment registry whose driver
// completes instantly with a seed-derived record, like the server
// package's test stub: the generator's accounting is exercised
// without simulating anything.
func fastRegistry() []experiments.NamedExperiment {
	return []experiments.NamedExperiment{{
		Name: "stub", Desc: "loadgen test stub",
		Run: func(opts experiments.Options) error {
			opts.Metrics.Add(metrics.Record{
				Kind: "bench", Bench: "stub", Setup: "s", Seed: opts.Seed,
			}, 0)
			return nil
		},
	}}
}

func newTarget(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.NewServer(server.Config{
		Registry:   fastRegistry(),
		Workers:    2,
		QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopRun(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      4,
		Duration:     30 * time.Second, // bounded by MaxRequests below
		MaxRequests:  300,
		Specs:        8,
		ZipfS:        1.1,
		Seed:         42,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 {
		t.Fatalf("requests = %d, want exactly the MaxRequests cap 300", res.Requests)
	}
	if got := res.Accepted + res.Refused + res.Errors; got != res.Requests {
		t.Fatalf("accepted %d + refused %d + errors %d != requests %d",
			res.Accepted, res.Refused, res.Errors, res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 against a healthy stub server", res.Errors)
	}
	if res.Done == 0 || len(res.Latencies) != res.Done {
		t.Fatalf("done = %d with %d latency samples", res.Done, len(res.Latencies))
	}
	// 300 zipf draws over 8 specs repeat heavily: the cache must get
	// hit, and the rate accounting must reflect it.
	if res.CacheHits == 0 || res.CacheHitRate == 0 {
		t.Fatalf("cache hits = %d (rate %g); repeated specs must hit the cache",
			res.CacheHits, res.CacheHitRate)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if res.GoodputRPS <= 0 {
		t.Fatalf("goodput = %g, want > 0", res.GoodputRPS)
	}
}

func TestOpenLoopRun(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      4,
		Rate:         500,
		Duration:     300 * time.Millisecond,
		Specs:        4,
		ZipfS:        1.0,
		Seed:         7,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Done == 0 {
		t.Fatalf("open loop made %d requests, %d done; want both > 0", res.Requests, res.Done)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
}

func TestPrewarmMakesWindowAllHits(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      2,
		Duration:     30 * time.Second,
		MaxRequests:  100,
		Specs:        4,
		ZipfS:        1.1,
		Seed:         5,
		PollInterval: 200 * time.Microsecond,
		Prewarm:      true,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every spec was computed before the window, so every accepted
	// submission in the window is a cache hit.
	if res.CacheHitRate != 1.0 {
		t.Fatalf("cache hit rate after prewarm = %g, want 1.0 (%d hits / %d accepted)",
			res.CacheHitRate, res.CacheHits, res.Accepted)
	}
}

// refusingTarget serves /v1/jobs by 503-refusing the first refusals
// POSTs (with a Retry-After hint) and then accepting straight to done.
func refusingTarget(t *testing.T, refusals int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var posts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) <= refusals {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":"j000001","state":"done","cached":true}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &posts
}

func TestRetriesRecoverFromTransient503(t *testing.T) {
	ts, posts := refusingTarget(t, 2)
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Clients:     1,
		Duration:    30 * time.Second,
		MaxRequests: 1,
		Seed:        11,
		RetryMax:    4,
		RetryBase:   time.Millisecond,
		RetryCap:    5 * time.Millisecond, // clamp the server's 1s hint; keep the test fast
		Template:    server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 || res.Accepted != 1 || res.Refused != 0 {
		t.Fatalf("requests=%d accepted=%d refused=%d; a retried request is still one request",
			res.Requests, res.Accepted, res.Refused)
	}
	if res.Retries != 2 || res.Backoff <= 0 {
		t.Fatalf("retries=%d backoff=%v, want the two 503s retried with nonzero waits",
			res.Retries, res.Backoff)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("server saw %d POSTs, want 3 (2 refused + 1 accepted)", got)
	}
}

func TestRetryBudgetExhaustionCountsRefused(t *testing.T) {
	ts, _ := refusingTarget(t, 1<<30) // never stops refusing
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Clients:     1,
		Duration:    30 * time.Second,
		MaxRequests: 1,
		Seed:        11,
		RetryMax:    2,
		RetryBase:   time.Millisecond,
		RetryCap:    2 * time.Millisecond,
		Template:    server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refused != 1 || res.Retries != 2 || res.Accepted != 0 {
		t.Fatalf("refused=%d retries=%d accepted=%d; want the budget spent then one refusal",
			res.Refused, res.Retries, res.Accepted)
	}
	if got := res.Accepted + res.Refused + res.Errors; got != res.Requests {
		t.Fatalf("outcome identity broken: %d+%d+%d != %d",
			res.Accepted, res.Refused, res.Errors, res.Requests)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	r := &runner{cfg: Config{Seed: 9, RetryBase: 10 * time.Millisecond, RetryCap: 80 * time.Millisecond}}
	a := r.newBackoff("backoff/client/0")
	b := r.newBackoff("backoff/client/0")
	for attempt := 0; attempt < 6; attempt++ {
		da, db := a.next(attempt, 0), b.next(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed and stream gave %v vs %v", attempt, da, db)
		}
		// Raw wait doubles from base and clamps at cap; jitter scales it
		// into [0.5, 1.0).
		raw := 10 * time.Millisecond << uint(attempt)
		if raw > 80*time.Millisecond {
			raw = 80 * time.Millisecond
		}
		if da < raw/2 || da >= raw {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", attempt, da, raw/2, raw)
		}
	}
	// The server's Retry-After is a floor on the raw wait, still capped.
	if d := a.next(0, 40*time.Millisecond); d < 20*time.Millisecond || d >= 40*time.Millisecond {
		t.Fatalf("Retry-After floor ignored: wait %v", d)
	}
	if d := a.next(0, time.Second); d < 40*time.Millisecond || d >= 80*time.Millisecond {
		t.Fatalf("cap not applied over Retry-After: wait %v", d)
	}
}

// TestMultiTargetRoundRobin drives two independent daemons through
// BaseURLs and checks the per-target breakdown: both targets take
// traffic, the split is near-even (round-robin, not hash-affine), and
// the per-target counts sum to the aggregate.
func TestMultiTargetRoundRobin(t *testing.T) {
	a, b := newTarget(t), newTarget(t)
	res, err := Run(Config{
		BaseURLs:     []string{a.URL, b.URL},
		Clients:      4,
		Duration:     30 * time.Second, // bounded by MaxRequests below
		MaxRequests:  200,
		Specs:        8,
		ZipfS:        1.1,
		Seed:         7,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTarget) != 2 {
		t.Fatalf("PerTarget has %d entries, want 2", len(res.PerTarget))
	}
	var sumReq, sumDone int
	for _, tr := range res.PerTarget {
		if tr.Requests == 0 {
			t.Fatalf("target %s took no traffic", tr.BaseURL)
		}
		sumReq += tr.Requests
		sumDone += tr.Done
	}
	if sumReq != res.Requests || sumDone != res.Done {
		t.Fatalf("per-target sums (%d req, %d done) != aggregate (%d, %d)",
			sumReq, sumDone, res.Requests, res.Done)
	}
	// Round-robin: neither target should see more than 60% of traffic.
	for _, tr := range res.PerTarget {
		if frac := float64(tr.Requests) / float64(res.Requests); frac > 0.6 {
			t.Fatalf("target %s drew %.0f%% of requests; round-robin should stay near 50%%",
				tr.BaseURL, frac*100)
		}
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors against healthy targets", res.Errors)
	}
}

// TestSingleTargetHasNoBreakdown pins the schema quieter path: one
// target means no PerTarget section.
func TestSingleTargetHasNoBreakdown(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Clients:      2,
		Duration:     30 * time.Second,
		MaxRequests:  20,
		Specs:        4,
		Seed:         3,
		PollInterval: 200 * time.Microsecond,
		Template:     server.Spec{Experiment: "stub", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTarget != nil {
		t.Fatalf("single-target run produced a PerTarget breakdown: %+v", res.PerTarget)
	}
}
