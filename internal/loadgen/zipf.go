// Package loadgen is the client side of the serving story: a
// deterministic zipf-skewed workload generator and the latency/
// throughput accounting that turns a run against coltd into the
// BENCH_serve.json trajectory numbers.
//
// The popularity model is the classic bounded zipf distribution:
// item k (0-based) is drawn with probability proportional to
// 1/(k+1)^s. Real serving traffic is skewed — a few hot specs absorb
// most submissions — and skew is exactly what exercises the server's
// coalescing map, cache hot path, and per-shard admission state. The
// sampler draws from an internal/rng generator, so a (seed, client)
// pair replays the identical request sequence on every run and the
// pre/post comparison in a perf PR measures the server, not the
// workload.
package loadgen

import (
	"fmt"
	"math"
	"sort"

	"colt/internal/rng"
)

// Zipf samples item indexes in [0, N) with P(k) ∝ 1/(k+1)^s. Item 0
// is the hottest. s == 0 degenerates to uniform. Not safe for
// concurrent use; give each client its own sampler.
type Zipf struct {
	cdf []float64
	r   *rng.RNG
}

// NewZipf builds a sampler over n items with exponent s, drawing from
// r. It panics if n < 1, s < 0, or r is nil — misuse, not input.
func NewZipf(r *rng.RNG, n int, s float64) *Zipf {
	if r == nil {
		panic("loadgen: NewZipf with nil rng")
	}
	if n < 1 {
		panic(fmt.Sprintf("loadgen: NewZipf with n=%d, want >= 1", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("loadgen: NewZipf with s=%g, want >= 0", s))
	}
	z := &Zipf{cdf: make([]float64, n), r: r}
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1.0 / math.Pow(float64(k+1), s)
		z.cdf[k] = total
	}
	for k := range z.cdf {
		z.cdf[k] /= total
	}
	z.cdf[n-1] = 1.0 // guard against float drift at the tail
	return z
}

// Next draws the next item index.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the item-universe size.
func (z *Zipf) N() int { return len(z.cdf) }
