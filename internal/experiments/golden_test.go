package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colt/internal/metrics"
)

// The golden-run regression harness: a fast experiment subset runs at
// GoldenOptions and its stable metrics JSON is byte-compared against
// checked-in files under testdata/goldens. Any change to simulator
// behavior — intended or not — shows up as a structural diff here
// before it reaches a full run. Regenerate after intended changes with
//
//	go test ./internal/experiments -run TestGoldens -update
//
// or `make golden-update`.

var updateGoldens = flag.Bool("update", false, "rewrite the golden metrics JSON files")

// goldenExperiments is the golden subset: Table 1 (the real-system
// probe), Figure 18 (the standard four-variant evaluation, the paper's
// headline result), and Figure 20 (the associativity study). Together
// they exercise every TLB policy, all five system setups, and the
// contiguity scanner at a runtime small enough for every merge.
var goldenExperiments = []struct {
	name string
	run  func(opts Options) error
}{
	{"table1", func(o Options) error { _, err := Table1(o); return err }},
	{"fig18", func(o Options) error { _, err := RunStandardEvaluation(o); return err }},
	{"fig20", func(o Options) error { _, err := Figure20(o); return err }},
}

// goldenReport runs one golden experiment and returns its stable JSON.
func goldenReport(name string, run func(Options) error, parallel int) ([]byte, error) {
	opts := GoldenOptions()
	opts.Parallel = parallel
	opts.Metrics = metrics.NewCollector()
	if err := run(opts); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if opts.Metrics.Len() == 0 {
		return nil, fmt.Errorf("%s: no metrics records collected", name)
	}
	return opts.Metrics.Report(name, opts.Snapshot()).StableJSON()
}

func TestGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs simulate full reference streams")
	}
	for _, g := range goldenExperiments {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			got, err := goldenReport(g.name, g.run, 1)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "goldens", g.name+".json")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				diffs := metrics.Diff(got, want)
				t.Errorf("%s diverges from golden (%d fields differ; re-run with -update if intended):\n%s",
					g.name, len(diffs), strings.Join(diffs, "\n"))
			}

			// The same run fanned out across eight workers must produce
			// the identical report: scheduling order must never leak
			// into results.
			wide, err := goldenReport(g.name, g.run, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wide) {
				t.Errorf("%s report differs between parallel=1 and parallel=8:\n%s",
					g.name, strings.Join(metrics.Diff(wide, got), "\n"))
			}
		})
	}
}

// histReport runs Table 1 with telemetry histograms embedded and
// returns the stable report JSON.
func histReport(parallel int) ([]byte, error) {
	opts := GoldenOptions()
	opts.Parallel = parallel
	opts.Histograms = true
	opts.Metrics = metrics.NewCollector()
	if _, err := Table1(opts); err != nil {
		return nil, fmt.Errorf("table1-hist: %w", err)
	}
	return opts.Metrics.Report("table1-hist", opts.Snapshot()).StableJSON()
}

// TestGoldenHistograms extends the golden harness to telemetry:
// Table 1 with Histograms on is byte-compared against its own golden,
// and — like every report — must be identical at parallel widths 1 and
// 8. Histogram buckets, spans, and entry lifetimes are all functions
// of the per-job reference stream, so worker count must not leak in.
func TestGoldenHistograms(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs simulate full reference streams")
	}
	got, err := histReport(1)
	if err != nil {
		t.Fatal(err)
	}
	// The embedded telemetry must actually be there — an empty-schema
	// pass would make this golden vacuous.
	for _, key := range []string{`"hists"`, `"spans"`, `"coalesce_len"`, `"entry_lifetime"`, `"walk_depth"`, `"buckets"`} {
		if !strings.Contains(string(got), key) {
			t.Fatalf("histogram report lacks %s:\n%.2000s", key, got)
		}
	}
	path := filepath.Join("testdata", "goldens", "table1-hist.json")
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		diffs := metrics.Diff(got, want)
		t.Errorf("table1-hist diverges from golden (%d fields differ; re-run with -update if intended):\n%s",
			len(diffs), strings.Join(diffs, "\n"))
	}
	wide, err := histReport(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wide) {
		t.Errorf("histogram report differs between parallel=1 and parallel=8:\n%s",
			strings.Join(metrics.Diff(wide, got), "\n"))
	}
}
