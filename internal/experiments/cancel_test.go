package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"colt/internal/metrics"
	"colt/internal/workload"
)

// TestMapJobsCancelRendersPartial: cancellation mid-fan-out degrades
// like fault injection — completed jobs survive, undispatched jobs
// become canceled-failure records, and the run returns its partial
// results instead of dying. This is the SIGINT path of
// cmd/experiments and the DELETE path of coltd.
func TestMapJobsCancelRendersPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := QuickOptions()
	opts.Parallel = 1
	opts.Ctx = ctx
	opts.Metrics = metrics.NewCollector()
	items := []int{0, 1, 2, 3}
	results, ok, err := mapJobs(opts, items,
		func(i int) jobMeta { return jobMeta{kind: "cancel-test", bench: "b", setup: string(rune('a' + i))} },
		func(i int, o Options) (int, error) {
			if i == 0 {
				cancel() // interrupt after the first job completes
			}
			return i * 10, nil
		})
	if err != nil {
		t.Fatalf("mapJobs returned error instead of partial results: %v", err)
	}
	if !ok[0] || results[0] != 0 {
		t.Fatalf("completed job lost: ok=%v results=%v", ok, results)
	}
	survivors := 0
	for _, o := range ok {
		if o {
			survivors++
		}
	}
	if survivors == len(items) {
		t.Fatal("cancellation did not skip any job")
	}
	fails := opts.Metrics.Failures()
	if len(fails) != len(items)-survivors {
		t.Fatalf("recorded %d failures, want %d", len(fails), len(items)-survivors)
	}
	for _, f := range fails {
		if !f.Canceled {
			t.Errorf("failure %+v not marked canceled", f)
		}
		if f.Kind != "cancel-test" {
			t.Errorf("failure kind %q, want cancel-test", f.Kind)
		}
	}
}

// TestMapJobsAllCanceledReturnsError: a run canceled before any job
// completed has nothing to render and must surface the error.
func TestMapJobsAllCanceledReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := QuickOptions()
	opts.Parallel = 1
	opts.Ctx = ctx
	_, _, err := mapJobs(opts, []int{0, 1},
		func(i int) jobMeta { return jobMeta{kind: "cancel-test", bench: "b", setup: "s"} },
		func(i int, o Options) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunBenchmarkHonorsCancellation: an in-flight simulation aborts
// at a cancellation checkpoint instead of running to completion.
func TestRunBenchmarkHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := QuickOptions()
	opts.Ctx = ctx
	spec := mustSpec(t, "Mcf")
	if _, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBenchmark err = %v, want context.Canceled", err)
	}
	if _, err := RunContiguity(spec, SetupTHSOnNormal, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContiguity err = %v, want context.Canceled", err)
	}
}

// TestRegistryResolvesEveryName: the serving registry is internally
// consistent and its unknown-name error teaches the valid set.
func TestRegistryResolvesEveryName(t *testing.T) {
	reg := Registry()
	if len(reg) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Fatalf("ByName(%q) = %+v, %v", e.Name, got, err)
		}
	}
	_, err := ByName("no-such-experiment")
	if err == nil {
		t.Fatal("ByName accepted an unknown experiment")
	}
	for _, name := range RegistryNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-name error %q does not list %q", err, name)
		}
	}
}

// TestRegistryRunEmitsRecords: a registry entry run with a collector
// attached produces a non-empty, finite, stable report (smoke on the
// cheapest entry).
func TestRegistryRunEmitsRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	e, err := ByName("table1")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Refs = 2_000
	opts.Warmup = 200
	opts.Metrics = metrics.NewCollector()
	if err := e.Run(opts); err != nil {
		t.Fatal(err)
	}
	if opts.Metrics.Len() == 0 {
		t.Fatal("registry run emitted no records")
	}
	if _, err := opts.Metrics.Report(e.Name, opts.Snapshot()).StableJSON(); err != nil {
		t.Fatal(err)
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
